"""Micro-benchmark: interpreted vs compiled Mamdani inference.

Times one ``infer`` of the paper's FLC1 (42 rules) and FLC2 (27 rules) on
both engines over the same fixed input set, asserts the compiled fast path
is measurably faster, and re-checks the equivalence guarantee on the same
points.  The measured per-infer times and the speedup land in the benchmark
JSON via ``extra_info``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cac.facs.flc1 import FLC1
from repro.cac.facs.flc2 import FLC2

#: Fixed operating points (seeded) so both engines time the same workload.
_POINT_COUNT = 250


def _flc1_points() -> list[dict[str, float]]:
    rng = np.random.default_rng(20070625)
    return [
        {
            "S": float(rng.uniform(0.0, 120.0)),
            "A": float(rng.uniform(-180.0, 180.0)),
            "D": float(rng.uniform(0.0, 10.0)),
        }
        for _ in range(_POINT_COUNT)
    ]


def _flc2_points() -> list[dict[str, float]]:
    rng = np.random.default_rng(20070626)
    return [
        {
            "Cv": float(rng.uniform(0.0, 1.0)),
            "R": float(rng.choice([1.0, 5.0, 10.0])),
            "Cs": float(rng.uniform(0.0, 40.0)),
        }
        for _ in range(_POINT_COUNT)
    ]


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _speedup_case(benchmark, controller_name, reference, compiled, points):
    reference_engine = reference.controller.engine
    compiled_engine = compiled.controller.engine
    output = reference.controller.output_names[0]

    # Equivalence on the timed workload itself.
    for point in points[:50]:
        expected = reference_engine.infer(point)[output]
        assert abs(compiled_engine.infer_crisp(point)[output] - expected) <= 1e-9

    def run_reference():
        for point in points:
            reference_engine.infer(point)

    def run_compiled():
        for point in points:
            compiled_engine.infer_crisp(point)

    reference_seconds = _best_seconds(run_reference)
    compiled_seconds = _best_seconds(run_compiled)
    benchmark.pedantic(run_compiled, rounds=3, iterations=1)

    per_infer_reference_us = reference_seconds / len(points) * 1e6
    per_infer_compiled_us = compiled_seconds / len(points) * 1e6
    speedup = reference_seconds / compiled_seconds
    benchmark.extra_info["controller"] = controller_name
    benchmark.extra_info["per_infer_reference_us"] = round(per_infer_reference_us, 2)
    benchmark.extra_info["per_infer_compiled_us"] = round(per_infer_compiled_us, 2)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\n{controller_name}: reference {per_infer_reference_us:.1f} us/infer, "
        f"compiled {per_infer_compiled_us:.1f} us/infer, speedup {speedup:.1f}x"
    )
    # "Measurable" per-infer speedup; observed ~14-16x, asserted with margin.
    assert speedup >= 2.0


def test_compiled_flc1_infer_speedup(benchmark):
    _speedup_case(
        benchmark,
        "FLC1",
        FLC1(engine="reference"),
        FLC1(engine="compiled"),
        _flc1_points(),
    )


def test_compiled_flc2_infer_speedup(benchmark):
    _speedup_case(
        benchmark,
        "FLC2",
        FLC2(engine="reference"),
        FLC2(engine="compiled"),
        _flc2_points(),
    )
