"""Wall-clock benchmark: the multi-cell QoS sweep on the two-layer fast path.

The network experiment was the last strictly serial, interpreted path in the
repo.  This bench runs the same FACS arrival-rate sweep twice —

* the historical configuration: interpreted reference engine, strictly
  serial replications, and
* the fast path: compiled engine, process-pool executor —

and asserts

* a >= 2x wall-clock speedup,
* identical curves between the engines (the compiled engine is bit-identical
  for the paper's min/max operators, so the sweeps must agree exactly), and
* byte-identical results between serial, process and thread backends.

It also writes ``results/BENCH_multicell.json`` with the timings and the
reproduced QoS numbers, so every CI run appends a machine-readable point to
the performance trajectory (the file is uploaded as a workflow artifact).
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import time
from pathlib import Path

from repro.cac.facs.system import FACSConfig
from repro.simulation import (
    NetworkExperimentConfig,
    NetworkSweepSpec,
    ProcessPoolSweepExecutor,
    ThreadPoolSweepExecutor,
    run_network_sweep,
)
from repro.simulation.scenario import facs_factory

BENCH_ARRIVAL_RATES = (0.02, 0.03, 0.04)
BENCH_REPLICATIONS = 3
PARALLEL_WORKERS = 4

BASE_CONFIG = NetworkExperimentConfig(
    rings=1,
    cell_radius_km=1.5,
    duration_s=900.0,
    mean_speed_kmh=60.0,
    seed=20070628,
)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "BENCH_multicell.json"


def _spec(engine: str) -> NetworkSweepSpec:
    return NetworkSweepSpec(
        name="bench-network-sweep",
        controllers={"FACS": facs_factory(FACSConfig(engine=engine))},
        arrival_rates=BENCH_ARRIVAL_RATES,
        replications=BENCH_REPLICATIONS,
        base_config=BASE_CONFIG,
    )


def test_network_sweep_parallel_compiled_speedup(benchmark):
    start = time.perf_counter()
    reference_sweep = run_network_sweep(_spec("reference"))
    reference_seconds = time.perf_counter() - start

    timing: dict[str, float] = {}

    def run_fast_path():
        start = time.perf_counter()
        sweep = run_network_sweep(
            _spec("compiled"),
            executor=ProcessPoolSweepExecutor(max_workers=PARALLEL_WORKERS),
        )
        timing["seconds"] = time.perf_counter() - start
        return sweep

    fast_sweep = benchmark.pedantic(run_fast_path, rounds=1, iterations=1)
    fast_seconds = timing["seconds"]

    # Equivalence 1: the compiled engine is bit-identical to the reference
    # engine for the paper's min/max operators, so every admission decision —
    # and therefore every sweep point — must agree exactly.
    for reference_curve, fast_curve in zip(reference_sweep.curves, fast_sweep.curves):
        assert reference_curve.label == fast_curve.label
        assert reference_curve.points == fast_curve.points

    # Equivalence 2: byte-identical results across every backend.
    serial_sweep = run_network_sweep(_spec("compiled"))
    thread_sweep = run_network_sweep(
        _spec("compiled"), executor=ThreadPoolSweepExecutor(max_workers=PARALLEL_WORKERS)
    )
    assert pickle.dumps(serial_sweep) == pickle.dumps(fast_sweep)
    assert pickle.dumps(serial_sweep) == pickle.dumps(thread_sweep)

    speedup = reference_seconds / fast_seconds
    curve = fast_sweep.curve("FACS")
    payload = {
        "benchmark": "bench_network_sweep",
        "config": {
            "arrival_rates_per_cell_per_s": list(BENCH_ARRIVAL_RATES),
            "replications": BENCH_REPLICATIONS,
            "duration_s": BASE_CONFIG.duration_s,
            "rings": BASE_CONFIG.rings,
            "workers": PARALLEL_WORKERS,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "timings": {
            "reference_serial_seconds": round(reference_seconds, 3),
            "compiled_parallel_seconds": round(fast_seconds, 3),
            "speedup": round(speedup, 2),
        },
        "qos": {
            f"{point.arrival_rate_per_cell_per_s:g}": {
                "acceptance_percentage": round(point.acceptance_percentage, 2),
                "blocking_probability": round(point.blocking_probability, 4),
                "dropping_probability": round(point.dropping_probability, 4),
                "handoff_failure_ratio": round(point.handoff_failure_ratio, 4),
                "mean_occupancy_bu": round(point.mean_occupancy_bu, 1),
            }
            for point in curve.points
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info.update(payload["timings"])
    benchmark.extra_info["results_file"] = str(RESULTS_PATH)
    print(
        f"\nnetwork sweep: reference+serial {reference_seconds:.2f}s, "
        f"compiled+parallel({PARALLEL_WORKERS}) {fast_seconds:.2f}s, "
        f"speedup {speedup:.2f}x -> {RESULTS_PATH.name}"
    )
    assert speedup >= 2.0
