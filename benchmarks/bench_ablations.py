"""Ablations on the design choices the paper leaves unexplored.

Not paper figures — these quantify the sensitivity of the reproduction to the
parameters we had to concretise: the defuzzification method, the crisp
acceptance threshold applied to the soft A/R output, and how FACS/SCC compare
against the classic non-fuzzy baselines of the related-work section.
"""

from __future__ import annotations

from conftest import attach_curves

from repro.experiments import baseline_ablation, defuzzifier_ablation, threshold_ablation


def test_ablation_defuzzifier(benchmark):
    """Centroid vs bisector vs mean-of-maximum in both FLCs."""
    sweep = benchmark.pedantic(
        defuzzifier_ablation,
        kwargs={"request_counts": (30, 70, 100), "replications": 4},
        rounds=1,
        iterations=1,
    )
    attach_curves(benchmark, sweep)
    centroid = sweep.curve("centroid").mean_acceptance()
    bisector = sweep.curve("bisector").mean_acceptance()
    mom = sweep.curve("mom").mean_acceptance()
    print(f"\ncentroid={centroid:.1f}%  bisector={bisector:.1f}%  mom={mom:.1f}%")
    # Centroid and bisector give nearly identical controllers; MOM is coarser
    # but must stay in the same qualitative band.
    assert abs(centroid - bisector) < 5.0
    assert abs(centroid - mom) < 20.0


def test_ablation_acceptance_threshold(benchmark):
    """The crisp threshold on the soft A/R output trades acceptance for caution."""
    sweep = benchmark.pedantic(
        threshold_ablation,
        kwargs={
            "thresholds": (-0.25, 0.0, 0.25, 0.5),
            "request_counts": (30, 70, 100),
            "replications": 4,
        },
        rounds=1,
        iterations=1,
    )
    attach_curves(benchmark, sweep)
    means = {label: sweep.curve(label).mean_acceptance() for label in sweep.labels()}
    print()
    for label, value in means.items():
        print(f"  {label}: {value:.1f}%")
    ordered = [means[label] for label in sorted(means, key=lambda l: float(l.split("=")[1]))]
    tolerance = 1.0
    assert all(a >= b - tolerance for a, b in zip(ordered, ordered[1:])), ordered


def test_ablation_against_classic_baselines(benchmark):
    """FACS and SCC vs Complete Sharing, Guard Channel and Threshold policies."""
    sweep = benchmark.pedantic(
        baseline_ablation,
        kwargs={"request_counts": (30, 70, 100), "replications": 4},
        rounds=1,
        iterations=1,
    )
    attach_curves(benchmark, sweep)
    means = {label: sweep.curve(label).mean_acceptance() for label in sweep.labels()}
    print()
    for label, value in sorted(means.items(), key=lambda item: -item[1]):
        print(f"  {label}: {value:.1f}%")
    # Complete Sharing is the acceptance upper bound among the baselines.
    assert means["CS"] >= means["FACS"]
    assert means["CS"] >= means["Threshold"]
    # Everything stays within sane bounds.
    assert all(0.0 <= value <= 100.0 for value in means.values())
