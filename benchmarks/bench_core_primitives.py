"""Micro-benchmarks of the substrates: fuzzy inference, DES throughput, batch runs.

Not paper artifacts — these track the performance of the building blocks so
regressions in the hot paths (FLC inference per admission decision, event
processing in the kernel) are visible.
"""

from __future__ import annotations

from repro.cac.facs.system import FuzzyAdmissionControlSystem
from repro.cellular.cell import BaseStation
from repro.cellular.calls import Call
from repro.cellular.mobility import UserState
from repro.cellular.traffic import ServiceClass
from repro.des.environment import Environment
from repro.simulation.batch import run_batch_experiment
from repro.simulation.config import BatchExperimentConfig
from repro.simulation.scenario import facs_factory


def test_facs_single_decision_latency(benchmark):
    """One full FACS admission decision (FLC1 + FLC2 + bookkeeping)."""
    facs = FuzzyAdmissionControlSystem()
    station = BaseStation()
    call = Call(
        service=ServiceClass.VOICE,
        bandwidth_units=5,
        user_state=UserState(60.0, 20.0, 3.0),
    )
    decision = benchmark(facs.decide, call, station, 0.0)
    assert decision.accepted


def test_des_event_throughput(benchmark):
    """Process 10k chained timeout events through the kernel."""

    def run_chain() -> float:
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(ticker(env))
        env.run()
        return env.now

    final_time = benchmark(run_chain)
    assert final_time == 10_000.0


def test_batch_experiment_throughput(benchmark):
    """One full 100-request batch run with the FACS controller."""
    config = BatchExperimentConfig(request_count=100, seed=20070616)
    output = benchmark(run_batch_experiment, config, facs_factory())
    assert output.result.metrics.requested == 100
