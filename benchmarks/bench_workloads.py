"""Wall-clock benchmark: the MMPP workload sweep on the executor fast path.

The workloads subsystem replaces the hard-wired Poisson arrivals with
registered arrival-process models and multi-service classes, and its whole
value rests on two guarantees: the new draws stay a pure function of the
seeded config (so results are byte-identical for every backend and worker
count), and the per-class counters ride the same shared-memory frame path
the legacy counters do (so parallel sweeps still scale).  This bench runs
the MMPP network sweep — bursty 2-state arrivals with the voice/data/video
mix — twice:

* the historical configuration: interpreted reference engine, strictly
  serial replications, and
* the fast path: compiled engine, process-pool executor —

and asserts

* identical curves between the engines (the workload draws live in the
  traffic layer, so the engine choice must not perturb a single decision),
* byte-identical sweep results across serial / thread / process backends
  at worker counts 1, 2 and 4,
* per-class admission counters present and consistent in the sweep frame
  (requested = accepted + blocked per service class), and
* a >= 2x wall-clock speedup of the fast path over the historical one.

It also writes ``results/BENCH_workloads.json`` with the timings, the QoS
numbers and the pooled per-class totals, so every CI run appends a
machine-readable point to the performance trajectory (uploaded as a
workflow artifact).
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import time
from pathlib import Path

import numpy as np

from repro.analysis.frame import class_column_names
from repro.cac.facs.system import FACSConfig
from repro.simulation import (
    NetworkExperimentConfig,
    NetworkSweepSpec,
    ProcessPoolSweepExecutor,
    ThreadPoolSweepExecutor,
    run_network_sweep,
)
from repro.simulation.scenario import facs_factory
from repro.workloads import resolve_workload

BENCH_ARRIVAL_RATES = (0.04, 0.08)
BENCH_REPLICATIONS = 4
PARALLEL_WORKERS = 4

BASE_CONFIG = NetworkExperimentConfig(
    rings=1,
    cell_radius_km=1.5,
    duration_s=900.0,
    mean_speed_kmh=60.0,
    seed=20070808,
    workload=resolve_workload("mmpp"),
)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "BENCH_workloads.json"


def _spec(engine: str) -> NetworkSweepSpec:
    return NetworkSweepSpec(
        name="bench-workloads-mmpp",
        controllers={"FACS": facs_factory(FACSConfig(engine=engine))},
        arrival_rates=BENCH_ARRIVAL_RATES,
        replications=BENCH_REPLICATIONS,
        base_config=BASE_CONFIG,
    )


def _class_totals(frame) -> dict[str, dict[str, float]]:
    """Pooled per-class counter totals of the sweep frame."""
    totals: dict[str, dict[str, float]] = {}
    for name in class_column_names(frame.class_names):
        _, service, counter = name.split(".")
        totals.setdefault(service, {})[counter] = float(
            np.nansum(frame.column(name))
        )
    return totals


def test_mmpp_workload_sweep_identity_and_speedup(benchmark):
    start = time.perf_counter()
    reference_sweep = run_network_sweep(_spec("reference"))
    reference_seconds = time.perf_counter() - start

    timing: dict[str, float] = {}

    def run_fast_path():
        start = time.perf_counter()
        sweep = run_network_sweep(
            _spec("compiled"),
            executor=ProcessPoolSweepExecutor(max_workers=PARALLEL_WORKERS),
        )
        timing["seconds"] = time.perf_counter() - start
        return sweep

    fast_sweep = benchmark.pedantic(run_fast_path, rounds=1, iterations=1)
    fast_seconds = timing["seconds"]

    # Guarantee 1: the workload draws live in the traffic layer, so the
    # engine choice must not perturb a single admission decision — every
    # MMPP sweep point agrees exactly between the engines.
    for reference_curve, fast_curve in zip(reference_sweep.curves, fast_sweep.curves):
        assert reference_curve.label == fast_curve.label
        assert reference_curve.points == fast_curve.points

    # Guarantee 2: byte-identical results across every backend and worker
    # count — the workload draws derive from the same named streams the
    # legacy path used, never from execution order.
    serial_sweep = run_network_sweep(_spec("compiled"))
    reference_bytes = pickle.dumps(serial_sweep)
    assert pickle.dumps(fast_sweep) == reference_bytes
    for workers in (1, 2, 4):
        thread_sweep = run_network_sweep(
            _spec("compiled"), executor=ThreadPoolSweepExecutor(max_workers=workers)
        )
        assert pickle.dumps(thread_sweep) == reference_bytes
    process2_sweep = run_network_sweep(
        _spec("compiled"), executor=ProcessPoolSweepExecutor(max_workers=2)
    )
    assert pickle.dumps(process2_sweep) == reference_bytes

    # Guarantee 3: the per-class counters rode the frame path intact.
    frame = serial_sweep.frame
    assert frame.class_names == ("voice", "data", "video")
    class_totals = _class_totals(frame)
    for service, counters in class_totals.items():
        assert counters["requested"] > 0, service
        assert counters["requested"] == counters["accepted"] + counters["blocked"]

    speedup = reference_seconds / fast_seconds
    payload = {
        "benchmark": "bench_workloads",
        "config": {
            "workload": "mmpp",
            "controllers": list(_spec("compiled").controllers),
            "arrival_rates_per_cell_per_s": list(BENCH_ARRIVAL_RATES),
            "replications": BENCH_REPLICATIONS,
            "duration_s": BASE_CONFIG.duration_s,
            "rings": BASE_CONFIG.rings,
            "workers": PARALLEL_WORKERS,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "timings": {
            "reference_serial_seconds": round(reference_seconds, 3),
            "compiled_parallel_seconds": round(fast_seconds, 3),
            "speedup": round(speedup, 2),
        },
        "qos": {
            label: {
                "mean_dropping_probability": round(
                    sum(curve.dropping_series()) / len(curve.points), 4
                ),
                "mean_blocking_probability": round(
                    sum(curve.blocking_series()) / len(curve.points), 4
                ),
            }
            for label, curve in (
                (curve.label, curve) for curve in serial_sweep.curves
            )
        },
        "class_totals": class_totals,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info.update(payload["timings"])
    benchmark.extra_info["results_file"] = str(RESULTS_PATH)
    print(
        f"\nmmpp workload sweep: reference+serial {reference_seconds:.2f}s, "
        f"compiled+parallel({PARALLEL_WORKERS}) {fast_seconds:.2f}s, "
        f"speedup {speedup:.2f}x -> {RESULTS_PATH.name}"
    )
    assert speedup >= 2.0
