"""Tables 1 and 2: regenerate the FRB1/FRB2 rule tables and check them.

The paper artifacts here are static rule tables, so the benchmark measures
how fast the rule bases are materialised (parse + validation) and asserts the
table contents match the paper (42 and 27 rules, full input coverage,
spot-checked consequents).
"""

from __future__ import annotations

from repro.cac.facs.config import DEFAULT_FLC1_CONFIG, DEFAULT_FLC2_CONFIG
from repro.cac.facs.frb1 import FRB1_TABLE, frb1_rules
from repro.cac.facs.frb2 import FRB2_TABLE, frb2_rules
from repro.experiments.tables import render_frb1, render_frb2
from repro.fuzzy.rules import RuleBase


def test_table1_frb1(benchmark):
    """Table 1 — FRB1 materialisation (parse 42 rules and validate them)."""

    def build() -> RuleBase:
        config = DEFAULT_FLC1_CONFIG
        return RuleBase(
            frb1_rules(),
            inputs=[
                config.speed_variable(),
                config.angle_variable(),
                config.distance_variable(),
            ],
            outputs=[config.correction_variable()],
            name="frb1",
        )

    base = benchmark(build)
    rendered = render_frb1()
    print()
    print(rendered)
    assert len(base) == 42
    assert base.is_complete()
    assert FRB1_TABLE[6][1:] == ("Sl", "St", "N", "Cv9")
    assert FRB1_TABLE[34][1:] == ("Fa", "St", "N", "Cv9")
    benchmark.extra_info["rules"] = len(base)


def test_table2_frb2(benchmark):
    """Table 2 — FRB2 materialisation (parse 27 rules and validate them)."""

    def build() -> RuleBase:
        config = DEFAULT_FLC2_CONFIG
        return RuleBase(
            frb2_rules(),
            inputs=[
                config.correction_variable(),
                config.request_variable(),
                config.counter_variable(),
            ],
            outputs=[config.decision_variable()],
            name="frb2",
        )

    base = benchmark(build)
    rendered = render_frb2()
    print()
    print(rendered)
    assert len(base) == 27
    assert base.is_complete()
    assert FRB2_TABLE[26][1:] == ("G", "Vi", "F", "R")
    benchmark.extra_info["rules"] = len(base)
