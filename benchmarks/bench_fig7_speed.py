"""Figure 7: acceptance percentage vs requesting connections for different speeds.

Regenerates the four speed curves (4, 10, 30, 60 km/h) on the paper's
workload and checks the paper's qualitative claims: acceptance decreases with
offered requests, and walking-speed users (whose direction FLC1 cannot
predict confidently) are accepted less than vehicular users.
"""

from __future__ import annotations

from conftest import BENCH_REPLICATIONS, BENCH_REQUEST_COUNTS, attach_curves

from repro.experiments import render_figure7, reproduce_figure7


def test_fig7_speed_curves(benchmark):
    sweep = benchmark.pedantic(
        reproduce_figure7,
        kwargs={
            "request_counts": BENCH_REQUEST_COUNTS,
            "replications": BENCH_REPLICATIONS,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure7(sweep))
    attach_curves(benchmark, sweep)

    # Shape 1: every curve decreases from light to heavy load.
    for curve in sweep.curves:
        series = curve.acceptance_series()
        assert series[0] >= series[-1], f"{curve.label} does not decrease with load"

    # Shape 2: vehicular users are accepted at least as much as walking users.
    slow_mean = min(sweep.curve("4km/h").mean_acceptance(), sweep.curve("10km/h").mean_acceptance())
    fast_mean = max(
        sweep.curve("30km/h").mean_acceptance(), sweep.curve("60km/h").mean_acceptance()
    )
    assert fast_mean >= slow_mean

    # Shape 3: the gap is visible at the heavy-load end of the sweep.
    heavy = BENCH_REQUEST_COUNTS[-1]
    slow_heavy = sweep.curve("4km/h").point_at(heavy).acceptance_percentage
    fast_heavy = sweep.curve("60km/h").point_at(heavy).acceptance_percentage
    assert fast_heavy >= slow_heavy
