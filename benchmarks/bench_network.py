"""Multi-cell integration run supporting the paper's QoS claim (Section 4).

The paper argues FACS "guarantees the QoS of ongoing calls"; the single-cell
batch figures only show acceptance.  This bench runs the full 7-cell network
with mobility and handoffs for FACS, SCC and Complete Sharing and reports the
blocking / dropping / handoff-failure trade-off.
"""

from __future__ import annotations

from repro.cac import CompleteSharingController
from repro.simulation import NetworkExperimentConfig, run_network_experiment
from repro.simulation.scenario import facs_factory, scc_factory

CONFIG = NetworkExperimentConfig(
    rings=1,
    cell_radius_km=1.5,
    arrival_rate_per_cell_per_s=0.03,
    duration_s=1500.0,
    mean_speed_kmh=60.0,
    seed=20070615,
)


def _run_all():
    return {
        "FACS": run_network_experiment(CONFIG, facs_factory()),
        "SCC": run_network_experiment(CONFIG, scc_factory()),
        "CS": run_network_experiment(CONFIG, CompleteSharingController),
    }


def test_network_integration(benchmark):
    outputs = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    print()
    for label, output in outputs.items():
        metrics = output.result.metrics
        print(
            f"  {label:>4}: accepted {metrics.acceptance_percentage:5.1f}%  "
            f"P(block)={metrics.blocking_probability:.3f}  "
            f"P(drop)={metrics.dropping_probability:.3f}  "
            f"handoffs={output.handoff_attempts}  "
            f"handoff-fail={output.handoff_failure_ratio:.3f}  "
            f"avg-occupancy={output.time_average_occupancy_bu:.1f} BU"
        )
        benchmark.extra_info[label] = {
            "acceptance_percentage": round(metrics.acceptance_percentage, 2),
            "blocking_probability": round(metrics.blocking_probability, 4),
            "dropping_probability": round(metrics.dropping_probability, 4),
            "handoff_failure_ratio": round(output.handoff_failure_ratio, 4),
        }

    # Sanity: every controller processed the same workload shape.
    for output in outputs.values():
        assert output.result.metrics.requested > 0
        assert output.handoff_attempts > 0

    # Complete Sharing admits the most new calls.
    assert (
        outputs["CS"].result.metrics.acceptance_percentage
        >= outputs["FACS"].result.metrics.acceptance_percentage
    )

    # FACS keeps the dropping probability of admitted calls no worse than
    # Complete Sharing (the QoS-protection claim).
    assert (
        outputs["FACS"].result.metrics.dropping_probability
        <= outputs["CS"].result.metrics.dropping_probability + 0.02
    )
