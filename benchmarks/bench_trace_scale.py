"""Scale gate: the frame-native trace pipeline at one million requests.

The trace fast path (``run_trace_arrivals(..., stream=True)``) exists for
exactly one reason: offline million-request traces should take seconds,
not minutes, without giving up a single bit of fidelity.  This bench holds
it to that contract end to end:

* **Byte-identity first.**  The object path (per-``Call`` decide_batch
  loop) is the oracle.  The stream path must reproduce its full
  :class:`~repro.simulation.trace.TraceRunResult` — counters, per-batch
  records, peak occupancy — at several batch sizes, and again at the full
  million-request scale.  Only then is anything timed.
* **Wall clock.**  Warm (decision-screen tables built), the stream path
  must beat the object path by >= 5x on the same million-request trace.
* **Constant parent memory.**  The streaming-fold reduce
  (:class:`~repro.analysis.frame.StreamingFrameReducer` with a spill
  directory) must keep the parent's peak RSS flat as the replication
  count grows: each chunk frame streams to the on-disk memmap format
  instead of accumulating in memory.  Measured in fresh subprocesses via
  ``VmHWM`` from ``/proc/self/status`` — no third-party profiler needed.

Writes ``results/BENCH_trace.json`` (committed, and uploaded as a CI
artifact).  ``REPRO_TRACE_SCALE_REQUESTS`` scales the trace down for CI
smoke runs; the speedup and RSS gates stay the same.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.simulation.config import BatchExperimentConfig
from repro.simulation.trace import run_trace_arrivals

REQUESTS = int(os.environ.get("REPRO_TRACE_SCALE_REQUESTS", "1000000"))
SEED = 7
BATCH_SIZE = 1024
STREAM_ROUNDS = 2  # min-of-rounds; the object reference runs once (it is slow)
MIN_SPEEDUP = 5.0

#: RSS gate: replications in the small/large streaming-fold subprocesses
#: (8x more rows) and the maximum tolerated peak-RSS growth between them.
RSS_ROWS_SMALL = 50_000
RSS_ROWS_LARGE = 400_000
RSS_CHUNK_ROWS = 10_000
MAX_RSS_GROWTH = 1.35

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "BENCH_trace.json"

_RSS_CHILD = """
import sys, tempfile
from repro.analysis.frame import BATCH_KIND, StreamingFrameReducer, run_result_row
from repro.cellular.metrics import CallMetrics
from repro.simulation.executor import ThreadPoolSweepExecutor
from repro.simulation.results import RunResult

rows, chunk_rows, spill = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3] == "spill"

def make_row(i):
    requested = 400 + (i * 7919) % 500
    accepted = requested - (i * 104729) % (requested // 2)
    metrics = CallMetrics(
        requested=requested, accepted=accepted, blocked=requested - accepted,
        completed=accepted, dropped=0, handoff_requests=0, handoff_accepted=0,
        accepted_bu=accepted * 2, requested_bu=requested * 2,
    )
    result = RunResult(
        controller="FACS", metrics=metrics,
        parameters={"request_count": float(requested)}, seed=i,
    )
    return run_result_row(result, label=f"rep{i % 5}", replication=i)

executor = ThreadPoolSweepExecutor(max_workers=2, chunksize=chunk_rows)
with tempfile.TemporaryDirectory() as tmp:
    reducer = StreamingFrameReducer(BATCH_KIND, spill_dir=tmp if spill else None)
    frame = executor.map_reduce(make_row, range(rows), reducer)
    assert len(frame) == rows

# Peak RSS of *this* address space.  Not getrusage's ru_maxrss: that
# counter survives exec, so a subprocess spawned via vfork/posix_spawn
# would report the parent's peak, not its own.  VmHWM is per-mm and
# resets on exec.
with open("/proc/self/status") as status:
    for line in status:
        if line.startswith("VmHWM:"):
            print(line.split()[1])
            break
"""


def _peak_rss_kb(rows: int, spill: bool) -> int:
    """Peak RSS (KiB on Linux) of a fresh streaming-fold subprocess."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    out = subprocess.run(
        [
            sys.executable,
            "-c",
            _RSS_CHILD,
            str(rows),
            str(RSS_CHUNK_ROWS),
            "spill" if spill else "memory",
        ],
        env=env,
        check=True,
        capture_output=True,
        text=True,
    )
    return int(out.stdout.strip().splitlines()[-1])


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_trace_scale_gate(benchmark):
    # ------------------------------------------------------------------
    # Byte-identity at several admission granularities (small trace),
    # including per-batch records and peak occupancy, not just totals.
    small = BatchExperimentConfig(request_count=5_000, seed=11)
    for batch_size in (1, 16, 1024):
        oracle = run_trace_arrivals(small, batch_size=batch_size)
        stream = run_trace_arrivals(small, batch_size=batch_size, stream=True)
        assert stream == oracle, f"stream diverged at batch_size={batch_size}"

    # ------------------------------------------------------------------
    # The full-scale trace: equivalence at scale, then warm timings.
    config = BatchExperimentConfig(request_count=REQUESTS, seed=SEED)
    stream_result = run_trace_arrivals(config, batch_size=BATCH_SIZE, stream=True)

    object_seconds = None
    oracle_result = None

    def run_object_reference():
        nonlocal object_seconds, oracle_result
        start = time.perf_counter()
        oracle_result = run_trace_arrivals(config, batch_size=BATCH_SIZE)
        object_seconds = time.perf_counter() - start

    run_object_reference()
    assert stream_result == oracle_result, "stream diverged from oracle at scale"
    assert stream_result.metrics == oracle_result.metrics

    timing: dict[str, float] = {}

    def run_stream_path():
        timing["seconds"] = min(
            _timed(
                lambda: run_trace_arrivals(config, batch_size=BATCH_SIZE, stream=True)
            )
            for _ in range(STREAM_ROUNDS)
        )

    benchmark.pedantic(run_stream_path, rounds=1, iterations=1)
    stream_seconds = timing["seconds"]
    speedup = object_seconds / stream_seconds

    # ------------------------------------------------------------------
    # Constant parent memory in streaming-fold mode: 8x the replications
    # must not grow peak RSS past the tolerance (spill keeps the parent
    # holding one chunk at a time).
    rss_small_kb = _peak_rss_kb(RSS_ROWS_SMALL, spill=True)
    rss_large_kb = _peak_rss_kb(RSS_ROWS_LARGE, spill=True)
    rss_growth = rss_large_kb / rss_small_kb
    # In-memory contrast (not gated): the buffered fold's RSS grows with
    # the row count, which is exactly what spill mode removes.
    rss_inmem_large_kb = _peak_rss_kb(RSS_ROWS_LARGE, spill=False)

    payload = {
        "benchmark": "bench_trace_scale",
        "config": {
            "request_count": REQUESTS,
            "seed": SEED,
            "batch_size": BATCH_SIZE,
            "stream_rounds": STREAM_ROUNDS,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "timings": {
            "object_path_seconds": round(object_seconds, 4),
            "stream_path_seconds": round(stream_seconds, 4),
            "speedup": round(speedup, 2),
        },
        "equivalence": {
            "batch_sizes_checked": [1, 16, 1024],
            "full_scale_byte_identical": True,
            "accepted": stream_result.accepted,
            "completed": stream_result.metrics.completed,
            "acceptance_percentage": round(stream_result.acceptance_percentage, 6),
        },
        "streaming_fold_rss": {
            "rows_small": RSS_ROWS_SMALL,
            "rows_large": RSS_ROWS_LARGE,
            "peak_rss_small_kb": rss_small_kb,
            "peak_rss_large_kb": rss_large_kb,
            "growth_ratio": round(rss_growth, 3),
            "in_memory_large_kb": rss_inmem_large_kb,
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info.update(payload["timings"])
    benchmark.extra_info["rss_growth_ratio"] = payload["streaming_fold_rss"][
        "growth_ratio"
    ]
    benchmark.extra_info["results_file"] = str(RESULTS_PATH)
    print(
        f"\ntrace scale ({REQUESTS} requests): object {object_seconds:.2f}s, "
        f"stream {stream_seconds:.2f}s, speedup {speedup:.2f}x; "
        f"streaming-fold RSS x{rss_growth:.2f} over 8x rows "
        f"-> {RESULTS_PATH.name}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"stream path only {speedup:.2f}x faster than the object oracle "
        f"(gate: {MIN_SPEEDUP}x)"
    )
    assert rss_growth <= MAX_RSS_GROWTH, (
        f"streaming-fold peak RSS grew {rss_growth:.2f}x over 8x rows "
        f"(gate: {MAX_RSS_GROWTH}x)"
    )
