"""Latency/throughput SLO gate of the admission-control service mode.

Two halves, both against the same micro-batching server
(:mod:`repro.service`):

* **Live session** — a closed-loop client pool drives the server on the
  wall clock and the session report's sustained throughput and decision
  latency distribution are gated: **>= 10k decisions/s** with **p99
  micro-batch decision latency < 10 ms**.  The client pool is sized to
  keep the batcher size-triggered (the regime the throughput claim is
  about); holding times are compressed so departures churn bandwidth
  within the session.
* **Replay determinism** — the CI-gated reproducibility property: the
  seeded replay workload produces a byte-identical service report across
  repeated runs *and* across shuffled asyncio task-creation orders.

Writes ``results/BENCH_service.json`` with the measured numbers (uploaded
as a CI artifact alongside the other BENCH files).
"""

from __future__ import annotations

import json
import os
import platform
import random
from pathlib import Path

from repro.service import ServiceConfig, run_load_session, run_service_replay
from repro.simulation.config import BatchExperimentConfig

#: SLO gates of the service mode (acceptance criteria of the service PR).
THROUGHPUT_FLOOR_DPS = 10_000.0
P99_LATENCY_CEILING_MS = 10.0

#: Live-session shape: enough closed-loop clients to keep every flush
#: size-triggered, batches large enough to amortize the per-batch fuzzy
#: inference cost (measured sweet spot of the compiled engine).
LIVE_REQUESTS = 30_000
LIVE_CLIENTS = 256
LIVE_SERVICE = ServiceConfig(max_batch=128, max_wait_ms=5.0, queue_capacity=512)

#: Replay workload: the registered service-replay default scenario shape.
REPLAY_CONFIG = BatchExperimentConfig(
    request_count=400, arrival_window_s=120.0, seed=20070628
)
REPLAY_SERVICE = ServiceConfig(max_batch=8, max_wait_ms=2000.0, queue_capacity=64)
REPLAY_SHUFFLE_SEEDS = (1, 7, 42)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "BENCH_service.json"


def _replay_json(submit_order=None) -> str:
    return run_service_replay(
        REPLAY_CONFIG, REPLAY_SERVICE, submit_order=submit_order
    ).to_json()


def test_service_latency_slo(benchmark):
    # Replay determinism first: byte-identical across runs and schedules.
    baseline = _replay_json()
    assert _replay_json() == baseline
    order = list(range(REPLAY_CONFIG.request_count))
    for shuffle_seed in REPLAY_SHUFFLE_SEEDS:
        random.Random(shuffle_seed).shuffle(order)
        assert _replay_json(submit_order=list(order)) == baseline

    # Live closed-loop session on the wall clock, measured by its report.
    session = {}

    def run_live_session():
        session["report"] = run_load_session(
            request_count=LIVE_REQUESTS,
            clients=LIVE_CLIENTS,
            service=LIVE_SERVICE,
        )

    benchmark.pedantic(run_live_session, rounds=1, iterations=1)
    report = session["report"]
    latency = report.latency

    assert report.submitted == LIVE_REQUESTS
    assert report.admitted + report.rejected + report.shed == LIVE_REQUESTS
    assert report.completed == report.admitted

    payload = {
        "benchmark": "bench_service_latency",
        "config": {
            "live_requests": LIVE_REQUESTS,
            "live_clients": LIVE_CLIENTS,
            "max_batch": LIVE_SERVICE.max_batch,
            "max_wait_ms": LIVE_SERVICE.max_wait_ms,
            "queue_capacity": LIVE_SERVICE.queue_capacity,
            "replay_requests": REPLAY_CONFIG.request_count,
            "replay_shuffles": len(REPLAY_SHUFFLE_SEEDS),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "gates": {
            "throughput_floor_dps": THROUGHPUT_FLOOR_DPS,
            "p99_latency_ceiling_ms": P99_LATENCY_CEILING_MS,
        },
        "live": {
            "throughput_dps": round(report.throughput_dps, 1),
            "duration_s": round(report.duration_s, 4),
            "decided": report.decided,
            "admitted": report.admitted,
            "shed": report.shed,
            "batches": report.batch_count,
            "latency_ms": {
                "mean": round(latency.mean_ms, 4),
                "p50": round(latency.p50_ms, 4),
                "p95": round(latency.p95_ms, 4),
                "p99": round(latency.p99_ms, 4),
                "max": round(latency.max_ms, 4),
            },
        },
        "replay": {
            "byte_identical_runs": True,
            "byte_identical_schedules": True,
            "report_bytes": len(baseline),
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info.update(payload["live"])
    benchmark.extra_info["results_file"] = str(RESULTS_PATH)
    print(
        f"\nservice mode: {report.throughput_dps:,.0f} decisions/s sustained, "
        f"p50 {latency.p50_ms:.3f} ms, p99 {latency.p99_ms:.3f} ms "
        f"-> {RESULTS_PATH.name}"
    )
    assert report.throughput_dps >= THROUGHPUT_FLOOR_DPS
    assert latency.p99_ms < P99_LATENCY_CEILING_MS
