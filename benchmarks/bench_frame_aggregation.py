"""Wall-clock benchmark: columnar frame aggregation vs pickled dataclasses.

The refactor gate of the MetricsFrame result core.  A many-replication
network sweep produces thousands of per-run outputs whose *aggregation +
IPC* path used to be: process workers pickle whole ``NetworkRunOutput``
dataclass trees back to the parent, which walks them in pure-Python
aggregation loops.  The frame path folds the runs into columnar
``MetricsFrame`` buffers inside the worker, ships raw column bytes
through shared memory and reduces vectorized groups in the parent.

This bench isolates exactly that path: the run outputs are synthesized
once (deterministically — the simulation itself is benched elsewhere),
then both pipelines replay the same worker-chunked aggregation:

* **baseline** — per chunk: ``pickle.dumps``/``loads`` the output list
  (the worker -> parent hop), then per-point ``aggregate_network_runs``;
* **frame** — per chunk: fold rows into a ``MetricsFrame``, ``pack_frame``
  (shared memory) / ``unpack_frame``, then ``concat`` + ``group_reduce``.

Asserted invariants:

* the frame path is >= 2x faster end to end,
* its per-point statistics equal the legacy loops **exactly** (dataclass
  equality, which is bitwise for the float fields), and
* the packed worker payload never references ``NetworkRunOutput`` — the
  pickled-dataclass IPC regression this PR removes stays removed.

Writes ``results/BENCH_frame.json`` with the timings (uploaded as a CI
artifact alongside ``BENCH_multicell.json``).
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import random
import time
from pathlib import Path

from repro.analysis.frame import (
    MetricsFrame,
    network_output_row,
    pack_frame,
    unpack_frame,
)
from repro.cellular.metrics import CallMetrics
from repro.simulation.engine import NetworkRunOutput
from repro.simulation.results import RunResult, aggregate_network_runs
from repro.simulation.sweep import _sweep_ordinals

CONTROLLERS = ("FACS", "SCC")
ARRIVAL_RATES = (0.01, 0.02, 0.03, 0.04, 0.05)
REPLICATIONS = 600  # per (controller, rate) point -> 6000 runs total
CHUNKS = 8  # simulated worker chunks of the process pool
ROUNDS = 5  # timing rounds per pipeline; the minimum is reported

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "BENCH_frame.json"


def synthesize_outputs() -> list[NetworkRunOutput]:
    """Deterministic many-replication sweep outputs, no simulation needed."""
    rng = random.Random(20070627)
    outputs: list[NetworkRunOutput] = []
    for controller in CONTROLLERS:
        for rate in ARRIVAL_RATES:
            for replication in range(REPLICATIONS):
                requested = rng.randint(400, 900)
                accepted = rng.randint(requested // 2, requested)
                handoffs = rng.randint(0, 120)
                handoffs_ok = rng.randint(0, handoffs)
                dropped = rng.randint(0, accepted // 10)
                metrics = CallMetrics(
                    requested=requested,
                    accepted=accepted,
                    blocked=requested - accepted,
                    completed=accepted - dropped,
                    dropped=dropped,
                    handoff_requests=handoffs,
                    handoff_accepted=handoffs_ok,
                    accepted_bu=accepted * 2,
                    requested_bu=requested * 2,
                )
                result = RunResult(
                    controller=controller,
                    metrics=metrics,
                    parameters={
                        "rings": 1.0,
                        "cells": 7.0,
                        "arrival_rate_per_cell_per_s": rate,
                        "duration_s": 1200.0,
                    },
                    seed=20070627 + replication,
                )
                outputs.append(
                    NetworkRunOutput(
                        result=result,
                        handoff_attempts=handoffs,
                        handoff_failures=handoffs - handoffs_ok,
                        completed_calls=accepted - dropped,
                        dropped_calls=dropped,
                        time_average_occupancy_bu=rng.uniform(50.0, 250.0),
                    )
                )
    return outputs


def chunked(items, chunks):
    size = (len(items) + chunks - 1) // chunks
    return [items[i : i + size] for i in range(0, len(items), size)]


def baseline_pipeline(outputs):
    """Pickled-dataclass IPC + pure-Python per-point aggregation loops."""
    received: list[NetworkRunOutput] = []
    for chunk in chunked(outputs, CHUNKS):
        received.extend(pickle.loads(pickle.dumps(chunk)))  # worker -> parent hop
    aggregates = []
    for start in range(0, len(received), REPLICATIONS):
        aggregates.append(aggregate_network_runs(received[start : start + REPLICATIONS]))
    return aggregates


def frame_pipeline(outputs):
    """Columnar fold in the 'worker', shared-memory hop, vectorized reduce."""
    partials = []
    for chunk in chunked(outputs, CHUNKS):
        rows = [network_output_row(output) for output in chunk]  # worker side
        packed = pack_frame(MetricsFrame.from_rows("network", rows))
        partials.append(unpack_frame(packed))  # parent side
    frame = MetricsFrame.concat(partials)
    frame = frame.with_ordinals(
        *_sweep_ordinals(len(CONTROLLERS), len(ARRIVAL_RATES), REPLICATIONS)
    )
    groups = frame.group_reduce(("curve", "point"))
    return [group.to_network_aggregated_result() for group in groups]


def test_frame_aggregation_speedup(benchmark):
    outputs = synthesize_outputs()

    # Equivalence first: identical per-point statistics, bit for bit.
    baseline_aggregates = baseline_pipeline(outputs)
    frame_aggregates = frame_pipeline(outputs)
    assert frame_aggregates == baseline_aggregates

    # The worker payload must not smuggle dataclass trees: the packed
    # descriptor (what a process-pool worker returns) never references
    # the run output class.
    rows = [network_output_row(output) for output in outputs[:100]]
    packed = pack_frame(MetricsFrame.from_rows("network", rows))
    wire_bytes = pickle.dumps(packed)
    assert b"NetworkRunOutput" not in wire_bytes
    unpack_frame(packed)  # release the segment

    baseline_seconds = min(
        _timed(baseline_pipeline, outputs) for _ in range(ROUNDS)
    )

    timing: dict[str, float] = {}

    def run_frame_path():
        timing["seconds"] = min(_timed(frame_pipeline, outputs) for _ in range(ROUNDS))

    benchmark.pedantic(run_frame_path, rounds=1, iterations=1)
    frame_seconds = timing["seconds"]
    speedup = baseline_seconds / frame_seconds

    payload = {
        "benchmark": "bench_frame_aggregation",
        "config": {
            "controllers": list(CONTROLLERS),
            "arrival_rates": list(ARRIVAL_RATES),
            "replications_per_point": REPLICATIONS,
            "runs": len(outputs),
            "worker_chunks": CHUNKS,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "timings": {
            "pickled_dataclass_seconds": round(baseline_seconds, 4),
            "frame_shared_memory_seconds": round(frame_seconds, 4),
            "speedup": round(speedup, 2),
        },
        "wire_bytes": {
            "pickled_chunk": len(pickle.dumps(chunked(outputs, CHUNKS)[0])),
            "frame_descriptor": len(wire_bytes),
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info.update(payload["timings"])
    benchmark.extra_info["results_file"] = str(RESULTS_PATH)
    print(
        f"\nframe aggregation: pickled dataclasses {baseline_seconds:.3f}s, "
        f"frame+shm {frame_seconds:.3f}s, speedup {speedup:.2f}x "
        f"-> {RESULTS_PATH.name}"
    )
    assert speedup >= 2.0


def _timed(fn, outputs) -> float:
    start = time.perf_counter()
    fn(outputs)
    return time.perf_counter() - start
