"""Wall-clock benchmark: the Fig. 10 sweep on the two-layer fast path.

Compares the historical configuration (interpreted reference engine,
strictly serial replications) against the default fast path (compiled
engine, process-pool executor with 4 workers) on the same Fig. 10 workload
as ``bench_fig10_facs_vs_scc``, asserting

* a >= 3x wall-clock speedup, and
* equivalent curves (the engines agree to 1e-9 on every sweep point, and
  the parallel result is byte-identical to a serial run of the same
  configuration).
"""

from __future__ import annotations

import pickle
import time

from conftest import BENCH_REPLICATIONS

from repro.cac.facs.system import FACSConfig
from repro.experiments import reproduce_figure10
from repro.simulation import ProcessPoolSweepExecutor

# Same dense x axis as bench_fig10_facs_vs_scc.
FIG10_REQUEST_COUNTS = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
PARALLEL_WORKERS = 4


def test_fig10_parallel_compiled_speedup(benchmark):
    kwargs = dict(request_counts=FIG10_REQUEST_COUNTS, replications=BENCH_REPLICATIONS)

    start = time.perf_counter()
    reference_sweep = reproduce_figure10(
        facs_config=FACSConfig(engine="reference"), **kwargs
    )
    reference_seconds = time.perf_counter() - start

    def run_fast_path():
        return reproduce_figure10(
            executor=ProcessPoolSweepExecutor(max_workers=PARALLEL_WORKERS), **kwargs
        )

    start = time.perf_counter()
    fast_sweep = run_fast_path()
    fast_seconds = time.perf_counter() - start
    benchmark.pedantic(run_fast_path, rounds=1, iterations=1)

    # Equivalence 1: compiled curves match the reference engine's to 1e-9.
    for reference_curve, fast_curve in zip(reference_sweep.curves, fast_sweep.curves):
        assert reference_curve.label == fast_curve.label
        for reference_point, fast_point in zip(reference_curve.points, fast_curve.points):
            assert (
                abs(
                    reference_point.acceptance_percentage
                    - fast_point.acceptance_percentage
                )
                <= 1e-9
            )

    # Equivalence 2: the parallel result is byte-identical to a serial run
    # of the same (compiled) configuration.
    serial_sweep = reproduce_figure10(**kwargs)
    assert pickle.dumps(serial_sweep) == pickle.dumps(fast_sweep)

    speedup = reference_seconds / fast_seconds
    benchmark.extra_info["reference_serial_seconds"] = round(reference_seconds, 3)
    benchmark.extra_info["compiled_parallel_seconds"] = round(fast_seconds, 3)
    benchmark.extra_info["workers"] = PARALLEL_WORKERS
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\nfig10 sweep: reference+serial {reference_seconds:.2f}s, "
        f"compiled+parallel({PARALLEL_WORKERS}) {fast_seconds:.2f}s, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= 3.0
