"""Figure 9: acceptance percentage vs requesting connections for different distances.

Regenerates the four distance curves (1, 3, 7, 10 km) and checks the paper's
claims: closer users are accepted (slightly) more, and the distance effect is
visibly smaller than the speed and angle effects of Figs. 7 and 8.
"""

from __future__ import annotations

from conftest import BENCH_REPLICATIONS, BENCH_REQUEST_COUNTS, attach_curves

from repro.experiments import (
    curve_spread,
    render_figure9,
    reproduce_figure8,
    reproduce_figure9,
)


def test_fig9_distance_curves(benchmark):
    sweep = benchmark.pedantic(
        reproduce_figure9,
        kwargs={
            "request_counts": BENCH_REQUEST_COUNTS,
            "replications": BENCH_REPLICATIONS,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure9(sweep))
    attach_curves(benchmark, sweep)

    # Shape 1: every curve decreases with load and stays in [0, 100].
    for curve in sweep.curves:
        series = curve.acceptance_series()
        assert series[0] >= series[-1]
        assert all(0.0 <= value <= 100.0 for value in series)

    # Shape 2: nearer users are accepted at least as much as the farthest ones
    # (up to a small amount of replication noise).
    near = sweep.curve("1km").mean_acceptance()
    far = sweep.curve("10km").mean_acceptance()
    assert near >= far - 1.0

    # Shape 3 (the paper's point): the distance spread is smaller than the
    # speed and angle spreads measured on smaller companion sweeps.
    distance_spread = curve_spread(sweep)
    angle_sweep = reproduce_figure8(
        angles_deg=(0.0, 90.0), request_counts=BENCH_REQUEST_COUNTS, replications=3
    )
    angle_spread = curve_spread(angle_sweep)
    assert distance_spread < angle_spread
    benchmark.extra_info["distance_spread_points"] = round(distance_spread, 2)
    benchmark.extra_info["angle_spread_points"] = round(angle_spread, 2)
