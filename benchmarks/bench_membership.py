"""Figures 5 and 6: membership functions of FLC1 and FLC2.

Regenerates the membership-function panels as ASCII plots, asserts the
structural properties visible in the figures (term sets, universes, full
coverage), and measures the single-inference latency of each controller —
the "suitable for real-time operation" property the paper uses to justify
triangular/trapezoidal shapes.
"""

from __future__ import annotations

from repro.cac.facs.flc1 import FLC1
from repro.cac.facs.flc2 import FLC2
from repro.experiments.tables import render_flc1_memberships, render_flc2_memberships


def test_fig5_flc1_membership_functions(benchmark):
    """Figure 5 — FLC1 membership functions and single-inference latency."""
    flc1 = FLC1()

    result = benchmark(flc1.correction_value, 60.0, 30.0, 5.0)
    assert 0.0 <= result <= 1.0

    print()
    print(render_flc1_memberships(points=17))

    variables = flc1.controller.rule_base.input_variables
    assert variables["S"].term_names == ["Sl", "M", "Fa"]
    assert variables["A"].term_names == ["B1", "L1", "L2", "St", "R1", "R2", "B2"]
    assert variables["D"].term_names == ["N", "F"]
    for variable in variables.values():
        assert variable.is_complete()
    output = flc1.controller.rule_base.output_variables["Cv"]
    assert output.term_names == [f"Cv{i}" for i in range(1, 10)]
    assert output.is_complete()


def test_fig6_flc2_membership_functions(benchmark):
    """Figure 6 — FLC2 membership functions and single-inference latency."""
    flc2 = FLC2()

    result = benchmark(flc2.decision_score, 0.7, 5.0, 20.0)
    assert -1.0 <= result <= 1.0

    print()
    print(render_flc2_memberships(points=17))

    variables = flc2.controller.rule_base.input_variables
    assert variables["Cv"].term_names == ["B", "N", "G"]
    assert variables["R"].term_names == ["T", "Vo", "Vi"]
    assert variables["Cs"].term_names == ["S", "M", "F"]
    for variable in variables.values():
        assert variable.is_complete()
    decision = flc2.controller.rule_base.output_variables["AR"]
    assert decision.term_names == ["R", "WR", "NRNA", "WA", "A"]
    assert decision.is_complete()
