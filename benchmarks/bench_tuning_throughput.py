"""Wall-clock benchmark: rule-base tuning trial throughput on the fast path.

Runs the same seeded 50-trial evolutionary search (10 candidates x 5
generations over an FLC1 membership peak and a rule weight) through two
configurations:

* the historical configuration — interpreted reference engine, trials
  evaluated strictly serially — as the baseline, and
* the default fast path — compiled engine, trials fanned over a 4-worker
  process pool — as the measured configuration,

asserting a >= 2x trial-throughput speedup.  Determinism is gated
alongside: the fast-path report must be byte-identical at 1, 2 and 4
process workers and to a serial compiled run, and the report must carry
the tuned-vs-paper QoS comparison.

Writes ``results/BENCH_tuning.json`` with the timings, the gate and the
tuned candidate's QoS deltas (uploaded as a CI artifact by the full-bench
job).
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import time
from pathlib import Path

from repro.cac.facs.definitions import flc1_definition
from repro.simulation import ProcessPoolSweepExecutor
from repro.tuning import ParameterSpec, SearchSpace, run_tuning

SPACE = SearchSpace((
    ParameterSpec("mf.S.M.1", low=20.0, high=40.0),
    ParameterSpec("weight.1", low=0.25, high=1.0),
))
POPULATION = 10
GENERATIONS = 5
TRIAL_COUNT = POPULATION * GENERATIONS
#: Per-trial workload: big enough that trial compute dominates the pool's
#: per-generation fan-out overhead, as in ``bench_parallel_sweep``.
TRIAL_REQUEST_COUNTS = (50, 100)
TRIAL_REPLICATIONS = 2
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR = 2.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "BENCH_tuning.json"


def _run_search(engine: str, executor=None):
    return run_tuning(
        flc1_definition(),
        SPACE,
        strategy="evolutionary",
        population=POPULATION,
        generations=GENERATIONS,
        request_counts=TRIAL_REQUEST_COUNTS,
        replications=TRIAL_REPLICATIONS,
        engine=engine,
        executor=executor,
    )


def test_tuning_trial_throughput(benchmark):
    start = time.perf_counter()
    reference = _run_search("reference")
    reference_seconds = time.perf_counter() - start
    assert len(reference.trials) == TRIAL_COUNT

    fast_reports = {}
    fast_seconds = {}
    for workers in WORKER_COUNTS:
        executor = ProcessPoolSweepExecutor(max_workers=workers)
        start = time.perf_counter()
        fast_reports[workers] = _run_search("compiled", executor)
        fast_seconds[workers] = time.perf_counter() - start

    benchmark.pedantic(
        lambda: _run_search(
            "compiled", ProcessPoolSweepExecutor(max_workers=WORKER_COUNTS[-1])
        ),
        rounds=1,
        iterations=1,
    )

    # Determinism gate: byte-identical at every worker count and serially.
    serial = _run_search("compiled")
    payloads = {pickle.dumps(report.to_dict()) for report in fast_reports.values()}
    payloads.add(pickle.dumps(serial.to_dict()))
    assert len(payloads) == 1

    # The report must name a tuned candidate and its QoS deltas vs paper.
    assert serial.best.score is not None
    comparison = serial.comparison
    assert comparison["baseline"] == "paper"

    measured_seconds = fast_seconds[WORKER_COUNTS[-1]]
    reference_throughput = TRIAL_COUNT / reference_seconds
    fast_throughput = TRIAL_COUNT / measured_seconds
    speedup = fast_throughput / reference_throughput

    payload = {
        "benchmark": "bench_tuning_throughput",
        "config": {
            "strategy": "evolutionary",
            "targets": list(SPACE.targets()),
            "population": POPULATION,
            "generations": GENERATIONS,
            "trials": TRIAL_COUNT,
            "request_counts": list(TRIAL_REQUEST_COUNTS),
            "replications": TRIAL_REPLICATIONS,
            "worker_counts": list(WORKER_COUNTS),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "gates": {"speedup_floor": SPEEDUP_FLOOR},
        "throughput": {
            "reference_serial_seconds": round(reference_seconds, 3),
            "reference_trials_per_s": round(reference_throughput, 2),
            "compiled_pool_seconds": {
                str(workers): round(seconds, 3)
                for workers, seconds in fast_seconds.items()
            },
            "compiled_trials_per_s": round(fast_throughput, 2),
            "speedup": round(speedup, 2),
        },
        "determinism": {
            "byte_identical_worker_counts": list(WORKER_COUNTS),
            "byte_identical_to_serial": True,
        },
        "tuned": {
            "baseline_score": serial.baseline_score,
            "best_score": serial.best.score,
            "best_values": list(serial.best.values),
            "comparison": comparison,
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info.update(payload["throughput"])
    benchmark.extra_info["results_file"] = str(RESULTS_PATH)
    print(
        f"\ntuning: reference+serial {reference_seconds:.2f}s, "
        f"compiled+pool({WORKER_COUNTS[-1]}) {measured_seconds:.2f}s "
        f"({fast_throughput:.1f} trials/s), speedup {speedup:.2f}x "
        f"-> {RESULTS_PATH.name}"
    )
    assert speedup >= SPEEDUP_FLOOR
