"""Figure 10: FACS vs SCC on the same random workload.

Regenerates the paper's headline comparison and checks its shape: FACS
accepts at least as many connections as SCC while bandwidth is plentiful, and
fewer once the system saturates (the crossover the paper places around 50
requesting connections; on our simulator it falls later in the sweep but on
the same side of the light/heavy boundary — see EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import BENCH_REPLICATIONS, attach_curves

from repro.experiments import (
    crossover_request_count,
    render_figure10,
    reproduce_figure10,
)

# A denser x axis than the other figures so the crossover is localised.
FIG10_REQUEST_COUNTS = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


def test_fig10_facs_vs_scc(benchmark):
    sweep = benchmark.pedantic(
        reproduce_figure10,
        kwargs={
            "request_counts": FIG10_REQUEST_COUNTS,
            "replications": BENCH_REPLICATIONS,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure10(sweep))
    attach_curves(benchmark, sweep)

    facs = sweep.curve("FACS")
    scc = sweep.curve("SCC")

    # Shape 1: at light load (20-40 requests) FACS accepts at least as much as SCC.
    light_counts = (20, 30, 40)
    facs_light = sum(
        facs.point_at(n).acceptance_percentage for n in light_counts
    ) / len(light_counts)
    scc_light = sum(scc.point_at(n).acceptance_percentage for n in light_counts) / len(light_counts)
    assert facs_light >= scc_light

    # Shape 2: at heavy load (90-100 requests) SCC accepts more than FACS,
    # because FACS holds back calls to protect the QoS of ongoing calls.
    heavy_counts = (90, 100)
    facs_heavy = sum(
        facs.point_at(n).acceptance_percentage for n in heavy_counts
    ) / len(heavy_counts)
    scc_heavy = sum(scc.point_at(n).acceptance_percentage for n in heavy_counts) / len(heavy_counts)
    assert scc_heavy > facs_heavy

    # Shape 3: a crossover exists inside the sweep.
    crossover = crossover_request_count(sweep)
    assert crossover is not None
    assert FIG10_REQUEST_COUNTS[0] < crossover <= FIG10_REQUEST_COUNTS[-1]
    benchmark.extra_info["crossover_requests"] = crossover
