"""Wall-clock benchmark: per-cell shard workers vs the coupled topology.

The coupled multi-cell engine runs the whole hex topology in one
discrete-event loop, so a rings>=3 network (37+ cells) is a single
serial bottleneck no sweep-level parallelism can touch.  The sharded
engine (``repro.simulation.shard``) runs every cell as its own worker and
passes handoffs between shards as explicit messages.  This bench runs the
same rings=3 FACS experiment twice —

* the historical configuration: coupled engine, interpreted reference
  inference, strictly serial, and
* the scaled path: sharded engine, compiled inference, 4 process-backed
  shard workers —

and asserts

* a >= 2x wall-clock speedup of the sharded path,
* byte-identical sharded results across the serial/thread/process
  backends and worker counts 1/2/4 (the conservative-window protocol's
  headline guarantee), and
* the documented coupling invariant against the coupled run: new-call
  arrivals come from identical per-cell streams, so their count matches
  exactly even though handoff admission timing differs.

It also writes ``results/BENCH_sharded.json`` with the timings and QoS
numbers, so every CI run appends a machine-readable point to the
performance trajectory (uploaded as a workflow artifact).
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import time
from pathlib import Path

from repro.cac.facs.system import FACSConfig
from repro.simulation import (
    NetworkExperimentConfig,
    ProcessPoolSweepExecutor,
    ThreadPoolSweepExecutor,
    run_coupled_sharded_network_experiment,
    run_network_experiment,
)
from repro.simulation.scenario import facs_factory

SHARD_WORKERS = 4

BASE_CONFIG = NetworkExperimentConfig(
    rings=3,  # 37 cells — beyond what the coupled path is sized for
    cell_radius_km=1.5,
    arrival_rate_per_cell_per_s=0.03,
    duration_s=900.0,
    mean_speed_kmh=60.0,
    seed=20070629,
)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "BENCH_sharded.json"


def test_sharded_handoff_scaling(benchmark):
    start = time.perf_counter()
    coupled = run_network_experiment(BASE_CONFIG, facs_factory(FACSConfig(engine="reference")))
    coupled_seconds = time.perf_counter() - start

    compiled = facs_factory(FACSConfig(engine="compiled"))
    timing: dict[str, float] = {}

    def run_sharded_path():
        start = time.perf_counter()
        output = run_coupled_sharded_network_experiment(
            BASE_CONFIG,
            compiled,
            executor=ProcessPoolSweepExecutor(max_workers=SHARD_WORKERS),
        )
        timing["seconds"] = time.perf_counter() - start
        return output

    sharded = benchmark.pedantic(run_sharded_path, rounds=1, iterations=1)
    sharded_seconds = timing["seconds"]

    # Guarantee 1: byte-identical sharded results for every backend and
    # worker count — serial, threads and process blocks must all agree.
    reference_bytes = pickle.dumps(
        run_coupled_sharded_network_experiment(BASE_CONFIG, compiled)
    )
    assert pickle.dumps(sharded) == reference_bytes
    for workers in (1, 2, 4):
        threaded = run_coupled_sharded_network_experiment(
            BASE_CONFIG, compiled, executor=ThreadPoolSweepExecutor(max_workers=workers)
        )
        assert pickle.dumps(threaded) == reference_bytes
    process1 = run_coupled_sharded_network_experiment(
        BASE_CONFIG, compiled, executor=ProcessPoolSweepExecutor(max_workers=1)
    )
    assert pickle.dumps(process1) == reference_bytes

    # Guarantee 2: the documented delta against the coupled engine is
    # bounded — per-cell arrival streams are shared with the coupled run,
    # so the number of *new* calls must match exactly.
    coupled_new = coupled.result.metrics.requested - coupled.result.metrics.handoff_requests
    sharded_new = sharded.result.metrics.requested - sharded.result.metrics.handoff_requests
    assert sharded_new == coupled_new
    assert sharded.handoff_attempts > 0

    speedup = coupled_seconds / sharded_seconds
    metrics = sharded.result.metrics
    payload = {
        "benchmark": "bench_sharded_handoff",
        "config": {
            "rings": BASE_CONFIG.rings,
            "cells": 37,
            "arrival_rate_per_cell_per_s": BASE_CONFIG.arrival_rate_per_cell_per_s,
            "duration_s": BASE_CONFIG.duration_s,
            "shard_workers": SHARD_WORKERS,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "timings": {
            "coupled_reference_serial_seconds": round(coupled_seconds, 3),
            "sharded_compiled_process_seconds": round(sharded_seconds, 3),
            "speedup": round(speedup, 2),
        },
        "qos": {
            "requested": metrics.requested,
            "acceptance_percentage": round(metrics.acceptance_percentage, 2),
            "blocking_probability": round(metrics.blocking_probability, 4),
            "dropping_probability": round(metrics.dropping_probability, 4),
            "handoff_attempts": sharded.handoff_attempts,
            "handoff_failure_ratio": round(sharded.handoff_failure_ratio, 4),
            "mean_occupancy_bu": round(sharded.time_average_occupancy_bu, 1),
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info.update(payload["timings"])
    benchmark.extra_info["results_file"] = str(RESULTS_PATH)
    print(
        f"\nsharded handoff: coupled reference serial {coupled_seconds:.2f}s, "
        f"sharded compiled process({SHARD_WORKERS}) {sharded_seconds:.2f}s, "
        f"speedup {speedup:.2f}x -> {RESULTS_PATH.name}"
    )
    assert speedup >= 2.0
