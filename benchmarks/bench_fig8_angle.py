"""Figure 8: acceptance percentage vs requesting connections for different angles.

Regenerates the five angle curves (0, 30, 50, 60, 90 degrees) and checks the
paper's claims: a user heading straight at the BS is accepted nearly always
at light load, and acceptance decreases monotonically with the angle.
"""

from __future__ import annotations

from conftest import BENCH_REPLICATIONS, BENCH_REQUEST_COUNTS, attach_curves

from repro.experiments import render_figure8, reproduce_figure8


def test_fig8_angle_curves(benchmark):
    sweep = benchmark.pedantic(
        reproduce_figure8,
        kwargs={
            "request_counts": BENCH_REQUEST_COUNTS,
            "replications": BENCH_REPLICATIONS,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure8(sweep))
    attach_curves(benchmark, sweep)

    # Shape 1: heading straight at the BS keeps acceptance near 100% at light load.
    light = BENCH_REQUEST_COUNTS[0]
    assert sweep.curve("Angle=0").point_at(light).acceptance_percentage > 95.0

    # Shape 2: the curve means decrease monotonically with the angle.
    means = [
        sweep.curve(label).mean_acceptance()
        for label in ("Angle=0", "Angle=30", "Angle=50", "Angle=60", "Angle=90")
    ]
    tolerance = 1.0  # percentage points of replication noise
    assert all(a >= b - tolerance for a, b in zip(means, means[1:])), means

    # Shape 3: the extreme curves are clearly separated at heavy load.
    heavy = BENCH_REQUEST_COUNTS[-1]
    straight = sweep.curve("Angle=0").point_at(heavy).acceptance_percentage
    perpendicular = sweep.curve("Angle=90").point_at(heavy).acceptance_percentage
    assert straight > perpendicular
