"""Shared settings for the benchmark harness.

Every paper table/figure has one benchmark module.  The figure benches run a
full (but moderately sized) parameter sweep once per session via
``benchmark.pedantic(..., rounds=1)`` — they are experiments, not
micro-benchmarks — and attach the regenerated rows to
``benchmark.extra_info`` so the JSON output contains the reproduced data.
Run them with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

#: Request counts used by the figure benches (the x axis of Figs. 7-10).
BENCH_REQUEST_COUNTS = (10, 30, 50, 70, 100)

#: Replications per point.  More replications tighten the curves but the
#: qualitative assertions below already hold at this size.
BENCH_REPLICATIONS = 6


def attach_curves(benchmark, sweep) -> None:
    """Store the regenerated curve data in the benchmark's extra info."""
    benchmark.extra_info["sweep"] = {
        curve.label: {
            str(point.request_count): round(point.acceptance_percentage, 2)
            for point in curve.points
        }
        for curve in sweep.curves
    }
