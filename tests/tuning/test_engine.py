"""The tuning engine: trial evaluation, reports, executor independence."""

from __future__ import annotations

import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.io import SCHEMA_VERSION
from repro.cac.facs.definitions import flc1_definition, flc2_definition
from repro.simulation.executor import executor_by_name
from repro.tuning import (
    ParameterSpec,
    SearchSpace,
    TuningError,
    render_tuning_report,
    run_tuning,
)

QUICK = dict(request_counts=(100,), replications=1)

CHOICE_SPACE = SearchSpace((
    ParameterSpec("mf.S.M.1", choices=(25.0, 35.0)),
    ParameterSpec("weight.1", choices=(0.5, 1.0)),
))


def quick_run(**overrides):
    options = dict(QUICK, strategy="grid")
    options.update(overrides)
    return run_tuning(flc1_definition(), CHOICE_SPACE, **options)


class TestRunTuning:
    def test_grid_run_covers_the_full_product(self):
        report = quick_run()
        assert len(report.trials) == 4
        assert [t.index for t in report.trials] == [0, 1, 2, 3]
        assert report.slot == "flc1"
        assert report.targets == ("mf.S.M.1", "weight.1")
        assert report.baseline_values == (30.0, 1.0)
        assert report.best.score is not None

    def test_flc2_definitions_tune_the_flc2_slot(self):
        space = SearchSpace((ParameterSpec("weight.1", choices=(0.5, 1.0)),))
        report = run_tuning(flc2_definition(), space, strategy="grid", **QUICK)
        assert report.slot == "flc2"
        assert len(report.trials) == 2

    def test_max_trials_truncates_the_search(self):
        report = quick_run(max_trials=3)
        assert len(report.trials) == 3

    def test_direction_minimize_prefers_the_lowest_score(self):
        report = quick_run(direction="minimize")
        feasible = [t for t in report.trials if t.score is not None]
        assert report.best.score == min(t.score for t in feasible)

    def test_infeasible_candidates_become_failed_trials(self):
        # 200 pushes the M peak beyond its right foot -> invalid triangle.
        space = SearchSpace((ParameterSpec("mf.S.M.1", choices=(30.0, 200.0)),))
        report = run_tuning(flc1_definition(), space, strategy="grid", **QUICK)
        failed = [t for t in report.trials if t.score is None]
        assert len(failed) == 1
        assert "'S'" in failed[0].error
        assert report.best.values == (30.0,)

    def test_all_infeasible_is_a_loud_error(self):
        space = SearchSpace((ParameterSpec("mf.S.M.1", choices=(200.0,)),))
        with pytest.raises(TuningError, match="infeasible"):
            run_tuning(flc1_definition(), space, strategy="grid", **QUICK)

    def test_unknown_objective_and_direction_are_rejected(self):
        with pytest.raises(TuningError, match="objective"):
            quick_run(objective="mean_regret")
        with pytest.raises(TuningError, match="direction"):
            quick_run(direction="sideways")

    def test_space_must_resolve_inside_the_base_definition(self):
        space = SearchSpace((ParameterSpec("mf.Cv.B.0", low=0.0, high=1.0),))
        with pytest.raises(TuningError, match="Cv"):
            run_tuning(flc1_definition(), space, strategy="grid", **QUICK)


class TestReportPayload:
    def test_payload_is_schema_versioned_and_self_describing(self):
        report = quick_run()
        payload = report.to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["type"] == "tuning"
        assert payload["trial_count"] == len(payload["trials"]) == 4
        assert payload["baseline"]["values"] == [30.0, 1.0]
        assert payload["best_definition"]["type"] == "flc-definition"
        assert payload["comparison"]["baseline"] == "paper"
        assert set(payload["frame"]["columns"]) >= {
            "param.trial", "param.score", "param.mf.S.M.1", "param.weight.1",
        }

    def test_frame_has_one_row_per_trial_with_nan_for_failures(self):
        space = SearchSpace((ParameterSpec("mf.S.M.1", choices=(30.0, 200.0)),))
        report = run_tuning(flc1_definition(), space, strategy="grid", **QUICK)
        frame = report.frame
        assert len(frame) == 2
        scores = frame.column("param.score")
        assert math.isnan(scores[1]) and not math.isnan(scores[0])

    def test_render_lists_targets_baseline_and_comparison(self):
        report = quick_run()
        text = render_tuning_report(report)
        assert "Rule-base tuning — FLC1" in text
        assert "mf.S.M.1" in text
        assert "paper baseline" in text
        assert "Top candidates" in text
        assert "Δmean_acceptance" in text


class TestExecutorIndependence:
    @pytest.mark.parametrize("executor_name,workers", [
        ("thread", 2), ("process", 2),
    ])
    def test_pool_results_match_the_serial_run(self, executor_name, workers):
        serial = quick_run(strategy="evolutionary", population=3, generations=2)
        executor = executor_by_name(executor_name, workers=workers)
        pooled = quick_run(
            strategy="evolutionary", population=3, generations=2,
            executor=executor,
        )
        assert pickle.dumps(serial.to_dict()) == pickle.dumps(pooled.to_dict())


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_seeded_searches_are_byte_deterministic(seed):
    reports = [
        quick_run(strategy="evolutionary", population=2, generations=2, seed=seed)
        for _ in range(2)
    ]
    assert pickle.dumps(reports[0].to_dict()) == pickle.dumps(reports[1].to_dict())
