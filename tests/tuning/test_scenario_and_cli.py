"""The ``tuning`` scenario kind and the ``repro tune`` CLI shell."""

from __future__ import annotations

import json

import pytest

from repro.api import Runner, Scenario, ScenarioError, TuningScenario
from repro.api.scenario import SCENARIO_KINDS
from repro.cli import main
from repro.tuning import ParameterSpec

QUICK = dict(request_counts=(100,), replications=1)


class TestTuningScenario:
    def test_kind_is_registered(self):
        assert SCENARIO_KINDS.get("tuning") is TuningScenario

    def test_json_round_trip_is_lossless(self):
        scenario = TuningScenario(
            controller="FLC2",
            parameters=(
                ParameterSpec("mf.Cv.B.1", low=0.5, high=1.5, steps=3),
                ParameterSpec("weight.3", choices=(0.5, 1.0)),
            ),
            strategy="evolutionary",
            objective="final_acceptance",
            direction="minimize",
            request_counts=(10, 50),
            replications=3,
            population=4,
            generations=2,
            max_trials=6,
            seed=99,
            executor="thread",
            workers=2,
        )
        payload = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(payload) == scenario

    def test_parameter_mappings_are_normalized_to_specs(self):
        scenario = TuningScenario(
            parameters=({"target": "weight.1", "choices": [0.5, 1.0]},),
        )
        assert scenario.parameters == (ParameterSpec("weight.1", choices=(0.5, 1.0)),)

    def test_default_space_is_a_two_point_grid(self):
        scenario = TuningScenario()
        assert scenario.controller == "FLC1"
        assert [spec.grid_values() for spec in scenario.parameters] == [(25.0, 35.0)]

    def test_slug_names_the_controller(self):
        assert TuningScenario().slug == "tune-flc1"
        assert TuningScenario(
            controller="examples/controllers/flc2.json",
            parameters=(ParameterSpec("weight.1", choices=(0.5, 1.0)),),
        ).slug == "tune-flc2"

    @pytest.mark.parametrize("kwargs,match", [
        (dict(controller="FLC9"), "FLC1"),
        (dict(controller="missing.json"), "not found"),
        (dict(strategy="annealing"), "strategy"),
        (dict(objective="mean_regret"), "objective"),
        (dict(direction="up"), "direction"),
        (dict(request_counts=()), "request_counts"),
        (dict(replications=0), "replications"),
        (dict(population=0), "population"),
        (dict(generations=0), "generations"),
        (dict(max_trials=0), "max_trials"),
        (dict(workers=2), "workers"),
        (dict(parameters=()), "parameters"),
        (dict(parameters=(ParameterSpec("mf.S.XXL.1", low=0.0, high=1.0),)),
         "XXL"),
    ])
    def test_invalid_scenarios_are_rejected(self, kwargs, match):
        with pytest.raises(ScenarioError, match=match):
            TuningScenario(**kwargs)

    def test_definition_file_controller_resolves(self):
        scenario = TuningScenario(
            controller="examples/controllers/flc2.json",
            parameters=(ParameterSpec("weight.1", choices=(0.5, 1.0)),),
        )
        assert scenario.base_definition().name == "FLC2"

    def test_runner_executes_the_scenario(self):
        report = Runner().run(TuningScenario(**QUICK))
        assert report.metrics["type"] == "tuning"
        assert report.metrics["trial_count"] == 2
        assert "Rule-base tuning" in report.text

    def test_run_report_save_round_trips(self, tmp_path):
        report = Runner().run(TuningScenario(**QUICK))
        saved = report.save(tmp_path)
        payload = json.loads(saved.read_text())
        assert Scenario.from_dict(payload["scenario"]) == report.scenario


class TestTuneCommand:
    def test_tune_default_space_smoke(self, capsys):
        assert main(["tune", "--requests", "100", "--replications", "1"]) == 0
        out = capsys.readouterr().out
        assert "Rule-base tuning — FLC1" in out
        assert "mf.S.M.1" in out

    def test_tune_json_format_emits_the_run_report(self, capsys):
        assert main([
            "tune", "--requests", "100", "--replications", "1",
            "--parameter", "weight.1=0.5,1.0",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["kind"] == "tuning"
        assert payload["metrics"]["type"] == "tuning"
        assert payload["scenario"]["parameters"] == [
            {"target": "weight.1", "choices": [0.5, 1.0]}
        ]

    def test_tune_bounded_parameter_syntax(self, capsys):
        assert main([
            "tune", "--requests", "100", "--replications", "1",
            "--parameter", "mf.S.M.1=20:40:3",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["trial_count"] == 3

    def test_tune_config_runs_the_example_scenario(self, capsys):
        assert main([
            "tune", "--config", "examples/scenarios/tuning-quick.json",
        ]) == 0
        assert "Rule-base tuning" in capsys.readouterr().out

    def test_tune_config_rejects_shaping_flags(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "tune", "--config", "examples/scenarios/tuning-quick.json",
                "--strategy", "evolutionary",
            ])
        assert "--strategy" in capsys.readouterr().err

    def test_tune_config_rejects_other_scenario_kinds(self, capsys):
        with pytest.raises(SystemExit):
            main(["tune", "--config", "examples/scenarios/fig7-quick.json"])
        assert "tuning" in capsys.readouterr().err

    def test_tune_rejects_bad_parameter_syntax(self, capsys):
        with pytest.raises(SystemExit):
            main(["tune", "--parameter", "mf.S.M.1"])
        assert "TARGET=" in capsys.readouterr().err

    def test_tune_reports_unknown_targets_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "tune", "--parameter", "mf.S.XXL.1=0:1",
                "--requests", "100", "--replications", "1",
            ])
        assert "XXL" in capsys.readouterr().err

    def test_tune_workers_require_a_pool_executor(self, capsys):
        with pytest.raises(SystemExit):
            main(["tune", "--workers", "2"])
        assert "--workers" in capsys.readouterr().err
