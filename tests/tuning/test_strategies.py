"""Strategy determinism and the ask/tell protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tuning import (
    EvolutionaryStrategy,
    GridStrategy,
    ParameterSpec,
    SearchSpace,
    TuningError,
    strategy_by_name,
)

SPACE = SearchSpace((
    ParameterSpec("mf.S.M.1", low=20.0, high=40.0, steps=3),
    ParameterSpec("weight.1", choices=(0.5, 1.0)),
))


def drain(strategy, score=lambda values: sum(values)):
    """Run the full ask/tell loop and return every proposed vector."""
    seen = []
    while True:
        batch = strategy.ask()
        if not batch:
            return seen
        seen.extend(batch)
        strategy.tell([score(values) for values in batch])


class TestGridStrategy:
    def test_enumerates_the_full_cartesian_product_in_order(self):
        vectors = drain(GridStrategy(SPACE, batch_size=4))
        assert len(vectors) == 6
        assert vectors[0] == (20.0, 0.5)
        assert vectors[1] == (20.0, 1.0)
        assert vectors[-1] == (40.0, 1.0)
        assert len(set(vectors)) == 6

    def test_batch_size_splits_the_enumeration(self):
        strategy = GridStrategy(SPACE, batch_size=4)
        first = strategy.ask()
        strategy.tell([0.0] * len(first))
        second = strategy.ask()
        assert (len(first), len(second)) == (4, 2)

    def test_rejects_non_positive_batch_size(self):
        with pytest.raises(TuningError, match="batch_size"):
            GridStrategy(SPACE, batch_size=0)


class TestEvolutionaryStrategy:
    def test_same_seed_reproduces_the_whole_trajectory(self):
        runs = [
            drain(EvolutionaryStrategy(SPACE, seed=7, population=4, generations=3))
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_different_seeds_diverge(self):
        a = drain(EvolutionaryStrategy(SPACE, seed=1, population=4, generations=3))
        b = drain(EvolutionaryStrategy(SPACE, seed=2, population=4, generations=3))
        assert a != b

    def test_vectors_respect_bounds_and_choices(self):
        for values in drain(
            EvolutionaryStrategy(SPACE, seed=3, population=6, generations=4)
        ):
            assert 20.0 <= values[0] <= 40.0
            assert values[1] in (0.5, 1.0)

    def test_generation_count_bounds_the_trajectory(self):
        vectors = drain(
            EvolutionaryStrategy(SPACE, seed=5, population=3, generations=4)
        )
        assert len(vectors) == 12

    def test_double_ask_is_a_protocol_error(self):
        strategy = EvolutionaryStrategy(SPACE, seed=0)
        strategy.ask()
        with pytest.raises(TuningError, match="ask"):
            strategy.ask()

    def test_tell_without_ask_is_a_protocol_error(self):
        with pytest.raises(TuningError, match="tell"):
            EvolutionaryStrategy(SPACE, seed=0).tell([1.0])

    def test_tell_length_mismatch_is_rejected(self):
        strategy = EvolutionaryStrategy(SPACE, seed=0, population=4)
        strategy.ask()
        with pytest.raises(TuningError, match="scores"):
            strategy.tell([1.0])

    def test_none_scores_are_treated_as_worst(self):
        strategy = EvolutionaryStrategy(
            SPACE, seed=11, population=4, generations=2, elite=1
        )
        batch = strategy.ask()
        # All infeasible except one: the sole feasible vector must parent
        # every offspring of the next generation.
        scores = [None] * len(batch)
        scores[2] = 1.0
        strategy.tell(scores)
        assert strategy._parents() == [batch[2]]

    def test_rejects_invalid_hyperparameters(self):
        with pytest.raises(TuningError, match="population"):
            EvolutionaryStrategy(SPACE, population=0)
        with pytest.raises(TuningError, match="elite"):
            EvolutionaryStrategy(SPACE, population=2, elite=3)
        with pytest.raises(TuningError, match="mutation_scale"):
            EvolutionaryStrategy(SPACE, mutation_scale=0.0)


class TestStrategyByName:
    def test_resolves_registered_names(self):
        assert isinstance(strategy_by_name("grid", SPACE), GridStrategy)
        assert isinstance(
            strategy_by_name("evolutionary", SPACE, seed=1), EvolutionaryStrategy
        )

    def test_extra_options_are_ignored_by_the_other_strategy(self):
        # The engine passes one option bundle to whichever strategy is named.
        assert isinstance(
            strategy_by_name("grid", SPACE, seed=4, population=9), GridStrategy
        )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_evolutionary_trajectories_are_pure_functions_of_the_seed(seed):
    first = drain(EvolutionaryStrategy(SPACE, seed=seed, population=3, generations=3))
    second = drain(EvolutionaryStrategy(SPACE, seed=seed, population=3, generations=3))
    assert first == second
