"""Search-space targets: parsing, resolution, substitution, validation."""

from __future__ import annotations

import pytest

from repro.cac.facs.definitions import flc1_definition
from repro.fuzzy.definition import DefinitionError
from repro.tuning import ParameterSpec, SearchSpace, TuningError


class TestParameterSpec:
    def test_bounded_spec_grid_values_are_evenly_spaced(self):
        spec = ParameterSpec("mf.S.M.1", low=20.0, high=40.0, steps=5)
        assert spec.grid_values() == (20.0, 25.0, 30.0, 35.0, 40.0)
        assert spec.bounds() == (20.0, 40.0)

    def test_choice_spec_enumerates_its_choices(self):
        spec = ParameterSpec("weight.1", choices=(0.5, 1.0))
        assert spec.grid_values() == (0.5, 1.0)
        assert spec.bounds() == (0.5, 1.0)

    def test_rejects_bounds_and_choices_together(self):
        with pytest.raises(TuningError, match="not both"):
            ParameterSpec("weight.1", low=0.0, high=1.0, choices=(0.5,))

    def test_rejects_missing_bounds(self):
        with pytest.raises(TuningError, match="low and high"):
            ParameterSpec("weight.1")

    def test_rejects_inverted_bounds(self):
        with pytest.raises(TuningError, match="low < high"):
            ParameterSpec("weight.1", low=1.0, high=0.0)

    @pytest.mark.parametrize("target", [
        "mf.S.M", "mf.S.M.x", "weight", "weight.", "speed.S.M.1", "",
    ])
    def test_rejects_malformed_targets(self, target):
        with pytest.raises(TuningError):
            ParameterSpec(target, low=0.0, high=1.0)

    def test_dict_round_trip(self):
        for spec in (
            ParameterSpec("mf.S.M.1", low=20.0, high=40.0, steps=3),
            ParameterSpec("weight.1", choices=(0.5, 1.0)),
        ):
            assert ParameterSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(TuningError, match="mood"):
            ParameterSpec.from_dict({"target": "weight.1", "choices": [1.0], "mood": 1})


class TestSearchSpace:
    def test_rejects_duplicate_targets(self):
        spec = ParameterSpec("weight.1", choices=(0.5, 1.0))
        with pytest.raises(TuningError, match="duplicate"):
            SearchSpace((spec, spec))

    def test_rejects_empty_space(self):
        with pytest.raises(TuningError, match="at least one"):
            SearchSpace(())

    def test_mappings_are_coerced_to_specs(self):
        space = SearchSpace(({"target": "weight.1", "choices": [0.5, 1.0]},))
        assert space.specs[0] == ParameterSpec("weight.1", choices=(0.5, 1.0))

    def test_baseline_values_read_the_paper_definition(self):
        base = flc1_definition()
        space = SearchSpace((
            ParameterSpec("mf.S.M.1", low=20.0, high=40.0),
            ParameterSpec("weight.1", choices=(0.5, 1.0)),
        ))
        peak = base.variable("S").terms[1].membership.params[1]
        assert space.baseline_values(base) == (peak, 1.0)

    def test_apply_substitutes_both_target_kinds(self):
        base = flc1_definition()
        space = SearchSpace((
            ParameterSpec("mf.S.M.1", low=20.0, high=40.0),
            ParameterSpec("weight.1", choices=(0.5, 1.0)),
        ))
        tuned = space.apply(base, (33.0, 0.5))
        assert tuned.variable("S").terms[1].membership.params[1] == 33.0
        assert tuned.rule_by_label("1").weight == 0.5
        # the base definition is untouched (definitions are immutable)
        assert space.baseline_values(base) != (33.0, 0.5)

    def test_apply_rejects_wrong_vector_length(self):
        space = SearchSpace((ParameterSpec("weight.1", choices=(1.0,)),))
        with pytest.raises(TuningError, match="1 parameters"):
            space.apply(flc1_definition(), (1.0, 2.0))

    def test_infeasible_vector_fails_with_membership_context(self):
        base = flc1_definition()
        space = SearchSpace((ParameterSpec("mf.S.M.1", low=0.0, high=200.0),))
        with pytest.raises(DefinitionError, match="'S'"):
            space.apply(base, (200.0,))  # peak beyond the right foot

    def test_validate_against_reports_unknown_terms(self):
        space = SearchSpace((ParameterSpec("mf.S.XXL.1", low=0.0, high=1.0),))
        with pytest.raises(TuningError, match="no term 'XXL'"):
            space.validate_against(flc1_definition())

    def test_validate_against_reports_out_of_range_index(self):
        space = SearchSpace((ParameterSpec("mf.S.M.7", low=0.0, high=1.0),))
        with pytest.raises(TuningError, match="3 parameters"):
            space.validate_against(flc1_definition())

    def test_validate_against_reports_unknown_rule_label(self):
        space = SearchSpace((ParameterSpec("weight.999", choices=(1.0,)),))
        with pytest.raises(TuningError, match="999"):
            space.validate_against(flc1_definition())
