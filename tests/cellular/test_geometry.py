"""Tests for planar geometry, angle conventions and the hexagonal grid."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cellular.geometry import (
    HexCoordinate,
    Point,
    Vector,
    heading_between,
    hex_ring,
    hex_spiral,
    normalize_angle,
    relative_angle,
)


class TestPointAndVector:
    def test_distance(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_translate(self):
        moved = Point(1.0, 1.0).translate(Vector(2.0, -1.0))
        assert (moved.x, moved.y) == (3.0, 0.0)

    def test_point_iterable(self):
        assert tuple(Point(1.5, 2.5)) == (1.5, 2.5)

    def test_vector_from_polar_cardinal_directions(self):
        east = Vector.from_polar(10.0, 0.0)
        assert east.dx == pytest.approx(10.0) and east.dy == pytest.approx(0.0)
        north = Vector.from_polar(10.0, 90.0)
        assert north.dx == pytest.approx(0.0, abs=1e-9) and north.dy == pytest.approx(10.0)

    def test_vector_magnitude_and_angle_roundtrip(self):
        vector = Vector.from_polar(7.5, 123.0)
        assert vector.magnitude == pytest.approx(7.5)
        assert vector.angle_degrees == pytest.approx(123.0)

    def test_vector_addition_and_scaling(self):
        combined = Vector(1.0, 2.0) + Vector(3.0, -1.0)
        assert (combined.dx, combined.dy) == (4.0, 1.0)
        scaled = Vector(1.0, 2.0).scale(2.0)
        assert (scaled.dx, scaled.dy) == (2.0, 4.0)

    def test_heading_between(self):
        assert heading_between(Point(0, 0), Point(1, 0)) == pytest.approx(0.0)
        assert heading_between(Point(0, 0), Point(0, 1)) == pytest.approx(90.0)
        assert abs(heading_between(Point(0, 0), Point(-1, 0))) == pytest.approx(180.0)

    @given(magnitude=st.floats(0.1, 100.0), angle=st.floats(-179.9, 179.9))
    @settings(max_examples=50)
    def test_polar_roundtrip_property(self, magnitude, angle):
        vector = Vector.from_polar(magnitude, angle)
        assert vector.magnitude == pytest.approx(magnitude, rel=1e-9)
        assert vector.angle_degrees == pytest.approx(angle, abs=1e-6)


class TestAngles:
    def test_normalize_within_range(self):
        assert normalize_angle(190.0) == pytest.approx(-170.0)
        assert normalize_angle(-190.0) == pytest.approx(170.0)
        assert normalize_angle(360.0) == pytest.approx(0.0)
        assert normalize_angle(45.0) == pytest.approx(45.0)

    def test_normalize_keeps_plus_180(self):
        assert normalize_angle(180.0) == pytest.approx(180.0)

    def test_relative_angle_straight_at_target(self):
        # Heading 90, target bearing 90 -> angle 0 ("Straight")
        assert relative_angle(90.0, 90.0) == pytest.approx(0.0)

    def test_relative_angle_moving_away(self):
        assert abs(relative_angle(-90.0, 90.0)) == pytest.approx(180.0)

    @given(heading=st.floats(-180.0, 180.0), bearing=st.floats(-180.0, 180.0))
    @settings(max_examples=100)
    def test_relative_angle_always_in_range(self, heading, bearing):
        angle = relative_angle(heading, bearing)
        assert -180.0 <= angle <= 180.0


class TestHexGrid:
    def test_neighbor_count(self):
        assert len(HexCoordinate(0, 0).neighbors()) == 6

    def test_neighbors_at_distance_one(self):
        center = HexCoordinate(0, 0)
        for neighbor in center.neighbors():
            assert center.distance_to(neighbor) == 1

    def test_cube_coordinate_invariant(self):
        coord = HexCoordinate(3, -1)
        assert coord.q + coord.r + coord.s == 0

    def test_distance_symmetry(self):
        a, b = HexCoordinate(2, -1), HexCoordinate(-1, 3)
        assert a.distance_to(b) == b.distance_to(a)

    def test_to_point_from_point_roundtrip(self):
        radius = 2.0
        for q in range(-3, 4):
            for r in range(-3, 4):
                coord = HexCoordinate(q, r)
                assert HexCoordinate.from_point(coord.to_point(radius), radius) == coord

    def test_ring_sizes(self):
        center = HexCoordinate(0, 0)
        assert len(hex_ring(center, 0)) == 1
        assert len(hex_ring(center, 1)) == 6
        assert len(hex_ring(center, 2)) == 12

    def test_ring_members_at_exact_distance(self):
        center = HexCoordinate(0, 0)
        for coord in hex_ring(center, 2):
            assert center.distance_to(coord) == 2

    def test_negative_ring_rejected(self):
        with pytest.raises(ValueError):
            hex_ring(HexCoordinate(0, 0), -1)

    def test_spiral_sizes(self):
        center = HexCoordinate(0, 0)
        assert len(hex_spiral(center, 0)) == 1
        assert len(hex_spiral(center, 1)) == 7
        assert len(hex_spiral(center, 2)) == 19

    def test_spiral_unique_cells(self):
        cells = hex_spiral(HexCoordinate(0, 0), 3)
        assert len(cells) == len(set(cells)) == 37

    def test_negative_spiral_rejected(self):
        with pytest.raises(ValueError):
            hex_spiral(HexCoordinate(0, 0), -2)

    @given(q=st.integers(-5, 5), r=st.integers(-5, 5))
    @settings(max_examples=50)
    def test_distance_triangle_inequality_via_origin(self, q, r):
        origin = HexCoordinate(0, 0)
        target = HexCoordinate(q, r)
        mid = HexCoordinate(q, 0)
        assert origin.distance_to(target) <= origin.distance_to(mid) + mid.distance_to(target)
