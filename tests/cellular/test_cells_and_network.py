"""Tests for bandwidth ledgers, base stations, cells and the hex network."""

from __future__ import annotations

import pytest

from repro.cellular.cell import BandwidthLedger, BaseStation, Cell, InsufficientBandwidthError
from repro.cellular.calls import Call
from repro.cellular.geometry import HexCoordinate, Point
from repro.cellular.network import CellularNetwork
from repro.cellular.traffic import ServiceClass


def make_call(bandwidth: int, service: ServiceClass = ServiceClass.VOICE) -> Call:
    return Call(service=service, bandwidth_units=bandwidth)


class TestBandwidthLedger:
    def test_allocation_and_release(self):
        ledger = BandwidthLedger(capacity_bu=40)
        call = make_call(5)
        ledger.allocate(call)
        assert ledger.used_bu == 5
        assert ledger.free_bu == 35
        assert ledger.occupancy == pytest.approx(5 / 40)
        assert ledger.release(call) == 5
        assert ledger.used_bu == 0

    def test_real_time_split(self):
        ledger = BandwidthLedger(capacity_bu=40)
        voice = make_call(5, ServiceClass.VOICE)
        text = make_call(1, ServiceClass.TEXT)
        video = make_call(10, ServiceClass.VIDEO)
        for call in (voice, text, video):
            ledger.allocate(call)
        assert ledger.real_time_bu == 15
        assert ledger.non_real_time_bu == 1
        assert ledger.active_calls == 3

    def test_over_allocation_rejected(self):
        ledger = BandwidthLedger(capacity_bu=10)
        ledger.allocate(make_call(8))
        with pytest.raises(InsufficientBandwidthError):
            ledger.allocate(make_call(5))

    def test_duplicate_allocation_rejected(self):
        ledger = BandwidthLedger(capacity_bu=10)
        call = make_call(2)
        ledger.allocate(call)
        with pytest.raises(ValueError):
            ledger.allocate(call)

    def test_release_unknown_call_rejected(self):
        ledger = BandwidthLedger(capacity_bu=10)
        with pytest.raises(KeyError):
            ledger.release(make_call(1))

    def test_can_fit_validation(self):
        ledger = BandwidthLedger(capacity_bu=10)
        assert ledger.can_fit(10)
        assert not ledger.can_fit(11)
        with pytest.raises(ValueError):
            ledger.can_fit(0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BandwidthLedger(capacity_bu=0)

    def test_allocation_for(self):
        ledger = BandwidthLedger(capacity_bu=10)
        call = make_call(3)
        assert ledger.allocation_for(call.call_id) == 0
        ledger.allocate(call)
        assert ledger.allocation_for(call.call_id) == 3


class TestBaseStationAndCell:
    def test_default_capacity_is_paper_value(self):
        assert BaseStation().capacity_bu == 40

    def test_station_passthroughs(self):
        station = BaseStation(capacity_bu=20)
        call = make_call(5)
        assert station.can_fit(5)
        station.allocate(call)
        assert station.used_bu == 5 and station.free_bu == 15
        assert station.occupancy == pytest.approx(0.25)
        station.release(call)
        assert station.used_bu == 0

    def test_cell_contains_its_center(self):
        cell = Cell(HexCoordinate(1, -1), radius_km=2.0)
        assert cell.contains(cell.center)

    def test_cell_does_not_contain_far_point(self):
        cell = Cell(HexCoordinate(0, 0), radius_km=2.0)
        assert not cell.contains(Point(100.0, 100.0))

    def test_cell_distance_to(self):
        cell = Cell(HexCoordinate(0, 0), radius_km=2.0)
        assert cell.distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            Cell(HexCoordinate(0, 0), radius_km=0.0)


class TestCellularNetwork:
    def test_cell_counts_by_rings(self):
        assert CellularNetwork(rings=0).cell_count == 1
        assert CellularNetwork(rings=1).cell_count == 7
        assert CellularNetwork(rings=2).cell_count == 19

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CellularNetwork(rings=-1)
        with pytest.raises(ValueError):
            CellularNetwork(cell_radius_km=0.0)

    def test_center_cell_has_six_neighbors(self):
        network = CellularNetwork(rings=2)
        assert len(network.neighbors(network.center_cell.cell_id)) == 6

    def test_corner_cells_have_fewer_neighbors(self):
        network = CellularNetwork(rings=1)
        neighbor_counts = [len(network.neighbors(cell.cell_id)) for cell in network]
        assert min(neighbor_counts) == 3
        assert max(neighbor_counts) == 6

    def test_cell_lookup(self):
        network = CellularNetwork(rings=1)
        cell = network.cells[0]
        assert network.cell(cell.cell_id) is cell
        with pytest.raises(KeyError):
            network.cell(999)

    def test_cell_at_coordinate(self):
        network = CellularNetwork(rings=1)
        assert network.cell_at(HexCoordinate(0, 0)) is network.center_cell
        assert network.cell_at(HexCoordinate(5, 5)) is None

    def test_serving_cell_for_position(self):
        network = CellularNetwork(rings=2, cell_radius_km=2.0)
        for cell in network:
            assert network.serving_cell(cell.center) is cell

    def test_serving_cell_outside_coverage(self):
        network = CellularNetwork(rings=1, cell_radius_km=2.0)
        assert network.serving_cell(Point(1000.0, 1000.0)) is None

    def test_nearest_cell_always_returns(self):
        network = CellularNetwork(rings=1, cell_radius_km=2.0)
        assert network.nearest_cell(Point(1000.0, 1000.0)) is not None

    def test_neighbor_relation_is_symmetric(self):
        network = CellularNetwork(rings=2)
        for cell in network:
            for neighbor in network.neighbors(cell.cell_id):
                assert network.are_neighbors(neighbor.cell_id, cell.cell_id)

    def test_hop_distance(self):
        network = CellularNetwork(rings=2)
        center = network.center_cell.cell_id
        for neighbor in network.neighbors(center):
            assert network.hop_distance(center, neighbor.cell_id) == 1
        assert network.hop_distance(center, center) == 0

    def test_cells_along_heading(self):
        network = CellularNetwork(rings=2, cell_radius_km=2.0)
        start = network.center_cell.center
        crossed = network.cells_along_heading(start, heading_deg=0.0, distance_km=8.0)
        assert crossed[0] is network.center_cell
        assert len(crossed) >= 2

    def test_cells_along_heading_validation(self):
        network = CellularNetwork(rings=1)
        with pytest.raises(ValueError):
            network.cells_along_heading(Point(0, 0), 0.0, -1.0)
        with pytest.raises(ValueError):
            network.cells_along_heading(Point(0, 0), 0.0, 1.0, step_km=0.0)

    def test_total_used_bu(self):
        network = CellularNetwork(rings=1)
        call = make_call(10)
        network.center_cell.base_station.allocate(call)
        assert network.total_used_bu() == 10

    def test_unknown_neighbor_lookup(self):
        network = CellularNetwork(rings=1)
        with pytest.raises(KeyError):
            network.neighbors(12345)

    def test_iteration_and_len(self):
        network = CellularNetwork(rings=1)
        assert len(list(network)) == len(network) == 7
