"""Tests for user state, mobility models and the handoff manager."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cac.complete_sharing import CompleteSharingController
from repro.cellular.calls import Call, CallState
from repro.cellular.geometry import Point
from repro.cellular.handoff import HandoffManager
from repro.cellular.mobility import (
    ConstantVelocityModel,
    GaussMarkovModel,
    MobileTerminal,
    PAPER_ANGLE_RANGE_DEG,
    PAPER_DISTANCE_RANGE_KM,
    PAPER_SPEED_RANGE_KMH,
    RandomWaypointModel,
    UserPopulation,
    UserProfile,
    UserState,
)
from repro.cellular.network import CellularNetwork
from repro.cellular.traffic import ServiceClass
from repro.des.rng import RandomStream


class TestUserState:
    def test_validation(self):
        with pytest.raises(ValueError):
            UserState(-1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            UserState(1.0, 200.0, 1.0)
        with pytest.raises(ValueError):
            UserState(1.0, 0.0, -1.0)

    def test_clamped(self):
        state = UserState(200.0, 90.0, 50.0).clamped()
        assert state.speed_kmh == 120.0
        assert state.distance_km == 10.0
        assert state.angle_deg == 90.0

    def test_paper_ranges(self):
        assert PAPER_SPEED_RANGE_KMH == (0.0, 120.0)
        assert PAPER_ANGLE_RANGE_DEG == (-180.0, 180.0)
        assert PAPER_DISTANCE_RANGE_KM == (0.0, 10.0)


class TestUserProfile:
    def test_fixed_fields_are_respected(self):
        rng = RandomStream("profile", 1)
        profile = UserProfile(speed_kmh=60.0, angle_deg=30.0, distance_km=5.0)
        state = profile.sample(rng)
        assert (state.speed_kmh, state.angle_deg, state.distance_km) == (60.0, 30.0, 5.0)

    def test_random_fields_stay_in_paper_ranges(self):
        rng = RandomStream("profile", 2)
        profile = UserProfile()
        for _ in range(200):
            state = profile.sample(rng)
            assert 0.0 <= state.speed_kmh <= 120.0
            assert -180.0 <= state.angle_deg <= 180.0
            assert 0.0 <= state.distance_km <= 10.0

    def test_population_draw(self):
        rng = RandomStream("population", 3)
        population = UserPopulation(UserProfile(speed_kmh=4.0), rng)
        states = population.draw(25)
        assert len(states) == 25
        assert all(state.speed_kmh == 4.0 for state in states)
        with pytest.raises(ValueError):
            population.draw(-1)


class TestMobileTerminal:
    def test_advance_moves_along_heading(self):
        terminal = MobileTerminal(Point(0.0, 0.0), speed_kmh=36.0, heading_deg=0.0)
        terminal.advance(3600.0)
        assert terminal.position.x == pytest.approx(36.0)
        assert terminal.position.y == pytest.approx(0.0, abs=1e-9)

    def test_advance_rejects_negative_duration(self):
        terminal = MobileTerminal(Point(0.0, 0.0), 10.0, 0.0)
        with pytest.raises(ValueError):
            terminal.advance(-1.0)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            MobileTerminal(Point(0.0, 0.0), -5.0, 0.0)

    def test_observe_straight_towards_bs(self):
        terminal = MobileTerminal(Point(-3.0, 0.0), speed_kmh=50.0, heading_deg=0.0)
        state = terminal.observe(Point(0.0, 0.0))
        assert state.angle_deg == pytest.approx(0.0, abs=1e-9)
        assert state.distance_km == pytest.approx(3.0)
        assert state.speed_kmh == 50.0

    def test_observe_moving_away_from_bs(self):
        terminal = MobileTerminal(Point(3.0, 0.0), speed_kmh=50.0, heading_deg=0.0)
        state = terminal.observe(Point(0.0, 0.0))
        assert abs(state.angle_deg) == pytest.approx(180.0)

    def test_observe_perpendicular(self):
        terminal = MobileTerminal(Point(0.0, -2.0), speed_kmh=50.0, heading_deg=0.0)
        state = terminal.observe(Point(0.0, 0.0))
        assert abs(state.angle_deg) == pytest.approx(90.0)

    def test_unique_terminal_ids(self):
        ids = {MobileTerminal(Point(0, 0), 1.0, 0.0).terminal_id for _ in range(20)}
        assert len(ids) == 20


class TestMobilityModels:
    def test_constant_velocity_keeps_heading_and_speed(self):
        terminal = MobileTerminal(Point(0.0, 0.0), 60.0, 45.0)
        ConstantVelocityModel().update(terminal, 600.0, RandomStream("m", 1))
        assert terminal.speed_kmh == 60.0
        assert terminal.heading_deg == 45.0
        assert terminal.position.distance_to(Point(0.0, 0.0)) == pytest.approx(10.0)

    def test_random_waypoint_stays_in_region(self):
        model = RandomWaypointModel(region_km=(0.0, 0.0, 10.0, 10.0), speed_range_kmh=(10.0, 50.0))
        rng = RandomStream("rwp", 2)
        terminal = MobileTerminal(Point(5.0, 5.0), 20.0, 0.0)
        for _ in range(50):
            model.update(terminal, 60.0, rng)
            assert -0.5 <= terminal.position.x <= 10.5
            assert -0.5 <= terminal.position.y <= 10.5

    def test_random_waypoint_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointModel(region_km=(0.0, 0.0, 0.0, 10.0))
        with pytest.raises(ValueError):
            RandomWaypointModel(region_km=(0.0, 0.0, 1.0, 1.0), speed_range_kmh=(0.0, 10.0))
        with pytest.raises(ValueError):
            RandomWaypointModel(region_km=(0.0, 0.0, 1.0, 1.0), pause_s=-1.0)

    def test_gauss_markov_speed_stays_non_negative(self):
        model = GaussMarkovModel(alpha=0.5, mean_speed_kmh=20.0, speed_std_kmh=30.0)
        rng = RandomStream("gm", 3)
        terminal = MobileTerminal(Point(0.0, 0.0), 20.0, 0.0)
        for _ in range(100):
            model.update(terminal, 10.0, rng)
            assert terminal.speed_kmh >= 0.0
            assert -180.0 <= terminal.heading_deg <= 180.0

    def test_gauss_markov_alpha_one_keeps_velocity(self):
        model = GaussMarkovModel(alpha=1.0, mean_speed_kmh=50.0)
        rng = RandomStream("gm", 4)
        terminal = MobileTerminal(Point(0.0, 0.0), 33.0, 10.0)
        model.update(terminal, 100.0, rng)
        assert terminal.speed_kmh == pytest.approx(33.0)
        assert terminal.heading_deg == pytest.approx(10.0)

    def test_gauss_markov_validation(self):
        with pytest.raises(ValueError):
            GaussMarkovModel(alpha=1.5)
        with pytest.raises(ValueError):
            GaussMarkovModel(update_interval_s=0.0)

    @given(
        speed=st.floats(1.0, 120.0),
        heading=st.floats(-179.0, 179.0),
        hours=st.floats(0.01, 1.0),
    )
    @settings(max_examples=50)
    def test_constant_velocity_distance_property(self, speed, heading, hours):
        terminal = MobileTerminal(Point(0.0, 0.0), speed, heading)
        terminal.advance(hours * 3600.0)
        travelled = terminal.position.distance_to(Point(0.0, 0.0))
        assert travelled == pytest.approx(speed * hours, rel=1e-9)


class TestHandoffManager:
    def setup_method(self):
        self.network = CellularNetwork(rings=1, cell_radius_km=2.0)
        self.controller = CompleteSharingController()
        self.manager = HandoffManager(self.network, self.controller)

    def admitted_call(self, cell) -> Call:
        call = Call(service=ServiceClass.VOICE, bandwidth_units=5, holding_time_s=300.0)
        cell.base_station.allocate(call)
        call.admit(0.0, cell.cell_id)
        return call

    def test_no_handoff_needed_inside_cell(self):
        cell = self.network.center_cell
        call = self.admitted_call(cell)
        terminal = MobileTerminal(cell.center, 30.0, 0.0)
        assert self.manager.needs_handoff(call, terminal) is None

    def test_handoff_detected_in_neighbor_cell(self):
        cell = self.network.center_cell
        call = self.admitted_call(cell)
        neighbor = self.network.neighbors(cell.cell_id)[0]
        terminal = MobileTerminal(neighbor.center, 30.0, 0.0)
        target = self.manager.needs_handoff(call, terminal)
        assert target is neighbor

    def test_out_of_coverage_returns_none(self):
        cell = self.network.center_cell
        call = self.admitted_call(cell)
        terminal = MobileTerminal(Point(500.0, 500.0), 30.0, 0.0)
        assert self.manager.needs_handoff(call, terminal) is None

    def test_needs_handoff_requires_serving_cell(self):
        call = Call(service=ServiceClass.VOICE, bandwidth_units=5)
        terminal = MobileTerminal(Point(0.0, 0.0), 10.0, 0.0)
        with pytest.raises(ValueError):
            self.manager.needs_handoff(call, terminal)

    def test_successful_handoff_moves_bandwidth(self):
        source = self.network.center_cell
        target = self.network.neighbors(source.cell_id)[0]
        call = self.admitted_call(source)
        terminal = MobileTerminal(target.center, 30.0, 0.0)
        outcome = self.manager.attempt_handoff(call, terminal, target, now=10.0)
        assert outcome.accepted
        assert source.base_station.used_bu == 0
        assert target.base_station.used_bu == 5
        assert call.serving_cell_id == target.cell_id
        assert call.handoff_count == 1
        assert self.manager.handoff_acceptance_ratio() == 1.0

    def test_failed_handoff_drops_call(self):
        source = self.network.center_cell
        target = self.network.neighbors(source.cell_id)[0]
        # Fill the target cell so the handoff cannot fit.
        filler = Call(service=ServiceClass.VIDEO, bandwidth_units=40)
        target.base_station.allocate(filler)
        call = self.admitted_call(source)
        terminal = MobileTerminal(target.center, 30.0, 0.0)
        outcome = self.manager.attempt_handoff(call, terminal, target, now=10.0)
        assert not outcome.accepted
        assert call.state is CallState.DROPPED
        assert source.base_station.used_bu == 0
        assert self.manager.handoff_acceptance_ratio() == 0.0

    def test_outcomes_accumulate(self):
        assert self.manager.outcomes == []
        assert self.manager.handoff_acceptance_ratio() == 1.0
