"""Tests for traffic classes, the paper's mix, call lifecycle and metrics."""

from __future__ import annotations

import pytest

from repro.cellular.calls import Call, CallState, CallType
from repro.cellular.metrics import MetricsCollector
from repro.cellular.mobility import UserState
from repro.cellular.traffic import (
    ArrivalProcess,
    HoldingTimeModel,
    PAPER_BANDWIDTH_UNITS,
    PAPER_TRAFFIC_MIX,
    ServiceClass,
    TrafficClassSpec,
    TrafficMix,
)
from repro.des.rng import RandomStream


class TestPaperTrafficParameters:
    def test_bandwidth_units_match_section4(self):
        """Section 4: request sizes 1, 5 and 10 BU for text, voice and video."""
        assert PAPER_TRAFFIC_MIX.bandwidth_for(ServiceClass.TEXT) == 1
        assert PAPER_TRAFFIC_MIX.bandwidth_for(ServiceClass.VOICE) == 5
        assert PAPER_TRAFFIC_MIX.bandwidth_for(ServiceClass.VIDEO) == 10

    def test_class_shares_match_section4(self):
        """Section 4: 60% text, 30% voice, 10% video."""
        assert PAPER_TRAFFIC_MIX.spec(ServiceClass.TEXT).share == pytest.approx(0.60)
        assert PAPER_TRAFFIC_MIX.spec(ServiceClass.VOICE).share == pytest.approx(0.30)
        assert PAPER_TRAFFIC_MIX.spec(ServiceClass.VIDEO).share == pytest.approx(0.10)

    def test_base_station_capacity_matches_section4(self):
        """Section 4: the bandwidth of the BS is 40 BU."""
        assert PAPER_BANDWIDTH_UNITS == 40

    def test_real_time_classification(self):
        assert ServiceClass.VOICE.is_real_time
        assert ServiceClass.VIDEO.is_real_time
        assert not ServiceClass.TEXT.is_real_time

    def test_offered_load_per_request(self):
        expected = 0.6 * 1 + 0.3 * 5 + 0.1 * 10
        assert PAPER_TRAFFIC_MIX.offered_load_bu() == pytest.approx(expected)


class TestTrafficMix:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            TrafficMix(
                {
                    ServiceClass.TEXT: TrafficClassSpec(ServiceClass.TEXT, 1, 0.5),
                    ServiceClass.VOICE: TrafficClassSpec(ServiceClass.VOICE, 5, 0.4),
                }
            )

    def test_key_spec_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            TrafficMix({ServiceClass.TEXT: TrafficClassSpec(ServiceClass.VOICE, 5, 1.0)})

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            TrafficMix({})

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TrafficClassSpec(ServiceClass.TEXT, 0, 0.5)
        with pytest.raises(ValueError):
            TrafficClassSpec(ServiceClass.TEXT, 1, 1.5)
        with pytest.raises(ValueError):
            TrafficClassSpec(ServiceClass.TEXT, 1, 0.5, mean_holding_time_s=0.0)

    def test_unknown_class_lookup(self):
        mix = TrafficMix({ServiceClass.TEXT: TrafficClassSpec(ServiceClass.TEXT, 1, 1.0)})
        with pytest.raises(KeyError):
            mix.spec(ServiceClass.VIDEO)

    def test_sample_class_follows_shares(self):
        rng = RandomStream("mix", 7)
        samples = [PAPER_TRAFFIC_MIX.sample_class(rng) for _ in range(3000)]
        text_share = samples.count(ServiceClass.TEXT) / len(samples)
        video_share = samples.count(ServiceClass.VIDEO) / len(samples)
        assert text_share == pytest.approx(0.60, abs=0.05)
        assert video_share == pytest.approx(0.10, abs=0.03)


class TestArrivalAndHolding:
    def test_arrival_process_mean(self):
        rng = RandomStream("arrivals", 3)
        process = ArrivalProcess(rate_per_s=0.5, rng=rng)
        gaps = [process.next_interarrival() for _ in range(3000)]
        assert sum(gaps) / len(gaps) == pytest.approx(2.0, rel=0.1)

    def test_arrival_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            ArrivalProcess(0.0, RandomStream("x", 1))

    def test_holding_time_model_uses_class_mean(self):
        rng = RandomStream("holding", 5)
        model = HoldingTimeModel(PAPER_TRAFFIC_MIX, rng)
        samples = [model.sample(ServiceClass.VOICE) for _ in range(3000)]
        expected = PAPER_TRAFFIC_MIX.spec(ServiceClass.VOICE).mean_holding_time_s
        assert sum(samples) / len(samples) == pytest.approx(expected, rel=0.1)


class TestCallLifecycle:
    def make_call(self) -> Call:
        return Call(
            service=ServiceClass.VOICE,
            bandwidth_units=5,
            user_state=UserState(30.0, 0.0, 2.0),
            holding_time_s=100.0,
        )

    def test_new_call_state(self):
        call = self.make_call()
        assert call.state is CallState.REQUESTED
        assert not call.is_finished
        assert call.is_real_time

    def test_admit_then_complete(self):
        call = self.make_call()
        call.admit(10.0, cell_id=1)
        assert call.state is CallState.ACTIVE
        assert call.serving_cell_id == 1
        call.complete(110.0)
        assert call.state is CallState.COMPLETED
        assert call.is_finished
        assert [event.description for event in call.history] == ["admitted", "completed"]

    def test_block(self):
        call = self.make_call()
        call.block(5.0, cell_id=2)
        assert call.state is CallState.BLOCKED

    def test_drop_records_reason(self):
        call = self.make_call()
        call.admit(0.0, 1)
        call.drop(50.0, reason="handoff failure")
        assert call.state is CallState.DROPPED
        assert "handoff failure" in call.history[-1].description

    def test_handoff_updates_cell_and_counter(self):
        call = self.make_call()
        call.admit(0.0, 1)
        call.handoff(30.0, 2)
        call.handoff(60.0, 3)
        assert call.serving_cell_id == 3
        assert call.handoff_count == 2

    def test_invalid_transitions_rejected(self):
        call = self.make_call()
        with pytest.raises(ValueError):
            call.complete(1.0)
        call.admit(0.0, 1)
        with pytest.raises(ValueError):
            call.admit(1.0, 2)
        call.complete(2.0)
        with pytest.raises(ValueError):
            call.drop(3.0)

    def test_validation_of_fields(self):
        with pytest.raises(ValueError):
            Call(service=ServiceClass.TEXT, bandwidth_units=0)
        with pytest.raises(ValueError):
            Call(service=ServiceClass.TEXT, bandwidth_units=1, holding_time_s=-1.0)

    def test_unique_call_ids(self):
        ids = {Call(service=ServiceClass.TEXT, bandwidth_units=1).call_id for _ in range(50)}
        assert len(ids) == 50


class TestMetricsCollector:
    def make_call(self, service=ServiceClass.VOICE, call_type=CallType.NEW) -> Call:
        bandwidth = {ServiceClass.TEXT: 1, ServiceClass.VOICE: 5, ServiceClass.VIDEO: 10}
        return Call(service=service, bandwidth_units=bandwidth[service], call_type=call_type)

    def test_acceptance_percentage(self):
        collector = MetricsCollector()
        for accept in (True, True, False, True):
            call = self.make_call()
            collector.record_request(call)
            collector.record_decision(call, accept)
        metrics = collector.snapshot()
        assert metrics.requested == 4
        assert metrics.accepted == 3
        assert metrics.acceptance_percentage == pytest.approx(75.0)
        assert metrics.blocking_probability == pytest.approx(0.25)

    def test_empty_metrics_are_zero(self):
        metrics = MetricsCollector().snapshot()
        assert metrics.acceptance_percentage == 0.0
        assert metrics.blocking_probability == 0.0
        assert metrics.dropping_probability == 0.0
        assert metrics.handoff_dropping_probability == 0.0

    def test_dropping_probability(self):
        collector = MetricsCollector()
        calls = [self.make_call() for _ in range(4)]
        for call in calls:
            collector.record_request(call)
            collector.record_decision(call, True)
            call.admit(0.0, 1)
        calls[0].complete(1.0)
        calls[1].complete(1.0)
        calls[2].drop(1.0)
        calls[3].drop(1.0)
        for call in calls:
            collector.record_completion(call)
        metrics = collector.snapshot()
        assert metrics.dropping_probability == pytest.approx(0.5)
        assert metrics.completed == 2 and metrics.dropped == 2

    def test_record_completion_requires_finished_call(self):
        collector = MetricsCollector()
        call = self.make_call()
        call.admit(0.0, 1)
        with pytest.raises(ValueError):
            collector.record_completion(call)

    def test_handoff_statistics(self):
        collector = MetricsCollector()
        handoff = self.make_call(call_type=CallType.HANDOFF)
        collector.record_request(handoff)
        collector.record_decision(handoff, False)
        metrics = collector.snapshot()
        assert metrics.handoff_requests == 1
        assert metrics.handoff_accepted == 0
        assert metrics.handoff_dropping_probability == pytest.approx(1.0)

    def test_bandwidth_acceptance_ratio(self):
        collector = MetricsCollector()
        video = self.make_call(ServiceClass.VIDEO)
        text = self.make_call(ServiceClass.TEXT)
        for call, accept in ((video, False), (text, True)):
            collector.record_request(call)
            collector.record_decision(call, accept)
        metrics = collector.snapshot()
        assert metrics.requested_bu == 11
        assert metrics.accepted_bu == 1
        assert metrics.bandwidth_acceptance_ratio == pytest.approx(1.0 / 11.0)

    def test_per_service_breakdown(self):
        collector = MetricsCollector()
        voice = self.make_call(ServiceClass.VOICE)
        collector.record_request(voice)
        collector.record_decision(voice, True)
        text = self.make_call(ServiceClass.TEXT)
        collector.record_request(text)
        collector.record_decision(text, False)
        assert collector.acceptance_percentage_for(ServiceClass.VOICE) == 100.0
        assert collector.acceptance_percentage_for(ServiceClass.TEXT) == 0.0
        assert collector.acceptance_percentage_for(ServiceClass.VIDEO) == 0.0

    def test_grade_of_service_weighting(self):
        collector = MetricsCollector()
        call = self.make_call()
        collector.record_request(call)
        collector.record_decision(call, True)
        call.admit(0.0, 1)
        call.drop(1.0)
        collector.record_completion(call)
        metrics = collector.snapshot()
        assert metrics.grade_of_service(dropping_penalty=10.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            metrics.grade_of_service(dropping_penalty=-1.0)
