"""Golden tests: the redesigned CLI is byte-identical to the pre-redesign CLI.

The files under ``tests/golden/`` were captured from the last commit before
the Scenario/Runner redesign by running the commands below and saving
stdout verbatim.  These tests re-run the same commands through the current
CLI and assert equality byte for byte — the contract of the API redesign
is that ``run`` and ``network-sweep`` keep their exact text output.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import (
    SCHEMA_VERSION,
    Campaign,
    CampaignReport,
    Runner,
    RunReport,
    Scenario,
    scenario_for,
)
from repro.cli import main

GOLDEN_DIR = Path(__file__).parent / "golden"
REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLE_CAMPAIGN = (
    Path(__file__).parents[1] / "examples" / "campaigns" / "fig7-fig10-study.json"
)

GOLDEN_CASES = {
    "run_table1-frb1.txt": ["run", "table1-frb1"],
    "run_table2-frb2.txt": ["run", "table2-frb2"],
    "run_fig5-flc1-mf.txt": ["run", "fig5-flc1-mf"],
    "run_fig6-flc2-mf.txt": ["run", "fig6-flc2-mf"],
    "run_surface-flc1.txt": ["run", "surface-flc1"],
    "run_surface-flc2.txt": ["run", "surface-flc2"],
    "run_fig7-speed_r1.txt": [
        "run", "fig7-speed", "--replications", "1", "--requests", "10", "20",
    ],
    "run_fig8-angle_r1.txt": [
        "run", "fig8-angle", "--replications", "1", "--requests", "15", "30",
    ],
    "run_fig9-distance_r1.txt": [
        "run", "fig9-distance", "--replications", "1", "--requests", "15", "30",
    ],
    "run_fig10_r1.txt": [
        "run", "fig10-facs-vs-scc", "--replications", "1", "--requests", "10", "25",
    ],
    "run_net-sweep_r1.txt": ["run", "net-sweep", "--replications", "1"],
    "network-sweep_small.txt": [
        "network-sweep", "--rates", "0.02", "0.04", "--replications", "1",
        "--duration", "150", "--controllers", "FACS", "SCC",
    ],
    "network-sweep_rings_seed.txt": [
        "network-sweep", "--rates", "0.03", "--replications", "2", "--duration",
        "120", "--rings", "0", "--seed", "99", "--controllers", "CS",
    ],
    "list.txt": ["list"],
}


class TestGoldenOutput:
    @pytest.mark.parametrize("golden_name", sorted(GOLDEN_CASES))
    def test_output_is_byte_identical_to_pre_redesign_cli(self, golden_name, capsys):
        argv = GOLDEN_CASES[golden_name]
        assert main(argv) == 0
        expected = (GOLDEN_DIR / golden_name).read_text()
        assert capsys.readouterr().out == expected


class TestNewReportFlags:
    def test_format_json_emits_the_run_report(self, capsys):
        assert main(["run", "table1-frb1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == {
            "schema_version": SCHEMA_VERSION,
            "kind": "artifact",
            "artifact": "table1-frb1",
        }
        golden = (GOLDEN_DIR / "run_table1-frb1.txt").read_text()
        assert payload["text"] + "\n" == golden

    def test_save_persists_a_loadable_report(self, tmp_path, capsys):
        assert main(["run", "table2-frb2", "--save", str(tmp_path)]) == 0
        capsys.readouterr()
        report = RunReport.load(tmp_path / "table2-frb2.json")
        assert report.scenario == scenario_for("table2-frb2")
        assert report.text.startswith("Table 2")

    def test_config_runs_a_scenario_file(self, tmp_path, capsys):
        config = tmp_path / "fig7.json"
        config.write_text(
            json.dumps(
                {
                    "kind": "figure-sweep",
                    "figure": "fig7-speed",
                    "request_counts": [10, 20],
                    "replications": 1,
                }
            )
        )
        assert main(["run", "--config", str(config)]) == 0
        from_config = capsys.readouterr().out
        assert main(
            ["run", "fig7-speed", "--replications", "1", "--requests", "10", "20"]
        ) == 0
        from_flags = capsys.readouterr().out
        assert from_config == from_flags

    def test_network_sweep_config(self, tmp_path, capsys):
        config = tmp_path / "sweep.json"
        config.write_text(
            json.dumps(
                {
                    "kind": "network-sweep",
                    "controllers": ["FACS"],
                    "arrival_rates": [0.03],
                    "replications": 1,
                    "duration_s": 120.0,
                }
            )
        )
        assert main(["network-sweep", "--config", str(config)]) == 0
        output = capsys.readouterr().out
        assert "FACS — multi-cell QoS vs offered load" in output

    def test_config_scenario_round_trips_through_saved_report(self, tmp_path, capsys):
        config = tmp_path / "surface.json"
        config.write_text(json.dumps({"kind": "surface", "surface": "flc2"}))
        assert main(
            ["run", "--config", str(config), "--save", str(tmp_path / "out")]
        ) == 0
        capsys.readouterr()
        report = RunReport.load(tmp_path / "out" / "surface-flc2.json")
        assert report.scenario == Scenario.from_file(config)


class TestNewValidation:
    def test_run_requires_experiment_or_config(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_run_rejects_experiment_plus_config(self, tmp_path):
        config = tmp_path / "s.json"
        config.write_text(json.dumps({"kind": "artifact", "artifact": "table1-frb1"}))
        with pytest.raises(SystemExit):
            main(["run", "table1-frb1", "--config", str(config)])

    def test_run_rejects_missing_config_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "--config", str(tmp_path / "absent.json")])

    def test_run_rejects_invalid_scenario_config(self, tmp_path):
        config = tmp_path / "s.json"
        config.write_text(json.dumps({"kind": "warp"}))
        with pytest.raises(SystemExit):
            main(["run", "--config", str(config)])

    def test_network_sweep_rejects_non_network_config(self, tmp_path):
        config = tmp_path / "s.json"
        config.write_text(json.dumps({"kind": "artifact", "artifact": "table1-frb1"}))
        with pytest.raises(SystemExit):
            main(["network-sweep", "--config", str(config)])

    def test_run_config_rejects_scenario_shaping_flags(self, tmp_path, capsys):
        config = tmp_path / "s.json"
        config.write_text(json.dumps({"kind": "artifact", "artifact": "table1-frb1"}))
        with pytest.raises(SystemExit):
            main(["run", "--config", str(config), "--replications", "99"])
        assert "--replications" in capsys.readouterr().err

    def test_network_sweep_config_rejects_scenario_shaping_flags(
        self, tmp_path, capsys
    ):
        config = tmp_path / "s.json"
        config.write_text(json.dumps({"kind": "network-sweep"}))
        with pytest.raises(SystemExit):
            main(["network-sweep", "--config", str(config), "--rates", "0.2"])
        assert "--rates" in capsys.readouterr().err

    def test_save_refusal_is_a_clean_error_not_a_traceback(self, tmp_path, capsys):
        foreign = tmp_path / "table1-frb1.json"
        foreign.write_text(json.dumps({"something": "else"}))
        assert main(["run", "table1-frb1", "--save", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "refusing to overwrite" in captured.err
        assert json.loads(foreign.read_text()) == {"something": "else"}

    def test_config_still_allows_format_and_save(self, tmp_path, capsys):
        config = tmp_path / "s.json"
        config.write_text(json.dumps({"kind": "artifact", "artifact": "table2-frb2"}))
        assert main(
            ["run", "--config", str(config), "--format", "json", "--save", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert (tmp_path / "table2-frb2.json").exists()

    def test_duplicate_controllers_error_loudly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["network-sweep", "--controllers", "FACS", "FACS", "CS"])
        assert excinfo.value.code == 2
        assert "duplicate controllers: FACS" in capsys.readouterr().err

    def test_all_registered_controllers_are_selectable(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["network-sweep", "--controllers", "GuardChannel", "Threshold"]
        )
        assert args.controllers == ["GuardChannel", "Threshold"]


class TestListJson:
    def test_list_json_emits_the_registries(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        ids = {entry["id"] for entry in payload["experiments"]}
        assert {"fig7-speed", "net-sweep", "trace-arrivals", "net-sweep-sharded"} <= ids
        fig7 = next(e for e in payload["experiments"] if e["id"] == "fig7-speed")
        assert fig7["kind"] == "figure-sweep"
        assert fig7["paper_artifact"] == "Figure 7"
        assert fig7["bench_only"] is False
        abl = next(e for e in payload["experiments"] if e["id"] == "abl-defuzz")
        assert abl["bench_only"] is True
        assert "FACS" in payload["controllers"]
        assert "serial" in payload["executors"]
        assert {"trace-arrivals", "network-sweep-sharded", "tuning"} <= set(
            payload["scenario_kinds"]
        )
        assert "mean_acceptance" in payload["comparison_metrics"]
        assert payload["tuning_strategies"] == ["grid", "evolutionary"]
        definitions = payload["controller_definitions"]
        assert definitions["suffix"] == ".json"
        for export in definitions["builtin_exports"]:
            assert (REPO_ROOT / export).is_file()
        assert any(
            engine["name"] == "compiled" and engine["cli"]
            for engine in payload["engines"]
        )
        workloads = {entry["name"]: entry for entry in payload["workloads"]}
        assert set(workloads) == {
            "poisson", "mmpp", "heavy-tail", "diurnal", "flash-crowd"
        }
        assert workloads["poisson"]["arrival"] == "poisson"
        assert workloads["poisson"]["service_classes"] is None
        assert workloads["mmpp"]["service_classes"] == ["voice", "data", "video"]
        classes = {entry["service"]: entry for entry in payload["service_classes"]}
        assert set(classes) == {"voice", "data", "video"}
        assert classes["voice"]["priority_weight"] == 1.0
        assert classes["video"]["bandwidth_units"] == 10

    def test_list_text_output_is_unchanged(self, capsys):
        assert main(["list"]) == 0
        assert capsys.readouterr().out == (GOLDEN_DIR / "list.txt").read_text()


class TestCampaignCommand:
    def test_example_campaign_members_match_individual_runner_runs(self, capsys):
        """The acceptance gate of the campaign API: running the example
        campaign through the CLI reproduces every per-scenario ASCII
        artifact byte for byte against an individual ``Runner.run`` of the
        resolved member scenario."""
        assert main(
            ["campaign", "--config", str(EXAMPLE_CAMPAIGN), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        campaign = Campaign.from_file(EXAMPLE_CAMPAIGN)
        resolved = campaign.resolved_scenarios()
        assert [m["id"] for m in payload["campaign"]["members"]] == [
            "fig7-speed",
            "fig10-facs-vs-scc",
        ]
        runner = Runner()
        for scenario, entry in zip(resolved, payload["reports"]):
            direct = runner.run(scenario)
            assert entry["text"] == direct.text
            assert entry["scenario"] == scenario.to_dict()

    def test_example_campaign_is_backend_independent(self, capsys):
        base = ["campaign", "--config", str(EXAMPLE_CAMPAIGN), "--format", "json"]
        assert main(base) == 0
        default_out = capsys.readouterr().out
        assert main(base + ["--executor", "serial"]) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        pooled_out = capsys.readouterr().out
        assert default_out == serial_out == pooled_out

    def test_campaign_from_directory_of_scenarios(self, tmp_path, capsys):
        (tmp_path / "table.json").write_text(
            json.dumps({"kind": "artifact", "artifact": "table1-frb1"})
        )
        (tmp_path / "surface.json").write_text(
            json.dumps({"kind": "surface", "surface": "flc2", "resolution": 5})
        )
        assert main(["campaign", "--config", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "=== table [artifact] ===" in output
        assert "=== surface [surface] ===" in output
        assert "Cross-scenario comparison" in output

    def test_campaign_save_persists_a_loadable_report(self, tmp_path, capsys):
        config = tmp_path / "campaign.json"
        config.write_text(
            json.dumps(
                {
                    "name": "save-test",
                    "members": [
                        {
                            "id": "t1",
                            "scenario": {"kind": "artifact", "artifact": "table1-frb1"},
                        }
                    ],
                }
            )
        )
        out_dir = tmp_path / "out"
        assert main(
            ["campaign", "--config", str(config), "--save", str(out_dir)]
        ) == 0
        capsys.readouterr()
        report = CampaignReport.load(out_dir / "save-test.json")
        assert report.campaign.name == "save-test"
        assert report.reports[0].text.startswith("Table 1")

    def test_campaign_rejects_missing_config(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "--config", str(tmp_path / "absent.json")])

    def test_campaign_rejects_invalid_config(self, tmp_path, capsys):
        config = tmp_path / "bad.json"
        config.write_text(json.dumps({"name": "x", "members": []}))
        with pytest.raises(SystemExit):
            main(["campaign", "--config", str(config)])
        assert "members" in capsys.readouterr().err

    def test_campaign_workers_with_serial_executor_rejected(self, tmp_path, capsys):
        config = tmp_path / "campaign.json"
        config.write_text(
            json.dumps(
                {
                    "name": "serial-workers",
                    "members": [
                        {
                            "id": "t1",
                            "scenario": {"kind": "artifact", "artifact": "table1-frb1"},
                        }
                    ],
                }
            )
        )
        with pytest.raises(SystemExit):
            main(
                [
                    "campaign",
                    "--config",
                    str(config),
                    "--executor",
                    "serial",
                    "--workers",
                    "2",
                ]
            )
        assert "pool executor" in capsys.readouterr().err
