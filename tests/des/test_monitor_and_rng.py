"""Tests for monitors (counters, tallies, time-weighted values) and random streams."""

from __future__ import annotations

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.des import (
    Counter,
    Environment,
    MonitorRegistry,
    RandomStream,
    StreamFactory,
    Tally,
    TimeWeightedValue,
)


class TestCounter:
    def test_increment(self):
        counter = Counter("calls")
        counter.increment()
        counter.increment(4)
        assert counter.count == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("calls").increment(-1)

    def test_reset(self):
        counter = Counter("calls", count=7)
        counter.reset()
        assert counter.count == 0


class TestTally:
    def test_mean_and_extremes(self):
        tally = Tally("holding")
        for value in (2.0, 4.0, 6.0):
            tally.observe(value)
        assert tally.count == 3
        assert tally.mean == pytest.approx(4.0)
        assert tally.minimum == 2.0
        assert tally.maximum == 6.0

    def test_variance_matches_statistics_module(self):
        values = [3.2, 7.1, 0.4, 9.9, 5.5, 2.2]
        tally = Tally("x")
        for value in values:
            tally.observe(value)
        assert tally.variance == pytest.approx(statistics.variance(values))
        assert tally.std == pytest.approx(statistics.stdev(values))

    def test_empty_tally_raises(self):
        tally = Tally("empty")
        with pytest.raises(ValueError):
            _ = tally.mean
        with pytest.raises(ValueError):
            _ = tally.minimum

    def test_single_observation_variance_zero(self):
        tally = Tally("x")
        tally.observe(5.0)
        assert tally.variance == 0.0

    @given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=50))
    @settings(max_examples=50)
    def test_welford_agrees_with_batch(self, values):
        tally = Tally("x")
        for value in values:
            tally.observe(value)
        assert tally.mean == pytest.approx(statistics.fmean(values), abs=1e-6)


class TestTimeWeightedValue:
    def test_time_average_of_step_function(self):
        env = Environment()
        series = TimeWeightedValue(env, "occupancy", initial=0.0)

        def proc(env):
            yield env.timeout(10.0)
            series.update(4.0)
            yield env.timeout(10.0)
            series.update(0.0)
            yield env.timeout(20.0)

        env.process(proc(env))
        env.run()
        # 0 for 10s, 4 for 10s, 0 for 20s -> average 1.0
        assert series.time_average == pytest.approx(1.0)
        assert series.minimum == 0.0
        assert series.maximum == 4.0

    def test_add_delta(self):
        env = Environment()
        series = TimeWeightedValue(env, "x", initial=2.0)
        series.add(3.0)
        assert series.value == 5.0

    def test_history_records_changes(self):
        env = Environment()
        series = TimeWeightedValue(env, "x", initial=1.0)
        series.update(2.0)
        assert series.history == [(0.0, 1.0), (0.0, 2.0)]


class TestMonitorRegistry:
    def test_creates_and_reuses_entries(self):
        env = Environment()
        registry = MonitorRegistry(env)
        assert registry.counter("a") is registry.counter("a")
        assert registry.tally("b") is registry.tally("b")
        assert registry.time_weighted("c") is registry.time_weighted("c")

    def test_snapshot_keys(self):
        env = Environment()
        registry = MonitorRegistry(env)
        registry.counter("arrivals").increment(3)
        registry.tally("holding").observe(10.0)
        registry.time_weighted("occupancy", initial=5.0)
        snapshot = registry.snapshot()
        assert snapshot["count.arrivals"] == 3.0
        assert snapshot["mean.holding"] == 10.0
        assert "avg.occupancy" in snapshot


class TestRandomStream:
    def test_reproducible_given_seed(self):
        a = RandomStream("s", 99).uniform()
        b = RandomStream("s", 99).uniform()
        assert a == b

    def test_different_seeds_differ(self):
        assert RandomStream("s", 1).uniform() != RandomStream("s", 2).uniform()

    def test_uniform_bounds(self):
        stream = RandomStream("s", 7)
        for _ in range(100):
            assert 2.0 <= stream.uniform(2.0, 3.0) < 3.0
        with pytest.raises(ValueError):
            stream.uniform(3.0, 2.0)

    def test_integer_bounds_inclusive(self):
        stream = RandomStream("s", 7)
        values = {stream.integer(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}
        with pytest.raises(ValueError):
            stream.integer(3, 1)

    def test_exponential_mean(self):
        stream = RandomStream("s", 11)
        values = [stream.exponential(10.0) for _ in range(4000)]
        assert statistics.fmean(values) == pytest.approx(10.0, rel=0.1)
        with pytest.raises(ValueError):
            stream.exponential(0.0)

    def test_choice_with_weights_respects_zero_weight(self):
        stream = RandomStream("s", 13)
        picks = {stream.choice(["a", "b", "c"], [1.0, 0.0, 1.0]) for _ in range(200)}
        assert "b" not in picks

    def test_choice_validation(self):
        stream = RandomStream("s", 13)
        with pytest.raises(ValueError):
            stream.choice([])
        with pytest.raises(ValueError):
            stream.choice(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            stream.choice(["a", "b"], [0.0, 0.0])

    def test_bernoulli_bounds(self):
        stream = RandomStream("s", 17)
        with pytest.raises(ValueError):
            stream.bernoulli(1.5)
        assert stream.bernoulli(1.0) is True
        assert stream.bernoulli(0.0) is False

    def test_angle_degrees_range(self):
        stream = RandomStream("s", 19)
        for _ in range(100):
            assert -180.0 <= stream.angle_degrees() < 180.0

    def test_shuffle_preserves_elements(self):
        stream = RandomStream("s", 23)
        items = list(range(10))
        shuffled = stream.shuffle(items)
        assert sorted(shuffled) == items

    def test_pareto_and_lognormal_positive(self):
        stream = RandomStream("s", 29)
        assert stream.pareto(1.5, 2.0) >= 2.0
        assert stream.lognormal(0.0, 1.0) > 0.0
        with pytest.raises(ValueError):
            stream.pareto(0.0, 1.0)

    def test_spawn_creates_independent_child(self):
        parent = RandomStream("parent", 31)
        child_a = parent.spawn("child")
        child_b = RandomStream("parent", 31).spawn("child")
        assert child_a.uniform() == child_b.uniform()
        assert child_a.name == "parent/child"


class TestStreamFactory:
    def test_same_name_returns_same_stream(self):
        factory = StreamFactory(1)
        assert factory.stream("arrivals") is factory.stream("arrivals")

    def test_streams_are_decorrelated_across_names(self):
        factory = StreamFactory(1)
        a = [factory.stream("a").uniform() for _ in range(5)]
        b = [factory.stream("b").uniform() for _ in range(5)]
        assert a != b

    def test_reproducible_across_factories(self):
        first = StreamFactory(2024).stream("arrivals").uniform()
        second = StreamFactory(2024).stream("arrivals").uniform()
        assert first == second

    def test_contains_and_names(self):
        factory = StreamFactory(3)
        factory.stream("x")
        assert "x" in factory and "y" not in factory
        assert factory.stream_names() == ["x"]
