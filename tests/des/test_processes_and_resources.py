"""Tests for generator processes, interrupts, resources and containers."""

from __future__ import annotations

import pytest

from repro.des import Container, Interruption, PriorityResource, Resource


class TestProcesses:
    def test_sequential_timeouts(self, env):
        log = []

        def proc(env):
            yield env.timeout(1.0)
            log.append(env.now)
            yield env.timeout(2.0)
            log.append(env.now)
            return "done"

        process = env.process(proc(env))
        env.run()
        assert log == [1.0, 3.0]
        assert process.value == "done"

    def test_process_requires_generator(self, env):
        def not_a_generator(env):
            return 42

        with pytest.raises(TypeError):
            env.process(not_a_generator(env))

    def test_process_waits_for_process(self, env):
        def child(env):
            yield env.timeout(3.0)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return (env.now, result)

        parent_proc = env.process(parent(env))
        env.run()
        assert parent_proc.value == (3.0, "child-result")

    def test_yielding_non_event_fails_process(self, env):
        def proc(env):
            yield 42

        process = env.process(proc(env))
        process.defuse()
        env.run()
        assert not process.ok
        assert isinstance(process.exception, TypeError)

    def test_exception_in_process_propagates(self, env):
        def proc(env):
            yield env.timeout(1.0)
            raise ValueError("exploded")

        env.process(proc(env))
        with pytest.raises(ValueError, match="exploded"):
            env.run()

    def test_process_failure_can_be_caught_by_waiter(self, env):
        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("inner")

        def waiter(env):
            try:
                yield env.process(failing(env))
            except ValueError as exc:
                return f"caught {exc}"

        process = env.process(waiter(env))
        env.run()
        assert process.value == "caught inner"

    def test_interrupt_raises_inside_process(self, env):
        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interruption as interruption:
                return ("interrupted", interruption.cause, env.now)

        def attacker(env, victim_proc):
            yield env.timeout(5.0)
            victim_proc.interrupt(cause="preempted")

        victim_proc = env.process(victim(env))
        env.process(attacker(env, victim_proc))
        env.run()
        assert victim_proc.value == ("interrupted", "preempted", 5.0)

    def test_interrupt_finished_process_rejected(self, env):
        def quick(env):
            yield env.timeout(1.0)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_is_alive_lifecycle(self, env):
        def proc(env):
            yield env.timeout(1.0)

        process = env.process(proc(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_yield_already_processed_event_resumes(self, env):
        shared = env.timeout(1.0)

        def late_waiter(env):
            yield env.timeout(5.0)
            value = yield shared  # already processed by now
            return env.now

        process = env.process(late_waiter(env))
        env.run()
        assert process.value == pytest.approx(5.0)


class TestResource:
    def test_grants_up_to_capacity(self, env):
        resource = Resource(env, capacity=2)
        log = []

        def user(env, resource, name, hold):
            with resource.request() as req:
                yield req
                log.append((name, env.now, "start"))
                yield env.timeout(hold)
            log.append((name, env.now, "end"))

        for index in range(3):
            env.process(user(env, resource, f"u{index}", 10.0))
        env.run()
        starts = {name: time for name, time, kind in log if kind == "start"}
        assert starts["u0"] == 0.0 and starts["u1"] == 0.0
        assert starts["u2"] == 10.0

    def test_counts_and_queue_length(self, env):
        resource = Resource(env, capacity=1)

        def holder(env, resource):
            with resource.request() as req:
                yield req
                yield env.timeout(5.0)

        env.process(holder(env, resource))
        env.process(holder(env, resource))
        env.run(until=1.0)
        assert resource.count == 1
        assert resource.queue_length == 1

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_cancel_waiting_request(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        assert resource.queue_length == 1
        second.cancel()
        assert resource.queue_length == 0

    def test_priority_resource_orders_waiters(self, env):
        resource = PriorityResource(env, capacity=1)
        order = []

        def user(env, resource, name, priority, delay):
            yield env.timeout(delay)
            request = resource.request(priority=priority)
            yield request
            order.append(name)
            yield env.timeout(10.0)
            resource.release(request)

        env.process(user(env, resource, "holder", 0, 0.0))
        env.process(user(env, resource, "low-priority", 5, 1.0))
        env.process(user(env, resource, "high-priority", 0, 2.0))
        env.run()
        assert order == ["holder", "high-priority", "low-priority"]


class TestContainer:
    def test_initial_level_defaults_to_capacity(self, env):
        container = Container(env, capacity=40.0)
        assert container.level == 40.0
        assert container.used == 0.0

    def test_invalid_parameters(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=0.0)
        with pytest.raises(ValueError):
            Container(env, capacity=10.0, init=20.0)

    def test_try_get_and_try_put(self, env):
        container = Container(env, capacity=40.0)
        assert container.try_get(10.0)
        assert container.level == 30.0
        assert not container.try_get(35.0)
        assert container.try_put(5.0)
        assert container.level == 35.0
        assert not container.try_put(10.0)

    def test_try_get_invalid_amount(self, env):
        container = Container(env, capacity=10.0)
        with pytest.raises(ValueError):
            container.try_get(0.0)
        with pytest.raises(ValueError):
            container.try_put(-1.0)

    def test_blocking_get_waits_for_put(self, env):
        container = Container(env, capacity=40.0, init=0.0)
        log = []

        def consumer(env, container):
            yield container.get(10.0)
            log.append(("got", env.now))

        def producer(env, container):
            yield env.timeout(7.0)
            yield container.put(10.0)

        env.process(consumer(env, container))
        env.process(producer(env, container))
        env.run()
        assert log == [("got", 7.0)]

    def test_blocking_put_waits_for_space(self, env):
        container = Container(env, capacity=10.0, init=10.0)
        log = []

        def producer(env, container):
            yield container.put(5.0)
            log.append(("put", env.now))

        def consumer(env, container):
            yield env.timeout(3.0)
            yield container.get(6.0)

        env.process(producer(env, container))
        env.process(consumer(env, container))
        env.run()
        assert log == [("put", 3.0)]

    def test_get_more_than_capacity_fails_event(self, env):
        container = Container(env, capacity=10.0)
        event = container.get(20.0)
        event.defuse()
        env.run()
        assert not event.ok

    def test_fifo_gets(self, env):
        container = Container(env, capacity=10.0, init=0.0)
        order = []

        def consumer(env, container, name, amount):
            yield container.get(amount)
            order.append(name)

        env.process(consumer(env, container, "first", 4.0))
        env.process(consumer(env, container, "second", 2.0))

        def producer(env, container):
            yield env.timeout(1.0)
            yield container.put(10.0)

        env.process(producer(env, container))
        env.run()
        assert order == ["first", "second"]
