"""Tests for the DES environment, events, timeouts and composite conditions."""

from __future__ import annotations

import pytest

from repro.des import (
    Environment,
    Event,
    SimulationError,
)
from repro.des.queue import EmptyQueueError, EventQueue, Priority


class TestEventQueue:
    def test_orders_by_time(self):
        env = Environment()
        queue = EventQueue()
        first, second = Event(env), Event(env)
        queue.push(second, 10.0)
        queue.push(first, 5.0)
        assert queue.pop().event is first
        assert queue.pop().event is second

    def test_fifo_within_same_time(self):
        env = Environment()
        queue = EventQueue()
        events = [Event(env) for _ in range(5)]
        for event in events:
            queue.push(event, 1.0)
        popped = [queue.pop().event for _ in range(5)]
        assert popped == events

    def test_priority_breaks_ties(self):
        env = Environment()
        queue = EventQueue()
        normal, urgent = Event(env), Event(env)
        queue.push(normal, 1.0, Priority.NORMAL)
        queue.push(urgent, 1.0, Priority.URGENT)
        assert queue.pop().event is urgent

    def test_cancel_skips_item(self):
        env = Environment()
        queue = EventQueue()
        a, b = Event(env), Event(env)
        item = queue.push(a, 1.0)
        queue.push(b, 2.0)
        queue.cancel(item)
        assert len(queue) == 1
        assert queue.pop().event is b

    def test_empty_pop_raises(self):
        with pytest.raises(EmptyQueueError):
            EventQueue().pop()

    def test_peek_time(self):
        env = Environment()
        queue = EventQueue()
        queue.push(Event(env), 3.5)
        assert queue.peek_time() == 3.5

    def test_clear(self):
        env = Environment()
        queue = EventQueue()
        queue.push(Event(env), 1.0)
        queue.clear()
        assert not queue


class TestEvents:
    def test_succeed_delivers_value(self, env):
        event = env.event()
        event.succeed("payload")
        env.run()
        assert event.processed
        assert event.value == "payload"

    def test_double_trigger_rejected(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_failed_event_propagates_at_step(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_defused_failure_does_not_propagate(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        event.defuse()
        env.run()
        assert event.triggered and not event.ok

    def test_state_transitions(self, env):
        event = env.event()
        assert not event.triggered
        event.succeed()
        assert event.triggered and not event.processed
        env.run()
        assert event.processed


class TestTimeouts:
    def test_timeout_advances_clock(self, env):
        timeout = env.timeout(12.5)
        env.run()
        assert env.now == pytest.approx(12.5)
        assert timeout.processed

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeout_value(self, env):
        timeout = env.timeout(1.0, value="done")
        env.run()
        assert timeout.value == "done"


class TestRunSemantics:
    def test_run_until_time_stops_clock_at_horizon(self, env):
        env.timeout(100.0)
        env.run(until=30.0)
        assert env.now == pytest.approx(30.0)
        assert env.pending_events == 1

    def test_run_until_past_time_rejected(self, env):
        env.timeout(1.0)
        env.run(until=5.0)
        with pytest.raises(ValueError):
            env.run(until=2.0)

    def test_run_until_event(self, env):
        def proc(env):
            yield env.timeout(4.0)
            return "finished"

        process = env.process(proc(env))
        value = env.run(until=process)
        assert value == "finished"
        assert env.now == pytest.approx(4.0)

    def test_run_until_untriggered_event_with_no_work_raises(self, env):
        orphan = env.event()
        with pytest.raises(SimulationError):
            env.run(until=orphan)

    def test_step_without_events_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_empty_is_infinite(self, env):
        assert env.peek() == float("inf")

    def test_processed_event_counter(self, env):
        env.timeout(1.0)
        env.timeout(2.0)
        env.run()
        assert env.processed_events == 2

    def test_schedule_in_past_rejected(self, env):
        event = env.event()
        with pytest.raises(ValueError):
            env.schedule(event, delay=-0.1)


class TestConditions:
    def test_all_of_waits_for_every_event(self, env):
        def proc(env):
            results = yield env.all_of([env.timeout(2.0, "a"), env.timeout(5.0, "b")])
            return (env.now, len(results))

        process = env.process(proc(env))
        env.run()
        assert process.value == (5.0, 2)

    def test_any_of_fires_on_first(self, env):
        def proc(env):
            yield env.any_of([env.timeout(2.0), env.timeout(50.0)])
            return env.now

        process = env.process(proc(env))
        env.run(until=process)
        assert process.value == pytest.approx(2.0)

    def test_empty_all_of_triggers_immediately(self, env):
        condition = env.all_of([])
        env.run()
        assert condition.processed

    def test_all_of_propagates_failure(self, env):
        good = env.timeout(1.0)
        bad = env.event()
        condition = env.all_of([good, bad])
        bad.fail(RuntimeError("child failed"))
        condition.defuse()
        env.run()
        assert condition.triggered and not condition.ok

    def test_condition_rejects_foreign_events(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            env.all_of([other.timeout(1.0)])
