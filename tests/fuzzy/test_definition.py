"""Declarative FLC definitions: validation, round-trips and extraction."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.io import (
    SCHEMA_VERSION,
    flc_definition_from_dict,
    flc_definition_to_dict,
    flc_definition_to_json,
    read_flc_definition_json,
    write_flc_definition_json,
)
from repro.cac.facs.definitions import flc1_definition, flc2_definition
from repro.fuzzy.definition import (
    DefinitionError,
    FLCDefinition,
    MembershipDef,
    RuleDef,
    TermDef,
    VariableDef,
    definition_from_controller,
    definition_from_rule_base,
)
from repro.fuzzy.membership import Gaussian
from repro.fuzzy.rules import Consequent, FuzzyRule, Proposition, RuleBase
from repro.fuzzy.variables import LinguisticVariable, Term


def tiny_definition() -> FLCDefinition:
    """A minimal 1-input/1-output definition used across the tests."""
    return FLCDefinition(
        name="tiny",
        inputs=(
            VariableDef(
                name="x",
                universe=(0.0, 10.0),
                terms=(
                    TermDef("lo", MembershipDef("triangular", (0.0, 0.0, 5.0))),
                    TermDef("hi", MembershipDef("triangular", (5.0, 10.0, 10.0))),
                ),
            ),
        ),
        outputs=(
            VariableDef(
                name="y",
                universe=(0.0, 1.0),
                terms=(
                    TermDef("no", MembershipDef("triangular", (0.0, 0.0, 1.0))),
                    TermDef("yes", MembershipDef("triangular", (0.0, 1.0, 1.0))),
                ),
            ),
        ),
        rules=(
            RuleDef(antecedent=(("x", "lo"),), consequents=(("y", "no"),), label="1"),
            RuleDef(antecedent=(("x", "hi"),), consequents=(("y", "yes"),), label="2"),
        ),
    )


class TestMembershipDef:
    def test_rejects_unknown_kind(self):
        with pytest.raises(DefinitionError, match="unknown membership kind"):
            MembershipDef("gaussian", (0.0, 1.0))

    def test_rejects_wrong_parameter_count(self):
        with pytest.raises(DefinitionError, match="triangular"):
            MembershipDef("triangular", (0.0, 1.0))

    def test_rejects_non_numeric_parameters(self):
        with pytest.raises(DefinitionError):
            MembershipDef("triangular", (0.0, "mid", 1.0))

    def test_build_error_names_the_variable_term_and_params(self):
        bad = object.__new__(MembershipDef)
        object.__setattr__(bad, "kind", "triangular")
        object.__setattr__(bad, "params", (5.0, 1.0, 0.0))
        with pytest.raises(DefinitionError) as excinfo:
            bad.build(variable="S", term="M")
        message = str(excinfo.value)
        assert "'S'" in message and "'M'" in message
        assert "[5.0, 1.0, 0.0]" in message


class TestVariableDef:
    def test_rejects_inverted_universe(self):
        with pytest.raises(DefinitionError, match="universe"):
            VariableDef(name="x", universe=(1.0, 0.0), terms=(
                TermDef("t", MembershipDef("triangular", (0.0, 0.5, 1.0))),
            ))

    def test_rejects_duplicate_terms(self):
        term = TermDef("t", MembershipDef("triangular", (0.0, 0.5, 1.0)))
        with pytest.raises(DefinitionError, match="duplicate"):
            VariableDef(name="x", universe=(0.0, 1.0), terms=(term, term))

    def test_invalid_membership_fails_at_definition_time_with_context(self):
        with pytest.raises(DefinitionError) as excinfo:
            VariableDef(
                name="speed",
                universe=(0.0, 1.0),
                terms=(TermDef("fast", MembershipDef("triangular", (1.0, 0.5, 0.0))),),
            )
        assert "'speed'" in str(excinfo.value)
        assert "'fast'" in str(excinfo.value)

    def test_build_produces_a_linguistic_variable(self):
        variable = tiny_definition().inputs[0].build()
        assert isinstance(variable, LinguisticVariable)
        assert variable.universe == (0.0, 10.0)
        assert [term.name for term in variable] == ["lo", "hi"]


class TestRuleDef:
    def test_weight_must_lie_in_unit_interval(self):
        with pytest.raises(DefinitionError, match="weight"):
            RuleDef(antecedent=(("x", "lo"),), consequents=(("y", "no"),), weight=1.5)

    def test_antecedent_pairs_are_validated(self):
        with pytest.raises(DefinitionError):
            RuleDef(antecedent=(("x",),), consequents=(("y", "no"),))


class TestFLCDefinition:
    def test_rejects_rule_referencing_unknown_variable(self):
        base = tiny_definition()
        with pytest.raises(DefinitionError, match="unknown input variable 'z'"):
            FLCDefinition(
                name=base.name,
                inputs=base.inputs,
                outputs=base.outputs,
                rules=(RuleDef(antecedent=(("z", "lo"),), consequents=(("y", "no"),)),),
            )

    def test_rejects_rule_referencing_unknown_term(self):
        base = tiny_definition()
        with pytest.raises(DefinitionError, match="unknown term 'xxl'"):
            FLCDefinition(
                name=base.name,
                inputs=base.inputs,
                outputs=base.outputs,
                rules=(RuleDef(antecedent=(("x", "xxl"),), consequents=(("y", "no"),)),),
            )

    def test_rejects_unknown_defuzzifier(self):
        base = tiny_definition()
        with pytest.raises(DefinitionError, match="defuzzifier"):
            FLCDefinition(
                name=base.name,
                inputs=base.inputs,
                outputs=base.outputs,
                rules=base.rules,
                defuzzifier="median-of-maxima",
            )

    def test_with_variable_replaces_and_revalidates(self):
        base = tiny_definition()
        replacement = VariableDef(
            name="x",
            universe=(0.0, 20.0),
            terms=base.inputs[0].terms,
        )
        updated = base.with_variable(replacement)
        assert updated.variable("x").universe == (0.0, 20.0)
        assert base.variable("x").universe == (0.0, 10.0)
        with pytest.raises(DefinitionError, match="no variable"):
            base.with_variable(VariableDef(
                name="nope", universe=(0.0, 1.0), terms=replacement.terms
            ))

    def test_with_rule_replaces_by_label(self):
        base = tiny_definition()
        updated = base.with_rule(RuleDef(
            antecedent=(("x", "lo"),), consequents=(("y", "no"),),
            weight=0.25, label="1",
        ))
        assert updated.rule_by_label("1").weight == 0.25
        assert base.rule_by_label("1").weight == 1.0

    def test_build_controller_evaluates(self):
        controller = tiny_definition().build_controller(engine="reference")
        assert 0.0 <= controller.compute(x=2.0) <= 1.0


class TestRoundTrips:
    @pytest.mark.parametrize("definition", [flc1_definition(), flc2_definition()],
                             ids=["FLC1", "FLC2"])
    def test_dict_round_trip_is_lossless(self, definition):
        assert FLCDefinition.from_dict(definition.to_dict()) == definition

    def test_json_codec_round_trip_and_version_stamp(self, tmp_path):
        definition = tiny_definition()
        payload = flc_definition_to_dict(definition)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["type"] == "flc-definition"
        assert flc_definition_from_dict(json.loads(json.dumps(payload))) == definition
        path = tmp_path / "tiny.json"
        write_flc_definition_json(definition, path)
        assert read_flc_definition_json(path) == definition
        assert path.read_text() == flc_definition_to_json(definition)

    def test_from_dict_rejects_unknown_keys(self):
        payload = tiny_definition().to_dict()
        payload["volume"] = 11
        with pytest.raises(DefinitionError, match="volume"):
            FLCDefinition.from_dict(payload)

    def test_read_rejects_wrong_payload_type(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema_version": SCHEMA_VERSION, "type": "other"}))
        with pytest.raises(DefinitionError, match="other"):
            read_flc_definition_json(path)

    def test_read_reports_the_offending_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DefinitionError, match="broken.json"):
            read_flc_definition_json(path)


class TestExtraction:
    def test_extraction_round_trips_the_builtin_definitions(self):
        for definition in (flc1_definition(), flc2_definition()):
            controller = definition.build_controller(engine="reference")
            assert definition_from_controller(controller) == definition

    def test_unsupported_membership_kind_is_rejected(self):
        variable = LinguisticVariable(
            "x", (0.0, 1.0), [Term("g", Gaussian(0.5, 0.1))]
        )
        out = tiny_definition().outputs[0].build()
        rule = FuzzyRule(
            antecedent=Proposition("x", "g"),
            consequents=(Consequent("y", "yes"),),
        )
        rules = RuleBase([rule], inputs=[variable], outputs=[out])
        with pytest.raises(DefinitionError, match="no serializable definition"):
            definition_from_rule_base(rules, name="gauss")


# -- property tests -------------------------------------------------------

mf_params = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
              allow_infinity=False),
    min_size=3, max_size=3,
).map(lambda vs: tuple(sorted(vs)))
term_names = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def definitions(draw) -> FLCDefinition:
    def variable(name: str) -> VariableDef:
        names = draw(st.lists(term_names, min_size=1, max_size=3, unique=True))
        terms = tuple(
            TermDef(term, MembershipDef("triangular", draw(mf_params)))
            for term in names
        )
        return VariableDef(
            name=name,
            universe=(-200.0, 200.0),
            terms=terms,
            resolution=draw(st.integers(min_value=2, max_value=64)),
        )

    inputs = tuple(variable(name) for name in ("in1", "in2"))
    outputs = (variable("out"),)
    rules = tuple(
        RuleDef(
            antecedent=tuple(
                (var.name, draw(st.sampled_from(var.term_names())))
                for var in inputs
            ),
            consequents=(
                ("out", draw(st.sampled_from(outputs[0].term_names()))),
            ),
            weight=draw(st.floats(min_value=0.0, max_value=1.0,
                                  allow_nan=False)),
            label=str(index),
        )
        for index in range(draw(st.integers(min_value=1, max_value=3)))
    )
    return FLCDefinition(
        name=draw(st.sampled_from(["flc-a", "flc-b"])),
        inputs=inputs,
        outputs=outputs,
        rules=rules,
        defuzzifier=draw(st.sampled_from(["centroid", "bisector", "mom"])),
    )


@settings(max_examples=50, deadline=None)
@given(definition=definitions())
def test_random_definitions_round_trip_losslessly(definition):
    assert FLCDefinition.from_dict(definition.to_dict()) == definition
    via_json = flc_definition_from_dict(
        json.loads(flc_definition_to_json(definition))
    )
    assert via_json == definition
