"""Tests for t-norms, s-norms and complements, including algebraic properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzzy.operators import (
    BOUNDED_SUM,
    DRASTIC_AND,
    DRASTIC_OR,
    EINSTEIN_OR,
    HAMACHER_AND,
    LUKASIEWICZ_AND,
    MAXIMUM,
    MINIMUM,
    NILPOTENT_AND,
    NILPOTENT_OR,
    PROBABILISTIC_SUM,
    PRODUCT,
    STANDARD_COMPLEMENT,
    SUGENO_COMPLEMENT,
    YAGER_COMPLEMENT,
    aggregate,
    snorm_by_name,
    tnorm_by_name,
)

unit = st.floats(0.0, 1.0)

ALL_TNORMS = [MINIMUM, PRODUCT, LUKASIEWICZ_AND, DRASTIC_AND, NILPOTENT_AND, HAMACHER_AND]
ALL_SNORMS = [MAXIMUM, PROBABILISTIC_SUM, BOUNDED_SUM, DRASTIC_OR, NILPOTENT_OR, EINSTEIN_OR]


class TestTNormProperties:
    @pytest.mark.parametrize("tnorm", ALL_TNORMS, ids=lambda t: t.name)
    @given(a=unit, b=unit)
    @settings(max_examples=50)
    def test_commutativity(self, tnorm, a, b):
        assert tnorm(a, b) == pytest.approx(tnorm(b, a), abs=1e-12)

    @pytest.mark.parametrize("tnorm", ALL_TNORMS, ids=lambda t: t.name)
    @given(a=unit)
    @settings(max_examples=50)
    def test_identity_element_one(self, tnorm, a):
        assert tnorm(a, 1.0) == pytest.approx(a, abs=1e-12)

    @pytest.mark.parametrize("tnorm", ALL_TNORMS, ids=lambda t: t.name)
    @given(a=unit, b=unit)
    @settings(max_examples=50)
    def test_result_in_unit_interval(self, tnorm, a, b):
        assert -1e-12 <= float(tnorm(a, b)) <= 1.0 + 1e-12

    @pytest.mark.parametrize("tnorm", ALL_TNORMS, ids=lambda t: t.name)
    @given(a=unit, b=unit)
    @settings(max_examples=50)
    def test_bounded_above_by_minimum(self, tnorm, a, b):
        assert float(tnorm(a, b)) <= min(a, b) + 1e-12

    def test_minimum_values(self):
        assert MINIMUM(0.3, 0.7) == pytest.approx(0.3)

    def test_product_values(self):
        assert PRODUCT(0.5, 0.4) == pytest.approx(0.2)

    def test_lukasiewicz_values(self):
        assert LUKASIEWICZ_AND(0.7, 0.5) == pytest.approx(0.2)
        assert LUKASIEWICZ_AND(0.3, 0.4) == pytest.approx(0.0)

    def test_drastic_values(self):
        assert DRASTIC_AND(1.0, 0.4) == pytest.approx(0.4)
        assert DRASTIC_AND(0.9, 0.4) == pytest.approx(0.0)

    def test_reduce(self):
        assert MINIMUM.reduce([0.9, 0.4, 0.6]) == pytest.approx(0.4)
        assert PRODUCT.reduce([0.5, 0.5, 0.5]) == pytest.approx(0.125)

    def test_reduce_empty_raises(self):
        with pytest.raises(ValueError):
            MINIMUM.reduce([])


class TestSNormProperties:
    @pytest.mark.parametrize("snorm", ALL_SNORMS, ids=lambda s: s.name)
    @given(a=unit, b=unit)
    @settings(max_examples=50)
    def test_commutativity(self, snorm, a, b):
        assert snorm(a, b) == pytest.approx(snorm(b, a), abs=1e-12)

    @pytest.mark.parametrize("snorm", ALL_SNORMS, ids=lambda s: s.name)
    @given(a=unit)
    @settings(max_examples=50)
    def test_identity_element_zero(self, snorm, a):
        assert snorm(a, 0.0) == pytest.approx(a, abs=1e-12)

    @pytest.mark.parametrize("snorm", ALL_SNORMS, ids=lambda s: s.name)
    @given(a=unit, b=unit)
    @settings(max_examples=50)
    def test_bounded_below_by_maximum(self, snorm, a, b):
        assert float(snorm(a, b)) >= max(a, b) - 1e-12

    def test_maximum_values(self):
        assert MAXIMUM(0.3, 0.7) == pytest.approx(0.7)

    def test_probabilistic_sum_values(self):
        assert PROBABILISTIC_SUM(0.5, 0.5) == pytest.approx(0.75)

    def test_bounded_sum_values(self):
        assert BOUNDED_SUM(0.7, 0.5) == pytest.approx(1.0)
        assert BOUNDED_SUM(0.3, 0.4) == pytest.approx(0.7)

    def test_reduce(self):
        assert MAXIMUM.reduce([0.1, 0.8, 0.3]) == pytest.approx(0.8)

    def test_reduce_empty_raises(self):
        with pytest.raises(ValueError):
            MAXIMUM.reduce([])


class TestDuality:
    @given(a=unit, b=unit)
    @settings(max_examples=100)
    def test_min_max_de_morgan(self, a, b):
        """min and max are dual under the standard complement."""
        lhs = 1.0 - MINIMUM(a, b)
        rhs = MAXIMUM(1.0 - a, 1.0 - b)
        assert lhs == pytest.approx(rhs, abs=1e-12)

    @given(a=unit, b=unit)
    @settings(max_examples=100)
    def test_product_probsum_de_morgan(self, a, b):
        lhs = 1.0 - PRODUCT(a, b)
        rhs = PROBABILISTIC_SUM(1.0 - a, 1.0 - b)
        assert lhs == pytest.approx(rhs, abs=1e-12)


class TestComplements:
    @given(a=unit)
    @settings(max_examples=50)
    def test_standard_complement_involution(self, a):
        assert STANDARD_COMPLEMENT(STANDARD_COMPLEMENT(a)) == pytest.approx(a, abs=1e-12)

    def test_sugeno_requires_lambda_above_minus_one(self):
        with pytest.raises(ValueError):
            SUGENO_COMPLEMENT(-1.0)

    @given(a=unit, lam=st.floats(-0.9, 5.0))
    @settings(max_examples=50)
    def test_sugeno_boundary_conditions(self, a, lam):
        comp = SUGENO_COMPLEMENT(lam)
        assert comp(0.0) == pytest.approx(1.0)
        assert comp(1.0) == pytest.approx(0.0, abs=1e-12)

    def test_yager_requires_positive_w(self):
        with pytest.raises(ValueError):
            YAGER_COMPLEMENT(0.0)

    def test_yager_reduces_to_standard_for_w_one(self):
        comp = YAGER_COMPLEMENT(1.0)
        for a in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert comp(a) == pytest.approx(1.0 - a)


class TestRegistryAndAggregation:
    def test_lookup_by_name(self):
        assert tnorm_by_name("minimum") is MINIMUM
        assert snorm_by_name("maximum") is MAXIMUM

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            tnorm_by_name("nope")
        with pytest.raises(KeyError):
            snorm_by_name("nope")

    def test_aggregate_max(self):
        a = np.array([0.1, 0.5, 0.9])
        b = np.array([0.3, 0.2, 0.8])
        np.testing.assert_allclose(aggregate(MAXIMUM, [a, b]), [0.3, 0.5, 0.9])

    def test_aggregate_single_surface_returns_copy(self):
        a = np.array([0.1, 0.2])
        result = aggregate(MAXIMUM, [a])
        np.testing.assert_allclose(result, a)
        result[0] = 0.9
        assert a[0] == pytest.approx(0.1)

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate(MAXIMUM, [])
