"""Tests for linguistic variables, terms and fuzzification."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzzy.membership import Triangular
from repro.fuzzy.variables import LinguisticVariable, Term


def make_speed_variable(resolution: int = 201) -> LinguisticVariable:
    return LinguisticVariable(
        "speed",
        (0.0, 120.0),
        [
            Term("slow", Triangular(0.0, 0.0, 60.0)),
            Term("middle", Triangular(0.0, 60.0, 120.0)),
            Term("fast", Triangular(60.0, 120.0, 120.0)),
        ],
        resolution=resolution,
    )


class TestTerm:
    def test_degree_delegates_to_membership(self):
        term = Term("slow", Triangular(0.0, 0.0, 60.0))
        assert term.degree(30.0) == pytest.approx(0.5)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Term("", Triangular(0.0, 1.0, 2.0))


class TestLinguisticVariableConstruction:
    def test_basic_properties(self):
        var = make_speed_variable()
        assert var.name == "speed"
        assert var.universe == (0.0, 120.0)
        assert var.term_names == ["slow", "middle", "fast"]
        assert len(var) == 3
        assert "slow" in var and "warp" not in var

    def test_grid_spans_universe(self):
        var = make_speed_variable(resolution=11)
        assert var.grid[0] == pytest.approx(0.0)
        assert var.grid[-1] == pytest.approx(120.0)
        assert len(var.grid) == 11

    def test_duplicate_term_names_rejected(self):
        with pytest.raises(ValueError):
            LinguisticVariable(
                "x",
                (0.0, 1.0),
                [Term("a", Triangular(0, 0, 1)), Term("a", Triangular(0, 1, 1))],
            )

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            LinguisticVariable("x", (0.0, 1.0), [])

    def test_bad_universe_rejected(self):
        with pytest.raises(ValueError):
            LinguisticVariable("x", (1.0, 1.0), [Term("a", Triangular(0, 0, 1))])

    def test_bad_resolution_rejected(self):
        with pytest.raises(ValueError):
            LinguisticVariable(
                "x", (0.0, 1.0), [Term("a", Triangular(0, 0, 1))], resolution=2
            )

    def test_unknown_term_lookup_raises(self):
        var = make_speed_variable()
        with pytest.raises(KeyError):
            var.term("warp")

    def test_iteration_yields_terms(self):
        var = make_speed_variable()
        assert [t.name for t in var] == ["slow", "middle", "fast"]


class TestFuzzification:
    def test_degrees_at_prototype_points(self):
        var = make_speed_variable()
        result = var.fuzzify(0.0)
        assert result["slow"] == pytest.approx(1.0)
        assert result["middle"] == pytest.approx(0.0)

        result = var.fuzzify(60.0)
        assert result["middle"] == pytest.approx(1.0)

    def test_degrees_sum_reasonably_for_partition(self):
        """For this triangular partition, degrees at any point sum to ~1."""
        var = make_speed_variable()
        for x in np.linspace(0.0, 120.0, 41):
            total = sum(var.fuzzify(float(x)).degrees.values())
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_out_of_range_is_clamped(self):
        var = make_speed_variable()
        result = var.fuzzify(500.0)
        assert result.value == pytest.approx(120.0)
        assert result["fast"] == pytest.approx(1.0)

    def test_strict_mode_rejects_out_of_range(self):
        var = make_speed_variable()
        with pytest.raises(ValueError):
            var.fuzzify(500.0, strict=True)

    def test_best_term_and_active_terms(self):
        var = make_speed_variable()
        result = var.fuzzify(100.0)
        assert result.best_term() == "fast"
        active = result.active_terms()
        assert set(active) == {"middle", "fast"}

    def test_result_getitem(self):
        var = make_speed_variable()
        result = var.fuzzify(30.0)
        assert result["slow"] == pytest.approx(0.5)

    @given(x=st.floats(-50.0, 200.0))
    @settings(max_examples=100)
    def test_degrees_always_in_unit_interval(self, x):
        var = make_speed_variable()
        for mu in var.fuzzify(x).degrees.values():
            assert 0.0 <= mu <= 1.0


class TestCoverage:
    def test_complete_partition_is_complete(self):
        assert make_speed_variable().is_complete()

    def test_gap_detected(self):
        var = LinguisticVariable(
            "x",
            (0.0, 10.0),
            [
                Term("low", Triangular(0.0, 1.0, 2.0)),
                Term("high", Triangular(8.0, 9.0, 10.0)),
            ],
        )
        assert not var.is_complete()

    def test_coverage_shape(self):
        var = make_speed_variable(resolution=51)
        assert var.coverage().shape == (51,)

    def test_sample_term(self):
        var = make_speed_variable(resolution=13)
        samples = var.sample_term("slow")
        assert samples[0] == pytest.approx(1.0)
        assert samples[-1] == pytest.approx(0.0)

    def test_clip(self):
        var = make_speed_variable()
        assert var.clip(-5.0) == 0.0
        assert var.clip(500.0) == 120.0
        assert var.clip(42.0) == 42.0
