"""Equivalence regression tests: CompiledMamdaniEngine vs MamdaniEngine.

The compiled engine is the default fast path for FLC1/FLC2, so these tests
lock down the guarantee it is built on: for the paper's minimum/maximum
operators it reproduces the reference engine bit for bit, and for every
other registered operator family it agrees to well within 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cac.facs.config import DEFAULT_FLC1_CONFIG, DEFAULT_FLC2_CONFIG
from repro.cac.facs.frb1 import frb1_rules
from repro.cac.facs.frb2 import frb2_rules
from repro.cac.facs.system import FACSConfig, FuzzyAdmissionControlSystem
from repro.fuzzy.compiled import (
    CompiledMamdaniEngine,
    CrispInference,
    RuleCompilationError,
)
from repro.fuzzy.controller import FuzzyController
from repro.fuzzy.defuzzification import (
    Bisector,
    DefuzzificationError,
    MeanOfMaximum,
)
from repro.fuzzy.inference import ImplicationMethod, MamdaniEngine
from repro.fuzzy.membership import Triangular
from repro.fuzzy.operators import (
    BOUNDED_SUM,
    LUKASIEWICZ_AND,
    MAXIMUM,
    MINIMUM,
    PROBABILISTIC_SUM,
    PRODUCT,
)
from repro.fuzzy.rules import RuleBase
from repro.fuzzy.variables import LinguisticVariable, Term

# Paper operating points (the curve parameters of Figs. 7-9).
PAPER_SPEEDS = (4.0, 10.0, 30.0, 60.0)
PAPER_ANGLES = (0.0, 30.0, 50.0, 60.0, 90.0)
PAPER_DISTANCES = (1.0, 3.0, 7.0, 10.0)


@pytest.fixture(scope="module")
def rb1() -> RuleBase:
    config = DEFAULT_FLC1_CONFIG
    return RuleBase(
        frb1_rules(),
        [config.speed_variable(), config.angle_variable(), config.distance_variable()],
        [config.correction_variable()],
        name="frb1",
    )


@pytest.fixture(scope="module")
def rb2() -> RuleBase:
    config = DEFAULT_FLC2_CONFIG
    return RuleBase(
        frb2_rules(),
        [
            config.correction_variable(),
            config.request_variable(),
            config.counter_variable(),
        ],
        [config.decision_variable()],
        name="frb2",
    )


@pytest.fixture(scope="module")
def engines1(rb1) -> tuple[MamdaniEngine, CompiledMamdaniEngine]:
    return MamdaniEngine(rb1), CompiledMamdaniEngine(rb1)


@pytest.fixture(scope="module")
def engines2(rb2) -> tuple[MamdaniEngine, CompiledMamdaniEngine]:
    return MamdaniEngine(rb2), CompiledMamdaniEngine(rb2)


class TestDenseSurfaceEquivalence:
    """Dense control-surface grids agree between the two engines."""

    def test_flc1_speed_angle_surface(self, engines1):
        reference, compiled = engines1
        for distance in (1.0, 5.0, 9.0):
            xs_r, ys_r, z_r = reference.control_surface(
                "S", "A", "Cv", fixed={"D": distance}, resolution=13
            )
            xs_c, ys_c, z_c = compiled.control_surface(
                "S", "A", "Cv", fixed={"D": distance}, resolution=13
            )
            np.testing.assert_array_equal(xs_r, xs_c)
            np.testing.assert_array_equal(ys_r, ys_c)
            assert np.max(np.abs(z_r - z_c)) <= 1e-9
            # The paper operators are min/max: the fast path is exact.
            np.testing.assert_array_equal(z_r, z_c)

    def test_flc1_speed_distance_surface(self, engines1):
        reference, compiled = engines1
        _, _, z_r = reference.control_surface(
            "S", "D", "Cv", fixed={"A": 15.0}, resolution=13
        )
        _, _, z_c = compiled.control_surface(
            "S", "D", "Cv", fixed={"A": 15.0}, resolution=13
        )
        np.testing.assert_array_equal(z_r, z_c)

    def test_flc2_correction_counter_surface(self, engines2):
        reference, compiled = engines2
        for request_bu in (1.0, 5.0, 10.0):
            _, _, z_r = reference.control_surface(
                "Cv", "Cs", "AR", fixed={"R": request_bu}, resolution=13
            )
            _, _, z_c = compiled.control_surface(
                "Cv", "Cs", "AR", fixed={"R": request_bu}, resolution=13
            )
            assert np.max(np.abs(z_r - z_c)) <= 1e-9
            np.testing.assert_array_equal(z_r, z_c)


class TestPaperOperatingPoints:
    """Every paper operating point produces identical inferences."""

    def test_flc1_paper_points(self, engines1):
        reference, compiled = engines1
        for speed in PAPER_SPEEDS:
            for angle in PAPER_ANGLES:
                for distance in PAPER_DISTANCES:
                    inputs = {"S": speed, "A": angle, "D": distance}
                    expected = reference.infer(inputs)
                    full = compiled.infer(inputs)
                    crisp = compiled.infer_crisp(inputs)
                    assert full["Cv"] == expected["Cv"]
                    assert crisp["Cv"] == expected["Cv"]

    def test_flc2_paper_points(self, engines2):
        reference, compiled = engines2
        for correction in (0.0, 0.25, 0.5, 0.75, 1.0):
            for request_bu in (1.0, 5.0, 10.0):
                for counter in (0.0, 10.0, 20.0, 30.0, 40.0):
                    inputs = {"Cv": correction, "R": request_bu, "Cs": counter}
                    expected = reference.infer(inputs)["AR"]
                    assert compiled.infer_crisp(inputs)["AR"] == expected

    def test_full_inference_diagnostics_match(self, engines1):
        reference, compiled = engines1
        inputs = {"S": 45.0, "A": -60.0, "D": 3.5}
        expected = reference.infer(inputs)
        actual = compiled.infer(inputs)
        assert actual.outputs == expected.outputs
        assert actual.fuzzified_inputs == expected.fuzzified_inputs
        assert len(actual.activations) == len(expected.activations)
        for got, want in zip(actual.activations, expected.activations):
            assert got.rule is want.rule
            assert got.firing_strength == want.firing_strength
        for name in expected.aggregated:
            np.testing.assert_array_equal(actual.aggregated[name], expected.aggregated[name])
        assert (actual.dominant_rule().rule.label == expected.dominant_rule().rule.label)

    def test_dominant_rule_matches_crisp_path(self, engines1):
        reference, compiled = engines1
        rng = np.random.default_rng(7)
        for _ in range(50):
            inputs = {
                "S": float(rng.uniform(0, 120)),
                "A": float(rng.uniform(-180, 180)),
                "D": float(rng.uniform(0, 10)),
            }
            expected = reference.infer(inputs).dominant_rule().rule.label
            assert compiled.infer_crisp(inputs).dominant_label == expected


class TestOperatorFamilies:
    """Non-default operator families agree to 1e-9 (reassociation only)."""

    @pytest.mark.parametrize(
        "tnorm,snorm,implication",
        [
            (PRODUCT, MAXIMUM, ImplicationMethod.CLIP),
            (PRODUCT, PROBABILISTIC_SUM, ImplicationMethod.SCALE),
            (MINIMUM, BOUNDED_SUM, ImplicationMethod.CLIP),
            (LUKASIEWICZ_AND, MAXIMUM, ImplicationMethod.SCALE),
        ],
    )
    def test_flc2_operator_families(self, rb2, tnorm, snorm, implication):
        reference = MamdaniEngine(rb2, tnorm=tnorm, snorm=snorm, implication=implication)
        compiled = CompiledMamdaniEngine(rb2, tnorm=tnorm, snorm=snorm, implication=implication)
        rng = np.random.default_rng(11)
        for _ in range(40):
            inputs = {
                "Cv": float(rng.uniform(0, 1)),
                "R": float(rng.uniform(0, 10)),
                "Cs": float(rng.uniform(0, 40)),
            }
            try:
                expected = reference.infer(inputs)["AR"]
            except DefuzzificationError:
                # Strict conjunctions (e.g. Lukasiewicz) may fire no rule at
                # all; the fast path must agree on the failure too.
                with pytest.raises(DefuzzificationError):
                    compiled.infer_crisp(inputs)
                continue
            assert compiled.infer_crisp(inputs)["AR"] == pytest.approx(
                expected, abs=1e-9
            )

    @pytest.mark.parametrize("defuzzifier", [Bisector(), MeanOfMaximum()])
    def test_alternative_defuzzifiers(self, rb2, defuzzifier):
        reference = MamdaniEngine(rb2, defuzzifier=defuzzifier)
        compiled = CompiledMamdaniEngine(rb2, defuzzifier=defuzzifier)
        for correction in (0.1, 0.5, 0.9):
            inputs = {"Cv": correction, "R": 5.0, "Cs": 20.0}
            assert compiled.infer_crisp(inputs)["AR"] == reference.infer(inputs)["AR"]


class TestErrorParity:
    """Both engines fail identically on bad inputs and uncovered regions."""

    def test_missing_inputs_message(self, engines1):
        reference, compiled = engines1
        with pytest.raises(ValueError, match="missing crisp inputs") as ref_error:
            reference.infer({"S": 10.0})
        with pytest.raises(ValueError, match="missing crisp inputs") as fast_error:
            compiled.infer_crisp({"S": 10.0})
        assert str(ref_error.value) == str(fast_error.value)
        with pytest.raises(ValueError, match="missing crisp inputs"):
            compiled.infer({"S": 10.0})

    def test_uncovered_region_raises_in_both(self):
        # A one-rule base leaving most of the universe uncovered.
        x = LinguisticVariable("x", (0.0, 10.0), [Term("lo", Triangular(0, 0, 2))])
        y = LinguisticVariable("y", (0.0, 1.0), [Term("out", Triangular(0, 0.5, 1))])
        controller_rules = "IF x is lo THEN y is out"
        reference = FuzzyController("t", [x], [y], controller_rules, engine="reference")
        compiled = FuzzyController("t", [x], [y], controller_rules, engine="compiled")
        with pytest.raises(DefuzzificationError):
            reference.compute(x=9.0)
        with pytest.raises(DefuzzificationError):
            compiled.compute(x=9.0)
        assert compiled.compute(x=1.0) == reference.compute(x=1.0)


class TestCompilability:
    def test_or_rules_are_rejected(self):
        x = LinguisticVariable(
            "x",
            (0.0, 1.0),
            [Term("lo", Triangular(0, 0, 1)), Term("hi", Triangular(0, 1, 1))],
        )
        y = LinguisticVariable("y", (0.0, 1.0), [Term("out", Triangular(0, 0.5, 1))])
        rules = "IF x is lo OR x is hi THEN y is out"
        with pytest.raises(RuleCompilationError):
            FuzzyController("t", [x], [y], rules, engine="compiled")

    def test_hedged_rules_are_rejected(self):
        x = LinguisticVariable("x", (0.0, 1.0), [Term("lo", Triangular(0, 0, 1))])
        y = LinguisticVariable("y", (0.0, 1.0), [Term("out", Triangular(0, 0.5, 1))])
        rules = "IF x is very lo THEN y is out"
        with pytest.raises(RuleCompilationError):
            FuzzyController("t", [x], [y], rules, engine="compiled")

    def test_auto_falls_back_to_reference(self):
        x = LinguisticVariable(
            "x",
            (0.0, 1.0),
            [Term("lo", Triangular(0, 0, 1)), Term("hi", Triangular(0, 1, 1))],
        )
        y = LinguisticVariable("y", (0.0, 1.0), [Term("out", Triangular(0, 0.5, 1))])
        rules = "IF x is lo OR x is hi THEN y is out"
        controller = FuzzyController("t", [x], [y], rules, engine="auto")
        assert controller.engine_kind == "reference"
        assert 0.0 <= controller.compute(x=0.5) <= 1.0

    def test_auto_compiles_conjunctive_rules(self, rb1):
        engine = CompiledMamdaniEngine(rb1)
        assert isinstance(engine, MamdaniEngine)  # drop-in subclass

    def test_unknown_engine_name_rejected(self):
        x = LinguisticVariable("x", (0.0, 1.0), [Term("lo", Triangular(0, 0, 1))])
        y = LinguisticVariable("y", (0.0, 1.0), [Term("out", Triangular(0, 0.5, 1))])
        with pytest.raises(ValueError, match="unknown engine"):
            FuzzyController("t", [x], [y], "IF x is lo THEN y is out", engine="turbo")


class TestCrispCache:
    def test_exact_cache_returns_identical_results(self, rb2):
        plain = CompiledMamdaniEngine(rb2)
        cached = CompiledMamdaniEngine(rb2, cache_size=64)
        inputs = {"Cv": 0.4, "R": 5.0, "Cs": 17.0}
        first = cached.infer_crisp(inputs)
        second = cached.infer_crisp(inputs)
        assert second is first  # memoised object
        assert first.outputs == plain.infer_crisp(inputs).outputs
        info = cached.cache_info
        assert info.hits == 1 and info.misses == 1 and info.size == 1

    def test_lru_eviction_bounds_size(self, rb2):
        cached = CompiledMamdaniEngine(rb2, cache_size=4)
        for counter in range(10):
            cached.infer_crisp({"Cv": 0.5, "R": 5.0, "Cs": float(counter)})
        assert cached.cache_info.size <= 4

    def test_quantized_cache_buckets_nearby_inputs(self, rb2):
        cached = CompiledMamdaniEngine(rb2, cache_size=16, cache_quantization=0.1)
        first = cached.infer_crisp({"Cv": 0.50, "R": 5.0, "Cs": 20.0})
        second = cached.infer_crisp({"Cv": 0.51, "R": 5.02, "Cs": 20.04})
        assert second is first  # same bucket
        assert cached.cache_info.hits == 1

    def test_cache_disabled_by_default(self, rb2):
        engine = CompiledMamdaniEngine(rb2)
        engine.infer_crisp({"Cv": 0.4, "R": 5.0, "Cs": 17.0})
        engine.infer_crisp({"Cv": 0.4, "R": 5.0, "Cs": 17.0})
        info = engine.cache_info
        assert info.hits == 0 and info.misses == 0 and info.max_size == 0

    def test_clear_cache(self, rb2):
        cached = CompiledMamdaniEngine(rb2, cache_size=8)
        cached.infer_crisp({"Cv": 0.4, "R": 5.0, "Cs": 17.0})
        cached.clear_cache()
        info = cached.cache_info
        assert info.size == 0 and info.hits == 0 and info.misses == 0

    def test_invalid_cache_parameters(self, rb2):
        with pytest.raises(ValueError):
            CompiledMamdaniEngine(rb2, cache_size=-1)
        with pytest.raises(ValueError):
            CompiledMamdaniEngine(rb2, cache_size=8, cache_quantization=0.0)


class TestControllerIntegration:
    def test_flc_controllers_default_to_compiled(self):
        facs = FuzzyAdmissionControlSystem()
        assert facs.flc1.controller.engine_kind == "compiled"
        assert facs.flc2.controller.engine_kind == "compiled"

    def test_reference_engine_selectable_through_config(self):
        facs = FuzzyAdmissionControlSystem(FACSConfig(engine="reference"))
        assert facs.flc1.controller.engine_kind == "reference"
        assert facs.flc2.controller.engine_kind == "reference"

    def test_invalid_engine_rejected_by_config(self):
        with pytest.raises(ValueError, match="engine"):
            FACSConfig(engine="warp")

    def test_facs_decisions_identical_across_engines(self, call_factory, station):
        compiled_system = FuzzyAdmissionControlSystem(FACSConfig(engine="compiled"))
        reference_system = FuzzyAdmissionControlSystem(FACSConfig(engine="reference"))
        rng = np.random.default_rng(3)
        for _ in range(25):
            call = call_factory(
                speed=float(rng.uniform(0, 120)),
                angle=float(rng.uniform(-180, 180)),
                distance=float(rng.uniform(0, 10)),
            )
            fast = compiled_system.decide(call, station, now=0.0)
            slow = reference_system.decide(call, station, now=0.0)
            assert fast.accepted == slow.accepted
            assert fast.score == slow.score
            assert fast.outcome == slow.outcome

    def test_unhashable_defuzzifier_still_accepted(self):
        # The construction memo requires hashable arguments; callers with
        # custom unhashable defuzzifiers must still get a working system.
        class ListyCentroid:
            name = "listy"
            __hash__ = None  # explicitly unhashable
            _inner = None

            def __call__(self, grid, surface):
                from repro.fuzzy.defuzzification import Centroid

                return Centroid()(grid, surface)

            def defuzzify(self, grid, surface):
                return self(grid, surface)

        facs = FuzzyAdmissionControlSystem(defuzzifier=ListyCentroid())
        reference = FuzzyAdmissionControlSystem()
        value = facs.flc1.correction_value(30.0, 0.0, 2.0)
        assert value == reference.flc1.correction_value(30.0, 0.0, 2.0)

    def test_crisp_decision_matches_evaluate_on_reference(self):
        facs = FuzzyAdmissionControlSystem(FACSConfig(engine="reference"))
        controller = facs.flc2.controller
        crisp: CrispInference = controller.crisp_decision(Cv=0.6, R=5.0, Cs=12.0)
        full = controller.evaluate(Cv=0.6, R=5.0, Cs=12.0)
        assert crisp["AR"] == full["AR"]
        assert crisp.dominant_label == full.dominant_rule().rule.label
