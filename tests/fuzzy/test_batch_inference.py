"""Bit-identity of the batched inference paths on the paper's rule bases.

The contract under test: ``infer_batch`` and the tensorized
``control_surface`` are *layout changes, not approximations* — on FRB1 and
FRB2 (via FLC1/FLC2) every batched value must equal the corresponding scalar
``infer``/``infer_crisp`` result bit for bit, for the compiled and the
reference engine alike.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.cac.facs.flc1 import FLC1
from repro.cac.facs.flc2 import FLC2
from repro.fuzzy.inference import BatchInference
from repro.fuzzy.compiled import CompiledMamdaniEngine


def _controllers(name: str):
    """(compiled, reference) FuzzyController pair for FLC1 or FLC2."""
    if name == "FLC1":
        return FLC1(engine="compiled").controller, FLC1(engine="reference").controller
    return FLC2(engine="compiled").controller, FLC2(engine="reference").controller


def _sample_matrix(engine, count: int, seed: int, margin: float = 2.0) -> np.ndarray:
    """Random input rows spanning each universe plus out-of-range margins."""
    rng = np.random.default_rng(seed)
    input_vars = engine.rule_base.input_variables
    columns = []
    for name in engine.input_order:
        low, high = input_vars[name].universe
        columns.append(rng.uniform(low - margin, high + margin, count))
    return np.column_stack(columns)


def _boundary_matrix(engine) -> np.ndarray:
    """The cartesian product of each variable's universe edges and midpoint."""
    input_vars = engine.rule_base.input_variables
    axes = []
    for name in engine.input_order:
        low, high = input_vars[name].universe
        axes.append([low, (low + high) / 2.0, high])
    grid = np.meshgrid(*axes, indexing="ij")
    return np.column_stack([axis.ravel() for axis in grid])


@pytest.mark.parametrize("flc", ["FLC1", "FLC2"])
class TestInferBatchBitIdentity:
    def test_matches_scalar_infer_on_random_inputs(self, flc):
        compiled, _ = _controllers(flc)
        engine = compiled.engine
        matrix = _sample_matrix(engine, 300, seed=101)
        batch = engine.infer_batch(matrix)
        order = engine.input_order
        for var in engine.rule_base.output_variables:
            scalar = np.array([engine.infer(dict(zip(order, row)))[var] for row in matrix])
            assert np.array_equal(batch.outputs[var], scalar)

    def test_matches_infer_crisp(self, flc):
        compiled, _ = _controllers(flc)
        engine = compiled.engine
        matrix = _sample_matrix(engine, 200, seed=102)
        batch = engine.infer_batch(matrix)
        order = engine.input_order
        for i, row in enumerate(matrix):
            crisp = engine.infer_crisp(dict(zip(order, row)))
            for var in engine.rule_base.output_variables:
                assert batch.outputs[var][i] == crisp[var]
            assert batch.dominant_indices[i] == crisp.dominant_index

    def test_matches_reference_engine(self, flc):
        compiled, reference = _controllers(flc)
        matrix = _sample_matrix(compiled.engine, 200, seed=103)
        compiled_batch = compiled.engine.infer_batch(matrix)
        reference_batch = reference.engine.infer_batch(matrix)
        for var in compiled.engine.rule_base.output_variables:
            assert np.array_equal(compiled_batch.outputs[var], reference_batch.outputs[var])

    def test_boundary_inputs(self, flc):
        compiled, _ = _controllers(flc)
        engine = compiled.engine
        matrix = _boundary_matrix(engine)
        batch = engine.infer_batch(matrix)
        order = engine.input_order
        for var in engine.rule_base.output_variables:
            scalar = np.array([engine.infer(dict(zip(order, row)))[var] for row in matrix])
            assert np.array_equal(batch.outputs[var], scalar)

    def test_mapping_inputs_equal_matrix_inputs(self, flc):
        compiled, _ = _controllers(flc)
        engine = compiled.engine
        matrix = _sample_matrix(engine, 50, seed=104)
        by_name = {
            name: matrix[:, k] for k, name in enumerate(engine.input_order)
        }
        from_matrix = engine.infer_batch(matrix)
        from_mapping = engine.infer_batch(by_name)
        for var in engine.rule_base.output_variables:
            assert np.array_equal(from_matrix.outputs[var], from_mapping.outputs[var])

    def test_chunked_blocks_are_bitwise_transparent(self, flc):
        compiled, _ = _controllers(flc)
        engine = compiled.engine
        matrix = _sample_matrix(engine, 137, seed=105)
        whole = engine.infer_batch(matrix)
        original = CompiledMamdaniEngine._BATCH_BLOCK_ELEMENTS
        try:
            # Force ~10-row blocks through the chunked path.
            engine._BATCH_BLOCK_ELEMENTS = (
                10 * max(
                    plan[1].shape[0] * plan[1].shape[1]
                    for plan in engine._consequent_plans.values()
                )
            )
            chunked = engine.infer_batch(matrix)
        finally:
            engine._BATCH_BLOCK_ELEMENTS = original
        for var in engine.rule_base.output_variables:
            assert np.array_equal(whole.outputs[var], chunked.outputs[var])
        assert np.array_equal(whole.dominant_indices, chunked.dominant_indices)

    def test_thread_shared_engine_is_deterministic(self, flc):
        compiled, _ = _controllers(flc)
        engine = compiled.engine
        matrix = _sample_matrix(engine, 120, seed=106)
        order = engine.input_order
        var = next(iter(engine.rule_base.output_variables))
        rows = [dict(zip(order, row)) for row in matrix]
        serial = [engine.infer_crisp(row)[var] for row in rows]
        with ThreadPoolExecutor(max_workers=4) as pool:
            threaded = list(pool.map(lambda row: engine.infer_crisp(row)[var], rows))
        assert serial == threaded


@pytest.mark.parametrize("engine_kind", ["compiled", "reference"])
@pytest.mark.parametrize("flc", ["FLC1", "FLC2"])
class TestTensorizedControlSurface:
    def test_matches_per_point_inference(self, flc, engine_kind):
        compiled, reference = _controllers(flc)
        controller = compiled if engine_kind == "compiled" else reference
        engine = controller.engine
        order = engine.input_order
        x_var, y_var, pin_var = order[0], order[1], order[2]
        input_vars = engine.rule_base.input_variables
        low, high = input_vars[pin_var].universe
        fixed = {pin_var: (low + high) / 2.0}
        output = next(iter(engine.rule_base.output_variables))
        xs, ys, surface = engine.control_surface(x_var, y_var, output, fixed=fixed, resolution=13)
        assert surface.shape == (13, 13)
        for i, y in enumerate(ys):
            for j, x in enumerate(xs):
                inputs = {**fixed, x_var: float(x), y_var: float(y)}
                assert surface[i, j] == engine.infer(inputs)[output]


class TestControlSurfaceValidation:
    def test_unknown_variable_rejected(self):
        engine = FLC1(engine="compiled").controller.engine
        with pytest.raises(KeyError, match="unknown input variable"):
            engine.control_surface("S", "bogus", "Cv", fixed={"D": 1.0})

    def test_missing_fixed_value_rejected(self):
        engine = FLC1(engine="compiled").controller.engine
        with pytest.raises(ValueError, match="fixed values required"):
            engine.control_surface("S", "A", "Cv")


class TestBatchInputValidation:
    def test_wrong_matrix_shape_rejected(self):
        engine = FLC1(engine="compiled").controller.engine
        with pytest.raises(ValueError, match="shape"):
            engine.infer_batch(np.zeros((4, 2)))
        with pytest.raises(ValueError, match="shape"):
            engine.infer_batch(np.zeros(4))

    def test_missing_mapping_variable_rejected(self):
        engine = FLC1(engine="compiled").controller.engine
        with pytest.raises(ValueError, match="missing crisp inputs"):
            engine.infer_batch({"S": np.zeros(3), "A": np.zeros(3)})

    def test_unequal_mapping_lengths_rejected(self):
        engine = FLC1(engine="compiled").controller.engine
        with pytest.raises(ValueError, match="equally sized"):
            engine.infer_batch(
                {"S": np.zeros(3), "A": np.zeros(4), "D": np.zeros(3)}
            )

    def test_batch_inference_container_protocol(self):
        engine = FLC1(engine="compiled").controller.engine
        batch = engine.infer_batch(np.array([[30.0, 0.0, 2.0], [60.0, 45.0, 5.0]]))
        assert isinstance(batch, BatchInference)
        assert len(batch) == 2
        assert np.array_equal(batch["Cv"], batch.outputs["Cv"])


class TestComputeBatch:
    def test_matches_scalar_compute(self):
        controller = FLC1(engine="compiled").controller
        rng = np.random.default_rng(9)
        speeds = rng.uniform(0.0, 120.0, 40)
        angles = rng.uniform(-180.0, 180.0, 40)
        distances = rng.uniform(0.0, 10.0, 40)
        batch = controller.compute_batch(S=speeds, A=angles, D=distances)
        scalar = [
            controller.compute(S=s, A=a, D=d)
            for s, a, d in zip(speeds, angles, distances)
        ]
        assert np.array_equal(batch, np.array(scalar))

    def test_flc_helpers_match_scalar_paths(self):
        flc1, flc2 = FLC1(), FLC2()
        rng = np.random.default_rng(10)
        speeds = rng.uniform(0.0, 130.0, 25)
        angles = rng.uniform(-200.0, 200.0, 25)
        distances = rng.uniform(0.0, 12.0, 25)
        cvs = flc1.correction_values(speeds, angles, distances)
        for i in range(len(speeds)):
            assert cvs[i] == flc1.correction_value(speeds[i], angles[i], distances[i])
        requests = rng.choice([1.0, 5.0, 10.0], 25)
        counters = rng.uniform(0.0, 40.0, 25)
        scores = flc2.decision_scores(cvs, requests, counters)
        for i in range(len(speeds)):
            assert scores[i] == flc2.evaluate(cvs[i], requests[i], counters[i]).score
