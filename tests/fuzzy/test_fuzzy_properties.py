"""Property-based tests for the fuzzy toolkit invariants.

Hypothesis drives the fuzzy machinery over random (but reproducible) inputs
and checks the algebraic properties the engines rely on:

* membership degrees always lie in [0, 1], and the compiled engine's scalar
  fast paths agree exactly with the array evaluation they mirror;
* defuzzified outputs always lie inside the output variable's universe;
* every registered t-norm/s-norm is monotone with the right identities;
* ``infer`` is invariant under rule-order permutation (for both engines).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cac.facs.config import DEFAULT_FLC2_CONFIG
from repro.cac.facs.frb2 import frb2_rules
from repro.cac.facs.system import FACSConfig, FuzzyAdmissionControlSystem
from repro.fuzzy.compiled import (
    CompiledMamdaniEngine,
    _trapezoidal_degree,
    _triangular_degree,
)
from repro.fuzzy.inference import MamdaniEngine
from repro.fuzzy.membership import Trapezoidal, Triangular
from repro.fuzzy.operators import _SNORMS, _TNORMS
from repro.fuzzy.rules import RuleBase

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)


def _flc2_rule_base() -> RuleBase:
    config = DEFAULT_FLC2_CONFIG
    return RuleBase(
        frb2_rules(),
        [
            config.correction_variable(),
            config.request_variable(),
            config.counter_variable(),
        ],
        [config.decision_variable()],
        name="frb2",
    )


_RB2 = _flc2_rule_base()
_REFERENCE2 = MamdaniEngine(_RB2)
_COMPILED2 = CompiledMamdaniEngine(_RB2)


class TestMembershipProperties:
    @COMMON
    @given(points=st.lists(finite, min_size=3, max_size=3), x=finite)
    def test_triangular_degree_in_unit_interval(self, points, x):
        a, b, c = sorted(points)
        mf = Triangular(a, b, c)
        assert 0.0 <= mf(x) <= 1.0

    @COMMON
    @given(points=st.lists(finite, min_size=4, max_size=4), x=finite)
    def test_trapezoidal_degree_in_unit_interval(self, points, x):
        a, b, c, d = sorted(points)
        mf = Trapezoidal(a, b, c, d)
        assert 0.0 <= mf(x) <= 1.0

    @COMMON
    @given(points=st.lists(finite, min_size=3, max_size=3), x=finite)
    def test_scalar_fast_path_matches_array_triangular(self, points, x):
        a, b, c = sorted(points)
        mf = Triangular(a, b, c)
        assert _triangular_degree(x, a, b, c) == float(mf(x))

    @COMMON
    @given(points=st.lists(finite, min_size=4, max_size=4), x=finite)
    def test_scalar_fast_path_matches_array_trapezoidal(self, points, x):
        a, b, c, d = sorted(points)
        mf = Trapezoidal(a, b, c, d)
        assert _trapezoidal_degree(x, a, b, c, d) == float(mf(x))


class TestDefuzzifiedOutputInsideUniverse:
    @COMMON
    @given(
        correction=st.floats(min_value=-0.5, max_value=1.5),
        request_bu=st.floats(min_value=-2.0, max_value=12.0),
        counter=st.floats(min_value=-5.0, max_value=45.0),
    )
    def test_flc2_output_inside_decision_universe(self, correction, request_bu, counter):
        low, high = DEFAULT_FLC2_CONFIG.decision_universe
        inputs = {"Cv": correction, "R": request_bu, "Cs": counter}
        for engine in (_REFERENCE2, _COMPILED2):
            value = engine.infer(inputs)["AR"]
            assert low <= value <= high

    @COMMON
    @given(
        speed=st.floats(min_value=-50.0, max_value=200.0),
        angle=st.floats(min_value=-400.0, max_value=400.0),
        distance=st.floats(min_value=-5.0, max_value=20.0),
    )
    def test_flc1_correction_inside_unit_universe(self, speed, angle, distance, flc1):
        value = flc1.correction_value(speed, angle, distance)
        assert 0.0 <= value <= 1.0


class TestNormProperties:
    @COMMON
    @given(a=unit, b=unit, larger=unit)
    def test_tnorms_monotone_and_bounded(self, a, b, larger):
        lo, hi = min(a, larger), max(a, larger)
        for norm in _TNORMS.values():
            low_result = float(norm(lo, b))
            high_result = float(norm(hi, b))
            assert low_result <= high_result + 1e-12, norm.name
            assert -1e-12 <= low_result <= 1.0 + 1e-12, norm.name
            # 1 is the neutral element of every t-norm.
            assert float(norm(a, 1.0)) == pytest.approx(a, abs=1e-9), norm.name

    @COMMON
    @given(a=unit, b=unit, larger=unit)
    def test_snorms_monotone_and_bounded(self, a, b, larger):
        lo, hi = min(a, larger), max(a, larger)
        for norm in _SNORMS.values():
            low_result = float(norm(lo, b))
            high_result = float(norm(hi, b))
            assert low_result <= high_result + 1e-12, norm.name
            assert -1e-12 <= low_result <= 1.0 + 1e-12, norm.name
            # 0 is the neutral element of every s-norm.
            assert float(norm(a, 0.0)) == pytest.approx(a, abs=1e-9), norm.name

    @COMMON
    @given(a=unit, b=unit)
    def test_tnorm_below_min_and_snorm_above_max(self, a, b):
        for norm in _TNORMS.values():
            assert float(norm(a, b)) <= min(a, b) + 1e-12, norm.name
        for norm in _SNORMS.values():
            assert float(norm(a, b)) >= max(a, b) - 1e-12, norm.name


class TestRulePermutationInvariance:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        correction=st.floats(min_value=0.0, max_value=1.0),
        counter=st.floats(min_value=0.0, max_value=40.0),
    )
    def test_infer_invariant_under_rule_permutation(self, seed, correction, counter):
        config = DEFAULT_FLC2_CONFIG
        inputs = {"Cv": correction, "R": 5.0, "Cs": counter}
        baseline = _COMPILED2.infer_crisp(inputs)["AR"]

        rules = list(frb2_rules())
        np.random.default_rng(seed).shuffle(rules)
        shuffled = RuleBase(
            rules,
            [
                config.correction_variable(),
                config.request_variable(),
                config.counter_variable(),
            ],
            [config.decision_variable()],
            name="frb2-shuffled",
        )
        for engine in (MamdaniEngine(shuffled), CompiledMamdaniEngine(shuffled)):
            assert engine.infer(inputs)["AR"] == pytest.approx(baseline, abs=1e-12)


class TestSimulationLevelProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        speed=st.floats(min_value=0.0, max_value=120.0),
        angle=st.floats(min_value=-180.0, max_value=180.0),
        distance=st.floats(min_value=0.0, max_value=10.0),
        counter=st.integers(min_value=0, max_value=40),
    )
    def test_engines_agree_on_admission_scores(self, speed, angle, distance, counter):
        """FACS scores are engine-independent for arbitrary operating points."""
        fast = FuzzyAdmissionControlSystem(FACSConfig(engine="compiled"))
        slow = FuzzyAdmissionControlSystem(FACSConfig(engine="reference"))
        correction_fast = fast.flc1.correction_value(speed, angle, distance)
        correction_slow = slow.flc1.correction_value(speed, angle, distance)
        assert correction_fast == pytest.approx(correction_slow, abs=1e-9)
        score_fast = fast.flc2.decision_score(correction_fast, 5.0, float(counter))
        score_slow = slow.flc2.decision_score(correction_slow, 5.0, float(counter))
        assert score_fast == pytest.approx(score_slow, abs=1e-9)
