"""Unit and property tests for membership functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzzy.membership import (
    ConstantMF,
    Gaussian,
    GeneralizedBell,
    PiShape,
    PiecewiseLinear,
    Sigmoid,
    Singleton,
    SShape,
    Trapezoidal,
    Triangular,
    ZShape,
    paper_trapezoidal,
    paper_triangular,
)


class TestTriangular:
    def test_peak_has_full_membership(self):
        mf = Triangular(0.0, 5.0, 10.0)
        assert mf(5.0) == pytest.approx(1.0)

    def test_feet_have_zero_membership(self):
        mf = Triangular(0.0, 5.0, 10.0)
        assert mf(0.0) == pytest.approx(0.0)
        assert mf(10.0) == pytest.approx(0.0)

    def test_outside_support_is_zero(self):
        mf = Triangular(0.0, 5.0, 10.0)
        assert mf(-3.0) == 0.0
        assert mf(42.0) == 0.0

    def test_midpoints_are_half(self):
        mf = Triangular(0.0, 5.0, 10.0)
        assert mf(2.5) == pytest.approx(0.5)
        assert mf(7.5) == pytest.approx(0.5)

    def test_left_shoulder_degenerate(self):
        mf = Triangular(0.0, 0.0, 10.0)
        assert mf(0.0) == pytest.approx(1.0)
        assert mf(5.0) == pytest.approx(0.5)

    def test_right_shoulder_degenerate(self):
        mf = Triangular(0.0, 10.0, 10.0)
        assert mf(10.0) == pytest.approx(1.0)
        assert mf(5.0) == pytest.approx(0.5)

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            Triangular(5.0, 2.0, 10.0)

    def test_array_evaluation_matches_scalar(self):
        mf = Triangular(0.0, 5.0, 10.0)
        xs = np.linspace(-1.0, 11.0, 25)
        array_result = mf(xs)
        for x, mu in zip(xs, array_result):
            assert mu == pytest.approx(mf(float(x)))

    def test_support(self):
        assert Triangular(1.0, 2.0, 3.0).support == (1.0, 3.0)

    def test_centroid_of_symmetric_triangle_is_peak(self):
        mf = Triangular(0.0, 5.0, 10.0)
        assert mf.centroid() == pytest.approx(5.0, abs=0.02)

    @given(
        a=st.floats(-100, 100),
        width_left=st.floats(0.1, 50),
        width_right=st.floats(0.1, 50),
        x=st.floats(-250, 250),
    )
    @settings(max_examples=100)
    def test_membership_always_in_unit_interval(self, a, width_left, width_right, x):
        mf = Triangular(a, a + width_left, a + width_left + width_right)
        assert 0.0 <= mf(x) <= 1.0

    @given(
        a=st.floats(-100, 100),
        width_left=st.floats(0.5, 50),
        width_right=st.floats(0.5, 50),
    )
    @settings(max_examples=50)
    def test_is_normal(self, a, width_left, width_right):
        mf = Triangular(a, a + width_left, a + width_left + width_right)
        assert mf.is_normal()


class TestTrapezoidal:
    def test_plateau_has_full_membership(self):
        mf = Trapezoidal(0.0, 2.0, 8.0, 10.0)
        for x in (2.0, 5.0, 8.0):
            assert mf(x) == pytest.approx(1.0)

    def test_ramps(self):
        mf = Trapezoidal(0.0, 2.0, 8.0, 10.0)
        assert mf(1.0) == pytest.approx(0.5)
        assert mf(9.0) == pytest.approx(0.5)

    def test_outside_support_is_zero(self):
        mf = Trapezoidal(0.0, 2.0, 8.0, 10.0)
        assert mf(-1.0) == 0.0
        assert mf(11.0) == 0.0

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            Trapezoidal(0.0, 5.0, 3.0, 10.0)

    def test_core_and_support(self):
        mf = Trapezoidal(0.0, 2.0, 8.0, 10.0)
        assert mf.core == (2.0, 8.0)
        assert mf.support == (0.0, 10.0)

    def test_degenerate_trapezoid_equals_triangle(self):
        trap = Trapezoidal(0.0, 5.0, 5.0, 10.0)
        tri = Triangular(0.0, 5.0, 10.0)
        xs = np.linspace(0.0, 10.0, 31)
        np.testing.assert_allclose(trap(xs), tri(xs), atol=1e-12)

    @given(x=st.floats(-20, 20))
    @settings(max_examples=100)
    def test_rectangular_shoulder(self, x):
        mf = Trapezoidal(0.0, 0.0, 5.0, 10.0)
        if 0.0 <= x <= 5.0:
            assert mf(x) == pytest.approx(1.0)


class TestPaperNotation:
    def test_paper_triangular_matches_breakpoints(self):
        # f(x; x0=5, a0=2, a1=3) -> triangle (3, 5, 8)
        mf = paper_triangular(5.0, 2.0, 3.0)
        assert mf.a == 3.0 and mf.b == 5.0 and mf.c == 8.0

    def test_paper_trapezoidal_matches_breakpoints(self):
        # g(x; x0=2, x1=6, a0=2, a1=4) -> trapezoid (0, 2, 6, 10)
        mf = paper_trapezoidal(2.0, 6.0, 2.0, 4.0)
        assert (mf.a, mf.b, mf.c, mf.d) == (0.0, 2.0, 6.0, 10.0)

    def test_paper_triangular_formula_agreement(self):
        """The paper's f() formula and our Triangular agree on the rising edge."""
        x0, a0, a1 = 10.0, 4.0, 6.0
        mf = paper_triangular(x0, a0, a1)
        for x in np.linspace(x0 - a0 + 0.01, x0, 10):
            expected = (x - x0) / a0 + 1.0
            assert mf(float(x)) == pytest.approx(expected, abs=1e-9)
        for x in np.linspace(x0 + 0.01, x0 + a1 - 0.01, 10):
            expected = (x0 - x) / a1 + 1.0
            assert mf(float(x)) == pytest.approx(expected, abs=1e-9)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            paper_triangular(0.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            paper_trapezoidal(0.0, 1.0, 1.0, -1.0)

    def test_reversed_plateau_rejected(self):
        with pytest.raises(ValueError):
            paper_trapezoidal(5.0, 1.0, 1.0, 1.0)


class TestOtherShapes:
    def test_gaussian_peak_and_symmetry(self):
        mf = Gaussian(3.0, 1.5)
        assert mf(3.0) == pytest.approx(1.0)
        assert mf(1.0) == pytest.approx(mf(5.0))

    def test_gaussian_requires_positive_sigma(self):
        with pytest.raises(ValueError):
            Gaussian(0.0, 0.0)

    def test_bell_peak(self):
        mf = GeneralizedBell(2.0, 3.0, 5.0)
        assert mf(5.0) == pytest.approx(1.0)
        assert mf(7.0) == pytest.approx(0.5)

    def test_bell_invalid_parameters(self):
        with pytest.raises(ValueError):
            GeneralizedBell(0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            GeneralizedBell(1.0, -1.0, 0.0)

    def test_sigmoid_inflection_is_half(self):
        mf = Sigmoid(2.0, 3.0)
        assert mf(2.0) == pytest.approx(0.5)
        assert mf(10.0) > 0.99

    def test_zshape_and_sshape_are_complements_at_edges(self):
        z = ZShape(0.0, 10.0)
        s = SShape(0.0, 10.0)
        assert z(0.0) == pytest.approx(1.0)
        assert z(10.0) == pytest.approx(0.0)
        assert s(0.0) == pytest.approx(0.0)
        assert s(10.0) == pytest.approx(1.0)

    def test_zshape_requires_ordered_bounds(self):
        with pytest.raises(ValueError):
            ZShape(5.0, 5.0)
        with pytest.raises(ValueError):
            SShape(7.0, 5.0)

    def test_pishape_plateau(self):
        mf = PiShape(0.0, 2.0, 8.0, 10.0)
        assert mf(5.0) == pytest.approx(1.0)
        assert mf(0.0) == pytest.approx(0.0)
        assert mf(10.0) == pytest.approx(0.0)

    def test_pishape_invalid_order(self):
        with pytest.raises(ValueError):
            PiShape(0.0, 0.0, 8.0, 10.0)

    def test_singleton(self):
        mf = Singleton(4.2)
        assert mf(4.2) == 1.0
        assert mf(4.3) == 0.0
        assert mf.support == (4.2, 4.2)

    def test_piecewise_linear_interpolation(self):
        mf = PiecewiseLinear([(0.0, 0.0), (5.0, 1.0), (10.0, 0.0)])
        assert mf(2.5) == pytest.approx(0.5)
        assert mf(5.0) == pytest.approx(1.0)
        assert mf(12.0) == 0.0

    def test_piecewise_linear_validation(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([(0.0, 0.0)])
        with pytest.raises(ValueError):
            PiecewiseLinear([(0.0, 0.0), (0.0, 1.0)])
        with pytest.raises(ValueError):
            PiecewiseLinear([(0.0, 0.0), (1.0, 1.5)])

    def test_piecewise_linear_equality_and_points(self):
        a = PiecewiseLinear([(0.0, 0.0), (1.0, 1.0)])
        b = PiecewiseLinear([(1.0, 1.0), (0.0, 0.0)])
        assert a == b
        assert a.points == [(0.0, 0.0), (1.0, 1.0)]

    def test_constant_mf(self):
        mf = ConstantMF(0.4, 0.0, 10.0)
        assert mf(5.0) == pytest.approx(0.4)
        assert mf(11.0) == 0.0

    def test_constant_mf_validation(self):
        with pytest.raises(ValueError):
            ConstantMF(1.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            ConstantMF(0.5, 2.0, 1.0)

    @given(x=st.floats(-50, 50), mean=st.floats(-10, 10), sigma=st.floats(0.1, 10))
    @settings(max_examples=100)
    def test_gaussian_in_unit_interval(self, x, mean, sigma):
        assert 0.0 <= Gaussian(mean, sigma)(x) <= 1.0


class TestGenericHelpers:
    def test_sample_matches_call(self):
        mf = Triangular(0.0, 1.0, 2.0)
        xs = np.linspace(0.0, 2.0, 9)
        np.testing.assert_allclose(mf.sample(xs), mf(xs))

    def test_height_of_scaled_mf(self):
        mf = ConstantMF(0.7, 0.0, 1.0)
        assert mf.height() == pytest.approx(0.7)
        assert not mf.is_normal()

    def test_centroid_degenerate_support(self):
        mf = Singleton(3.0)
        assert mf.centroid() == pytest.approx(3.0)
