"""Tests for rule objects, rule bases and the rule DSL parser."""

from __future__ import annotations

import pytest

from repro.fuzzy.hedges import VERY, hedge_by_name, register_hedge, Hedge
from repro.fuzzy.membership import Triangular
from repro.fuzzy.operators import MAXIMUM, MINIMUM, PRODUCT
from repro.fuzzy.parser import RuleSyntaxError, parse_rule, parse_rules
from repro.fuzzy.rules import (
    And,
    Consequent,
    FuzzyRule,
    Not,
    Or,
    Proposition,
    RuleBase,
)
from repro.fuzzy.variables import LinguisticVariable, Term


def temp_var(name: str, terms: list[str]) -> LinguisticVariable:
    step = 1.0 / max(len(terms) - 1, 1)
    built = []
    for index, term in enumerate(terms):
        center = index * step
        shape = Triangular(max(center - step, 0.0), center, min(center + step, 1.0))
        built.append(Term(term, shape))
    return LinguisticVariable(name, (0.0, 1.0), built, resolution=101)


@pytest.fixture
def degrees():
    return {
        "temp": {"cold": 0.2, "hot": 0.7},
        "load": {"low": 0.9, "high": 0.1},
    }


class TestPropositions:
    def test_atomic_firing_strength(self, degrees):
        assert Proposition("temp", "hot").firing_strength(degrees, MINIMUM, MAXIMUM) == 0.7

    def test_hedged_proposition(self, degrees):
        prop = Proposition("temp", "hot", hedge=VERY)
        assert prop.firing_strength(degrees, MINIMUM, MAXIMUM) == pytest.approx(0.49)

    def test_missing_variable_raises(self, degrees):
        with pytest.raises(KeyError):
            Proposition("humidity", "x").firing_strength(degrees, MINIMUM, MAXIMUM)

    def test_missing_term_raises(self, degrees):
        with pytest.raises(KeyError):
            Proposition("temp", "warm").firing_strength(degrees, MINIMUM, MAXIMUM)

    def test_and_uses_tnorm(self, degrees):
        expr = And((Proposition("temp", "hot"), Proposition("load", "low")))
        assert expr.firing_strength(degrees, MINIMUM, MAXIMUM) == pytest.approx(0.7)
        assert expr.firing_strength(degrees, PRODUCT, MAXIMUM) == pytest.approx(0.63)

    def test_or_uses_snorm(self, degrees):
        expr = Or((Proposition("temp", "hot"), Proposition("load", "high")))
        assert expr.firing_strength(degrees, MINIMUM, MAXIMUM) == pytest.approx(0.7)

    def test_not_is_standard_complement(self, degrees):
        expr = Not(Proposition("temp", "hot"))
        assert expr.firing_strength(degrees, MINIMUM, MAXIMUM) == pytest.approx(0.3)

    def test_operator_sugar(self, degrees):
        expr = Proposition("temp", "hot") & Proposition("load", "low")
        assert isinstance(expr, And)
        expr2 = Proposition("temp", "hot") | Proposition("load", "low")
        assert isinstance(expr2, Or)
        expr3 = ~Proposition("temp", "hot")
        assert isinstance(expr3, Not)

    def test_variables_collection(self):
        expr = And((Proposition("a", "x"), Or((Proposition("b", "y"), Proposition("a", "z")))))
        assert expr.variables() == {"a", "b"}

    def test_and_or_require_two_operands(self):
        with pytest.raises(ValueError):
            And((Proposition("a", "x"),))
        with pytest.raises(ValueError):
            Or((Proposition("a", "x"),))


class TestFuzzyRule:
    def test_weighted_firing_strength(self, degrees):
        rule = FuzzyRule(
            Proposition("temp", "hot"), (Consequent("fan", "fast"),), weight=0.5
        )
        assert rule.firing_strength(degrees) == pytest.approx(0.35)

    def test_requires_consequent(self):
        with pytest.raises(ValueError):
            FuzzyRule(Proposition("a", "b"), ())

    def test_weight_bounds(self):
        with pytest.raises(ValueError):
            FuzzyRule(Proposition("a", "b"), (Consequent("c", "d"),), weight=1.5)

    def test_str_rendering(self):
        rule = FuzzyRule(
            And((Proposition("temp", "hot"), Proposition("load", "low"))),
            (Consequent("fan", "fast"),),
            label="3",
        )
        text = str(rule)
        assert "IF" in text and "THEN" in text and "[3]" in text

    def test_io_variable_sets(self):
        rule = FuzzyRule(Proposition("temp", "hot"), (Consequent("fan", "fast"),))
        assert rule.input_variables() == {"temp"}
        assert rule.output_variables() == {"fan"}


class TestParser:
    def test_simple_rule(self):
        rule = parse_rule("IF temp is hot THEN fan is fast")
        assert isinstance(rule.antecedent, Proposition)
        assert rule.consequents[0] == Consequent("fan", "fast")

    def test_conjunction(self):
        rule = parse_rule("IF a is x AND b is y AND c is z THEN out is big")
        assert isinstance(rule.antecedent, And)
        assert len(rule.antecedent.operands) == 3

    def test_disjunction_and_precedence(self):
        rule = parse_rule("IF a is x OR b is y AND c is z THEN out is big")
        # AND binds tighter than OR.
        assert isinstance(rule.antecedent, Or)
        assert isinstance(rule.antecedent.operands[1], And)

    def test_parentheses(self):
        rule = parse_rule("IF (a is x OR b is y) AND c is z THEN out is big")
        assert isinstance(rule.antecedent, And)
        assert isinstance(rule.antecedent.operands[0], Or)

    def test_negation(self):
        rule = parse_rule("IF NOT a is x THEN out is big")
        assert isinstance(rule.antecedent, Not)

    def test_hedge(self):
        rule = parse_rule("IF a is very x THEN out is big")
        assert isinstance(rule.antecedent, Proposition)
        assert rule.antecedent.hedge is not None
        assert rule.antecedent.term == "x"

    def test_multiple_consequents(self):
        rule = parse_rule("IF a is x THEN out is big AND warn is on")
        assert len(rule.consequents) == 2

    def test_case_insensitive_keywords(self):
        rule = parse_rule("if a is x then out is big")
        assert rule.consequents[0].variable == "out"

    def test_empty_rule_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("   ")

    def test_missing_then_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("IF a is x")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("IF a is x THEN out is big banana split")

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("IF (a is x THEN out is big")

    def test_bad_character_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("IF a is x THEN out is big $$")

    def test_parse_rules_skips_comments_and_blank_lines(self):
        rules = parse_rules(
            """
            # header comment
            IF a is x THEN out is big

            IF a is y THEN out is small
            """
        )
        assert len(rules) == 2
        assert rules[0].label == "0" and rules[1].label == "1"

    def test_parse_rules_accepts_list(self):
        rules = parse_rules(["IF a is x THEN out is big"])
        assert len(rules) == 1


class TestHedges:
    def test_lookup(self):
        assert hedge_by_name("very") is VERY
        with pytest.raises(KeyError):
            hedge_by_name("super-duper")

    def test_register_custom_hedge(self):
        custom = Hedge("quite-test-only", lambda mu: mu**1.5)
        register_hedge(custom)
        assert hedge_by_name("quite-test-only") is custom
        with pytest.raises(ValueError):
            register_hedge(custom)

    def test_hedge_clamps_output(self):
        assert 0.0 <= VERY(0.9) <= 1.0


class TestRuleBase:
    def setup_method(self):
        self.temp = temp_var("temp", ["cold", "hot"])
        self.load = temp_var("load", ["low", "high"])
        self.fan = temp_var("fan", ["slow", "fast"])

    def make(self, rules):
        return RuleBase(rules, [self.temp, self.load], [self.fan])

    def test_valid_rule_base(self):
        rules = parse_rules(
            [
                "IF temp is cold AND load is low THEN fan is slow",
                "IF temp is cold AND load is high THEN fan is slow",
                "IF temp is hot AND load is low THEN fan is fast",
                "IF temp is hot AND load is high THEN fan is fast",
            ]
        )
        base = self.make(rules)
        assert len(base) == 4
        assert base.is_complete()

    def test_incomplete_rule_base_reports_gaps(self):
        rules = parse_rules(["IF temp is cold AND load is low THEN fan is slow"])
        base = self.make(rules)
        gaps = base.completeness_gaps()
        assert not base.is_complete()
        assert {"temp": "hot", "load": "high"} in gaps
        assert len(gaps) == 3

    def test_unknown_input_variable_rejected(self):
        rules = parse_rules(["IF humidity is low THEN fan is slow"])
        with pytest.raises(ValueError, match="unknown input"):
            self.make(rules)

    def test_unknown_input_term_rejected(self):
        rules = parse_rules(["IF temp is lukewarm THEN fan is slow"])
        with pytest.raises(ValueError, match="unknown term"):
            self.make(rules)

    def test_unknown_output_variable_rejected(self):
        rules = parse_rules(["IF temp is cold THEN heater is on"])
        with pytest.raises(ValueError, match="unknown output"):
            self.make(rules)

    def test_unknown_output_term_rejected(self):
        rules = parse_rules(["IF temp is cold THEN fan is turbo"])
        with pytest.raises(ValueError, match="unknown term"):
            self.make(rules)

    def test_empty_rules_rejected(self):
        with pytest.raises(ValueError):
            self.make([])

    def test_variable_cannot_be_input_and_output(self):
        rules = parse_rules(["IF temp is cold THEN temp is hot"])
        with pytest.raises(ValueError):
            RuleBase(rules, [self.temp], [self.temp])

    def test_indexing_and_iteration(self):
        rules = parse_rules(
            [
                "IF temp is cold THEN fan is slow",
                "IF temp is hot THEN fan is fast",
            ]
        )
        base = self.make(rules)
        assert base[0].consequents[0].term == "slow"
        assert len(list(base)) == 2
