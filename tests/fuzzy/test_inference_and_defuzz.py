"""Tests for defuzzification strategies and the Mamdani/Sugeno engines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzzy.controller import ControllerSpec, FuzzyController
from repro.fuzzy.defuzzification import (
    Bisector,
    Centroid,
    DefuzzificationError,
    LargestOfMaximum,
    MeanOfMaximum,
    SmallestOfMaximum,
    WeightedAverage,
    defuzzifier_by_name,
)
from repro.fuzzy.inference import ImplicationMethod, MamdaniEngine, SugenoEngine
from repro.fuzzy.membership import Triangular
from repro.fuzzy.parser import parse_rules
from repro.fuzzy.rules import RuleBase
from repro.fuzzy.variables import LinguisticVariable, Term


def tip_controller(**kwargs) -> FuzzyController:
    """The classic tipping controller used as an end-to-end fixture."""
    service = LinguisticVariable(
        "service",
        (0.0, 10.0),
        [
            Term("poor", Triangular(0.0, 0.0, 5.0)),
            Term("good", Triangular(0.0, 5.0, 10.0)),
            Term("excellent", Triangular(5.0, 10.0, 10.0)),
        ],
    )
    food = LinguisticVariable(
        "food",
        (0.0, 10.0),
        [
            Term("bad", Triangular(0.0, 0.0, 10.0)),
            Term("tasty", Triangular(0.0, 10.0, 10.0)),
        ],
    )
    tip = LinguisticVariable(
        "tip",
        (0.0, 30.0),
        [
            Term("low", Triangular(0.0, 5.0, 10.0)),
            Term("medium", Triangular(10.0, 15.0, 20.0)),
            Term("high", Triangular(20.0, 25.0, 30.0)),
        ],
    )
    rules = [
        "IF service is poor OR food is bad THEN tip is low",
        "IF service is good THEN tip is medium",
        "IF service is excellent AND food is tasty THEN tip is high",
    ]
    return FuzzyController("tipping", [service, food], [tip], rules, **kwargs)


GRID = np.linspace(0.0, 10.0, 101)


class TestDefuzzifiers:
    def test_centroid_of_symmetric_triangle(self):
        surface = Triangular(2.0, 5.0, 8.0).sample(GRID)
        assert Centroid()(GRID, surface) == pytest.approx(5.0, abs=0.01)

    def test_bisector_of_symmetric_triangle(self):
        surface = Triangular(2.0, 5.0, 8.0).sample(GRID)
        assert Bisector()(GRID, surface) == pytest.approx(5.0, abs=0.05)

    def test_mom_som_lom_of_plateau(self):
        surface = np.zeros_like(GRID)
        surface[(GRID >= 4.0) & (GRID <= 6.0)] = 1.0
        assert MeanOfMaximum()(GRID, surface) == pytest.approx(5.0, abs=0.01)
        assert SmallestOfMaximum()(GRID, surface) == pytest.approx(4.0, abs=0.01)
        assert LargestOfMaximum()(GRID, surface) == pytest.approx(6.0, abs=0.01)

    def test_weighted_average_matches_centroid_for_symmetric_shape(self):
        surface = Triangular(2.0, 5.0, 8.0).sample(GRID)
        assert WeightedAverage()(GRID, surface) == pytest.approx(
            Centroid()(GRID, surface), abs=0.05
        )

    def test_asymmetric_shape_centroid_skews_towards_mass(self):
        surface = Triangular(0.0, 1.0, 10.0).sample(GRID)
        assert Centroid()(GRID, surface) > 1.0

    def test_zero_surface_raises(self):
        with pytest.raises(DefuzzificationError):
            Centroid()(GRID, np.zeros_like(GRID))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Centroid()(GRID, np.zeros(7))

    def test_invalid_membership_values_raise(self):
        bad = np.zeros_like(GRID)
        bad[0] = 1.5
        with pytest.raises(ValueError):
            Centroid()(GRID, bad)

    def test_registry(self):
        assert isinstance(defuzzifier_by_name("centroid"), Centroid)
        assert isinstance(defuzzifier_by_name("MOM"), MeanOfMaximum)
        with pytest.raises(KeyError):
            defuzzifier_by_name("nonsense")

    @given(peak=st.floats(1.0, 9.0))
    @settings(max_examples=50)
    def test_centroid_within_support(self, peak):
        surface = Triangular(0.0, peak, 10.0).sample(GRID)
        value = Centroid()(GRID, surface)
        assert 0.0 <= value <= 10.0

    @given(peak=st.floats(1.0, 9.0), clip=st.floats(0.1, 1.0))
    @settings(max_examples=50)
    def test_all_defuzzifiers_within_support_for_clipped_surface(self, peak, clip):
        surface = np.minimum(Triangular(0.0, peak, 10.0).sample(GRID), clip)
        for defuzz in (Centroid(), Bisector(), MeanOfMaximum(), WeightedAverage()):
            value = defuzz(GRID, surface)
            assert 0.0 <= value <= 10.0


class TestMamdaniEngine:
    def test_excellent_service_gives_high_tip(self):
        controller = tip_controller()
        assert controller.compute(service=9.5, food=9.0) > 20.0

    def test_poor_service_gives_low_tip(self):
        controller = tip_controller()
        assert controller.compute(service=0.5, food=2.0) < 10.0

    def test_middle_service_gives_medium_tip(self):
        controller = tip_controller()
        assert 10.0 < controller.compute(service=5.0, food=5.0) < 20.0

    def test_output_monotone_in_service_quality(self):
        controller = tip_controller()
        tips = [controller.compute(service=s, food=5.0) for s in (1.0, 3.0, 5.0, 7.0, 9.0)]
        assert tips == sorted(tips)

    def test_missing_input_raises(self):
        controller = tip_controller()
        with pytest.raises(ValueError, match="missing crisp inputs"):
            controller.engine.infer({"service": 5.0})

    def test_inference_result_diagnostics(self):
        controller = tip_controller()
        result = controller.evaluate(service=9.0, food=9.0)
        assert result.dominant_rule().firing_strength > 0.0
        assert len(result.activations) == 3
        assert result.fired_rules()
        assert set(result.fuzzified_inputs) == {"service", "food"}

    def test_scale_implication_differs_from_clip(self):
        clip = tip_controller(implication=ImplicationMethod.CLIP)
        scale = tip_controller(implication=ImplicationMethod.SCALE)
        # Same ordering, slightly different values.
        assert clip.compute(service=7.0, food=6.0) == pytest.approx(
            scale.compute(service=7.0, food=6.0), abs=2.0
        )

    def test_invalid_implication_rejected(self):
        rule_base = tip_controller().rule_base
        with pytest.raises(ValueError):
            MamdaniEngine(rule_base, implication="banana")

    def test_no_rule_coverage_raises(self):
        x = LinguisticVariable("x", (0.0, 10.0), [Term("low", Triangular(0.0, 0.0, 2.0))])
        y = LinguisticVariable("y", (0.0, 10.0), [Term("out", Triangular(0.0, 5.0, 10.0))])
        base = RuleBase(parse_rules(["IF x is low THEN y is out"]), [x], [y])
        engine = MamdaniEngine(base)
        with pytest.raises(DefuzzificationError):
            engine.infer({"x": 9.0})

    def test_control_surface_shape_and_bounds(self):
        controller = tip_controller()
        xs, ys, surface = controller.engine.control_surface(
            "service", "food", "tip", resolution=7
        )
        assert surface.shape == (7, 7)
        assert np.all(surface >= 0.0) and np.all(surface <= 30.0)

    def test_control_surface_missing_fixed_input_raises(self):
        controller = tip_controller()
        x = LinguisticVariable("extra", (0, 1), [Term("t", Triangular(0, 0.5, 1))])
        with pytest.raises(KeyError):
            controller.engine.control_surface("nope", "food", "tip")

    def test_output_surface_is_returned(self):
        controller = tip_controller()
        surface = controller.engine.output_surface("tip", {"service": 8.0, "food": 8.0})
        assert surface.max() > 0.0


class TestSugenoEngine:
    def test_sugeno_agrees_qualitatively_with_mamdani(self):
        controller = tip_controller()
        sugeno = SugenoEngine(controller.rule_base)
        low = sugeno.infer({"service": 1.0, "food": 2.0})["tip"]
        high = sugeno.infer({"service": 9.5, "food": 9.5})["tip"]
        assert low < high

    def test_sugeno_no_coverage_raises(self):
        x = LinguisticVariable("x", (0.0, 10.0), [Term("low", Triangular(0.0, 0.0, 2.0))])
        y = LinguisticVariable("y", (0.0, 10.0), [Term("out", Triangular(0.0, 5.0, 10.0))])
        base = RuleBase(parse_rules(["IF x is low THEN y is out"]), [x], [y])
        with pytest.raises(DefuzzificationError):
            SugenoEngine(base).infer({"x": 9.0})


class TestFuzzyControllerFacade:
    def test_compute_rejects_multi_output(self):
        service = LinguisticVariable(
            "s", (0, 1), [Term("a", Triangular(0, 0, 1)), Term("b", Triangular(0, 1, 1))]
        )
        out1 = LinguisticVariable("o1", (0, 1), [Term("x", Triangular(0, 0.5, 1))])
        out2 = LinguisticVariable("o2", (0, 1), [Term("y", Triangular(0, 0.5, 1))])
        controller = FuzzyController(
            "multi",
            [service],
            [out1, out2],
            ["IF s is a THEN o1 is x AND o2 is y", "IF s is b THEN o1 is x AND o2 is y"],
        )
        with pytest.raises(ValueError):
            controller.compute(s=0.5)
        result = controller.evaluate(s=0.5)
        assert set(result.outputs) == {"o1", "o2"}

    def test_compute_many(self):
        controller = tip_controller()
        values = controller.compute_many(
            [{"service": 1.0, "food": 1.0}, {"service": 9.0, "food": 9.0}]
        )
        assert len(values) == 2 and values[0] < values[1]

    def test_rule_table_rendering(self):
        controller = tip_controller()
        table = controller.rule_table()
        assert len(table) == 3
        assert table[1]["tip"] == "medium"

    def test_membership_table(self):
        controller = tip_controller()
        table = controller.membership_table("tip", points=5)
        assert set(table) == {"low", "medium", "high"}
        assert len(table["low"]) == 5
        with pytest.raises(KeyError):
            controller.membership_table("unknown-variable")

    def test_mixed_rule_types_rejected(self):
        service = LinguisticVariable(
            "s", (0, 1), [Term("a", Triangular(0, 0, 1)), Term("b", Triangular(0, 1, 1))]
        )
        out = LinguisticVariable("o", (0, 1), [Term("x", Triangular(0, 0.5, 1))])
        rules = parse_rules(["IF s is a THEN o is x"])
        with pytest.raises(TypeError):
            FuzzyController("bad", [service], [out], [rules[0], "IF s is b THEN o is x"])

    def test_controller_spec_builds_equivalent_controller(self):
        spec = ControllerSpec(name="tipping", tnorm="minimum", snorm="maximum")
        service = LinguisticVariable(
            "service",
            (0.0, 10.0),
            [
                Term("poor", Triangular(0.0, 0.0, 5.0)),
                Term("good", Triangular(0.0, 5.0, 10.0)),
                Term("excellent", Triangular(5.0, 10.0, 10.0)),
            ],
        )
        tip = LinguisticVariable(
            "tip",
            (0.0, 30.0),
            [
                Term("low", Triangular(0.0, 5.0, 10.0)),
                Term("high", Triangular(20.0, 25.0, 30.0)),
            ],
        )
        controller = spec.build(
            [service],
            [tip],
            ["IF service is poor THEN tip is low", "IF service is excellent THEN tip is high"],
        )
        assert controller.compute(service=0.0) < controller.compute(service=10.0)
