"""Tests of the workload seam through the simulation paths.

Two families of guarantees:

* the ``poisson`` workload is **byte-identical** to no workload at all on
  every path (batch, network, sweep) — the legacy draw sequences are
  reproduced exactly;
* the bursty workloads stay byte-identical across serial, thread and
  process executors, and their per-class admission counters ride the
  frame into :meth:`MetricsFrame.group_reduce`.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.frame import MetricsFrame, class_column_names
from repro.cac.complete_sharing import CompleteSharingController
from repro.cac.facs.system import FACSConfig
from repro.cellular.traffic import ServiceClass
from repro.simulation import (
    BatchExperimentConfig,
    NetworkExperimentConfig,
    NetworkSweepSpec,
    ProcessPoolSweepExecutor,
    ThreadPoolSweepExecutor,
    run_batch_experiment,
    run_network_experiment,
    run_network_sweep,
)
from repro.simulation.batch import run_batch_experiment_row
from repro.simulation.scenario import facs_factory
from repro.workloads import WORKLOADS

POISSON = WORKLOADS.get("poisson")
MMPP = WORKLOADS.get("mmpp")


def batch_config(workload=None) -> BatchExperimentConfig:
    return BatchExperimentConfig(request_count=60, seed=11, workload=workload)


def network_config(workload=None) -> NetworkExperimentConfig:
    return NetworkExperimentConfig(
        rings=1, duration_s=300.0, arrival_rate_per_cell_per_s=0.05, seed=11,
        workload=workload,
    )


def sweep_spec(workload=None, engine: str = "compiled") -> NetworkSweepSpec:
    return NetworkSweepSpec(
        name="workload-paths",
        controllers={"FACS": facs_factory(FACSConfig(engine=engine))},
        arrival_rates=(0.05,),
        replications=2,
        base_config=network_config(workload),
    )


class TestPoissonIsByteIdenticalToLegacy:
    def test_batch_path(self):
        legacy = run_batch_experiment(batch_config(None), CompleteSharingController)
        poisson = run_batch_experiment(batch_config(POISSON), CompleteSharingController)
        assert pickle.dumps(poisson) == pickle.dumps(legacy)

    def test_batch_trace_path(self):
        legacy = run_batch_experiment(
            batch_config(None), CompleteSharingController, collect_trace=True
        )
        poisson = run_batch_experiment(
            batch_config(POISSON), CompleteSharingController, collect_trace=True
        )
        assert pickle.dumps(poisson) == pickle.dumps(legacy)

    def test_network_path(self):
        legacy = run_network_experiment(network_config(None), CompleteSharingController)
        poisson = run_network_experiment(
            network_config(POISSON), CompleteSharingController
        )
        assert pickle.dumps(poisson) == pickle.dumps(legacy)

    def test_network_sweep_path(self):
        legacy = run_network_sweep(sweep_spec(None))
        poisson = run_network_sweep(sweep_spec(POISSON))
        assert pickle.dumps(poisson) == pickle.dumps(legacy)


class TestExecutorIdentity:
    def test_mmpp_sweep_identical_across_backends_and_worker_counts(self):
        reference = pickle.dumps(run_network_sweep(sweep_spec(MMPP)))
        for workers in (1, 3):
            threaded = run_network_sweep(
                sweep_spec(MMPP), executor=ThreadPoolSweepExecutor(max_workers=workers)
            )
            assert pickle.dumps(threaded) == reference
        pooled = run_network_sweep(
            sweep_spec(MMPP), executor=ProcessPoolSweepExecutor(max_workers=2)
        )
        assert pickle.dumps(pooled) == reference

    def test_mmpp_sweep_identical_across_engines(self):
        compiled = run_network_sweep(sweep_spec(MMPP, engine="compiled"))
        interpreted = run_network_sweep(sweep_spec(MMPP, engine="reference"))
        for left, right in zip(compiled.curves, interpreted.curves):
            assert left.points == right.points


class TestPerClassCounters:
    def test_batch_output_carries_class_counters(self):
        output = run_batch_experiment(batch_config(MMPP), CompleteSharingController)
        assert output.class_names == ("voice", "data", "video")
        values = dict(zip(class_column_names(output.class_names), output.class_values))
        requested = sum(values[f"class.{s}.requested"] for s in output.class_names)
        assert requested == output.result.metrics.requested
        for service in output.class_names:
            assert values[f"class.{service}.requested"] == (
                values[f"class.{service}.accepted"] + values[f"class.{service}.blocked"]
            )

    def test_legacy_runs_carry_no_class_counters(self):
        output = run_batch_experiment(batch_config(None), CompleteSharingController)
        assert output.class_names == ()
        assert output.class_values == ()

    def test_workload_mix_drives_the_service_split(self):
        output = run_batch_experiment(batch_config(MMPP), CompleteSharingController)
        per_service = output.result.metrics  # totals only; use the collector split
        values = dict(zip(class_column_names(output.class_names), output.class_values))
        # data has the largest share (0.45) of the preset mix.
        assert values["class.data.requested"] > values["class.video.requested"]
        assert per_service.requested == 60

    def test_sweep_frame_exposes_class_columns_and_group_totals(self):
        sweep = run_network_sweep(sweep_spec(MMPP))
        frame = sweep.frame
        assert frame.class_names == ("voice", "data", "video")
        for name in class_column_names(frame.class_names):
            assert not np.isnan(frame.column(name)).any()
        groups = frame.group_reduce()
        assert groups
        for group in groups:
            assert group.class_totals is not None
            for service in frame.class_names:
                blocking = group.class_blocking_probability(service)
                dropping = group.class_dropping_probability(service)
                assert 0.0 <= blocking <= 1.0
                assert 0.0 <= dropping <= 1.0

    def test_group_without_class_counters_raises_keyerror(self):
        sweep = run_network_sweep(sweep_spec(None))
        group = sweep.frame.group_reduce()[0]
        assert group.class_totals is None
        with pytest.raises(KeyError):
            group.class_blocking_probability("voice")

    def test_mixed_frames_nan_fill_legacy_rows(self):
        legacy_row = run_batch_experiment_row(
            batch_config(None), CompleteSharingController, label="legacy"
        )
        workload_row = run_batch_experiment_row(
            batch_config(MMPP), CompleteSharingController, label="mmpp"
        )
        frame = MetricsFrame.from_rows("batch", [legacy_row, workload_row])
        assert frame.class_names == ("voice", "data", "video")
        column = frame.column("class.voice.requested")
        assert np.isnan(column[0])
        assert not np.isnan(column[1])

    def test_effective_traffic_mix_prefers_the_workload(self):
        legacy = network_config(None)
        workload = network_config(MMPP)
        poisson = network_config(POISSON)
        assert legacy.effective_traffic_mix() is legacy.traffic_mix
        assert poisson.effective_traffic_mix() is poisson.traffic_mix
        assert set(workload.effective_traffic_mix().classes) == {
            ServiceClass.VOICE,
            ServiceClass.DATA,
            ServiceClass.VIDEO,
        }

    def test_workload_replaces_through_dataclasses_replace(self):
        config = network_config(MMPP)
        bumped = replace(config, arrival_rate_per_cell_per_s=0.2)
        assert bumped.workload is MMPP
