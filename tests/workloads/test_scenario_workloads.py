"""Scenario- and campaign-level tests of the workload field.

The scenario layer normalises the *name* ``"poisson"`` to ``None`` and
omits a ``None`` workload from payloads, so the two spellings are one
scenario identity and pre-workload payloads stay byte-identical.  Runner
reports for the default and for ``workload="poisson"`` must therefore be
byte-for-byte equal, while bursty workloads light up per-class counters
all the way into campaign comparison tables.
"""

from __future__ import annotations

import pytest

from repro.analysis.io import write_workload_json
from repro.api import (
    COMPARISON_METRICS,
    Campaign,
    CampaignMember,
    ComparisonSpec,
    Runner,
    Scenario,
    NetworkSweepScenario,
    ScenarioError,
    TraceArrivalsScenario,
    run_campaign,
)
from repro.workloads import WORKLOADS

runner = Runner()


def sweep_scenario(**overrides) -> NetworkSweepScenario:
    fields = dict(
        controllers=("FACS",),
        arrival_rates=(0.05,),
        replications=1,
        duration_s=300.0,
    )
    fields.update(overrides)
    return NetworkSweepScenario(**fields)


class TestScenarioField:
    def test_poisson_normalises_to_none(self):
        assert sweep_scenario(workload="poisson").workload is None
        assert sweep_scenario(workload=None).workload is None

    def test_default_payload_omits_the_workload_key(self):
        for scenario in (sweep_scenario(), sweep_scenario(workload="poisson")):
            assert "workload" not in scenario.to_dict()

    def test_set_workload_round_trips(self):
        scenario = sweep_scenario(workload="mmpp")
        payload = scenario.to_dict()
        assert payload["workload"] == "mmpp"
        assert Scenario.from_dict(payload) == scenario

    def test_pre_workload_payload_still_loads(self):
        payload = sweep_scenario().to_dict()
        payload.pop("workload", None)
        assert Scenario.from_dict(payload).workload is None

    def test_unknown_workload_rejected(self):
        with pytest.raises(ScenarioError, match="unknown workload"):
            sweep_scenario(workload="fractal")

    def test_missing_workload_file_rejected(self, tmp_path):
        with pytest.raises(ScenarioError, match="not found"):
            sweep_scenario(workload=str(tmp_path / "absent.json"))

    def test_workload_definition_file_accepted(self, tmp_path):
        path = write_workload_json(WORKLOADS.get("mmpp"), tmp_path / "mmpp.json")
        assert sweep_scenario(workload=str(path)).workload == str(path)

    def test_every_sweep_and_replay_kind_has_the_field(self):
        for kind in (
            "figure-sweep",
            "network-sweep",
            "network-sweep-sharded",
            "network-sweep-coupled-sharded",
            "trace-arrivals",
            "service-replay",
        ):
            payload = {"kind": kind, "workload": "mmpp"}
            if kind == "figure-sweep":
                payload["figure"] = "fig7-speed"
            scenario = Scenario.from_dict(payload)
            assert scenario.workload == "mmpp"


class TestRunnerByteIdentity:
    def test_network_sweep_reports_identical(self):
        default = runner.run(sweep_scenario())
        poisson = runner.run(sweep_scenario(workload="poisson"))
        assert poisson.to_json() == default.to_json()

    def test_trace_arrivals_reports_identical(self):
        default = runner.run(TraceArrivalsScenario(request_count=40, batch_size=8))
        poisson = runner.run(
            TraceArrivalsScenario(request_count=40, batch_size=8, workload="poisson")
        )
        assert poisson.to_json() == default.to_json()


class TestPerClassReporting:
    def test_mmpp_report_frame_carries_class_columns(self):
        report = runner.run(sweep_scenario(workload="mmpp"))
        frame = report.metrics["frame"]
        assert frame["class_names"] == ["voice", "data", "video"]
        assert "class.voice.dropped" in frame["columns"]

    def test_class_comparison_metrics_extract_from_the_report(self):
        report = runner.run(sweep_scenario(workload="mmpp"))
        values = COMPARISON_METRICS.get("voice_dropping")(report.metrics)
        assert set(values) == {"FACS"}
        assert 0.0 <= values["FACS"] <= 1.0

    def test_class_metrics_are_none_for_legacy_reports(self):
        report = runner.run(sweep_scenario())
        for name in ("voice_dropping", "data_blocking", "video_dropping"):
            assert COMPARISON_METRICS.get(name)(report.metrics) is None

    def test_campaign_comparison_mixes_legacy_and_workload_members(self):
        campaign = Campaign(
            name="workload-mini",
            members=(
                CampaignMember(id="poisson", scenario=sweep_scenario()),
                CampaignMember(id="mmpp", scenario=sweep_scenario(workload="mmpp")),
            ),
            comparison=ComparisonSpec(
                metrics=("mean_dropping", "voice_dropping"), baseline="poisson"
            ),
        )
        report = run_campaign(campaign)
        rows = {
            row["scenario"]: row for row in report.comparison["rows"]
        }
        assert rows["poisson"]["values"]["voice_dropping"] is None
        assert rows["mmpp"]["values"]["voice_dropping"] is not None
        assert rows["mmpp"]["deltas"]["mean_dropping"] is not None


class TestRivalControllersBeatFACSUnderBurst:
    def test_mpc_lookahead_cuts_dropping_under_mmpp(self):
        scenario = sweep_scenario(
            controllers=("FACS", "MPCLookahead"),
            arrival_rates=(0.08,),
            replications=2,
            duration_s=600.0,
            workload="mmpp",
        )
        report = runner.run(scenario)
        dropping = COMPARISON_METRICS.get("mean_dropping")(report.metrics)
        assert dropping["MPCLookahead"] < dropping["FACS"]
