"""Property tests of the arrival-process models (Hypothesis).

Three invariants every registered workload must satisfy:

* **determinism** — the same seed yields the identical draw sequence, on
  both the sampler (DES) seam and the batch seam;
* **positivity** — inter-arrival gaps are strictly positive and batch
  arrival instants strictly increase;
* **rate fidelity** — the empirical long-run arrival rate matches the
  configured target (every model normalises its rate function to the
  target, so offered load is comparable across workloads).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.rng import RandomStream
from repro.workloads import WORKLOADS

REGISTERED = tuple(WORKLOADS.names())

workload_names = st.sampled_from(REGISTERED)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
rates = st.floats(min_value=0.05, max_value=2.0)


def draw_gaps(name: str, seed: int, rate: float, count: int) -> list[float]:
    sampler = WORKLOADS.get(name).arrival.sampler(RandomStream("arrivals", seed), rate)
    gaps: list[float] = []
    now = 0.0
    for _ in range(count):
        gap = sampler.next_interarrival(now)
        gaps.append(gap)
        now += gap
    return gaps


@settings(max_examples=25, deadline=None)
@given(name=workload_names, seed=seeds, rate=rates)
def test_same_seed_same_sampler_stream(name, seed, rate):
    assert draw_gaps(name, seed, rate, 200) == draw_gaps(name, seed, rate, 200)


@settings(max_examples=25, deadline=None)
@given(name=workload_names, seed=seeds, count=st.integers(min_value=0, max_value=64))
def test_same_seed_same_batch_times(name, seed, count):
    model = WORKLOADS.get(name).arrival
    first = model.batch_arrival_times(RandomStream("requests", seed), count, 3000.0)
    again = model.batch_arrival_times(RandomStream("requests", seed), count, 3000.0)
    assert first == again
    assert len(first) == count


@settings(max_examples=25, deadline=None)
@given(name=workload_names, seed=seeds, rate=rates)
def test_interarrivals_strictly_positive(name, seed, rate):
    assert all(gap > 0.0 for gap in draw_gaps(name, seed, rate, 300))


@settings(max_examples=25, deadline=None)
@given(name=workload_names, seed=seeds, count=st.integers(min_value=2, max_value=64))
def test_batch_times_strictly_increase(name, seed, count):
    times = WORKLOADS.get(name).arrival.batch_arrival_times(
        RandomStream("requests", seed), count, 3000.0
    )
    assert all(a < b for a, b in zip(times, times[1:]))


@pytest.mark.parametrize("name", REGISTERED)
def test_empirical_rate_matches_target(name):
    """Long-run mean rate within 10% of the configured target.

    Pools 100k draws over five independent seeds: MMPP mixes over 300 s
    regime cycles, so a single 20k-arrival run still wanders ~10% around
    the target, but the pooled estimate is comfortably inside 10% for
    every registered model — and still catches any scaling slip (a
    mis-normalised flash-crowd base rate is off by ~40%).
    """
    model = WORKLOADS.get(name).arrival
    n = 20_000
    total_time = 0.0
    total_arrivals = 0
    for seed in (20070628, 1, 7, 42, 123):
        total_time += sum(draw_gaps(name, seed=seed, rate=1.0, count=n))
        total_arrivals += n
    empirical_rate = total_arrivals / total_time
    target = 1.0 * model.mean_rate_multiplier()
    assert empirical_rate == pytest.approx(target, rel=0.10)


@pytest.mark.parametrize("name", REGISTERED)
def test_every_registered_model_normalises_to_the_target(name):
    assert WORKLOADS.get(name).arrival.mean_rate_multiplier() == 1.0
