"""Tests of workload specs: registry, validation and the JSON codec."""

from __future__ import annotations

import pytest

from repro.analysis.io import (
    SCHEMA_VERSION,
    read_workload_json,
    workload_from_dict,
    workload_to_dict,
    write_workload_json,
)
from repro.workloads import (
    DEFAULT_SERVICE_CLASSES,
    WORKLOADS,
    DiurnalArrival,
    FlashCrowdArrival,
    HeavyTailArrival,
    MMPPArrival,
    PoissonArrival,
    ServiceClassDef,
    WorkloadError,
    WorkloadSpec,
    build_traffic_mix,
    resolve_workload,
)

REGISTERED = ("poisson", "mmpp", "heavy-tail", "diurnal", "flash-crowd")


class TestRegistry:
    def test_all_five_workloads_registered(self):
        assert tuple(WORKLOADS.names()) == REGISTERED

    def test_poisson_is_the_legacy_default(self):
        spec = WORKLOADS.get("poisson")
        assert isinstance(spec.arrival, PoissonArrival)
        assert spec.service_classes is None
        assert spec.traffic_mix() is None
        assert spec.class_names() == ()

    def test_bursty_workloads_carry_the_service_mix(self):
        for name in ("mmpp", "heavy-tail", "diurnal", "flash-crowd"):
            spec = WORKLOADS.get(name)
            assert spec.service_classes == DEFAULT_SERVICE_CLASSES
            assert spec.class_names() == ("voice", "data", "video")
            assert spec.traffic_mix() is not None


class TestResolve:
    def test_none_and_spec_pass_through(self):
        spec = WORKLOADS.get("mmpp")
        assert resolve_workload(None) is None
        assert resolve_workload(spec) is spec

    def test_names_resolve_to_registered_specs(self):
        for name in REGISTERED:
            assert resolve_workload(name) is WORKLOADS.get(name)

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            resolve_workload("fractal")

    def test_non_string_raises(self):
        with pytest.raises(WorkloadError):
            resolve_workload(42)

    def test_json_path_roundtrip(self, tmp_path):
        spec = WorkloadSpec(
            name="custom-burst",
            arrival=MMPPArrival(rate_multipliers=(2.0, 0.5), mean_sojourn_s=(100.0, 200.0)),
            service_classes=DEFAULT_SERVICE_CLASSES,
        )
        path = write_workload_json(spec, tmp_path / "custom.json")
        assert resolve_workload(str(path)) == spec

    def test_missing_json_path_raises(self, tmp_path):
        with pytest.raises(WorkloadError, match="cannot read"):
            resolve_workload(str(tmp_path / "absent.json"))


class TestCodec:
    @pytest.mark.parametrize("name", REGISTERED)
    def test_registered_workloads_roundtrip(self, name):
        spec = WORKLOADS.get(name)
        assert workload_from_dict(workload_to_dict(spec)) == spec

    def test_payload_is_schema_versioned(self):
        payload = workload_to_dict(WORKLOADS.get("mmpp"))
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["type"] == "workload"
        assert payload["arrival"]["kind"] == "mmpp"

    def test_unknown_arrival_kind_rejected(self):
        payload = workload_to_dict(WORKLOADS.get("poisson"))
        payload["arrival"] = {"kind": "fractal"}
        with pytest.raises(ValueError, match="unknown arrival kind"):
            workload_from_dict(payload)

    def test_unknown_arrival_parameter_rejected(self):
        payload = workload_to_dict(WORKLOADS.get("mmpp"))
        payload["arrival"]["burstiness"] = 3.0
        with pytest.raises(ValueError, match="unknown 'mmpp' arrival parameters"):
            workload_from_dict(payload)

    def test_unknown_top_level_field_rejected(self):
        payload = workload_to_dict(WORKLOADS.get("poisson"))
        payload["colour"] = "blue"
        with pytest.raises(ValueError, match="unknown workload fields"):
            workload_from_dict(payload)

    def test_unknown_service_class_field_rejected(self):
        payload = workload_to_dict(WORKLOADS.get("mmpp"))
        payload["service_classes"][0]["latency_budget"] = 1.0
        with pytest.raises(ValueError, match="unknown service class fields"):
            workload_from_dict(payload)

    def test_invalid_parameters_surface_as_workload_errors(self):
        payload = workload_to_dict(WORKLOADS.get("diurnal"))
        payload["arrival"]["amplitude"] = 1.5
        with pytest.raises(WorkloadError, match="invalid 'diurnal' arrival"):
            workload_from_dict(payload)

    def test_tampered_json_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(WorkloadError, match="not valid JSON"):
            read_workload_json(path)


class TestSpecValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="", arrival=PoissonArrival())

    def test_abstract_arrival_rejected(self):
        from repro.workloads.arrivals import ArrivalModel

        with pytest.raises(WorkloadError):
            WorkloadSpec(name="x", arrival=ArrivalModel())

    def test_empty_service_classes_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="x", arrival=PoissonArrival(), service_classes=())

    def test_shares_must_sum_to_one(self):
        lopsided = (
            ServiceClassDef("voice", 5, 120.0, share=0.5),
            ServiceClassDef("data", 2, 90.0, share=0.4),
        )
        with pytest.raises(WorkloadError, match="sum to 1"):
            WorkloadSpec(name="x", arrival=PoissonArrival(), service_classes=lopsided)

    def test_duplicate_service_rejected(self):
        doubled = (
            ServiceClassDef("voice", 5, 120.0, share=0.5),
            ServiceClassDef("voice", 2, 90.0, share=0.5),
        )
        with pytest.raises(WorkloadError, match="duplicate service"):
            WorkloadSpec(name="x", arrival=PoissonArrival(), service_classes=doubled)


class TestServiceClassDef:
    def test_presets_are_valid_and_build_a_mix(self):
        mix = build_traffic_mix(DEFAULT_SERVICE_CLASSES)
        assert len(mix.classes) == 3

    def test_unknown_service_rejected(self):
        with pytest.raises(ValueError, match="unknown service class"):
            ServiceClassDef("fax", 1, 60.0, share=1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bandwidth_units": 0},
            {"bandwidth_units": True},
            {"mean_holding_time_s": 0.0},
            {"share": 0.0},
            {"share": 1.5},
            {"priority_weight": 0.0},
            {"priority_weight": 1.2},
        ],
    )
    def test_invalid_numbers_rejected(self, kwargs):
        base = dict(
            service="voice", bandwidth_units=5, mean_holding_time_s=120.0, share=1.0
        )
        with pytest.raises(ValueError):
            ServiceClassDef(**{**base, **kwargs})


class TestArrivalValidation:
    def test_mmpp_requires_unit_mean_multiplier(self):
        with pytest.raises(ValueError, match="mean rate multiplier must be 1"):
            MMPPArrival(rate_multipliers=(3.0, 3.0), mean_sojourn_s=(60.0, 60.0))

    def test_mmpp_is_strictly_two_state(self):
        with pytest.raises(ValueError, match="2-state"):
            MMPPArrival(rate_multipliers=(1.0, 1.0, 1.0), mean_sojourn_s=(1.0, 1.0, 1.0))

    def test_pareto_shape_must_have_finite_mean(self):
        with pytest.raises(ValueError, match="shape must exceed 1"):
            HeavyTailArrival(distribution="pareto", shape=0.9)

    def test_heavy_tail_distribution_names(self):
        with pytest.raises(ValueError, match="pareto.*lognormal"):
            HeavyTailArrival(distribution="weibull")

    def test_diurnal_amplitude_bounds(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrival(amplitude=1.0)

    def test_flash_crowd_spike_must_fit_in_period(self):
        with pytest.raises(ValueError, match="fit inside one period"):
            FlashCrowdArrival(spike_start_s=580.0, spike_duration_s=60.0, period_s=600.0)

    def test_flash_crowd_multiplier_must_amplify(self):
        with pytest.raises(ValueError, match="multiplier must exceed 1"):
            FlashCrowdArrival(multiplier=1.0)
