"""service-replay scenario kind: round-trip, runner, CLI, comparisons."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    COMPARISON_METRICS,
    Runner,
    Scenario,
    ScenarioError,
    ServiceReplayScenario,
    scenario_for,
)
from repro.cli import main

QUICK = dict(request_count=60, arrival_window_s=30.0)


class TestServiceReplayScenario:
    def test_round_trips(self):
        scenario = ServiceReplayScenario(
            request_count=90, max_batch=4, max_wait_ms=500.0, seed=9
        )
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_registered_default(self):
        assert scenario_for("service-replay") == ServiceReplayScenario()

    def test_validation(self):
        with pytest.raises(ScenarioError, match="request_count"):
            ServiceReplayScenario(request_count=0)
        with pytest.raises(ScenarioError, match="max_batch"):
            ServiceReplayScenario(max_batch=0)
        with pytest.raises(ScenarioError, match="max_wait_ms"):
            ServiceReplayScenario(max_wait_ms=0.0)
        with pytest.raises(ScenarioError, match="queue_capacity"):
            ServiceReplayScenario(queue_capacity=0)
        with pytest.raises(ScenarioError, match="arrival_window_s"):
            ServiceReplayScenario(arrival_window_s=-1.0)
        with pytest.raises(ScenarioError, match="unknown engine"):
            ServiceReplayScenario(engine="warp")

    def test_runner_produces_report(self):
        report = Runner().run(ServiceReplayScenario(**QUICK))
        assert "admission service (replay)" in report.text
        assert report.metrics["type"] == "service-replay"
        assert report.metrics["submitted"] == 60
        assert report.metrics["mode"] == "replay"
        assert "frame" in report.metrics
        assert report.scenario.slug == "service-replay"

    def test_report_is_deterministic(self):
        first = Runner().run(ServiceReplayScenario(**QUICK))
        second = Runner().run(ServiceReplayScenario(**QUICK))
        assert first.to_json() == second.to_json()

    def test_frame_carries_latency_parameters(self):
        report = Runner().run(ServiceReplayScenario(**QUICK))
        columns = report.metrics["frame"]["param_names"]
        assert "p99_latency_ms" in columns
        assert "throughput_dps" in columns


class TestComparisonMetrics:
    def test_service_metrics_registered(self):
        names = list(COMPARISON_METRICS.names())
        assert "p99_latency_ms" in names
        assert "throughput_dps" in names

    def test_extractors_apply_to_service_payloads_only(self):
        report = Runner().run(ServiceReplayScenario(**QUICK))
        p99 = COMPARISON_METRICS.get("p99_latency_ms")(report.metrics)
        assert p99 == {"FACS": report.metrics["latency_ms"]["p99_ms"]}
        assert COMPARISON_METRICS.get("p99_latency_ms")({"type": "artifact"}) is None
        acceptance = COMPARISON_METRICS.get("mean_acceptance")(report.metrics)
        assert acceptance == {"FACS": report.metrics["acceptance_percentage"]}


class TestCli:
    def test_service_replay_command(self, capsys):
        assert main(["service-replay", "--requests", "40", "--window", "20"]) == 0
        out = capsys.readouterr().out
        assert "admission service (replay)" in out
        assert "submitted=40" in out

    def test_service_replay_json_format(self, capsys):
        assert (
            main(
                [
                    "service-replay",
                    "--requests",
                    "40",
                    "--window",
                    "20",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["type"] == "service-replay"
        assert payload["scenario"]["kind"] == "service-replay"

    def test_service_replay_config_round_trip(self, tmp_path, capsys):
        scenario = ServiceReplayScenario(request_count=40, arrival_window_s=20.0)
        path = tmp_path / "scenario.json"
        path.write_text(scenario.to_json())
        assert main(["service-replay", "--config", str(path)]) == 0
        assert "submitted=40" in capsys.readouterr().out

    def test_service_replay_config_rejects_shaping_flags(self, tmp_path, capsys):
        scenario = ServiceReplayScenario(request_count=40, arrival_window_s=20.0)
        path = tmp_path / "scenario.json"
        path.write_text(scenario.to_json())
        with pytest.raises(SystemExit):
            main(["service-replay", "--config", str(path), "--max-batch", "4"])
        assert "--max-batch" in capsys.readouterr().err

    def test_service_replay_config_rejects_other_kinds(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(scenario_for("trace-arrivals").to_json())
        with pytest.raises(SystemExit):
            main(["service-replay", "--config", str(path)])
        assert "service-replay" in capsys.readouterr().err

    def test_run_maps_the_registered_scenario(self, capsys):
        assert main(["run", "service-replay", "--engine", "reference"]) == 0
        assert "admission service (replay)" in capsys.readouterr().out

    def test_run_rejects_unsupported_shaping_flags(self):
        with pytest.raises(SystemExit, match="only --engine"):
            main(["run", "service-replay", "--replications", "2"])

    def test_serve_command(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--requests",
                    "400",
                    "--clients",
                    "16",
                    "--max-batch",
                    "16",
                ]
            )
            == 0
        )
        assert "admission service (live)" in capsys.readouterr().out

    def test_serve_json_format(self, capsys):
        assert main(["serve", "--requests", "300", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "live"
        assert payload["submitted"] == 300

    def test_save_round_trips(self, tmp_path, capsys):
        from repro.api import RunReport

        assert (
            main(
                [
                    "service-replay",
                    "--requests",
                    "40",
                    "--window",
                    "20",
                    "--save",
                    str(tmp_path),
                ]
            )
            == 0
        )
        saved = list(tmp_path.glob("service-replay-*.json"))
        assert len(saved) == 1
        report = RunReport.load(saved[0])
        assert report.metrics["type"] == "service-replay"
