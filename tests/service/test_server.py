"""Admission server core: batching policy, backpressure, accounting."""

from __future__ import annotations

import asyncio

import pytest

from repro.cellular.calls import Call, CallState, CallType
from repro.cellular.traffic import PAPER_TRAFFIC_MIX, ServiceClass
from repro.service import (
    ADMITTED,
    REJECTED,
    SHED,
    AdmissionServer,
    ServiceClosedError,
    ServiceConfig,
    VirtualClock,
    run_load_session,
    run_with_virtual_clock,
)


def make_call(call_id: int, requested_at: float = 0.0, holding: float = 50.0) -> Call:
    spec = PAPER_TRAFFIC_MIX.spec(ServiceClass.VOICE)
    return Call(
        service=ServiceClass.VOICE,
        bandwidth_units=spec.bandwidth_units,
        call_type=CallType.NEW,
        requested_at=requested_at,
        holding_time_s=holding,
        call_id=call_id,
    )


def drive(main_factory, clock: VirtualClock):
    return run_with_virtual_clock(main_factory(), clock)


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            ServiceConfig(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            ServiceConfig(max_wait_ms=0.0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            ServiceConfig(max_wait_ms=float("inf"))
        with pytest.raises(ValueError, match="queue_capacity"):
            ServiceConfig(queue_capacity=0)


class TestBatchingPolicy:
    def test_size_flush_answers_full_batch_immediately(self):
        clock = VirtualClock()
        server = AdmissionServer(
            ServiceConfig(max_batch=3, max_wait_ms=10_000.0), clock=clock
        )

        async def main():
            decisions = await asyncio.gather(
                *(server.submit(make_call(i)) for i in range(1, 4))
            )
            await server.aclose()
            return decisions

        decisions = drive(main, clock)
        report = server.report()
        assert [d.batch_index for d in decisions] == [0, 0, 0]
        assert report.size_flushes == 1
        assert report.deadline_flushes == 0
        # Size-triggered flush: decided the instant the batch filled.
        assert all(d.latency_s == 0.0 for d in decisions)

    def test_deadline_flush_bounds_the_wait(self):
        clock = VirtualClock()
        server = AdmissionServer(
            ServiceConfig(max_batch=10, max_wait_ms=250.0), clock=clock
        )

        async def main():
            decisions = await asyncio.gather(
                server.submit(make_call(1)), server.submit(make_call(2))
            )
            await server.aclose()
            return decisions

        decisions = drive(main, clock)
        report = server.report()
        assert report.deadline_flushes == 1
        assert all(d.decided_at_s == pytest.approx(0.25) for d in decisions)
        assert clock.now() == pytest.approx(0.25)

    def test_backpressure_sheds_beyond_queue_capacity(self):
        clock = VirtualClock()
        server = AdmissionServer(
            ServiceConfig(max_batch=100, max_wait_ms=1000.0, queue_capacity=4),
            clock=clock,
        )

        async def main():
            decisions = await asyncio.gather(
                *(server.submit(make_call(i)) for i in range(1, 8))
            )
            await server.aclose()
            return decisions

        decisions = drive(main, clock)
        outcomes = [d.outcome for d in decisions]
        assert outcomes.count(SHED) == 3
        shed = [d for d in decisions if d.outcome == SHED]
        # Shed decisions are immediate, carry no score and no batch.
        assert all(d.latency_s == 0.0 for d in shed)
        assert all(d.score is None and d.batch_index is None for d in shed)
        assert server.report().shed == 3

    def test_submit_after_close_raises(self):
        clock = VirtualClock()
        server = AdmissionServer(clock=clock)

        async def main():
            await server.aclose()
            with pytest.raises(ServiceClosedError):
                await server.submit(make_call(1))

        drive(main, clock)


class TestAccounting:
    def run_session(self, count: int, config: ServiceConfig):
        clock = VirtualClock()
        server = AdmissionServer(config, clock=clock)

        async def main():
            calls = [make_call(i, requested_at=0.5 * i) for i in range(1, count + 1)]

            async def submitter(call):
                await clock.sleep_until(call.requested_at, key=call.call_id)
                return await server.submit(call)

            decisions = await asyncio.gather(*(submitter(call) for call in calls))
            await server.aclose()
            return calls, decisions

        calls, decisions = drive(main, clock)
        return calls, decisions, server.report()

    def test_counters_partition_the_requests(self):
        calls, decisions, report = self.run_session(
            40, ServiceConfig(max_batch=4, max_wait_ms=1500.0, queue_capacity=8)
        )
        assert report.submitted == 40
        assert report.admitted + report.rejected + report.shed == 40
        outcomes = [d.outcome for d in decisions]
        assert outcomes.count(ADMITTED) == report.admitted
        assert outcomes.count(REJECTED) == report.rejected
        assert report.metrics.requested == 40
        assert report.metrics.accepted == report.admitted

    def test_close_retires_every_admitted_call(self):
        calls, _, report = self.run_session(
            30, ServiceConfig(max_batch=8, max_wait_ms=2000.0)
        )
        assert report.completed == report.admitted
        assert not any(call.state is CallState.ACTIVE for call in calls)
        # The ledger drained: nothing holds bandwidth after close.
        assert report.peak_occupancy_bu <= report.capacity_bu

    def test_batch_records_cover_all_decided(self):
        _, _, report = self.run_session(
            25, ServiceConfig(max_batch=4, max_wait_ms=1000.0)
        )
        assert sum(record.size for record in report.batches) == report.decided
        assert sum(record.admitted for record in report.batches) == report.admitted
        for record in report.batches:
            assert 0 <= record.occupancy_before_bu <= report.capacity_bu
            assert 0 <= record.occupancy_after_bu <= report.capacity_bu


class TestLiveSession:
    def test_load_session_decides_everything(self):
        report = run_load_session(
            request_count=600,
            clients=32,
            service=ServiceConfig(max_batch=16, max_wait_ms=5.0, queue_capacity=64),
        )
        assert report.mode == "live"
        assert report.submitted == 600
        assert report.admitted + report.rejected + report.shed == 600
        assert report.completed == report.admitted
        assert report.latency.count == report.decided
        assert report.throughput_dps > 0.0
