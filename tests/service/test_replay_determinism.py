"""Replay determinism: byte-identical reports, any run, any task order."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.cac.facs.system import FACSConfig
from repro.service import (
    ServiceConfig,
    VirtualClock,
    VirtualClockDeadlock,
    run_service_replay,
    run_with_virtual_clock,
)
from repro.simulation import BatchExperimentConfig, run_trace_arrivals


def replay_config(**overrides) -> BatchExperimentConfig:
    fields = dict(request_count=120, arrival_window_s=90.0, seed=20070628)
    fields.update(overrides)
    return BatchExperimentConfig(**fields)


SERVICE = ServiceConfig(max_batch=8, max_wait_ms=2000.0, queue_capacity=64)


class TestVirtualClock:
    def test_sleepers_fire_in_time_then_key_order(self):
        clock = VirtualClock()
        fired: list[str] = []

        async def sleeper(name: str, when: float, key: int):
            await clock.sleep_until(when, key=key)
            fired.append(name)

        async def main():
            # Created out of order on purpose: wakeups must sort by
            # (time, key), never by task creation order.
            await asyncio.gather(
                sleeper("c", 2.0, 1),
                sleeper("b", 1.0, 9),
                sleeper("a", 1.0, 2),
            )

        run_with_virtual_clock(main(), clock)
        assert fired == ["a", "b", "c"]
        assert clock.now() == 2.0

    def test_sleep_in_the_past_returns_immediately(self):
        clock = VirtualClock(start=5.0)

        async def main():
            await clock.sleep_until(1.0)
            return clock.now()

        assert run_with_virtual_clock(main(), clock) == 5.0

    def test_deadlock_is_detected(self):
        clock = VirtualClock()

        async def main():
            # Awaits a future no virtual timer will ever resolve.
            await asyncio.get_running_loop().create_future()

        with pytest.raises(VirtualClockDeadlock):
            run_with_virtual_clock(main(), clock)


class TestReplayDeterminism:
    def test_repeated_runs_are_byte_identical(self):
        first = run_service_replay(replay_config(), SERVICE)
        second = run_service_replay(replay_config(), SERVICE)
        assert first.to_json() == second.to_json()

    @pytest.mark.parametrize("shuffle_seed", [1, 7, 42])
    def test_scheduling_order_does_not_change_the_report(self, shuffle_seed):
        baseline = run_service_replay(replay_config(), SERVICE)
        order = list(range(replay_config().request_count))
        random.Random(shuffle_seed).shuffle(order)
        shuffled = run_service_replay(replay_config(), SERVICE, submit_order=order)
        assert shuffled.to_json() == baseline.to_json()

    def test_reversed_order_matches_too(self):
        baseline = run_service_replay(replay_config(), SERVICE)
        order = list(reversed(range(replay_config().request_count)))
        assert (
            run_service_replay(replay_config(), SERVICE, submit_order=order).to_json()
            == baseline.to_json()
        )

    def test_bad_submit_order_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            run_service_replay(replay_config(), SERVICE, submit_order=[0, 1, 2])

    def test_engines_agree(self):
        compiled = run_service_replay(
            replay_config(), SERVICE, facs_config=FACSConfig(engine="compiled")
        )
        reference = run_service_replay(
            replay_config(), SERVICE, facs_config=FACSConfig(engine="reference")
        )
        assert compiled.to_json() == reference.to_json()

    def test_different_seed_changes_the_report(self):
        first = run_service_replay(replay_config(), SERVICE)
        other = run_service_replay(replay_config(seed=1), SERVICE)
        assert first.to_json() != other.to_json()


class TestReplayMatchesTracePipeline:
    def test_unit_batches_reproduce_the_trace_pipeline(self):
        # With max_batch=1 every request flushes at its own arrival
        # instant, which is exactly the trace pipeline at batch_size=1:
        # same admissions, same completions, same peak occupancy.
        config = replay_config(request_count=80)
        trace = run_trace_arrivals(config, batch_size=1)
        replay = run_service_replay(
            config, ServiceConfig(max_batch=1, max_wait_ms=2000.0, queue_capacity=64)
        )
        assert replay.submitted == trace.requested
        assert replay.admitted == trace.accepted
        assert replay.completed == trace.metrics.completed
        assert replay.peak_occupancy_bu == trace.peak_occupancy_bu
        assert replay.acceptance_percentage == pytest.approx(
            trace.acceptance_percentage
        )
