"""Message-passing sharded topologies: determinism, equivalence, wiring."""

from __future__ import annotations

import pickle

import pytest

from repro.api import CoupledShardedNetworkSweepScenario, Runner, Scenario
from repro.cac.complete_sharing import CompleteSharingController
from repro.simulation import (
    CoupledShardedNetworkSimulation,
    NetworkExperimentConfig,
    NetworkSweepSpec,
    ProcessPoolSweepExecutor,
    ThreadPoolSweepExecutor,
    run_coupled_sharded_network_experiment,
    run_coupled_sharded_network_sweep,
    run_network_experiment,
    run_network_sweep,
)


def small_config(rings: int = 1, **overrides) -> NetworkExperimentConfig:
    defaults = dict(rings=rings, duration_s=90.0, seed=424242)
    defaults.update(overrides)
    return NetworkExperimentConfig(**defaults)


def small_spec(rings: int = 1, replications: int = 1) -> NetworkSweepSpec:
    return NetworkSweepSpec(
        name="coupled-sharded-test",
        controllers={"CS": CompleteSharingController},
        arrival_rates=(0.03,),
        replications=replications,
        base_config=small_config(rings),
    )


class TestShardedExperimentDeterminism:
    @pytest.mark.parametrize("rings", [1, 3])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_backends_and_worker_counts_are_byte_identical(self, rings, workers):
        config = small_config(rings)
        serial = pickle.dumps(
            run_coupled_sharded_network_experiment(config, CompleteSharingController)
        )
        threaded = run_coupled_sharded_network_experiment(
            config,
            CompleteSharingController,
            executor=ThreadPoolSweepExecutor(max_workers=workers),
        )
        process = run_coupled_sharded_network_experiment(
            config,
            CompleteSharingController,
            executor=ProcessPoolSweepExecutor(max_workers=workers),
        )
        assert pickle.dumps(threaded) == serial
        assert pickle.dumps(process) == serial

    def test_rings0_reproduces_the_coupled_engine_exactly(self):
        # A single cell has no handoffs and its shard owns the very same
        # named streams the coupled engine draws, so the sharded run must
        # be byte-identical to run_network_experiment — not merely close.
        config = small_config(rings=0, duration_s=300.0)
        coupled = run_network_experiment(config, CompleteSharingController)
        sharded = run_coupled_sharded_network_experiment(config, CompleteSharingController)
        assert pickle.dumps(sharded) == pickle.dumps(coupled)

    def test_rings1_delta_against_the_coupled_engine_is_bounded(self):
        # At rings>=1 the sharded run is near — but documented not equal
        # to — the coupled run: the coupled engine draws all mobility from
        # one shared stream in global event order, and handoff admission
        # is deferred to the window barrier.  New-call arrivals, however,
        # come from identical per-cell streams, so their count must match
        # exactly, and the QoS numbers must stay close.
        config = small_config(rings=1, duration_s=600.0)
        coupled = run_network_experiment(config, CompleteSharingController)
        sharded = run_coupled_sharded_network_experiment(config, CompleteSharingController)
        coupled_new = coupled.result.metrics.requested - coupled.result.metrics.handoff_requests
        sharded_new = sharded.result.metrics.requested - sharded.result.metrics.handoff_requests
        assert sharded_new == coupled_new
        assert sharded.result.metrics.acceptance_percentage == pytest.approx(
            coupled.result.metrics.acceptance_percentage, abs=10.0
        )
        assert sharded.time_average_occupancy_bu == pytest.approx(
            coupled.time_average_occupancy_bu, rel=0.25
        )

    def test_handoffs_actually_cross_shard_boundaries(self):
        output = run_coupled_sharded_network_experiment(
            small_config(rings=1, duration_s=600.0, mean_speed_kmh=80.0),
            CompleteSharingController,
        )
        assert output.handoff_attempts > 0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window_s"):
            CoupledShardedNetworkSimulation(
                small_config(), CompleteSharingController, window_s=0.0
            )

    def test_rejects_foreign_executor_objects(self):
        with pytest.raises(TypeError, match="executor"):
            run_coupled_sharded_network_experiment(
                small_config(), CompleteSharingController, executor=object()
            )


class TestHeterogeneousCapacity:
    def test_capacity_for_defaults_to_uniform(self):
        config = small_config(rings=1)
        assert config.capacity_for(3) == config.capacity_bu

    def test_capacity_list_length_is_validated(self):
        with pytest.raises(ValueError, match="one capacity per cell"):
            small_config(rings=1, cell_capacities=(40, 40))
        with pytest.raises(ValueError, match="positive integers"):
            small_config(rings=0, cell_capacities=(0,))

    def test_network_builds_per_cell_capacities(self):
        from repro.cellular.network import CellularNetwork

        capacities = (10, 20, 30, 40, 50, 60, 70)
        network = CellularNetwork(rings=1, cell_capacities=capacities)
        built = tuple(cell.base_station.capacity_bu for cell in network)
        assert built == capacities
        with pytest.raises(ValueError, match="one capacity per cell"):
            CellularNetwork(rings=1, cell_capacities=(40,))

    def test_tight_capacity_blocks_more_calls(self):
        base = small_config(rings=0, duration_s=600.0, arrival_rate_per_cell_per_s=0.1)
        uniform = run_coupled_sharded_network_experiment(base, CompleteSharingController)
        tight = run_coupled_sharded_network_experiment(
            small_config(
                rings=0,
                duration_s=600.0,
                arrival_rate_per_cell_per_s=0.1,
                cell_capacities=(2,),
            ),
            CompleteSharingController,
        )
        assert tight.result.metrics.blocked > uniform.result.metrics.blocked

    def test_coupled_engine_honours_the_capacity_map(self):
        # Same override applied through capacity_bu and cell_capacities
        # must give byte-identical coupled runs.
        via_scalar = run_network_experiment(
            small_config(rings=0, capacity_bu=5), CompleteSharingController
        )
        via_map = run_network_experiment(
            small_config(rings=0, cell_capacities=(5,)), CompleteSharingController
        )
        assert pickle.dumps(via_scalar) == pickle.dumps(via_map)


class TestRunCoupledShardedNetworkSweep:
    @pytest.mark.parametrize("rings", [1, 3])
    def test_sweep_frames_are_byte_identical_across_backends(self, rings):
        spec = small_spec(rings=rings)
        serial = run_coupled_sharded_network_sweep(spec)
        for workers in (1, 2, 4):
            threaded = run_coupled_sharded_network_sweep(
                spec, executor=ThreadPoolSweepExecutor(max_workers=workers)
            )
            assert pickle.dumps(threaded.frame) == pickle.dumps(serial.frame)
            assert threaded == serial
        process = run_coupled_sharded_network_sweep(
            spec, executor=ProcessPoolSweepExecutor(max_workers=2)
        )
        assert pickle.dumps(process.frame) == pickle.dumps(serial.frame)

    def test_rings0_matches_the_coupled_sweep_point_for_point(self):
        spec = small_spec(rings=0, replications=2)
        sharded = run_coupled_sharded_network_sweep(spec)
        coupled = run_network_sweep(spec)
        assert sharded.curves == coupled.curves
        assert sharded.name == f"{coupled.name}-coupled-sharded"

    def test_points_keep_one_row_per_replication(self):
        result = run_coupled_sharded_network_sweep(small_spec(rings=1, replications=2))
        # Unlike the decoupled sharding, a whole topology is one run.
        assert result.curves[0].points[0].replications == 2


class TestCoupledShardedScenario:
    def test_round_trips(self):
        scenario = CoupledShardedNetworkSweepScenario(
            controllers=("CS",),
            arrival_rates=(0.03,),
            replications=1,
            rings=1,
            window_s=5.0,
            cell_capacities=(40, 40, 40, 40, 40, 20, 20),
        )
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        assert isinstance(restored, CoupledShardedNetworkSweepScenario)
        assert restored.kind == "network-sweep-coupled-sharded"
        assert restored.slug == "net-sweep-coupled-sharded"
        assert restored.cell_capacities == (40, 40, 40, 40, 40, 20, 20)

    def test_validates_window_and_capacities(self):
        with pytest.raises(ValueError, match="window_s"):
            CoupledShardedNetworkSweepScenario(window_s=-1.0)
        with pytest.raises(ValueError, match="one capacity per cell"):
            CoupledShardedNetworkSweepScenario(rings=1, cell_capacities=(40,))
        with pytest.raises(ValueError, match="positive integers"):
            CoupledShardedNetworkSweepScenario(rings=0, cell_capacities=(-3,))

    def test_runner_reports_message_coupling_provenance(self):
        report = Runner().run(
            CoupledShardedNetworkSweepScenario(
                controllers=("CS",),
                arrival_rates=(0.03,),
                replications=1,
                duration_s=90.0,
                rings=1,
            )
        )
        assert report.metrics["handoff_coupling"] == "messages"
        assert report.metrics["curves"][0]["points"][0]["replications"] == 1
        assert "multi-cell QoS vs offered load" in report.text

    def test_sharded_approximation_reports_dropped_coupling(self):
        from repro.api import ShardedNetworkSweepScenario

        report = Runner().run(
            ShardedNetworkSweepScenario(
                controllers=("CS",),
                arrival_rates=(0.03,),
                replications=1,
                duration_s=90.0,
                rings=0,
            )
        )
        assert report.metrics["handoff_coupling"] == "dropped"

    def test_runner_threads_capacities_and_window_through(self):
        scenario = CoupledShardedNetworkSweepScenario(
            controllers=("CS",),
            arrival_rates=(0.03,),
            replications=1,
            duration_s=90.0,
            rings=0,
            cell_radius_km=2.0,
            mean_speed_kmh=40.0,
            seed=424242,
            window_s=30.0,
            cell_capacities=(12,),
        )
        report = Runner().run(scenario)
        spec = NetworkSweepSpec(
            name="network-qos-sweep",
            controllers={"CS": CompleteSharingController},
            arrival_rates=(0.03,),
            replications=1,
            base_config=small_config(
                rings=0, cell_radius_km=2.0, mean_speed_kmh=40.0, cell_capacities=(12,)
            ),
        )
        direct = run_coupled_sharded_network_sweep(spec, window_s=30.0)
        point = direct.curves[0].points[0]
        assert report.metrics["curves"][0]["points"][0] == {
            "arrival_rate_per_cell_per_s": point.arrival_rate_per_cell_per_s,
            "acceptance_percentage": point.acceptance_percentage,
            "std_percentage": point.std_percentage,
            "blocking_probability": point.blocking_probability,
            "dropping_probability": point.dropping_probability,
            "handoff_failure_ratio": point.handoff_failure_ratio,
            "mean_occupancy_bu": point.mean_occupancy_bu,
            "replications": point.replications,
        }

    def test_parent_kind_still_decodes_to_the_coupled_scenario(self):
        scenario = Scenario.from_dict(
            {"kind": "network-sweep", "controllers": ["CS"], "arrival_rates": [0.03]}
        )
        assert not isinstance(scenario, CoupledShardedNetworkSweepScenario)
