"""Tests for the batch experiment, configs, result aggregation and sweeps."""

from __future__ import annotations

import pytest

from repro.cac.complete_sharing import CompleteSharingController
from repro.cellular.metrics import CallMetrics
from repro.cellular.mobility import UserProfile
from repro.simulation.batch import run_batch_experiment
from repro.simulation.config import (
    BatchExperimentConfig,
    NetworkExperimentConfig,
    PAPER_REQUEST_COUNTS,
)
from repro.simulation.results import RunResult, aggregate_runs
from repro.simulation.scenario import (
    angle_sweep_variants,
    baseline_comparison_variants,
    controller_comparison_variants,
    distance_sweep_variants,
    facs_factory,
    scc_factory,
    speed_sweep_variants,
)
from repro.simulation.sweep import (
    SweepCurve,
    SweepPoint,
    SweepResult,
    run_acceptance_sweep,
)


class TestConfigs:
    def test_paper_request_counts_reach_100(self):
        assert PAPER_REQUEST_COUNTS[-1] == 100
        assert list(PAPER_REQUEST_COUNTS) == sorted(PAPER_REQUEST_COUNTS)

    def test_batch_defaults_match_paper(self):
        config = BatchExperimentConfig()
        assert config.capacity_bu == 40
        assert config.traffic_mix.bandwidth_for.__self__ is config.traffic_mix

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            BatchExperimentConfig(request_count=-1)
        with pytest.raises(ValueError):
            BatchExperimentConfig(capacity_bu=0)
        with pytest.raises(ValueError):
            BatchExperimentConfig(arrival_window_s=0.0)

    def test_with_helpers_return_modified_copies(self):
        config = BatchExperimentConfig(request_count=10, seed=1)
        other = config.with_requests(50).with_seed(2, replication=3).with_profile(
            UserProfile(speed_kmh=60.0)
        )
        assert other.request_count == 50
        assert other.seed == 2 and other.replication == 3
        assert other.user_profile.speed_kmh == 60.0
        assert config.request_count == 10  # original untouched

    def test_network_config_validation(self):
        with pytest.raises(ValueError):
            NetworkExperimentConfig(rings=-1)
        with pytest.raises(ValueError):
            NetworkExperimentConfig(arrival_rate_per_cell_per_s=0.0)
        with pytest.raises(ValueError):
            NetworkExperimentConfig(duration_s=0.0)


class TestBatchExperiment:
    def test_zero_requests(self):
        config = BatchExperimentConfig(request_count=0)
        output = run_batch_experiment(config, facs_factory())
        assert output.result.metrics.requested == 0
        assert output.acceptance_percentage == 0.0

    def test_all_requests_decided(self):
        config = BatchExperimentConfig(request_count=40, seed=11)
        output = run_batch_experiment(config, facs_factory())
        metrics = output.result.metrics
        assert metrics.requested == 40
        assert metrics.accepted + metrics.blocked == 40

    def test_reproducible_for_same_seed(self):
        config = BatchExperimentConfig(request_count=60, seed=123)
        first = run_batch_experiment(config, facs_factory())
        second = run_batch_experiment(config, facs_factory())
        assert first.acceptance_percentage == second.acceptance_percentage

    def test_different_replications_differ(self):
        config = BatchExperimentConfig(request_count=60, seed=123)
        first = run_batch_experiment(config, facs_factory())
        second = run_batch_experiment(config.with_seed(123, replication=1), facs_factory())
        assert first.acceptance_percentage != second.acceptance_percentage

    def test_admitted_calls_complete_and_release_bandwidth(self):
        config = BatchExperimentConfig(request_count=30, seed=5)
        output = run_batch_experiment(config, facs_factory())
        metrics = output.result.metrics
        # Every admitted call eventually completed (no drops in single-cell batch).
        assert metrics.completed == metrics.accepted
        assert metrics.dropped == 0

    def test_peak_occupancy_within_capacity(self):
        config = BatchExperimentConfig(request_count=100, seed=7)
        output = run_batch_experiment(config, facs_factory())
        assert 0 < output.peak_occupancy_bu <= config.capacity_bu

    def test_trace_collection(self):
        config = BatchExperimentConfig(request_count=25, seed=9)
        output = run_batch_experiment(config, facs_factory(), collect_trace=True)
        assert len(output.records) == 25
        arrival_times = [record.arrival_time_s for record in output.records]
        assert arrival_times == sorted(arrival_times)
        for record in output.records:
            assert record.occupancy_before_bu <= config.capacity_bu
            assert -1.0 <= record.score <= 1.0

    def test_complete_sharing_never_exceeds_capacity(self):
        config = BatchExperimentConfig(request_count=150, seed=13, arrival_window_s=600.0)
        output = run_batch_experiment(config, CompleteSharingController, collect_trace=True)
        assert output.peak_occupancy_bu <= config.capacity_bu

    def test_fixed_profile_parameters_recorded(self):
        config = BatchExperimentConfig(
            request_count=10, user_profile=UserProfile(speed_kmh=30.0, angle_deg=45.0)
        )
        output = run_batch_experiment(config, facs_factory())
        assert output.result.parameters["speed_kmh"] == 30.0
        assert output.result.parameters["angle_deg"] == 45.0
        assert "distance_km" not in output.result.parameters


class TestAggregation:
    def _run(self, acceptance: float) -> RunResult:
        accepted = int(acceptance)
        metrics = CallMetrics(
            requested=100,
            accepted=accepted,
            blocked=100 - accepted,
            completed=accepted,
            dropped=0,
            handoff_requests=0,
            handoff_accepted=0,
            accepted_bu=accepted,
            requested_bu=100,
        )
        return RunResult(controller="FACS", metrics=metrics)

    def test_mean_and_std(self):
        aggregated = aggregate_runs([self._run(80), self._run(90)])
        assert aggregated.mean_acceptance_percentage == pytest.approx(85.0)
        assert aggregated.std_acceptance_percentage > 0.0
        assert aggregated.replications == 2

    def test_confidence_interval_contains_mean(self):
        aggregated = aggregate_runs([self._run(80), self._run(90), self._run(85)])
        low, high = aggregated.confidence_interval()
        assert low <= aggregated.mean_acceptance_percentage <= high

    def test_single_run_interval_degenerate(self):
        aggregated = aggregate_runs([self._run(70)])
        assert aggregated.confidence_interval() == (70.0, 70.0)

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([])

    def test_mixed_controllers_rejected(self):
        run_a = self._run(80)
        run_b = RunResult(controller="SCC", metrics=run_a.metrics)
        with pytest.raises(ValueError):
            aggregate_runs([run_a, run_b])


class TestSweep:
    def test_sweep_structure(self):
        variants = {"FACS": (BatchExperimentConfig(seed=1), facs_factory())}
        sweep = run_acceptance_sweep("mini", variants, request_counts=(10, 30), replications=2)
        assert sweep.name == "mini"
        assert sweep.labels() == ["FACS"]
        curve = sweep.curve("FACS")
        assert curve.request_counts() == [10, 30]
        assert all(0.0 <= value <= 100.0 for value in curve.acceptance_series())
        assert curve.point_at(10).replications == 2

    def test_unknown_curve_and_point(self):
        variants = {"FACS": (BatchExperimentConfig(seed=1), facs_factory())}
        sweep = run_acceptance_sweep("mini", variants, request_counts=(10,), replications=1)
        with pytest.raises(KeyError):
            sweep.curve("SCC")
        with pytest.raises(KeyError):
            sweep.curve("FACS").point_at(99)

    def test_validation(self):
        variants = {"FACS": (BatchExperimentConfig(seed=1), facs_factory())}
        with pytest.raises(ValueError):
            run_acceptance_sweep("x", variants, request_counts=(10,), replications=0)
        with pytest.raises(ValueError):
            run_acceptance_sweep("x", {}, request_counts=(10,), replications=1)
        with pytest.raises(ValueError):
            run_acceptance_sweep("x", variants, request_counts=(), replications=1)

    def test_scenario_variant_builders(self):
        assert set(speed_sweep_variants((4.0, 60.0))) == {"4km/h", "60km/h"}
        assert set(angle_sweep_variants((0.0, 90.0))) == {"Angle=0", "Angle=90"}
        assert set(distance_sweep_variants((1.0, 10.0))) == {"1km", "10km"}
        assert set(controller_comparison_variants()) == {"FACS", "SCC"}
        assert set(baseline_comparison_variants()) >= {"FACS", "SCC", "CS"}

    def test_speed_variants_fix_only_speed(self):
        config, _factory = speed_sweep_variants((4.0,))["4km/h"]
        assert config.user_profile.speed_kmh == 4.0
        assert config.user_profile.angle_deg is None
        assert config.user_profile.distance_km is None

    def test_scc_factory_builds_fresh_instances(self):
        factory = scc_factory()
        assert factory() is not factory()


def _point(request_count: int, acceptance: float = 50.0) -> SweepPoint:
    return SweepPoint(
        request_count=request_count,
        acceptance_percentage=acceptance,
        std_percentage=0.0,
        replications=1,
    )


class TestIndexedLookups:
    """point_at()/curve() use the O(1) indexes built at construction time."""

    def test_point_at_returns_matching_point(self):
        curve = SweepCurve("c", "FACS", (_point(10), _point(20), _point(30)))
        assert curve.point_at(20).request_count == 20
        with pytest.raises(KeyError, match="no point at 99"):
            curve.point_at(99)

    def test_point_at_keeps_first_duplicate(self):
        # Duplicate x values are degenerate, but the indexed lookup must keep
        # the linear-scan semantics: first match wins.
        curve = SweepCurve("c", "FACS", (_point(10, 40.0), _point(10, 80.0)))
        assert curve.point_at(10).acceptance_percentage == 40.0

    def test_curve_lookup_and_first_duplicate(self):
        first = SweepCurve("dup", "FACS", (_point(10, 1.0),))
        second = SweepCurve("dup", "FACS", (_point(10, 2.0),))
        result = SweepResult("s", (first, second))
        assert result.curve("dup") is first
        with pytest.raises(KeyError, match="no curve"):
            result.curve("missing")

    def test_indexes_survive_pickling(self):
        import pickle

        curve = SweepCurve("c", "FACS", (_point(10), _point(20)))
        result = SweepResult("s", (curve,))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.curve("c").point_at(20) == curve.point_at(20)

    def test_large_curve_lookup_is_fast(self):
        import time

        points = tuple(_point(i) for i in range(5000))
        curve = SweepCurve("big", "FACS", points)
        start = time.perf_counter()
        for _ in range(200):
            curve.point_at(4999)
        elapsed = time.perf_counter() - start
        # 200 lookups at the far end of a 5000-point curve: O(n) scans would
        # take ~tens of milliseconds; the index stays comfortably under that.
        assert elapsed < 0.01


class TestBatchDeterminism:
    """Batch runs are pure functions of their config."""

    def test_call_ids_are_per_run_sequential(self):
        config = BatchExperimentConfig(request_count=12, seed=77)
        output = run_batch_experiment(config, facs_factory(), collect_trace=True)
        assert [record.call_id for record in output.records] == list(range(1, 13))

    def test_traces_identical_across_runs(self):
        # The global Call-id counter must not leak into results: two runs in
        # the same process (different counter state) produce identical traces.
        config = BatchExperimentConfig(request_count=30, seed=78)
        first = run_batch_experiment(config, scc_factory(), collect_trace=True)
        second = run_batch_experiment(config, scc_factory(), collect_trace=True)
        assert first.records == second.records
        assert first.result == second.result

    def test_stream_master_seed_mixes_replication(self):
        config = BatchExperimentConfig(seed=100, replication=0)
        assert config.stream_master_seed == 100
        assert config.with_seed(100, replication=2).stream_master_seed == (100 + 2 * 1_000_003)
