"""The columnar sweep pipeline: map_reduce semantics, task chunking, and
the no-pickled-run-outputs guarantee of the process backend."""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.frame import FrameReducer, FrameRow, MetricsFrame, run_result_row
from repro.cellular.metrics import CallMetrics
from repro.simulation.config import BatchExperimentConfig, NetworkExperimentConfig
from repro.simulation.results import RunResult
from repro.simulation.executor import (
    ProcessPoolSweepExecutor,
    SerialExecutor,
    SweepExecutionError,
    TaskReducer,
    ThreadPoolSweepExecutor,
    default_chunksize,
)
from repro.simulation.scenario import facs_factory, scc_factory
from repro.simulation.sweep import (
    NetworkSweepSpec,
    ReplicationTask,
    _execute_network_replication_row,
    _execute_replication_row,
    run_acceptance_sweep,
    run_network_sweep,
)


class ListReducer(TaskReducer):
    """Order-preserving reducer for observing map_reduce semantics."""

    def fold(self, results):
        return list(results)

    def merge(self, partials):
        return [item for partial in partials for item in partial]


def _square(x):
    return x * x


def _explode_on_five(x):
    """Worker fn for the shm-leak regression: one task fails, others pack."""
    if x == 5:
        raise ValueError(f"boom {x}")
    return run_result_row(
        RunResult("FACS", CallMetrics(x + 1, x, 1, x, 0, 0, 0, 2 * x, 2 * x + 2))
    )


class TestMapReduce:
    @pytest.mark.parametrize(
        "executor",
        [
            SerialExecutor(),
            ThreadPoolSweepExecutor(max_workers=3),
            ThreadPoolSweepExecutor(max_workers=3, chunksize=7),
            ProcessPoolSweepExecutor(max_workers=2),
            ProcessPoolSweepExecutor(max_workers=2, chunksize=5),
        ],
    )
    def test_preserves_task_order(self, executor):
        tasks = list(range(53))
        assert executor.map_reduce(_square, tasks, ListReducer()) == [
            x * x for x in tasks
        ]

    def test_empty_tasks_fold_once(self):
        assert SerialExecutor().map_reduce(_square, [], ListReducer()) == []
        assert (
            ThreadPoolSweepExecutor(max_workers=2).map_reduce(
                _square, [], ListReducer()
            )
            == []
        )
        assert (
            ProcessPoolSweepExecutor(max_workers=2).map_reduce(
                _square, [], ListReducer()
            )
            == []
        )

    def test_process_map_reduce_rejects_unpicklable_tasks(self):
        with pytest.raises(SweepExecutionError, match="picklable"):
            ProcessPoolSweepExecutor(max_workers=2).map_reduce(
                _square, [lambda: None], ListReducer()
            )

    def test_failing_task_releases_completed_shared_memory_chunks(self):
        # A raising task must not strand the already-packed chunks of its
        # siblings in /dev/shm (their segments were unregistered from the
        # resource tracker, so only the parent can unlink them).
        import pathlib

        shm_dir = pathlib.Path("/dev/shm")
        if not shm_dir.is_dir():  # pragma: no cover - non-POSIX-shm platform
            pytest.skip("no /dev/shm on this platform")
        before = {p.name for p in shm_dir.glob("psm_*")}
        executor = ProcessPoolSweepExecutor(max_workers=2, chunksize=1)
        with pytest.raises(ValueError, match="boom 5"):
            executor.map_reduce(_explode_on_five, list(range(8)), FrameReducer("batch"))
        leaked = {p.name for p in shm_dir.glob("psm_*")} - before
        assert leaked == set()


class TestChunking:
    def test_default_chunksize_heuristic(self):
        assert default_chunksize(1, 1) == 1
        assert default_chunksize(10, 4) == 1
        assert default_chunksize(1000, 4) == 62  # ~4 chunks per worker
        assert default_chunksize(5000, 0) == 1250  # degenerate workers clamp

    def test_chunksize_validation(self):
        with pytest.raises(ValueError, match="chunksize"):
            ThreadPoolSweepExecutor(chunksize=0)
        with pytest.raises(ValueError, match="chunksize"):
            ProcessPoolSweepExecutor(chunksize=0)

    @pytest.mark.parametrize("chunksize", [None, 1, 3, 50, 1000])
    def test_thread_map_chunking_preserves_order(self, chunksize):
        executor = ThreadPoolSweepExecutor(max_workers=4, chunksize=chunksize)
        tasks = list(range(200))
        assert executor.map(_square, tasks) == [x * x for x in tasks]

    def test_process_map_honours_explicit_chunksize(self):
        executor = ProcessPoolSweepExecutor(max_workers=2, chunksize=25)
        tasks = list(range(60))
        assert executor.map(_square, tasks) == [x * x for x in tasks]


class TestNoPickledRunOutputs:
    """The acceptance criterion: process workers ship column buffers, not
    pickled NetworkRunOutput dataclass trees."""

    def _network_rows(self):
        spec = NetworkSweepSpec(
            name="wire",
            controllers={"FACS": facs_factory()},
            arrival_rates=(0.03,),
            replications=2,
            base_config=NetworkExperimentConfig(rings=0, duration_s=60.0, seed=7),
        )
        return [_execute_network_replication_row(task) for task in spec.tasks()]

    def test_worker_fn_returns_plain_counter_rows(self):
        rows = self._network_rows()
        for row in rows:
            assert isinstance(row, FrameRow)
            assert isinstance(row, tuple)
            assert row.network is not None

    def test_worker_wire_payload_references_no_dataclasses(self):
        reducer = FrameReducer("network")
        packed = reducer.pack(reducer.fold(self._network_rows()))
        wire = pickle.dumps(packed)
        for needle in (b"NetworkRunOutput", b"RunResult", b"CallMetrics"):
            assert needle not in wire
        assert reducer.unpack(packed).kind == "network"

    def test_batch_worker_fn_returns_rows(self):
        task = ReplicationTask(
            label="FACS",
            request_count=10,
            replication=0,
            config=BatchExperimentConfig(request_count=10, seed=5),
            controller_factory=facs_factory(),
        )
        row = _execute_replication_row(task)
        assert isinstance(row, FrameRow)
        assert row.label == "FACS"
        assert row.network is None


class TestSweepFrames:
    def test_acceptance_sweep_attaches_the_frame(self):
        variants = {
            "FACS": (BatchExperimentConfig(seed=991), facs_factory()),
            "SCC": (BatchExperimentConfig(seed=991), scc_factory()),
        }
        sweep = run_acceptance_sweep(
            "mini", variants, request_counts=(8, 20), replications=2
        )
        frame = sweep.frame
        assert isinstance(frame, MetricsFrame)
        assert len(frame) == 2 * 2 * 2
        assert frame.kind == "batch"
        assert frame.has_ordinals
        # Frame rows reduce back to exactly the rendered points.
        groups = frame.group_reduce(("curve", "point"))
        assert [g.replications for g in groups] == [2, 2, 2, 2]
        assert (
            groups[0].mean_acceptance_percentage
            == sweep.curve("FACS").point_at(8).acceptance_percentage
        )

    def test_network_sweep_frame_is_identical_across_backends(self):
        spec = NetworkSweepSpec(
            name="mini",
            controllers={"FACS": facs_factory()},
            arrival_rates=(0.02, 0.04),
            replications=2,
            base_config=NetworkExperimentConfig(rings=0, duration_s=90.0, seed=11),
        )
        serial = run_network_sweep(spec)
        process = run_network_sweep(
            spec, executor=ProcessPoolSweepExecutor(max_workers=2)
        )
        threaded = run_network_sweep(
            spec, executor=ThreadPoolSweepExecutor(max_workers=3)
        )
        assert serial.frame == process.frame == threaded.frame
        assert pickle.dumps(serial) == pickle.dumps(process) == pickle.dumps(threaded)

    def test_equality_ignores_the_frame_carrier(self):
        # Codec round-trips drop the frame; rendered results still compare.
        spec = {
            "FACS": (BatchExperimentConfig(seed=3), facs_factory()),
        }
        sweep = run_acceptance_sweep("x", spec, request_counts=(5,), replications=1)
        from dataclasses import replace

        assert replace(sweep, frame=None) == sweep
