"""Trace-driven admission pipeline: determinism, bounds, scenario wiring."""

from __future__ import annotations

import pytest

from repro.api import Runner, Scenario, ScenarioError, TraceArrivalsScenario
from repro.cac.facs.system import FACSConfig
from repro.simulation import (
    BatchExperimentConfig,
    run_batch_experiment,
    run_trace_arrivals,
)


def small_config(**overrides) -> BatchExperimentConfig:
    fields = dict(request_count=60, seed=20070627)
    fields.update(overrides)
    return BatchExperimentConfig(**fields)


class TestRunTraceArrivals:
    def test_repeated_runs_are_identical(self):
        first = run_trace_arrivals(small_config(), batch_size=8)
        second = run_trace_arrivals(small_config(), batch_size=8)
        assert first == second

    def test_totals_are_consistent(self):
        result = run_trace_arrivals(small_config(), batch_size=8)
        assert result.requested == 60
        assert 0 <= result.accepted <= result.requested
        assert result.accepted == sum(b.accepted for b in result.batches)
        assert sum(b.size for b in result.batches) == result.requested
        assert result.batches[0].start_time_s <= result.batches[-1].start_time_s

    def test_occupancy_never_exceeds_capacity(self):
        config = small_config(request_count=150)
        result = run_trace_arrivals(config, batch_size=16)
        capacity = config.capacity_bu
        assert result.peak_occupancy_bu <= capacity
        for batch in result.batches:
            assert 0 <= batch.occupancy_before_bu <= capacity
            assert 0 <= batch.occupancy_after_bu <= capacity

    def test_engines_agree(self):
        compiled = run_trace_arrivals(
            small_config(), batch_size=8, facs_config=FACSConfig(engine="compiled")
        )
        reference = run_trace_arrivals(
            small_config(), batch_size=8, facs_config=FACSConfig(engine="reference")
        )
        assert compiled == reference

    def test_batch_size_one_runs(self):
        result = run_trace_arrivals(small_config(request_count=20), batch_size=1)
        assert len(result.batches) == 20
        assert all(batch.size == 1 for batch in result.batches)

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            run_trace_arrivals(small_config(), batch_size=0)

    def test_uses_the_same_trace_as_the_batch_experiment(self):
        # Same seeded config => same request trace => same request count and
        # comparable acceptance levels between the DES path and the pipeline.
        config = small_config(request_count=100)
        from repro.simulation.scenario import facs_factory

        des = run_batch_experiment(config, facs_factory())
        trace = run_trace_arrivals(config, batch_size=1)
        assert trace.requested == des.result.metrics.requested

    def test_unit_batches_pin_the_des_batch_experiment(self):
        # Regression: at batch_size=1 the pipeline is per-call admission on
        # the identical seeded trace, so its counters must pin the DES path
        # exactly — including `completed`, which once depended on where the
        # final batch boundary fell because the departure queue was never
        # drained after the last batch.
        config = small_config(request_count=100)
        from repro.simulation.scenario import facs_factory

        des = run_batch_experiment(config, facs_factory()).result.metrics
        trace = run_trace_arrivals(config, batch_size=1)
        assert trace.accepted == des.accepted
        assert trace.metrics.completed == des.completed
        assert trace.metrics.accepted_bu == des.accepted_bu

    def test_completions_do_not_depend_on_batch_boundaries(self):
        # Every admitted call's departure is replayed before the run
        # returns, so completed == accepted for any batch size.
        config = small_config(request_count=80)
        for batch_size in (1, 7, 16, 80):
            result = run_trace_arrivals(config, batch_size=batch_size)
            assert result.metrics.completed == result.accepted

    def test_acceptance_percentage_delegates_to_call_metrics(self):
        result = run_trace_arrivals(small_config(), batch_size=8)
        assert (
            result.acceptance_percentage
            == result.metrics.acceptance_percentage
        )


class TestTraceArrivalsScenario:
    def test_round_trips(self):
        scenario = TraceArrivalsScenario(
            request_count=80, batch_size=4, speed_kmh=60.0, seed=7
        )
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_validation(self):
        with pytest.raises(ScenarioError, match="request_count"):
            TraceArrivalsScenario(request_count=0)
        with pytest.raises(ScenarioError, match="batch_size"):
            TraceArrivalsScenario(batch_size=0)
        with pytest.raises(ScenarioError, match="arrival_window_s"):
            TraceArrivalsScenario(arrival_window_s=-1.0)
        with pytest.raises(ScenarioError, match="speed_kmh"):
            TraceArrivalsScenario(speed_kmh=float("nan"))
        with pytest.raises(ScenarioError, match="unknown engine"):
            TraceArrivalsScenario(engine="warp")

    def test_cli_rejects_unsupported_shaping_flags(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="only --engine"):
            main(["run", "trace-arrivals", "--replications", "2"])
        with pytest.raises(SystemExit, match="only --engine"):
            main(["run", "trace-arrivals", "--requests", "10", "20"])

    def test_cli_engine_flag_applies(self, capsys):
        from repro.cli import main

        assert main(["run", "trace-arrivals", "--engine", "reference"]) == 0
        assert "trace-driven admission" in capsys.readouterr().out

    def test_runner_produces_report(self):
        scenario = TraceArrivalsScenario(request_count=40, batch_size=10)
        report = Runner().run(scenario)
        assert "trace-driven admission" in report.text
        assert report.metrics["type"] == "trace-arrivals"
        assert report.metrics["requested"] == 40
        assert len(report.metrics["batches"]) == 4
        assert report.scenario.slug == "trace-arrivals"

    def test_fixed_profile_changes_the_outcome(self):
        # Deterministic seeded runs: at this load the user-to-BS distance
        # flips at least one admission decision through FLC1.
        near = Runner().run(
            TraceArrivalsScenario(request_count=150, distance_km=0.5, seed=3)
        )
        far = Runner().run(
            TraceArrivalsScenario(request_count=150, distance_km=9.5, seed=3)
        )
        assert near.metrics["accepted"] != far.metrics["accepted"]
