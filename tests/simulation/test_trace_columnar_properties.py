"""Property suites for the frame-native trace pipeline's two identities.

1. **Columnar trace == scalar draw loop.**  :func:`build_trace_arrays`
   replaced the historical per-request draw loop with sized numpy draws.
   The suite reimplements that scalar loop verbatim — one named stream per
   attribute, one scalar draw per request — and asserts the columns (and
   the ``Call`` objects materialized from them) are bit-identical for
   every registered :data:`~repro.workloads.spec.WORKLOADS` arrival model
   and for the legacy no-workload sequence, across seeds and counts.

2. **Incremental fold == buffered fold.**  ``map_reduce`` with an
   incremental reducer (:class:`~repro.analysis.frame.StreamingFrameReducer`)
   absorbs chunk frames in task-submission order, so the reduced frame must
   be byte-identical to the buffered :class:`~repro.analysis.frame.FrameReducer`
   reduce on every backend at any worker count and chunking — with and
   without the memmap spill directory.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.frame import BATCH_KIND, FrameReducer, StreamingFrameReducer, run_result_row
from repro.cellular.metrics import CallMetrics
from repro.des.rng import StreamFactory
from repro.simulation.batch import build_requests, build_trace_arrays
from repro.simulation.config import BatchExperimentConfig
from repro.simulation.executor import (
    ProcessPoolSweepExecutor,
    SerialExecutor,
    ThreadPoolSweepExecutor,
)
from repro.simulation.results import RunResult
from repro.workloads import WORKLOADS

_slow_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

WORKLOAD_NAMES = (None, *WORKLOADS.names())


def _scalar_reference(config: BatchExperimentConfig):
    """The historical per-request draw loop, reimplemented scalar draw by
    scalar draw: what ``build_requests`` did before the columnar builder.

    Streams are named and independent, so attribute order across streams is
    irrelevant; within each stream the draws happen one request at a time.
    """
    streams = StreamFactory(master_seed=config.stream_master_seed)
    arrival_rng = streams.stream("arrivals")
    class_rng = streams.stream("service-class")
    user_rng = streams.stream("user-state")
    holding_rng = streams.stream("holding-time")
    count = config.request_count

    if config.workload is None:
        arrivals = sorted(
            arrival_rng.uniform(0.0, config.arrival_window_s) for _ in range(count)
        )
    else:
        # The list path walks the model's stateful sampler one scalar draw
        # at a time (Poisson overrides it with scalar sorted uniforms).
        arrivals = config.workload.arrival.batch_arrival_times(
            arrival_rng, count, config.arrival_window_s
        )

    mix = config.effective_traffic_mix()
    services = [mix.sample_class(class_rng) for _ in range(count)]
    users = [config.user_profile.sample(user_rng) for _ in range(count)]
    mean_by_service = dict(zip(mix.services, mix.mean_holding_by_code()))
    bandwidth_by_service = dict(zip(mix.services, mix.bandwidth_by_code()))
    holdings = [
        holding_rng.exponential(float(mean_by_service[service]))
        for service in services
    ]
    bandwidths = [int(bandwidth_by_service[service]) for service in services]
    return arrivals, services, users, holdings, bandwidths


@pytest.mark.parametrize("workload_name", WORKLOAD_NAMES, ids=str)
@given(
    request_count=st.integers(0, 80),
    seed=st.integers(0, 2**20),
)
@_slow_settings
def test_trace_arrays_bit_identical_to_scalar_loop(workload_name, request_count, seed):
    workload = None if workload_name is None else WORKLOADS.get(workload_name)
    config = BatchExperimentConfig(
        request_count=request_count, seed=seed, workload=workload
    )
    arrays = build_trace_arrays(
        config, StreamFactory(master_seed=config.stream_master_seed)
    )
    arrivals, services, users, holdings, bandwidths = _scalar_reference(config)

    assert len(arrays) == request_count
    assert arrays.arrival_time_s.tolist() == arrivals
    assert [arrays.services[code] for code in arrays.class_codes] == services
    assert arrays.bandwidth_units.tolist() == bandwidths
    assert arrays.holding_time_s.tolist() == holdings
    assert arrays.speed_kmh.tolist() == [u.speed_kmh for u in users]
    assert arrays.angle_deg.tolist() == [u.angle_deg for u in users]
    assert arrays.distance_km.tolist() == [u.distance_km for u in users]
    assert arrays.requested_bu == sum(bandwidths)


@given(
    request_count=st.integers(1, 40),
    seed=st.integers(0, 2**20),
    workload_name=st.sampled_from(WORKLOAD_NAMES),
)
@_slow_settings
def test_materialized_calls_match_scalar_loop(request_count, seed, workload_name):
    workload = None if workload_name is None else WORKLOADS.get(workload_name)
    config = BatchExperimentConfig(
        request_count=request_count, seed=seed, workload=workload
    )
    calls = build_requests(config, StreamFactory(master_seed=config.stream_master_seed))
    arrivals, services, users, holdings, bandwidths = _scalar_reference(config)

    assert [call.call_id for call in calls] == list(range(1, request_count + 1))
    assert [call.requested_at for call in calls] == arrivals
    assert [call.service for call in calls] == services
    assert [call.bandwidth_units for call in calls] == bandwidths
    assert [call.holding_time_s for call in calls] == holdings
    assert [call.user_state for call in calls] == users


# ----------------------------------------------------------------------
# Incremental fold identity.


def _make_row(index: int):
    """A deterministic synthetic counter row.

    Varies the label, controller, parameter set and seed with the index so
    chunk boundaries exercise vocabulary growth and late-appearing
    parameter columns (NaN backfill) in the accumulator.
    """
    requested = 50 + (index * 13) % 40
    accepted = requested - (index * 7) % 20
    parameters = {"request_count": float(requested)}
    if index % 3 == 0:
        parameters["capacity_bu"] = 80.0 + index
    if index % 5 == 4:
        parameters["arrival_window_s"] = 3600.0
    result = RunResult(
        controller=("FACS", "SCC", "CS")[index % 3],
        metrics=CallMetrics(
            requested=requested,
            accepted=accepted,
            blocked=requested - accepted,
            completed=accepted,
            dropped=0,
            handoff_requests=index % 4,
            handoff_accepted=index % 3,
            accepted_bu=accepted * 2,
            requested_bu=requested * 2,
        ),
        parameters=parameters,
        seed=index,
    )
    return run_result_row(result, label=f"label{index % 4}", replication=index % 6)


def _buffered_expected(row_count: int):
    return FrameReducer(BATCH_KIND).fold(_make_row(i) for i in range(row_count))


@given(
    row_count=st.integers(1, 60),
    max_workers=st.integers(1, 5),
    chunksize=st.integers(1, 9),
    backend=st.sampled_from(["serial", "thread"]),
    spill=st.booleans(),
)
@_slow_settings
def test_incremental_fold_matches_buffered_reduce(
    row_count, max_workers, chunksize, backend, spill, tmp_path_factory
):
    if backend == "serial":
        executor = SerialExecutor()
    else:
        executor = ThreadPoolSweepExecutor(max_workers=max_workers, chunksize=chunksize)
    spill_dir = tmp_path_factory.mktemp("spill") if spill else None
    reducer = StreamingFrameReducer(BATCH_KIND, spill_dir=spill_dir)
    frame = executor.map_reduce(_make_row, range(row_count), reducer)
    assert frame == _buffered_expected(row_count)


@pytest.mark.parametrize("chunksize", [1, 4])
def test_incremental_fold_matches_on_process_pool(chunksize, tmp_path):
    executor = ProcessPoolSweepExecutor(max_workers=2, chunksize=chunksize)
    rows = 25
    buffered = executor.map_reduce(_make_row, range(rows), FrameReducer(BATCH_KIND))
    incremental = executor.map_reduce(
        _make_row, range(rows), StreamingFrameReducer(BATCH_KIND)
    )
    spilled = executor.map_reduce(
        _make_row,
        range(rows),
        StreamingFrameReducer(BATCH_KIND, spill_dir=tmp_path),
    )
    expected = _buffered_expected(rows)
    assert buffered == expected
    assert incremental == expected
    assert spilled == expected


def test_incremental_fold_empty_tasks():
    expected = FrameReducer(BATCH_KIND).fold([])
    for executor in (
        SerialExecutor(),
        ThreadPoolSweepExecutor(max_workers=2, chunksize=3),
        ProcessPoolSweepExecutor(max_workers=2, chunksize=3),
    ):
        frame = executor.map_reduce(_make_row, [], StreamingFrameReducer(BATCH_KIND))
        assert frame == expected
