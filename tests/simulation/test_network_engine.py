"""Integration tests of the multi-cell network simulation (mobility + handoffs)."""

from __future__ import annotations

from repro.cac.complete_sharing import CompleteSharingController
from repro.simulation.config import NetworkExperimentConfig
from repro.simulation.engine import NetworkSimulation, run_network_experiment
from repro.simulation.scenario import facs_factory, scc_factory


SMALL = NetworkExperimentConfig(
    rings=1,
    cell_radius_km=1.0,
    arrival_rate_per_cell_per_s=0.02,
    duration_s=600.0,
    mean_speed_kmh=60.0,
    seed=4242,
)


class TestNetworkSimulation:
    def test_run_produces_consistent_counts(self):
        output = run_network_experiment(SMALL, CompleteSharingController)
        metrics = output.result.metrics
        assert metrics.requested > 0
        assert metrics.accepted + metrics.blocked == metrics.requested
        # Every admitted new call eventually completed or dropped.
        assert output.completed_calls + output.dropped_calls > 0
        assert output.handoff_failures <= output.handoff_attempts

    def test_handoffs_occur_with_fast_mobiles(self):
        output = run_network_experiment(SMALL, CompleteSharingController)
        assert output.handoff_attempts > 0

    def test_bandwidth_fully_released_at_end(self):
        simulation = NetworkSimulation(SMALL, CompleteSharingController)
        simulation.run()
        assert simulation.network.total_used_bu() == 0

    def test_reproducible_for_same_seed(self):
        first = run_network_experiment(SMALL, CompleteSharingController)
        second = run_network_experiment(SMALL, CompleteSharingController)
        assert first.result.metrics.requested == second.result.metrics.requested
        assert first.result.metrics.accepted == second.result.metrics.accepted
        assert first.handoff_attempts == second.handoff_attempts

    def test_facs_runs_on_network(self):
        output = run_network_experiment(SMALL, facs_factory())
        assert output.result.controller == "FACS"
        assert 0.0 <= output.result.acceptance_percentage <= 100.0
        assert output.time_average_occupancy_bu >= 0.0

    def test_scc_runs_on_network(self):
        output = run_network_experiment(SMALL, scc_factory())
        assert output.result.controller == "SCC"
        assert output.result.metrics.requested > 0

    def test_per_cell_controllers_are_independent(self):
        simulation = NetworkSimulation(SMALL, facs_factory())
        cells = simulation.network.cells
        assert simulation.controller_for(cells[0]) is not simulation.controller_for(cells[1])

    def test_handoff_failure_ratio_bounds(self):
        output = run_network_experiment(SMALL, CompleteSharingController)
        assert 0.0 <= output.handoff_failure_ratio <= 1.0

    def test_result_parameters_recorded(self):
        output = run_network_experiment(SMALL, CompleteSharingController)
        assert output.result.parameters["cells"] == 7.0
        assert output.result.parameters["duration_s"] == 600.0
