"""Determinism and behaviour of the multi-cell network sweep.

The headline guarantee mirrors the single-cell sweep's: ``run_network_sweep``
produces *byte-identical* results for the serial backend, process pools and
thread pools of any size, because every replication derives its randomness
from its own seeded config (``stream_master_seed``) and uses per-run call
ids, and the results are reassembled in task order.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cac.complete_sharing import CompleteSharingController
from repro.simulation.config import NetworkExperimentConfig
from repro.simulation.engine import run_network_experiment
from repro.simulation.executor import (
    EXECUTOR_CHOICES,
    ProcessPoolSweepExecutor,
    SerialExecutor,
    ThreadPoolSweepExecutor,
    executor_by_name,
)
from repro.simulation.results import aggregate_network_runs
from repro.simulation.scenario import facs_factory, scc_factory
from repro.simulation.sweep import (
    NetworkReplicationTask,
    NetworkSweepSpec,
    run_network_sweep,
)


SMALL_CONFIG = NetworkExperimentConfig(
    rings=1,
    cell_radius_km=1.2,
    arrival_rate_per_cell_per_s=0.02,
    duration_s=200.0,
    mean_speed_kmh=60.0,
    seed=20250721,
)


def _mini_spec() -> NetworkSweepSpec:
    return NetworkSweepSpec(
        name="determinism",
        controllers={"FACS": facs_factory(), "SCC": scc_factory()},
        arrival_rates=(0.02, 0.05),
        replications=2,
        base_config=SMALL_CONFIG,
    )


class TestNetworkConfigReplication:
    def test_replication_zero_preserves_seed(self):
        assert SMALL_CONFIG.stream_master_seed == SMALL_CONFIG.seed

    def test_replications_derive_distinct_seeds(self):
        seeds = {
            SMALL_CONFIG.with_seed(SMALL_CONFIG.seed, replication=r).stream_master_seed
            for r in range(10)
        }
        assert len(seeds) == 10

    def test_with_arrival_rate_and_duration(self):
        changed = SMALL_CONFIG.with_arrival_rate(0.09).with_duration(42.0)
        assert changed.arrival_rate_per_cell_per_s == 0.09
        assert changed.duration_s == 42.0
        assert changed.seed == SMALL_CONFIG.seed

    def test_negative_replication_rejected(self):
        with pytest.raises(ValueError, match="replication"):
            NetworkExperimentConfig(replication=-1)

    def test_rerun_is_byte_identical(self):
        first = run_network_experiment(SMALL_CONFIG, CompleteSharingController)
        second = run_network_experiment(SMALL_CONFIG, CompleteSharingController)
        assert pickle.dumps(first) == pickle.dumps(second)


class TestSpecValidation:
    def test_requires_controllers(self):
        with pytest.raises(ValueError, match="controller"):
            NetworkSweepSpec(name="x", controllers={}, arrival_rates=(0.02,))

    def test_requires_rates(self):
        with pytest.raises(ValueError, match="arrival rate"):
            NetworkSweepSpec(
                name="x", controllers={"FACS": facs_factory()}, arrival_rates=()
            )

    def test_rejects_non_positive_rates(self):
        with pytest.raises(ValueError, match="positive"):
            NetworkSweepSpec(
                name="x",
                controllers={"FACS": facs_factory()},
                arrival_rates=(0.02, 0.0),
            )

    def test_rejects_zero_replications(self):
        with pytest.raises(ValueError, match="replications"):
            NetworkSweepSpec(
                name="x",
                controllers={"FACS": facs_factory()},
                arrival_rates=(0.02,),
                replications=0,
            )

    def test_tasks_flatten_in_declared_order(self):
        spec = _mini_spec()
        tasks = spec.tasks()
        assert len(tasks) == 2 * 2 * 2
        assert all(isinstance(task, NetworkReplicationTask) for task in tasks)
        assert [t.label for t in tasks[:4]] == ["FACS"] * 4
        assert [t.arrival_rate_per_cell_per_s for t in tasks[:4]] == [
            0.02,
            0.02,
            0.05,
            0.05,
        ]
        assert [t.replication for t in tasks[:4]] == [0, 1, 0, 1]
        # Each task's config carries its own rate and replication seed.
        assert tasks[2].config.arrival_rate_per_cell_per_s == 0.05
        assert tasks[1].config.stream_master_seed != tasks[0].config.stream_master_seed

    def test_tasks_are_picklable(self):
        task = _mini_spec().tasks()[0]
        clone = pickle.loads(pickle.dumps(task))
        assert clone.label == task.label
        assert clone.config.seed == task.config.seed
        assert clone.config.stream_master_seed == task.config.stream_master_seed
        assert (
            clone.config.arrival_rate_per_cell_per_s
            == task.config.arrival_rate_per_cell_per_s
        )


class TestNetworkSweepDeterminism:
    @pytest.fixture(scope="class")
    def serial_sweep(self):
        return run_network_sweep(_mini_spec(), executor=SerialExecutor())

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_pool_matches_serial_byte_for_byte(self, serial_sweep, workers):
        parallel = run_network_sweep(
            _mini_spec(), executor=ProcessPoolSweepExecutor(max_workers=workers)
        )
        assert parallel == serial_sweep
        assert pickle.dumps(parallel) == pickle.dumps(serial_sweep)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_thread_pool_matches_serial_byte_for_byte(self, serial_sweep, workers):
        threaded = run_network_sweep(
            _mini_spec(), executor=ThreadPoolSweepExecutor(max_workers=workers)
        )
        assert threaded == serial_sweep
        assert pickle.dumps(threaded) == pickle.dumps(serial_sweep)

    def test_default_executor_is_serial(self, serial_sweep):
        assert pickle.dumps(run_network_sweep(_mini_spec())) == pickle.dumps(serial_sweep)

    def test_executor_accepted_by_name(self, serial_sweep):
        named = run_network_sweep(_mini_spec(), executor="thread")
        assert pickle.dumps(named) == pickle.dumps(serial_sweep)

    def test_result_shape_and_lookups(self, serial_sweep):
        assert serial_sweep.labels() == ["FACS", "SCC"]
        curve = serial_sweep.curve("FACS")
        assert curve.controller == "FACS"
        assert curve.arrival_rates() == [0.02, 0.05]
        point = curve.point_at(0.05)
        assert point.replications == 2
        assert 0.0 <= point.acceptance_percentage <= 100.0
        assert 0.0 <= point.dropping_probability <= 1.0
        assert 0.0 <= point.handoff_failure_ratio <= 1.0
        assert len(curve.acceptance_series()) == 2
        assert len(curve.blocking_series()) == 2
        assert len(curve.dropping_series()) == 2
        assert len(curve.handoff_failure_series()) == 2

    def test_unknown_lookups_raise(self, serial_sweep):
        with pytest.raises(KeyError, match="no curve"):
            serial_sweep.curve("GuardChannel")
        with pytest.raises(KeyError, match="no point"):
            serial_sweep.curve("FACS").point_at(0.123)

    def test_offered_load_increases_occupancy(self, serial_sweep):
        curve = serial_sweep.curve("FACS")
        assert (
            curve.point_at(0.05).mean_occupancy_bu
            > curve.point_at(0.02).mean_occupancy_bu
        )


class TestThreadExecutor:
    def test_registry_resolves_thread_names(self):
        assert isinstance(executor_by_name("thread"), ThreadPoolSweepExecutor)
        assert isinstance(executor_by_name("threads"), ThreadPoolSweepExecutor)
        assert "thread" in EXECUTOR_CHOICES

    def test_workers_forwarded(self):
        assert executor_by_name("thread", workers=3).max_workers == 3

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ThreadPoolSweepExecutor(max_workers=0)

    def test_map_preserves_order(self):
        executor = ThreadPoolSweepExecutor(max_workers=4)
        assert executor.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_map_empty_tasks(self):
        assert ThreadPoolSweepExecutor(max_workers=2).map(print, []) == []


class TestAggregateNetworkRuns:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            aggregate_network_runs([])

    def test_rejects_mixed_controllers(self):
        facs = run_network_experiment(SMALL_CONFIG, facs_factory())
        cs = run_network_experiment(SMALL_CONFIG, CompleteSharingController)
        with pytest.raises(ValueError, match="mix"):
            aggregate_network_runs([facs, cs])

    def test_single_run_aggregate(self):
        output = run_network_experiment(SMALL_CONFIG, CompleteSharingController)
        aggregated = aggregate_network_runs([output])
        assert aggregated.replications == 1
        assert aggregated.std_acceptance_percentage == 0.0
        assert (
            aggregated.mean_acceptance_percentage
            == output.result.acceptance_percentage
        )
        assert aggregated.mean_handoff_attempts == output.handoff_attempts
        assert aggregated.mean_occupancy_bu == output.time_average_occupancy_bu
