"""Determinism and behaviour of the pluggable sweep executors.

The headline guarantee: ``run_acceptance_sweep`` produces *byte-identical*
results for the serial backend and for process pools of any size, because
every replication derives its randomness from its own seeded config and the
results are reassembled in task order.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, strategies as st

from repro.cac.facs.system import FACSConfig
from repro.simulation.config import BatchExperimentConfig
from repro.simulation.executor import (
    EXECUTOR_CHOICES,
    ProcessPoolSweepExecutor,
    SerialExecutor,
    SweepExecutionError,
    SweepExecutor,
    _chunked,
    default_chunksize,
    executor_by_name,
)
from repro.simulation.scenario import (
    FACSControllerFactory,
    SCCControllerFactory,
    facs_factory,
    scc_factory,
)
from repro.simulation.sweep import ReplicationTask, run_acceptance_sweep


def _mini_variants():
    config = BatchExperimentConfig(seed=991)
    return {
        "FACS": (config, facs_factory()),
        "SCC": (config, scc_factory()),
    }


class TestExecutorRegistry:
    def test_names_resolve(self):
        assert isinstance(executor_by_name("serial"), SerialExecutor)
        assert isinstance(executor_by_name("process"), ProcessPoolSweepExecutor)
        assert isinstance(executor_by_name("parallel"), ProcessPoolSweepExecutor)
        assert isinstance(executor_by_name("  Serial "), SerialExecutor)

    def test_workers_forwarded(self):
        executor = executor_by_name("process", workers=3)
        assert executor.max_workers == 3

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            executor_by_name("quantum")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolSweepExecutor(max_workers=0)

    def test_choices_cover_registry(self):
        for name in EXECUTOR_CHOICES:
            assert isinstance(executor_by_name(name), SweepExecutor)


class TestChunkingPlan:
    @given(
        task_count=st.integers(0, 500),
        workers=st.integers(-2, 64),
    )
    def test_default_chunksize_is_always_valid(self, task_count, workers):
        # Degenerate plans — zero tasks, more workers than tasks, bogus
        # non-positive worker counts — still yield a usable chunksize.
        chunksize = default_chunksize(task_count, workers)
        assert chunksize >= 1

    def test_negative_task_count_rejected(self):
        with pytest.raises(ValueError, match="task_count"):
            default_chunksize(-1, 4)

    def test_invalid_chunksize_rejected(self):
        with pytest.raises(ValueError, match="chunksize"):
            _chunked([1, 2, 3], 0)

    @given(
        tasks=st.lists(st.integers(), max_size=200),
        workers=st.integers(1, 32),
    )
    def test_chunking_preserves_order_and_covers_every_task_once(
        self, tasks, workers
    ):
        chunks = _chunked(tasks, default_chunksize(len(tasks), workers))
        flattened = [task for chunk in chunks for task in chunk]
        assert flattened == tasks
        assert all(len(chunk) >= 1 for chunk in chunks)

    @given(
        tasks=st.lists(st.integers(), min_size=1, max_size=100),
        chunksize=st.integers(1, 120),
    )
    def test_explicit_chunksize_bounds_every_chunk(self, tasks, chunksize):
        chunks = _chunked(tasks, chunksize)
        assert [task for chunk in chunks for task in chunk] == tasks
        assert all(1 <= len(chunk) <= chunksize for chunk in chunks)


class TestExecutorMapping:
    def test_serial_map_preserves_order(self):
        executor = SerialExecutor()
        assert executor.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_process_map_preserves_order(self):
        executor = ProcessPoolSweepExecutor(max_workers=2)
        tasks = [
            ReplicationTask(
                label="FACS",
                request_count=count,
                replication=0,
                config=BatchExperimentConfig(request_count=count, seed=5),
                controller_factory=facs_factory(),
            )
            for count in (5, 10, 15)
        ]
        from repro.simulation.sweep import _execute_replication

        results = executor.map(_execute_replication, tasks)
        assert [r.parameters["request_count"] for r in results] == [5.0, 10.0, 15.0]

    def test_process_map_empty_tasks(self):
        assert ProcessPoolSweepExecutor(max_workers=2).map(print, []) == []


class TestSweepDeterminism:
    @pytest.fixture(scope="class")
    def serial_sweep(self):
        return run_acceptance_sweep(
            "determinism",
            _mini_variants(),
            request_counts=(8, 20),
            replications=2,
            executor=SerialExecutor(),
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_matches_serial_byte_for_byte(self, serial_sweep, workers):
        parallel = run_acceptance_sweep(
            "determinism",
            _mini_variants(),
            request_counts=(8, 20),
            replications=2,
            executor=ProcessPoolSweepExecutor(max_workers=workers),
        )
        assert parallel == serial_sweep
        assert pickle.dumps(parallel) == pickle.dumps(serial_sweep)

    def test_default_executor_is_serial(self, serial_sweep):
        default = run_acceptance_sweep(
            "determinism", _mini_variants(), request_counts=(8, 20), replications=2
        )
        assert pickle.dumps(default) == pickle.dumps(serial_sweep)

    def test_executor_accepted_by_name(self, serial_sweep):
        named = run_acceptance_sweep(
            "determinism",
            _mini_variants(),
            request_counts=(8, 20),
            replications=2,
            executor="serial",
        )
        assert pickle.dumps(named) == pickle.dumps(serial_sweep)

    def test_rerun_is_stable_within_process(self, serial_sweep):
        again = run_acceptance_sweep(
            "determinism",
            _mini_variants(),
            request_counts=(8, 20),
            replications=2,
        )
        assert pickle.dumps(again) == pickle.dumps(serial_sweep)

    def test_invalid_executor_type_rejected(self):
        with pytest.raises(TypeError):
            run_acceptance_sweep(
                "x", _mini_variants(), request_counts=(8,), replications=1, executor=42
            )


class TestPicklability:
    def test_scenario_factories_are_picklable(self):
        for factory in (
            facs_factory(),
            facs_factory(FACSConfig(engine="reference")),
            scc_factory(),
        ):
            clone = pickle.loads(pickle.dumps(factory))
            assert type(clone) is type(factory)
            assert clone() is not None

    def test_factory_dataclasses_compare_by_config(self):
        assert facs_factory() == FACSControllerFactory(None)
        assert scc_factory() == SCCControllerFactory(None)

    def test_replication_task_roundtrips(self):
        task = ReplicationTask(
            label="FACS",
            request_count=10,
            replication=3,
            config=BatchExperimentConfig(request_count=10, seed=1),
            controller_factory=facs_factory(),
        )
        clone = pickle.loads(pickle.dumps(task))
        assert (clone.label, clone.request_count, clone.replication) == (
            task.label,
            task.request_count,
            task.replication,
        )
        assert clone.config.seed == task.config.seed
        assert clone.config.stream_master_seed == task.config.stream_master_seed
        assert clone.controller_factory == task.controller_factory

    def test_lambda_factory_raises_helpful_error(self):
        variants = {
            "FACS": (BatchExperimentConfig(seed=1), lambda: None),
        }
        with pytest.raises(SweepExecutionError, match="picklable"):
            run_acceptance_sweep(
                "x",
                variants,
                request_counts=(5,),
                replications=1,
                executor=ProcessPoolSweepExecutor(max_workers=2),
            )

    def test_lambda_factory_still_fine_serially(self):
        from repro.cac.complete_sharing import CompleteSharingController

        variants = {"CS": (BatchExperimentConfig(seed=1), CompleteSharingController)}
        sweep = run_acceptance_sweep("x", variants, request_counts=(5,), replications=1)
        assert sweep.curve("CS").point_at(5).replications == 1
