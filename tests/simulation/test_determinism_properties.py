"""Property-based tests of the experiment layer's invariants.

These use hypothesis to vary workload parameters and check the accounting
invariants that must hold for *any* admission controller on *any* workload:
decisions partition the requests, the base station never over-allocates, and
acceptance can only go down (weakly) when the same workload is squeezed into
a shorter arrival window.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cac.complete_sharing import CompleteSharingController
from repro.cac.guard_channel import GuardChannelController
from repro.simulation.batch import run_batch_experiment
from repro.simulation.config import BatchExperimentConfig
from repro.simulation.scenario import facs_factory, scc_factory

CONTROLLER_FACTORIES = {
    "FACS": facs_factory(),
    "SCC": scc_factory(),
    "CS": CompleteSharingController,
    "GuardChannel": GuardChannelController,
}

_slow_settings = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("label", sorted(CONTROLLER_FACTORIES))
@given(
    request_count=st.integers(5, 60),
    seed=st.integers(0, 2**20),
)
@_slow_settings
def test_decisions_partition_requests(label, request_count, seed):
    config = BatchExperimentConfig(request_count=request_count, seed=seed)
    output = run_batch_experiment(config, CONTROLLER_FACTORIES[label])
    metrics = output.result.metrics
    assert metrics.requested == request_count
    assert metrics.accepted + metrics.blocked == metrics.requested
    assert metrics.completed == metrics.accepted
    assert 0.0 <= metrics.acceptance_percentage <= 100.0


@pytest.mark.parametrize("label", ["FACS", "CS"])
@given(
    request_count=st.integers(20, 80),
    seed=st.integers(0, 2**20),
    capacity=st.integers(10, 60),
)
@_slow_settings
def test_station_never_over_allocated(label, request_count, seed, capacity):
    config = BatchExperimentConfig(request_count=request_count, seed=seed, capacity_bu=capacity)
    output = run_batch_experiment(config, CONTROLLER_FACTORIES[label], collect_trace=True)
    assert output.peak_occupancy_bu <= capacity
    for record in output.records:
        assert 0 <= record.occupancy_before_bu <= capacity


@given(seed=st.integers(0, 2**16))
@_slow_settings
def test_same_seed_same_result_for_facs(seed):
    config = BatchExperimentConfig(request_count=40, seed=seed)
    first = run_batch_experiment(config, facs_factory())
    second = run_batch_experiment(config, facs_factory())
    assert first.acceptance_percentage == second.acceptance_percentage


@given(seed=st.integers(0, 2**16))
@_slow_settings
def test_tighter_window_does_not_increase_cs_acceptance(seed):
    """Squeezing the same requests into a shorter window raises occupancy, so a
    load-driven controller (Complete Sharing) cannot accept more calls."""
    relaxed = BatchExperimentConfig(request_count=80, seed=seed, arrival_window_s=4000.0)
    squeezed = BatchExperimentConfig(request_count=80, seed=seed, arrival_window_s=400.0)
    relaxed_output = run_batch_experiment(relaxed, CompleteSharingController)
    squeezed_output = run_batch_experiment(squeezed, CompleteSharingController)
    assert squeezed_output.result.metrics.accepted <= relaxed_output.result.metrics.accepted
