"""Per-cell sharded network sweeps: determinism, seeding, scenario wiring."""

from __future__ import annotations

import pytest

from repro.api import Runner, Scenario, ShardedNetworkSweepScenario
from repro.cac.complete_sharing import CompleteSharingController
from repro.simulation import (
    NetworkExperimentConfig,
    NetworkSweepSpec,
    run_network_sweep,
    run_sharded_network_sweep,
)


def small_spec(rings: int = 1, replications: int = 1) -> NetworkSweepSpec:
    return NetworkSweepSpec(
        name="sharded-test",
        controllers={"CS": CompleteSharingController},
        arrival_rates=(0.03,),
        replications=replications,
        base_config=NetworkExperimentConfig(
            rings=rings, duration_s=90.0, seed=424242
        ),
    )


class TestRunShardedNetworkSweep:
    def test_backends_are_byte_identical(self):
        spec = small_spec(rings=1, replications=2)
        serial = run_sharded_network_sweep(spec, executor="serial")
        threaded = run_sharded_network_sweep(spec, executor="thread")
        process = run_sharded_network_sweep(spec, executor="process")
        assert serial == threaded == process

    def test_points_pool_cells_times_replications(self):
        result = run_sharded_network_sweep(small_spec(rings=1, replications=2))
        point = result.curves[0].points[0]
        assert point.replications == 7 * 2  # 7 cells x 2 replications

    def test_rings0_shard_matches_the_coupled_sweep(self):
        # A single-cell topology has exactly one shard seeded identically to
        # the coupled run, so sharding must reproduce it point for point.
        spec = small_spec(rings=0, replications=2)
        sharded = run_sharded_network_sweep(spec)
        coupled = run_network_sweep(spec)
        assert sharded.curves == coupled.curves
        assert sharded.name == f"{coupled.name}-sharded"

    def test_shards_are_independent_of_each_other(self):
        # Different cells draw from different seeds: pooling 7 shards must
        # not collapse to 7 copies of one run (std over cells is non-zero).
        result = run_sharded_network_sweep(small_spec(rings=1, replications=1))
        assert result.curves[0].points[0].std_percentage > 0.0


class TestShardedScenario:
    def test_round_trips(self):
        scenario = ShardedNetworkSweepScenario(
            controllers=("CS",), arrival_rates=(0.03,), replications=1
        )
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        assert isinstance(restored, ShardedNetworkSweepScenario)
        assert restored.kind == "network-sweep-sharded"
        assert restored.slug == "net-sweep-sharded"

    def test_runner_dispatches_to_the_sharded_handler(self):
        scenario = ShardedNetworkSweepScenario(
            controllers=("CS",),
            arrival_rates=(0.03,),
            replications=1,
            duration_s=90.0,
            rings=1,
        )
        report = Runner().run(scenario)
        # 7 cells x 1 replication pooled into the single point.
        assert report.metrics["curves"][0]["points"][0]["replications"] == 7
        assert "multi-cell QoS vs offered load" in report.text

    def test_matches_direct_sharded_run(self):
        scenario = ShardedNetworkSweepScenario(
            controllers=("CS",),
            arrival_rates=(0.03,),
            replications=1,
            duration_s=90.0,
            rings=0,
            cell_radius_km=2.0,
            mean_speed_kmh=40.0,
            seed=424242,
        )
        report = Runner().run(scenario)
        spec = NetworkSweepSpec(
            name="network-qos-sweep",
            controllers={"CS": CompleteSharingController},
            arrival_rates=(0.03,),
            replications=1,
            base_config=NetworkExperimentConfig(
                rings=0,
                cell_radius_km=2.0,
                duration_s=90.0,
                mean_speed_kmh=40.0,
                seed=424242,
            ),
        )
        direct = run_sharded_network_sweep(spec)
        assert report.metrics["curves"][0]["points"] == [
            {
                "arrival_rate_per_cell_per_s": p.arrival_rate_per_cell_per_s,
                "acceptance_percentage": p.acceptance_percentage,
                "std_percentage": p.std_percentage,
                "blocking_probability": p.blocking_probability,
                "dropping_probability": p.dropping_probability,
                "handoff_failure_ratio": p.handoff_failure_ratio,
                "mean_occupancy_bu": p.mean_occupancy_bu,
                "replications": p.replications,
            }
            for p in direct.curves[0].points
        ]

    def test_parent_kind_still_decodes_to_the_coupled_scenario(self):
        scenario = Scenario.from_dict(
            {"kind": "network-sweep", "controllers": ["CS"], "arrival_rates": [0.03]}
        )
        assert not isinstance(scenario, ShardedNetworkSweepScenario)


@pytest.mark.parametrize("rings,cells", [(0, 1), (1, 7), (2, 19)])
def test_cell_counts(rings, cells):
    from repro.cellular.network import CellularNetwork, hex_cell_count

    assert hex_cell_count(rings) == cells
    assert CellularNetwork(rings=rings).cell_count == cells
