"""New v2 API surfaces: frame payloads in reports, comparison baselines
and the campaign member cache (--reuse-saved)."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    Campaign,
    CampaignError,
    CampaignMember,
    CampaignRunner,
    ComparisonSpec,
    Runner,
    Scenario,
    metrics_frame_from_dict,
    report_stem,
    run_campaign,
)
from repro.cli import main


def _member(member_id: str, payload: dict) -> CampaignMember:
    return CampaignMember(id=member_id, scenario=Scenario.from_dict(payload))


def _fig7(**overrides) -> dict:
    payload = {
        "kind": "figure-sweep",
        "figure": "fig7-speed",
        "request_counts": [10, 20],
        "replications": 1,
    }
    payload.update(overrides)
    return payload


class TestReportFramePayload:
    def test_figure_sweep_report_carries_a_decodable_frame(self):
        report = Runner().run(Scenario.from_dict(_fig7()))
        payload = report.metrics["frame"]
        assert payload["type"] == "metrics-frame"
        frame = metrics_frame_from_dict(payload)
        assert frame.kind == "batch"
        # one row per (curve, point, replication)
        curves = len(report.metrics["curves"])
        points = len(report.metrics["curves"][0]["points"])
        assert len(frame) == curves * points * 1
        # The frame reduces back to the rendered curve values.
        groups = frame.group_reduce(("curve", "point"))
        assert (
            groups[0].mean_acceptance_percentage
            == report.metrics["curves"][0]["points"][0]["acceptance_percentage"]
        )

    def test_network_sweep_report_carries_a_network_frame(self):
        scenario = Scenario.from_dict(
            {
                "kind": "network-sweep",
                "controllers": ["CS"],
                "arrival_rates": [0.03],
                "replications": 1,
                "duration_s": 60.0,
                "rings": 0,
            }
        )
        report = Runner().run(scenario)
        frame = metrics_frame_from_dict(report.metrics["frame"])
        assert frame.kind == "network"
        assert len(frame) == 1

    def test_trace_report_carries_a_single_row_frame(self):
        scenario = Scenario.from_dict(
            {"kind": "trace-arrivals", "request_count": 30, "batch_size": 8}
        )
        report = Runner().run(scenario)
        frame = metrics_frame_from_dict(report.metrics["frame"])
        assert len(frame) == 1
        (run,) = frame.run_results()
        assert run.metrics.requested == 30
        assert run.metrics.accepted == report.metrics["accepted"]
        assert run.metrics.accepted >= run.metrics.completed

    def test_cli_json_report_exposes_the_frame(self, capsys):
        assert (
            main(
                [
                    "run",
                    "fig7-speed",
                    "--replications",
                    "1",
                    "--requests",
                    "10",
                    "20",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["frame"]["type"] == "metrics-frame"


class TestComparisonBaseline:
    def _campaign(self, baseline: str | None) -> Campaign:
        return Campaign(
            name="baseline-study",
            members=(
                _member("fast", _fig7(curve_values=[60.0])),
                _member("slow", _fig7(curve_values=[4.0])),
            ),
            comparison=ComparisonSpec(
                metrics=("mean_acceptance",), baseline=baseline
            ),
        )

    def test_baseline_adds_delta_columns_and_payload(self):
        report = run_campaign(self._campaign("slow"))
        assert "Δmean_acceptance" in report.comparison_text
        assert "Δ vs slow" in report.comparison_text
        assert report.comparison["baseline"] == "slow"
        rows = {row["scenario"]: row for row in report.comparison["rows"]}
        assert rows["slow"]["deltas"]["mean_acceptance"] == 0.0
        baseline_value = rows["slow"]["values"]["mean_acceptance"]
        fast_value = rows["fast"]["values"]["mean_acceptance"]
        assert rows["fast"]["deltas"]["mean_acceptance"] == fast_value - baseline_value

    def test_without_baseline_payload_shape_is_unchanged(self):
        report = run_campaign(self._campaign(None))
        assert "baseline" not in report.comparison
        assert all("deltas" not in row for row in report.comparison["rows"])
        assert "Δ" not in report.comparison_text

    def test_unknown_baseline_member_rejected(self):
        with pytest.raises(CampaignError, match="baseline 'nope' is not a member"):
            self._campaign("nope")

    def test_baseline_round_trips_through_campaign_json(self):
        campaign = self._campaign("slow")
        restored = Campaign.from_json(campaign.to_json())
        assert restored == campaign
        assert restored.comparison.baseline == "slow"

    def test_v1_comparison_spec_without_baseline_still_decodes(self):
        spec = ComparisonSpec.from_dict({"metrics": ["mean_acceptance"]})
        assert spec.baseline is None


class TestMemberCache:
    def _campaign(self) -> Campaign:
        return Campaign(
            name="cache-study",
            members=(
                _member("table", {"kind": "artifact", "artifact": "table1-frb1"}),
                _member("fig7", _fig7()),
            ),
        )

    def test_cache_hits_skip_execution_and_keep_reports_identical(
        self, tmp_path, monkeypatch
    ):
        campaign = self._campaign()
        uncached = CampaignRunner().run(campaign)
        for report in uncached.reports:
            report.save(tmp_path)

        executed: list[str] = []
        import repro.api.campaign as campaign_module

        original = campaign_module._execute_scenario

        def spying_execute(scenario):
            executed.append(scenario.slug)
            return original(scenario)

        monkeypatch.setattr(campaign_module, "_execute_scenario", spying_execute)
        cached = CampaignRunner(reuse_saved=tmp_path).run(campaign)
        assert executed == []  # every member came from the cache
        assert cached.to_json() == uncached.to_json()

    def test_cache_misses_still_run(self, tmp_path):
        campaign = self._campaign()
        # Save only the artifact member's report.
        uncached = CampaignRunner().run(campaign)
        uncached.reports[0].save(tmp_path)
        cached = CampaignRunner(reuse_saved=tmp_path).run(campaign)
        assert cached.to_json() == uncached.to_json()

    def test_stale_cache_entries_are_ignored(self, tmp_path):
        campaign = self._campaign()
        uncached = CampaignRunner().run(campaign)
        # A saved report for a *different* parameterization of fig7 must
        # not satisfy this campaign's member.
        other = Runner().run(Scenario.from_dict(_fig7(request_counts=[10, 30])))
        other.save(tmp_path)
        cached = CampaignRunner(reuse_saved=tmp_path).run(campaign)
        assert cached.to_json() == uncached.to_json()

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        campaign = self._campaign()
        scenario = campaign.resolved_scenarios()[1]
        (tmp_path / f"{report_stem(scenario)}.json").write_text("{not json")
        report = CampaignRunner(reuse_saved=tmp_path).run(campaign)
        assert report.reports[1].text  # ran fresh despite the bad file

    def test_cli_reuse_saved_flag(self, tmp_path, capsys):
        config = tmp_path / "campaign.json"
        config.write_text(self._campaign().to_json())
        save_dir = tmp_path / "reports"
        assert main(["campaign", "--config", str(config)]) == 0
        first = capsys.readouterr().out
        # Seed the cache from individual runs, then reuse it.
        for scenario in self._campaign().resolved_scenarios():
            Runner().run(scenario).save(save_dir)
        assert (
            main(
                [
                    "campaign",
                    "--config",
                    str(config),
                    "--reuse-saved",
                    str(save_dir),
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == first
