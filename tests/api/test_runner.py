"""Runner facade tests: every scenario kind executes and reports round-trip."""

from __future__ import annotations

import json

import pytest

from repro.analysis.io import (
    network_sweep_result_from_dict,
    sweep_result_from_dict,
)
from repro.api import (
    AblationScenario,
    ArtifactScenario,
    FigureSweepScenario,
    NetworkIntegrationScenario,
    NetworkSweepScenario,
    Runner,
    RunReport,
    Scenario,
    ScenarioError,
    SurfaceScenario,
    run,
    scenario_for,
)
from repro.cac.facs.system import FACSConfig
from repro.experiments import (
    render_figure7,
    render_flc2_surface,
    reproduce_figure7,
)


class TestArtifacts:
    def test_table1(self):
        report = Runner().run(ArtifactScenario(artifact="table1-frb1"))
        assert report.text.startswith("Table 1")
        assert report.metrics == {"type": "artifact", "artifact": "table1-frb1"}

    def test_module_level_run_convenience(self):
        report = run(scenario_for("table2-frb2"))
        assert report.text.startswith("Table 2")


class TestSurfaces:
    def test_text_matches_direct_render(self):
        scenario = SurfaceScenario(surface="flc2", resolution=7)
        report = Runner().run(scenario)
        assert report.text == render_flc2_surface(resolution=7)

    def test_metrics_carry_the_grid(self):
        report = Runner().run(SurfaceScenario(surface="flc1", resolution=5))
        assert len(report.metrics["x"]) == 5
        assert len(report.metrics["y"]) == 5
        assert len(report.metrics["values"]) == 5
        assert all(len(row) == 5 for row in report.metrics["values"])
        assert report.metrics["fixed"] == {"distance_km": 3.0}

    def test_fixed_value_override(self):
        near = Runner().run(
            SurfaceScenario(surface="flc1", resolution=5, fixed_value=1.0)
        )
        far = Runner().run(
            SurfaceScenario(surface="flc1", resolution=5, fixed_value=9.0)
        )
        assert near.metrics["values"] != far.metrics["values"]


class TestFigureSweeps:
    def test_text_matches_direct_reproduction(self):
        scenario = FigureSweepScenario(
            figure="fig7-speed", request_counts=(10, 20), replications=1
        )
        report = Runner().run(scenario)
        direct = reproduce_figure7(
            request_counts=(10, 20),
            replications=1,
            facs_config=FACSConfig(engine="compiled"),
            executor="serial",
        )
        assert report.text == render_figure7(direct)

    def test_metrics_round_trip_to_sweep_result(self):
        scenario = FigureSweepScenario(
            figure="fig10-facs-vs-scc", request_counts=(15, 30), replications=1
        )
        report = Runner().run(scenario)
        result = sweep_result_from_dict(dict(report.metrics))
        assert result.labels() == ["FACS", "SCC"]
        assert result.curve("FACS").points[0].request_count == 15

    def test_custom_curve_values_and_seed(self):
        scenario = FigureSweepScenario(
            figure="fig7-speed",
            request_counts=(10, 20),
            replications=1,
            curve_values=(25.0, 75.0),
            seed=1234,
        )
        report = Runner().run(scenario)
        result = sweep_result_from_dict(dict(report.metrics))
        assert result.labels() == ["25km/h", "75km/h"]


class TestNetworkScenarios:
    def test_network_sweep_metrics(self):
        scenario = NetworkSweepScenario(
            controllers=("FACS",),
            arrival_rates=(0.03,),
            replications=1,
            duration_s=120.0,
        )
        report = Runner().run(scenario)
        result = network_sweep_result_from_dict(dict(report.metrics))
        assert result.labels() == ["FACS"]
        point = result.curve("FACS").points[0]
        assert point.arrival_rate_per_cell_per_s == 0.03
        assert "FACS — multi-cell QoS vs offered load" in report.text

    def test_network_integration(self):
        scenario = NetworkIntegrationScenario(
            controllers=("CS",), duration_s=100.0, arrival_rate_per_cell_per_s=0.03
        )
        report = Runner().run(scenario)
        numbers = report.metrics["controllers"]["CS"]
        assert numbers["requested"] > 0
        assert 0.0 <= numbers["acceptance_percentage"] <= 100.0
        assert "7-cell network" in report.text


class TestAblations:
    def test_threshold_ablation_runs_small(self):
        scenario = AblationScenario(
            ablation="threshold", request_counts=(10,), replications=1
        )
        report = Runner().run(scenario)
        result = sweep_result_from_dict(dict(report.metrics))
        assert result.name == "ablation-threshold"
        assert "ablation-threshold" in report.text


class TestRunReport:
    def test_save_and_load_round_trip(self, tmp_path):
        report = Runner().run(ArtifactScenario(artifact="table1-frb1"))
        path = report.save(tmp_path)
        assert path == tmp_path / "table1-frb1.json"
        restored = RunReport.load(path)
        assert restored.scenario == report.scenario
        assert restored.text == report.text
        assert dict(restored.metrics) == dict(report.metrics)

    def test_saved_payload_is_plain_json(self, tmp_path):
        scenario = SurfaceScenario(surface="flc1", resolution=4)
        path = Runner().run(scenario).save(tmp_path)
        payload = json.loads(path.read_text())
        assert payload["scenario"]["kind"] == "surface"
        assert payload["metrics"]["surface"] == "flc1"
        assert payload["text"].startswith("FLC1")

    def test_load_rejects_incomplete_payload(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"metrics": {}}))
        with pytest.raises(ScenarioError, match="missing key"):
            RunReport.load(path)

    def test_unhandled_scenario_type_rejected(self):
        class Weird(Scenario):
            pass

        with pytest.raises(ScenarioError, match="no runner is registered"):
            Runner().run(Weird())

    def test_scenario_subclasses_inherit_their_parents_handler(self):
        class NarrowArtifact(ArtifactScenario):
            pass

        report = Runner().run(NarrowArtifact(artifact="table1-frb1"))
        assert report.text.startswith("Table 1")

    def test_register_runner_extension_point(self):
        from repro.api import register_runner

        class Constant(Scenario):
            pass

        @register_runner(Constant)
        def _run_constant(scenario):
            return "constant text", {"type": "constant"}

        report = Runner().run(Constant())
        assert report.text == "constant text"
        assert report.metrics == {"type": "constant"}
