"""Campaign API tests: validation, round-trips, shared-pool execution."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.api import (
    SCHEMA_VERSION,
    Campaign,
    CampaignError,
    CampaignMember,
    CampaignReport,
    CampaignRunner,
    ComparisonSpec,
    Runner,
    Scenario,
    comparison_metric,
    run_campaign,
    scenario_for,
)


def _member(member_id: str, payload: dict) -> CampaignMember:
    return CampaignMember(id=member_id, scenario=Scenario.from_dict(payload))


def small_campaign(**overrides) -> Campaign:
    """A three-kind campaign fast enough for per-test execution."""
    fields = dict(
        name="unit-campaign",
        members=(
            _member("table1", {"kind": "artifact", "artifact": "table1-frb1"}),
            _member(
                "fig7",
                {
                    "kind": "figure-sweep",
                    "figure": "fig7-speed",
                    "request_counts": [10, 20],
                    "replications": 1,
                },
            ),
            _member(
                "trace",
                {"kind": "trace-arrivals", "request_count": 40, "batch_size": 8},
            ),
        ),
        comparison=ComparisonSpec(metrics=("mean_acceptance", "final_acceptance")),
    )
    fields.update(overrides)
    return Campaign(**fields)


class TestValidation:
    def test_empty_members_rejected(self):
        with pytest.raises(CampaignError, match="at least one member"):
            Campaign(name="empty", members=())

    def test_duplicate_member_ids_rejected(self):
        with pytest.raises(CampaignError, match="duplicate member ids: a"):
            Campaign(
                name="dup",
                members=(
                    _member("a", {"kind": "artifact", "artifact": "table1-frb1"}),
                    _member("a", {"kind": "artifact", "artifact": "table2-frb2"}),
                ),
            )

    def test_bad_name_rejected(self):
        with pytest.raises(CampaignError, match="campaign name"):
            small_campaign(name="spaces are bad")
        with pytest.raises(CampaignError, match="campaign name"):
            small_campaign(name="")

    def test_bad_member_id_rejected(self):
        with pytest.raises(CampaignError, match="member id"):
            _member("../escape", {"kind": "artifact", "artifact": "table1-frb1"})

    def test_unknown_engine_rejected(self):
        with pytest.raises(CampaignError, match="unknown engine"):
            small_campaign(engine="warp")

    def test_unknown_executor_rejected(self):
        with pytest.raises(CampaignError, match="unknown executor"):
            small_campaign(executor="gpu")

    def test_workers_require_pool_executor(self):
        with pytest.raises(CampaignError, match="pool executor"):
            small_campaign(workers=2)

    def test_bad_seed_rejected(self):
        with pytest.raises(CampaignError, match="seed must be an integer"):
            small_campaign(seed="abc")

    def test_unknown_comparison_metric_rejected(self):
        with pytest.raises(CampaignError, match="unknown comparison metric"):
            ComparisonSpec(metrics=("p99_magic",))

    def test_non_string_comparison_metric_rejected(self):
        # Unhashable entries must hit the loud validation error, not a
        # TypeError from the registry lookup.
        with pytest.raises(CampaignError, match="unknown comparison metric"):
            ComparisonSpec(metrics=(["mean_acceptance"],))

    def test_duplicate_comparison_metrics_rejected(self):
        with pytest.raises(CampaignError, match="duplicate comparison metrics"):
            ComparisonSpec(metrics=("mean_acceptance", "mean_acceptance"))

    def test_empty_comparison_metrics_rejected(self):
        with pytest.raises(CampaignError, match="at least one comparison metric"):
            ComparisonSpec(metrics=())


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        campaign = small_campaign(
            engine="reference", executor="thread", workers=2, seed=99
        )
        restored = Campaign.from_json(campaign.to_json())
        assert restored == campaign
        assert restored.to_dict() == campaign.to_dict()

    def test_payload_is_schema_versioned(self):
        payload = small_campaign().to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["type"] == "campaign"
        for entry in payload["members"]:
            assert entry["scenario"]["schema_version"] == SCHEMA_VERSION

    def test_v0_payload_still_decodes(self):
        payload = small_campaign().to_dict()
        payload.pop("schema_version")
        for entry in payload["members"]:
            entry["scenario"].pop("schema_version")
        assert Campaign.from_dict(payload) == small_campaign()

    def test_unknown_schema_version_rejected(self):
        payload = small_campaign().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(CampaignError, match="schema_version 99"):
            Campaign.from_dict(payload)

    def test_unknown_fields_rejected(self):
        payload = small_campaign().to_dict()
        payload["typo"] = 1
        with pytest.raises(CampaignError, match=r"unknown campaign field\(s\).*typo"):
            Campaign.from_dict(payload)

    def test_unknown_member_fields_rejected(self):
        payload = small_campaign().to_dict()
        payload["members"][0]["extra"] = 1
        with pytest.raises(CampaignError, match="unknown campaign member"):
            Campaign.from_dict(payload)

    def test_wrong_type_tag_rejected(self):
        payload = small_campaign().to_dict()
        payload["type"] = "scenario"
        with pytest.raises(CampaignError, match="expected a 'campaign' payload"):
            Campaign.from_dict(payload)

    def test_from_file(self, tmp_path):
        campaign = small_campaign()
        path = tmp_path / "campaign.json"
        path.write_text(campaign.to_json())
        assert Campaign.from_file(path) == campaign

    def test_truncated_json_rejected(self):
        with pytest.raises(CampaignError, match="does not parse"):
            Campaign.from_json('{"name": "x", "members"')


class TestSharedOverrides:
    def test_engine_and_seed_overrides_apply_where_fields_exist(self):
        campaign = small_campaign(engine="reference", seed=1234)
        resolved = campaign.resolved_scenarios()
        assert resolved[0].kind == "artifact"  # no engine/seed fields
        assert resolved[1].engine == "reference"
        assert resolved[1].seed == 1234
        assert resolved[2].engine == "reference"
        assert resolved[2].seed == 1234

    def test_member_executors_are_normalized_to_serial(self):
        campaign = Campaign(
            name="norm",
            members=(
                _member(
                    "fig7",
                    {
                        "kind": "figure-sweep",
                        "figure": "fig7-speed",
                        "executor": "process",
                        "workers": 4,
                    },
                ),
            ),
        )
        (resolved,) = campaign.resolved_scenarios()
        assert resolved.executor == "serial"
        assert resolved.workers is None

    def test_none_overrides_leave_members_untouched(self):
        campaign = small_campaign()
        assert campaign.resolved_scenarios()[1].engine == "compiled"
        assert campaign.resolved_scenarios()[1].seed is None

    def test_execution_normalized_resets_backend_only(self):
        campaign = small_campaign(executor="process", workers=4, seed=7)
        normalized = campaign.execution_normalized()
        assert normalized.executor == "serial"
        assert normalized.workers is None
        assert normalized.seed == 7
        assert normalized.members == campaign.members


class TestCampaignRunner:
    def test_report_json_is_byte_identical_across_backends(self):
        campaign = small_campaign()
        outputs = {}
        for executor, workers in [
            ("serial", None),
            ("thread", 1),
            ("thread", 3),
            ("process", 2),
        ]:
            variant = replace(campaign, executor=executor, workers=workers)
            outputs[(executor, workers)] = CampaignRunner().run(variant).to_json()
        reference = outputs[("serial", None)]
        for key, output in outputs.items():
            assert output == reference, f"backend {key} diverged"

    def test_member_reports_match_individual_runner_runs(self):
        campaign = small_campaign(engine="reference", seed=4321)
        report = run_campaign(campaign)
        runner = Runner()
        for scenario, member_report in zip(
            campaign.resolved_scenarios(), report.reports
        ):
            direct = runner.run(scenario)
            assert member_report.scenario == direct.scenario
            assert member_report.text == direct.text
            assert dict(member_report.metrics) == dict(direct.metrics)

    def test_text_contains_every_member_and_the_comparison(self):
        report = run_campaign(small_campaign())
        assert "=== table1 [artifact] ===" in report.text
        assert "=== fig7 [figure-sweep] ===" in report.text
        assert "=== trace [trace-arrivals] ===" in report.text
        assert "Cross-scenario comparison" in report.text

    def test_comparison_rows_cover_every_member(self):
        report = run_campaign(small_campaign())
        scenarios = {row["scenario"] for row in report.comparison["rows"]}
        assert scenarios == {"table1", "fig7", "trace"}
        table1_row = next(
            row for row in report.comparison["rows"] if row["scenario"] == "table1"
        )
        assert table1_row["curve"] is None
        assert all(value is None for value in table1_row["values"].values())

    def test_report_for(self):
        report = run_campaign(small_campaign())
        assert report.report_for("fig7").scenario.kind == "figure-sweep"
        with pytest.raises(CampaignError, match="no member 'nope'"):
            report.report_for("nope")

    def test_custom_comparison_metric_registers(self):
        @comparison_metric("test_requested_total")
        def _requested(metrics):
            if metrics.get("type") != "trace-arrivals":
                return None
            return {metrics["controller"]: float(metrics["requested"])}

        campaign = small_campaign(
            comparison=ComparisonSpec(metrics=("test_requested_total",))
        )
        report = run_campaign(campaign)
        trace_row = next(
            row
            for row in report.comparison["rows"]
            if row["scenario"] == "trace" and row["curve"] == "FACS"
        )
        assert trace_row["values"]["test_requested_total"] == 40.0


class TestCampaignReportPersistence:
    def test_save_and_load_round_trip(self, tmp_path):
        report = run_campaign(small_campaign())
        path = report.save(tmp_path)
        assert path == tmp_path / "unit-campaign.json"
        restored = CampaignReport.load(path)
        assert restored.campaign == report.campaign
        assert restored.comparison_text == report.comparison_text
        assert dict(restored.comparison) == dict(report.comparison)
        assert [r.text for r in restored.reports] == [r.text for r in report.reports]

    def test_resave_of_same_campaign_overwrites(self, tmp_path):
        report = run_campaign(small_campaign())
        report.save(tmp_path)
        assert report.save(tmp_path).exists()

    def test_save_refuses_to_clobber_a_different_campaign(self, tmp_path):
        report = run_campaign(small_campaign())
        report.save(tmp_path)
        other = run_campaign(
            small_campaign(comparison=ComparisonSpec(metrics=("mean_acceptance",)))
        )
        with pytest.raises(CampaignError, match="refusing to overwrite"):
            other.save(tmp_path)

    def test_load_rejects_unknown_schema_version(self, tmp_path):
        report = run_campaign(small_campaign())
        payload = report.to_dict()
        payload["schema_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(CampaignError, match="schema_version 99"):
            CampaignReport.load(path)

    def test_load_rejects_truncated_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"type": "campaign-report", "campaign"')
        with pytest.raises(CampaignError, match="not valid JSON"):
            CampaignReport.load(path)

    def test_load_rejects_non_object_json(self, tmp_path):
        path = tmp_path / "array.json"
        path.write_text("[1, 2]")
        with pytest.raises(CampaignError, match="must hold a JSON object"):
            CampaignReport.load(path)


class TestFromScenarioDir:
    def test_builds_one_member_per_sorted_json(self, tmp_path):
        (tmp_path / "b-surface.json").write_text(
            json.dumps({"kind": "surface", "surface": "flc2", "resolution": 5})
        )
        (tmp_path / "a-table.json").write_text(
            json.dumps({"kind": "artifact", "artifact": "table1-frb1"})
        )
        campaign = Campaign.from_scenario_dir(tmp_path, name="from-dir")
        assert [member.id for member in campaign.members] == ["a-table", "b-surface"]
        assert campaign.members[0].scenario == scenario_for("table1-frb1")

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="no scenario JSON files"):
            Campaign.from_scenario_dir(tmp_path)

    def test_invalid_scenario_file_named_in_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "warp"}))
        with pytest.raises(CampaignError, match="bad.json"):
            Campaign.from_scenario_dir(tmp_path)
