"""Scenario serialization: lossless JSON round-trips and strict validation."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    AblationScenario,
    ArtifactScenario,
    FigureSweepScenario,
    NetworkIntegrationScenario,
    NetworkSweepScenario,
    Scenario,
    ScenarioError,
    SurfaceScenario,
    scenario_for,
    scenario_ids,
)

CONTROLLER_NAMES = ("FACS", "SCC", "CS", "GuardChannel", "Threshold")

finite_floats = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6)
positive_floats = st.floats(allow_nan=False, allow_infinity=False, min_value=0.001, max_value=1e4)
seeds = st.one_of(st.none(), st.integers(min_value=0, max_value=2**31))
request_count_tuples = st.lists(
    st.integers(min_value=1, max_value=200), min_size=1, max_size=6
).map(tuple)
controller_subsets = st.lists(
    st.sampled_from(CONTROLLER_NAMES), min_size=1, max_size=5, unique=True
).map(tuple)
engines = st.sampled_from(["compiled", "reference", "auto"])


@st.composite
def executor_and_workers(draw):
    executor = draw(st.sampled_from(["serial", "process", "thread"]))
    if executor == "serial":
        return executor, None
    return executor, draw(st.one_of(st.none(), st.integers(1, 8)))


@st.composite
def figure_sweep_scenarios(draw) -> FigureSweepScenario:
    figure = draw(
        st.sampled_from(["fig7-speed", "fig8-angle", "fig9-distance", "fig10-facs-vs-scc"])
    )
    curve_values = None
    if figure != "fig10-facs-vs-scc" and draw(st.booleans()):
        curve_values = tuple(draw(st.lists(positive_floats, min_size=1, max_size=4)))
    executor, workers = draw(executor_and_workers())
    return FigureSweepScenario(
        figure=figure,
        request_counts=draw(request_count_tuples),
        replications=draw(st.integers(1, 20)),
        seed=draw(seeds),
        curve_values=curve_values,
        engine=draw(engines),
        executor=executor,
        workers=workers,
    )


@st.composite
def network_sweep_scenarios(draw) -> NetworkSweepScenario:
    executor, workers = draw(executor_and_workers())
    return NetworkSweepScenario(
        controllers=draw(controller_subsets),
        arrival_rates=tuple(draw(st.lists(positive_floats, min_size=1, max_size=4))),
        replications=draw(st.integers(1, 10)),
        duration_s=draw(positive_floats),
        rings=draw(st.integers(0, 3)),
        cell_radius_km=draw(positive_floats),
        mean_speed_kmh=draw(st.floats(min_value=0, max_value=200)),
        seed=draw(st.integers(0, 2**31)),
        engine=draw(engines),
        executor=executor,
        workers=workers,
    )


@st.composite
def surface_scenarios(draw) -> SurfaceScenario:
    return SurfaceScenario(
        surface=draw(st.sampled_from(["flc1", "flc2"])),
        resolution=draw(st.integers(2, 101)),
        fixed_value=draw(st.one_of(st.none(), finite_floats)),
        engine=draw(engines),
    )


@st.composite
def ablation_scenarios(draw) -> AblationScenario:
    return AblationScenario(
        ablation=draw(st.sampled_from(["defuzz", "threshold", "baselines"])),
        request_counts=draw(st.one_of(st.none(), request_count_tuples)),
        replications=draw(st.integers(1, 10)),
        seed=draw(seeds),
    )


@st.composite
def network_integration_scenarios(draw) -> NetworkIntegrationScenario:
    return NetworkIntegrationScenario(
        controllers=draw(controller_subsets),
        arrival_rate_per_cell_per_s=draw(positive_floats),
        duration_s=draw(positive_floats),
        rings=draw(st.integers(0, 3)),
        cell_radius_km=draw(positive_floats),
        mean_speed_kmh=draw(st.floats(min_value=0, max_value=200)),
        seed=draw(st.integers(0, 2**31)),
        engine=draw(engines),
    )


artifact_scenarios = st.sampled_from(
    ["table1-frb1", "table2-frb2", "fig5-flc1-mf", "fig6-flc2-mf"]
).map(lambda artifact: ArtifactScenario(artifact=artifact))

any_scenario = st.one_of(
    artifact_scenarios,
    surface_scenarios(),
    figure_sweep_scenarios(),
    network_sweep_scenarios(),
    ablation_scenarios(),
    network_integration_scenarios(),
)


def roundtrip(scenario: Scenario) -> Scenario:
    """dict -> JSON text -> dict -> Scenario, as a config file would."""
    return Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))


class TestRoundTrip:
    @settings(max_examples=200)
    @given(any_scenario)
    def test_json_round_trip_is_lossless(self, scenario: Scenario):
        restored = roundtrip(scenario)
        assert restored == scenario
        assert type(restored) is type(scenario)
        assert restored.to_dict() == scenario.to_dict()

    @settings(max_examples=50)
    @given(any_scenario)
    def test_to_json_from_json_round_trip(self, scenario: Scenario):
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_every_registered_default_scenario_round_trips(self):
        for experiment_id in scenario_ids():
            scenario = scenario_for(experiment_id)
            assert roundtrip(scenario) == scenario, experiment_id

    def test_kind_is_serialized(self):
        payload = scenario_for("net-sweep").to_dict()
        assert payload["kind"] == "network-sweep"
        assert isinstance(payload["controllers"], list)

    def test_from_file(self, tmp_path):
        scenario = scenario_for("surface-flc2")
        path = tmp_path / "scenario.json"
        path.write_text(scenario.to_json())
        assert Scenario.from_file(path) == scenario


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario kind 'warp'"):
            Scenario.from_dict({"kind": "warp"})

    def test_missing_kind_rejected(self):
        with pytest.raises(ScenarioError, match="needs a 'kind'"):
            Scenario.from_dict({"figure": "fig7-speed"})

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(ScenarioError, match="must be a mapping"):
            Scenario.from_dict(["kind", "artifact"])  # type: ignore[arg-type]

    def test_unknown_fields_rejected_with_names(self):
        with pytest.raises(ScenarioError, match=r"unknown field\(s\).*typo_field"):
            Scenario.from_dict(
                {"kind": "figure-sweep", "figure": "fig7-speed", "typo_field": 1}
            )

    def test_invalid_json_rejected(self):
        with pytest.raises(ScenarioError, match="does not parse"):
            Scenario.from_json("{not json")

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ScenarioError, match="unknown artifact"):
            ArtifactScenario(artifact="table9")

    def test_unknown_figure_rejected(self):
        with pytest.raises(ScenarioError, match="unknown figure"):
            FigureSweepScenario(figure="fig99")

    def test_fig10_rejects_curve_values(self):
        with pytest.raises(ScenarioError, match="fixed curve set"):
            FigureSweepScenario(figure="fig10-facs-vs-scc", curve_values=(1.0,))

    def test_bad_engine_rejected(self):
        with pytest.raises(ScenarioError, match="unknown engine"):
            FigureSweepScenario(figure="fig7-speed", engine="warp")

    def test_bad_executor_rejected(self):
        with pytest.raises(ScenarioError, match="unknown executor"):
            FigureSweepScenario(figure="fig7-speed", executor="gpu")

    def test_workers_require_pool_executor(self):
        with pytest.raises(ScenarioError, match="pool executor"):
            FigureSweepScenario(figure="fig7-speed", workers=4)

    def test_duplicate_controllers_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate controllers: FACS"):
            NetworkSweepScenario(controllers=("FACS", "CS", "FACS"))

    def test_unknown_controller_rejected(self):
        with pytest.raises(ScenarioError, match="unknown controller 'Oracle'"):
            NetworkSweepScenario(controllers=("Oracle",))

    def test_non_positive_rates_rejected(self):
        with pytest.raises(ScenarioError, match="must be positive"):
            NetworkSweepScenario(arrival_rates=(0.02, -0.01))

    def test_non_finite_rates_rejected(self):
        with pytest.raises(ScenarioError, match="finite"):
            NetworkSweepScenario(arrival_rates=(float("inf"),))

    def test_zero_replications_rejected(self):
        with pytest.raises(ScenarioError, match="replications"):
            NetworkSweepScenario(replications=0)

    def test_tiny_resolution_rejected(self):
        with pytest.raises(ScenarioError, match="resolution"):
            SurfaceScenario(surface="flc1", resolution=1)

    def test_unknown_ablation_rejected(self):
        with pytest.raises(ScenarioError, match="unknown ablation"):
            AblationScenario(ablation="quantum")

    def test_wrong_typed_seed_rejected(self):
        with pytest.raises(ScenarioError, match="seed must be an integer"):
            Scenario.from_dict({"kind": "network-sweep", "seed": "abc"})
        with pytest.raises(ScenarioError, match="seed must be an integer"):
            FigureSweepScenario(figure="fig7-speed", seed="abc")  # type: ignore[arg-type]

    def test_wrong_typed_replications_rejected(self):
        with pytest.raises(ScenarioError, match="replications must be an integer"):
            FigureSweepScenario(figure="fig7-speed", replications=2.5)  # type: ignore[arg-type]
        with pytest.raises(ScenarioError, match="replications must be an integer"):
            Scenario.from_dict({"kind": "ablation", "ablation": "defuzz", "replications": "3"})

    def test_wrong_typed_workers_rejected(self):
        with pytest.raises(ScenarioError, match="workers must be an integer"):
            FigureSweepScenario(
                figure="fig7-speed", executor="process", workers="4"  # type: ignore[arg-type]
            )

    def test_from_dict_wraps_validation_errors(self):
        with pytest.raises(ScenarioError, match="invalid 'network-sweep' scenario"):
            Scenario.from_dict({"kind": "network-sweep", "replications": 0})

    def test_lists_are_normalized_to_tuples(self):
        scenario = Scenario.from_dict(
            {
                "kind": "network-sweep",
                "controllers": ["FACS", "CS"],
                "arrival_rates": [0.02, 0.04],
            }
        )
        assert scenario.controllers == ("FACS", "CS")
        assert scenario.arrival_rates == (0.02, 0.04)
