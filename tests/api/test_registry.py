"""Tests for the generic Registry and the concrete API registries."""

from __future__ import annotations

import pytest

from repro.api import (
    ABLATIONS,
    ARTIFACTS,
    BENCH_ONLY_EXPERIMENTS,
    CONTROLLERS,
    DEFAULT_NETWORK_CONTROLLERS,
    ENGINES,
    EXECUTORS,
    FIGURES,
    SCENARIOS,
    SURFACES,
    controller_factory,
)
from repro.cac import FuzzyAdmissionControlSystem
from repro.experiments import experiment_ids
from repro.registry import Registry, RegistryError


class TestGenericRegistry:
    def test_register_and_get(self):
        registry: Registry[int] = Registry("number")
        registry.register("one", 1)
        registry.register("two", 2)
        assert registry.get("one") == 1
        assert registry.names() == ("one", "two")
        assert "one" in registry and "three" not in registry
        assert len(registry) == 2

    def test_decorator_registration_returns_object_unchanged(self):
        registry: Registry[object] = Registry("thing")

        @registry.register("fn")
        def fn():
            return 42

        assert fn() == 42
        assert registry.get("fn") is fn

    def test_collision_raises(self):
        registry: Registry[int] = Registry("number")
        registry.register("one", 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("one", 11)
        # the original registration survives
        assert registry.get("one") == 1

    def test_alias_collision_raises(self):
        registry: Registry[int] = Registry("number")
        registry.register("one", 1, aliases=("uno",))
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("uno", 2)

    def test_replace_overrides(self):
        registry: Registry[int] = Registry("number")
        registry.register("one", 1)
        registry.register("one", 11, replace=True)
        assert registry.get("one") == 11
        assert registry.names() == ("one",)

    def test_replace_cannot_shadow_another_entry_via_alias(self):
        registry: Registry[int] = Registry("number")
        registry.register("one", 1)
        registry.register("two", 2)
        with pytest.raises(RegistryError, match="collides"):
            registry.register("two", 22, aliases=("one",), replace=True)
        # the victim entry survives untouched
        assert registry.get("one") == 1
        assert registry.names() == ("one", "two")

    def test_unknown_key_lists_available(self):
        registry: Registry[int] = Registry("number")
        registry.register("one", 1)
        with pytest.raises(RegistryError, match=r"unknown number 'three'.*one"):
            registry.get("three")

    def test_aliases_resolve_but_stay_hidden(self):
        registry: Registry[int] = Registry("number")
        registry.register("one", 1, aliases=("uno", "eins"))
        assert registry.get("uno") == 1
        assert registry.get("eins") == 1
        assert registry.names() == ("one",)
        assert "uno" in registry

    def test_iteration_preserves_registration_order(self):
        registry: Registry[int] = Registry("number")
        for index, name in enumerate(["c", "a", "b"]):
            registry.register(name, index)
        assert list(registry) == ["c", "a", "b"]


class TestConcreteRegistries:
    def test_controllers_contain_all_admission_policies(self):
        assert set(CONTROLLERS.names()) >= {
            "FACS",
            "SCC",
            "CS",
            "GuardChannel",
            "Threshold",
        }
        assert tuple(CONTROLLERS.names()[:3]) == DEFAULT_NETWORK_CONTROLLERS

    def test_controller_factory_builds_fresh_instances(self):
        factory = controller_factory("FACS", engine="reference")
        first, second = factory(), factory()
        assert isinstance(first, FuzzyAdmissionControlSystem)
        assert first is not second

    def test_unknown_controller_raises(self):
        with pytest.raises(RegistryError, match="unknown controller 'Oracle'"):
            controller_factory("Oracle")

    def test_engine_registry_drives_cli_choices(self):
        assert ENGINES.names() == ("compiled", "reference", "auto")
        cli = [name for name in ENGINES.names() if ENGINES.get(name).cli]
        assert cli == ["compiled", "reference"]

    def test_executor_registry_names_and_aliases(self):
        assert EXECUTORS.names() == ("serial", "process", "thread")
        assert EXECUTORS.get("parallel") is EXECUTORS.get("process")
        assert EXECUTORS.get("threads") is EXECUTORS.get("thread")

    def test_scenarios_cover_every_registered_experiment(self):
        # Every paper-artifact experiment has a default scenario; the
        # scenario registry may also hold scenario-only ids (trace-arrivals,
        # net-sweep-sharded) that are not paper artifacts.
        assert set(experiment_ids()) <= set(SCENARIOS.names())

    def test_bench_only_ids_are_registered_scenarios(self):
        assert BENCH_ONLY_EXPERIMENTS <= set(SCENARIOS.names())

    def test_dispatch_registries_cover_their_ids(self):
        assert set(FIGURES.names()) == {
            "fig7-speed",
            "fig8-angle",
            "fig9-distance",
            "fig10-facs-vs-scc",
        }
        assert set(ARTIFACTS.names()) == {
            "table1-frb1",
            "table2-frb2",
            "fig5-flc1-mf",
            "fig6-flc2-mf",
        }
        assert set(SURFACES.names()) == {"flc1", "flc2"}
        assert set(ABLATIONS.names()) == {"defuzz", "threshold", "baselines"}
