"""Package-level integration tests: public exports and end-to-end flows."""

from __future__ import annotations

import importlib
from pathlib import Path

import pytest

import repro
from repro import (
    BatchExperimentConfig,
    FuzzyAdmissionControlSystem,
    ShadowClusterController,
    run_batch_experiment,
)
from repro.cellular import BaseStation, Call, ServiceClass, UserState
from repro.experiments import EXPERIMENTS
from repro.simulation.scenario import facs_factory

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestPublicExports:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing attribute {name}"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.fuzzy",
            "repro.des",
            "repro.cellular",
            "repro.cac",
            "repro.simulation",
            "repro.experiments",
            "repro.analysis",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        package = importlib.import_module(module)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{module}.__all__ exports missing attribute {name}"


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """The code block shown in README.md works as written."""
        facs = FuzzyAdmissionControlSystem()
        station = BaseStation()
        call = Call(
            service=ServiceClass.VIDEO,
            bandwidth_units=10,
            user_state=UserState(speed_kmh=60.0, angle_deg=0.0, distance_km=2.0),
        )
        decision = facs.decide(call, station, now=0.0)
        assert decision.accepted
        assert decision.reason


class TestEndToEnd:
    def test_facs_and_scc_run_same_workload(self):
        config = BatchExperimentConfig(request_count=50, seed=20070617)
        facs_output = run_batch_experiment(config, facs_factory())
        scc_output = run_batch_experiment(config, ShadowClusterController)
        assert facs_output.result.metrics.requested == 50
        assert scc_output.result.metrics.requested == 50
        assert facs_output.result.controller == "FACS"
        assert scc_output.result.controller == "SCC"

    def test_repeated_runs_are_bit_identical(self):
        config = BatchExperimentConfig(request_count=80, seed=31337)
        outputs = [
            run_batch_experiment(config, facs_factory(), collect_trace=True) for _ in range(2)
        ]
        first, second = outputs
        assert first.acceptance_percentage == second.acceptance_percentage
        assert [r.accepted for r in first.records] == [r.accepted for r in second.records]
        assert [r.score for r in first.records] == pytest.approx([r.score for r in second.records])


class TestRepositoryInventory:
    def test_every_registered_experiment_has_its_bench_file(self):
        for spec in EXPERIMENTS:
            bench = REPO_ROOT / spec.bench_target
            assert bench.exists(), f"{spec.experiment_id} points at missing {spec.bench_target}"

    def test_every_registered_runner_is_importable(self):
        for spec in EXPERIMENTS:
            module_name, _, attribute = spec.runner.rpartition(".")
            module = importlib.import_module(module_name)
            assert hasattr(module, attribute), f"{spec.runner} does not exist"

    def test_examples_exist_and_have_main(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 4
        for example in examples:
            source = example.read_text()
            assert "def main()" in source, f"{example.name} has no main()"
            assert '"""' in source, f"{example.name} has no module docstring"
