"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import experiment_ids


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1-frb1"])
        args2 = build_parser().parse_args(
            ["run", "fig7-speed", "--replications", "2", "--requests", "10", "20"]
        )
        assert args.experiment == "table1-frb1"
        assert args2.replications == 2
        assert args2.requests == [10, 20]


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in experiment_ids():
            assert experiment_id in output

    def test_run_table1(self, capsys):
        assert main(["run", "table1-frb1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_run_table2(self, capsys):
        assert main(["run", "table2-frb2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_run_membership_figures(self, capsys):
        assert main(["run", "fig5-flc1-mf"]) == 0
        assert "Fig. 5(a)" in capsys.readouterr().out
        assert main(["run", "fig6-flc2-mf"]) == 0
        assert "Fig. 6(d)" in capsys.readouterr().out

    def test_run_small_figure_sweep(self, capsys):
        code = main(
            ["run", "fig7-speed", "--replications", "1", "--requests", "10", "40"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output and "legend:" in output

    def test_benchmark_only_experiment_is_refused(self):
        with pytest.raises(SystemExit, match="benchmark-only"):
            main(["run", "abl-defuzz"])
