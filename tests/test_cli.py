"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import experiment_ids


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1-frb1"])
        args2 = build_parser().parse_args(
            ["run", "fig7-speed", "--replications", "2", "--requests", "10", "20"]
        )
        assert args.experiment == "table1-frb1"
        assert args2.replications == 2
        assert args2.requests == [10, 20]

    def test_performance_flag_defaults(self):
        args = build_parser().parse_args(["run", "fig10-facs-vs-scc"])
        assert args.executor == "serial"
        assert args.workers is None
        assert args.engine == "compiled"

    def test_performance_flags_parse(self):
        args = build_parser().parse_args(
            [
                "run",
                "fig10-facs-vs-scc",
                "--executor",
                "process",
                "--workers",
                "4",
                "--engine",
                "reference",
            ]
        )
        assert args.executor == "process"
        assert args.workers == 4
        assert args.engine == "reference"

    def test_workers_without_process_executor_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig7-speed", "--workers", "4"])

    def test_unknown_executor_and_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig7-speed", "--executor", "gpu"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig7-speed", "--engine", "warp"])


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in experiment_ids():
            assert experiment_id in output

    def test_run_table1(self, capsys):
        assert main(["run", "table1-frb1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_run_table2(self, capsys):
        assert main(["run", "table2-frb2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_run_membership_figures(self, capsys):
        assert main(["run", "fig5-flc1-mf"]) == 0
        assert "Fig. 5(a)" in capsys.readouterr().out
        assert main(["run", "fig6-flc2-mf"]) == 0
        assert "Fig. 6(d)" in capsys.readouterr().out

    def test_run_small_figure_sweep(self, capsys):
        code = main(
            ["run", "fig7-speed", "--replications", "1", "--requests", "10", "40"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output and "legend:" in output

    def test_benchmark_only_experiment_is_refused(self):
        with pytest.raises(SystemExit, match="benchmark-only"):
            main(["run", "abl-defuzz"])

    def test_engine_choice_does_not_change_results(self, capsys):
        base = ["run", "fig7-speed", "--replications", "1", "--requests", "15", "30"]
        assert main(base + ["--engine", "compiled"]) == 0
        compiled_output = capsys.readouterr().out
        assert main(base + ["--engine", "reference"]) == 0
        reference_output = capsys.readouterr().out
        assert compiled_output == reference_output

    def test_process_executor_matches_serial(self, capsys):
        base = [
            "run",
            "fig10-facs-vs-scc",
            "--replications",
            "1",
            "--requests",
            "10",
            "25",
        ]
        assert main(base) == 0
        serial_output = capsys.readouterr().out
        assert main(base + ["--executor", "process", "--workers", "2"]) == 0
        parallel_output = capsys.readouterr().out
        assert parallel_output == serial_output


class TestNetworkSweepCommand:
    def test_defaults_parse(self):
        args = build_parser().parse_args(["network-sweep"])
        assert args.rates == [0.01, 0.02, 0.03, 0.04, 0.05]
        assert args.replications == 3
        assert args.executor == "serial"
        assert args.engine == "compiled"
        assert args.controllers == ["FACS", "SCC", "CS"]

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "network-sweep",
                "--rates",
                "0.02",
                "0.04",
                "--replications",
                "2",
                "--duration",
                "300",
                "--controllers",
                "FACS",
                "CS",
                "--executor",
                "thread",
                "--workers",
                "2",
            ]
        )
        assert args.rates == [0.02, 0.04]
        assert args.controllers == ["FACS", "CS"]
        assert args.executor == "thread"
        assert args.workers == 2

    def test_unknown_controller_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["network-sweep", "--controllers", "Oracle"])

    def test_workers_without_pool_executor_rejected(self):
        with pytest.raises(SystemExit):
            main(["network-sweep", "--workers", "4"])

    def test_small_sweep_runs(self, capsys):
        code = main(
            [
                "network-sweep",
                "--rates",
                "0.02",
                "0.04",
                "--replications",
                "1",
                "--duration",
                "150",
                "--controllers",
                "FACS",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "FACS — multi-cell QoS vs offered load" in output
        assert "Dropping probability vs offered load" in output

    def test_thread_executor_matches_serial(self, capsys):
        base = [
            "network-sweep",
            "--rates",
            "0.03",
            "--replications",
            "1",
            "--duration",
            "150",
            "--controllers",
            "FACS",
            "SCC",
        ]
        assert main(base) == 0
        serial_output = capsys.readouterr().out
        assert main(base + ["--executor", "thread", "--workers", "2"]) == 0
        threaded_output = capsys.readouterr().out
        assert threaded_output == serial_output

    def test_run_net_sweep_experiment_id(self, capsys):
        assert main(["run", "net-sweep", "--replications", "1"]) == 0
        assert "multi-cell QoS" in capsys.readouterr().out

    def test_run_surface_experiments(self, capsys):
        assert main(["run", "surface-flc1"]) == 0
        assert "FLC1 correction value" in capsys.readouterr().out
        assert main(["run", "surface-flc2"]) == 0
        assert "FLC2 accept/reject score" in capsys.readouterr().out
