"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cac.facs import FLC1, FLC2, FuzzyAdmissionControlSystem
from repro.cac.scc import ShadowClusterController
from repro.cellular import BaseStation, Call, CallType, ServiceClass, UserState
from repro.des import Environment, StreamFactory


@pytest.fixture
def env() -> Environment:
    """A fresh discrete-event simulation environment."""
    return Environment()


@pytest.fixture
def streams() -> StreamFactory:
    """A deterministic random stream factory."""
    return StreamFactory(master_seed=424242)


@pytest.fixture(scope="session")
def flc1() -> FLC1:
    """FLC1 is stateless; building it once per session keeps the suite fast."""
    return FLC1()


@pytest.fixture(scope="session")
def flc2() -> FLC2:
    """FLC2 is stateless; building it once per session keeps the suite fast."""
    return FLC2()


@pytest.fixture
def facs() -> FuzzyAdmissionControlSystem:
    """A fresh FACS controller (it is stateful via its counters)."""
    return FuzzyAdmissionControlSystem()


@pytest.fixture
def scc() -> ShadowClusterController:
    """A fresh SCC controller."""
    return ShadowClusterController()


@pytest.fixture
def station() -> BaseStation:
    """A base station with the paper's 40 BU capacity."""
    return BaseStation()


def make_call(
    service: ServiceClass = ServiceClass.VOICE,
    bandwidth: int | None = None,
    call_type: CallType = CallType.NEW,
    speed: float = 30.0,
    angle: float = 0.0,
    distance: float = 2.0,
    holding: float = 120.0,
) -> Call:
    """Convenience constructor used across test modules."""
    bandwidth_by_class = {
        ServiceClass.TEXT: 1,
        ServiceClass.VOICE: 5,
        ServiceClass.VIDEO: 10,
    }
    return Call(
        service=service,
        bandwidth_units=bandwidth if bandwidth is not None else bandwidth_by_class[service],
        call_type=call_type,
        user_state=UserState(speed_kmh=speed, angle_deg=angle, distance_km=distance),
        holding_time_s=holding,
    )


@pytest.fixture
def call_factory():
    """Expose :func:`make_call` as a fixture."""
    return make_call
