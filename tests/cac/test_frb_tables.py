"""Cross-checks of FRB1 and FRB2 against Tables 1 and 2 of the paper."""

from __future__ import annotations

import pytest

from repro.cac.facs.config import DEFAULT_FLC1_CONFIG, DEFAULT_FLC2_CONFIG
from repro.cac.facs.frb1 import FRB1_TABLE, frb1_rule_strings, frb1_rules
from repro.cac.facs.frb2 import FRB2_TABLE, frb2_rule_strings, frb2_rules
from repro.fuzzy.rules import RuleBase


class TestFRB1Table:
    def test_has_42_rules(self):
        """Section 3.1: |T(S)| x |T(A)| x |T(D)| = 3 x 7 x 2 = 42 rules."""
        assert len(FRB1_TABLE) == 42
        assert len(frb1_rules()) == 42

    def test_rule_indices_are_sequential(self):
        assert [row[0] for row in FRB1_TABLE] == list(range(42))

    def test_covers_every_input_combination_exactly_once(self):
        combos = {(s, a, d) for _, s, a, d, _ in FRB1_TABLE}
        assert len(combos) == 42
        speeds = {s for _, s, _, _, _ in FRB1_TABLE}
        angles = {a for _, _, a, _, _ in FRB1_TABLE}
        distances = {d for _, _, _, d, _ in FRB1_TABLE}
        assert speeds == {"Sl", "M", "Fa"}
        assert angles == {"B1", "L1", "L2", "St", "R1", "R2", "B2"}
        assert distances == {"N", "F"}

    def test_consequents_are_valid_correction_terms(self):
        valid = {f"Cv{i}" for i in range(1, 10)}
        assert {cv for *_, cv in FRB1_TABLE} <= valid

    @pytest.mark.parametrize(
        "index,expected",
        [
            (0, ("Sl", "B1", "N", "Cv3")),
            (6, ("Sl", "St", "N", "Cv9")),
            (20, ("M", "St", "N", "Cv9")),
            (27, ("M", "B2", "F", "Cv1")),
            (34, ("Fa", "St", "N", "Cv9")),
            (35, ("Fa", "St", "F", "Cv9")),
            (41, ("Fa", "B2", "F", "Cv1")),
        ],
    )
    def test_spot_checks_against_paper_table1(self, index, expected):
        assert FRB1_TABLE[index][1:] == expected

    def test_straight_near_always_best_correction(self):
        """Heading straight at a nearby BS gets Cv9 at every speed (rules 6, 20, 34)."""
        for index, s, a, d, cv in FRB1_TABLE:
            if a == "St" and d == "N":
                assert cv == "Cv9"

    def test_moving_away_fast_gets_worst_correction(self):
        for index, s, a, d, cv in FRB1_TABLE:
            if s == "Fa" and a in ("B1", "B2"):
                assert cv == "Cv1"

    def test_rule_strings_parse_and_validate_against_variables(self):
        config = DEFAULT_FLC1_CONFIG
        base = RuleBase(
            frb1_rules(),
            inputs=[
                config.speed_variable(),
                config.angle_variable(),
                config.distance_variable(),
            ],
            outputs=[config.correction_variable()],
            name="frb1",
        )
        assert len(base) == 42
        assert base.is_complete()

    def test_rule_labels_match_indices(self):
        for rule, (index, *_rest) in zip(frb1_rules(), FRB1_TABLE):
            assert rule.label == str(index)

    def test_rule_strings_mention_their_terms(self):
        for text, (_, s, a, d, cv) in zip(frb1_rule_strings(), FRB1_TABLE):
            for token in (s, a, d, cv):
                assert f" {token}" in text


class TestFRB2Table:
    def test_has_27_rules(self):
        """Section 3.2: 3 x 3 x 3 = 27 rules."""
        assert len(FRB2_TABLE) == 27
        assert len(frb2_rules()) == 27

    def test_rule_indices_are_sequential(self):
        assert [row[0] for row in FRB2_TABLE] == list(range(27))

    def test_covers_every_input_combination_exactly_once(self):
        combos = {(cv, r, cs) for _, cv, r, cs, _ in FRB2_TABLE}
        assert len(combos) == 27
        assert {cv for _, cv, _, _, _ in FRB2_TABLE} == {"B", "N", "G"}
        assert {r for _, _, r, _, _ in FRB2_TABLE} == {"T", "Vo", "Vi"}
        assert {cs for _, _, _, cs, _ in FRB2_TABLE} == {"S", "M", "F"}

    def test_consequents_are_valid_decision_terms(self):
        assert {ar for *_, ar in FRB2_TABLE} <= {"R", "WR", "NRNA", "WA", "A"}

    @pytest.mark.parametrize(
        "index,expected",
        [
            (0, ("B", "T", "S", "A")),
            (5, ("B", "Vo", "F", "WR")),
            (8, ("B", "Vi", "F", "WR")),
            (13, ("N", "Vo", "M", "NRNA")),
            (19, ("G", "T", "M", "A")),
            (25, ("G", "Vi", "M", "A")),
            (26, ("G", "Vi", "F", "R")),
        ],
    )
    def test_spot_checks_against_paper_table2(self, index, expected):
        assert FRB2_TABLE[index][1:] == expected

    def test_small_counter_state_never_rejects(self):
        """With a nearly empty cell, Table 2 never outputs Reject or Weak Reject."""
        for _, cv, r, cs, ar in FRB2_TABLE:
            if cs == "S":
                assert ar in ("A", "WA")

    def test_only_hard_reject_is_good_video_on_full_cell(self):
        rejects = [(cv, r, cs) for _, cv, r, cs, ar in FRB2_TABLE if ar == "R"]
        assert rejects == [("G", "Vi", "F")]

    def test_rules_validate_against_flc2_variables(self):
        config = DEFAULT_FLC2_CONFIG
        base = RuleBase(
            frb2_rules(),
            inputs=[
                config.correction_variable(),
                config.request_variable(),
                config.counter_variable(),
            ],
            outputs=[config.decision_variable()],
            name="frb2",
        )
        assert len(base) == 27
        assert base.is_complete()

    def test_rule_labels_match_indices(self):
        for rule, (index, *_rest) in zip(frb2_rules(), FRB2_TABLE):
            assert rule.label == str(index)

    def test_rule_strings_reference_decision_variable(self):
        for text in frb2_rule_strings():
            assert "THEN AR is" in text
