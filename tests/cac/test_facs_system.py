"""Tests of the complete FACS controller (cascade + counters) and ServiceCounters."""

from __future__ import annotations

import pytest

from repro.cac.base import AdmissionDecision, DecisionOutcome
from repro.cac.counters import ServiceCounters
from repro.cac.facs.system import FACSConfig, FuzzyAdmissionControlSystem
from repro.cellular.calls import Call
from repro.cellular.mobility import UserState
from repro.cellular.traffic import ServiceClass
from tests.conftest import make_call


class TestServiceCounters:
    def test_ds_classification(self):
        assert ServiceCounters.classify(make_call(ServiceClass.VOICE))
        assert ServiceCounters.classify(make_call(ServiceClass.VIDEO))
        assert not ServiceCounters.classify(make_call(ServiceClass.TEXT))

    def test_rtc_nrtc_accounting(self):
        counters = ServiceCounters(capacity_bu=40)
        voice = make_call(ServiceClass.VOICE)
        text = make_call(ServiceClass.TEXT)
        video = make_call(ServiceClass.VIDEO)
        for call in (voice, text, video):
            counters.admit(call)
        assert counters.real_time_bu == 15
        assert counters.non_real_time_bu == 1
        assert counters.counter_state == 16
        counters.release(video)
        assert counters.real_time_bu == 5
        assert counters.counter_state == 6

    def test_snapshot(self):
        counters = ServiceCounters(capacity_bu=40)
        counters.admit(make_call(ServiceClass.VOICE))
        snap = counters.snapshot()
        assert snap.total_bu == 5
        assert snap.free_bu == 35
        assert snap.occupancy == pytest.approx(5 / 40)

    def test_double_admit_rejected(self):
        counters = ServiceCounters()
        call = make_call(ServiceClass.TEXT)
        counters.admit(call)
        with pytest.raises(ValueError):
            counters.admit(call)

    def test_release_untracked_rejected(self):
        with pytest.raises(KeyError):
            ServiceCounters().release(make_call(ServiceClass.TEXT))

    def test_capacity_overflow_rejected(self):
        counters = ServiceCounters(capacity_bu=12)
        counters.admit(make_call(ServiceClass.VIDEO))
        with pytest.raises(ValueError):
            counters.admit(make_call(ServiceClass.VOICE))

    def test_reset(self):
        counters = ServiceCounters()
        counters.admit(make_call(ServiceClass.VOICE))
        counters.reset()
        assert counters.counter_state == 0
        assert counters.tracked_calls == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ServiceCounters(capacity_bu=0)


class TestFACSDecisions:
    def test_decision_structure(self, facs, station):
        decision = facs.decide(make_call(), station, now=0.0)
        assert isinstance(decision, AdmissionDecision)
        assert decision.outcome in DecisionOutcome.ORDERED
        assert "correction_value" in decision.diagnostics
        assert -1.0 <= decision.score <= 1.0

    def test_accepts_on_empty_station_with_good_trajectory(self, facs, station):
        call = make_call(speed=60.0, angle=0.0, distance=1.0)
        assert facs.decide(call, station, 0.0).accepted

    def test_rejects_when_bandwidth_unavailable(self, facs, station):
        filler = make_call(ServiceClass.VIDEO, bandwidth=38)
        station.allocate(filler)
        call = make_call(ServiceClass.VOICE, speed=60.0, angle=0.0, distance=1.0)
        decision = facs.decide(call, station, 0.0)
        assert not decision.accepted
        assert "insufficient bandwidth" in decision.reason

    def test_rejects_unfavourable_trajectory_under_load(self, facs, station):
        """A user speeding away from a busy BS is not worth the bandwidth."""
        for _ in range(5):
            station.allocate(make_call(ServiceClass.VOICE))
        call = make_call(ServiceClass.VIDEO, speed=100.0, angle=170.0, distance=9.0)
        assert not facs.decide(call, station, 0.0).accepted

    def test_accepts_favourable_trajectory_under_same_load(self, facs, station):
        for _ in range(5):
            station.allocate(make_call(ServiceClass.VOICE))
        call = make_call(ServiceClass.VIDEO, speed=100.0, angle=0.0, distance=1.0)
        assert facs.decide(call, station, 0.0).accepted

    def test_decision_does_not_mutate_station(self, facs, station):
        used_before = station.used_bu
        facs.decide(make_call(), station, 0.0)
        assert station.used_bu == used_before

    def test_call_without_user_state_uses_neutral_correction(self, facs, station):
        call = Call(service=ServiceClass.TEXT, bandwidth_units=1)
        decision = facs.decide(call, station, 0.0)
        assert decision.diagnostics["correction_value"] == pytest.approx(0.5)
        assert decision.accepted  # text call on an empty station

    def test_threshold_controls_strictness(self, station):
        lenient = FuzzyAdmissionControlSystem(FACSConfig(acceptance_threshold=-0.5))
        strict = FuzzyAdmissionControlSystem(FACSConfig(acceptance_threshold=0.75))
        for _ in range(4):
            station.allocate(make_call(ServiceClass.VOICE))
        call = make_call(ServiceClass.VOICE, speed=20.0, angle=60.0, distance=6.0)
        assert lenient.decide(call, station, 0.0).accepted
        assert not strict.decide(call, station, 0.0).accepted

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            FACSConfig(acceptance_threshold=2.0)

    def test_correction_value_for_none_user(self, facs):
        assert facs.correction_value(None) == pytest.approx(0.5)

    def test_correction_value_clamps_out_of_range_observation(self, facs):
        state = UserState(speed_kmh=300.0, angle_deg=0.0, distance_km=40.0)
        assert 0.0 <= facs.correction_value(state) <= 1.0


class TestFACSLifecycle:
    def test_counters_track_admitted_calls(self, facs, station):
        call = make_call(ServiceClass.VOICE, speed=60.0, angle=0.0, distance=1.0)
        decision = facs.decide(call, station, 0.0)
        assert decision.accepted
        station.allocate(call)
        facs.on_admitted(call, station, 0.0)
        assert facs.counters.counter_state == 5
        assert facs.counters.real_time_bu == 5
        station.release(call)
        facs.on_released(call, station, 10.0)
        assert facs.counters.counter_state == 0

    def test_on_admitted_is_idempotent(self, facs, station):
        call = make_call(ServiceClass.TEXT)
        station.allocate(call)
        facs.on_admitted(call, station, 0.0)
        facs.on_admitted(call, station, 0.0)
        assert facs.counters.counter_state == 1

    def test_on_released_ignores_untracked_calls(self, facs, station):
        facs.on_released(make_call(ServiceClass.TEXT), station, 0.0)
        assert facs.counters.counter_state == 0

    def test_reset_clears_counters(self, facs, station):
        call = make_call(ServiceClass.VIDEO)
        station.allocate(call)
        facs.on_admitted(call, station, 0.0)
        facs.reset()
        assert facs.counters.counter_state == 0

    def test_name(self, facs):
        assert facs.name == "FACS"


class TestFACSAcceptanceTrends:
    """Monte-Carlo checks of the qualitative trends driving Figs. 7-9."""

    def _acceptance_fraction(self, facs, station, calls):
        accepted = 0
        for call in calls:
            if facs.decide(call, station, 0.0).accepted:
                accepted += 1
        return accepted / len(calls)

    def test_fast_users_accepted_more_than_slow_under_load(self, facs, station):
        for _ in range(4):
            station.allocate(make_call(ServiceClass.VOICE))
        angles = [-150, -120, -90, -60, -30, 0, 30, 60, 90, 120, 150]
        slow = [make_call(ServiceClass.TEXT, speed=4.0, angle=a, distance=5.0) for a in angles]
        fast = [make_call(ServiceClass.TEXT, speed=60.0, angle=a, distance=5.0) for a in angles]
        assert self._acceptance_fraction(facs, station, fast) >= self._acceptance_fraction(
            facs, station, slow
        )

    def test_small_angles_accepted_more_than_large_under_load(self, facs, station):
        for _ in range(4):
            station.allocate(make_call(ServiceClass.VOICE))
        speeds = [10, 30, 50, 70, 90, 110]
        toward = [make_call(ServiceClass.TEXT, speed=s, angle=0.0, distance=5.0) for s in speeds]
        away = [make_call(ServiceClass.TEXT, speed=s, angle=150.0, distance=5.0) for s in speeds]
        assert self._acceptance_fraction(facs, station, toward) > self._acceptance_fraction(
            facs, station, away
        )


class TestBatchAdmission:
    def _candidates(self, count: int = 60) -> list[Call]:
        import numpy as np

        rng = np.random.default_rng(20250722)
        calls = []
        services = (ServiceClass.TEXT, ServiceClass.VOICE, ServiceClass.VIDEO)
        for i in range(count):
            if i % 13 == 0:
                # Fixed terminal: no GPS observation.
                calls.append(make_call(services[i % 3]))
                calls[-1].user_state = None
                continue
            calls.append(
                make_call(
                    services[i % 3],
                    speed=float(rng.uniform(0.0, 130.0)),
                    angle=float(rng.uniform(-180.0, 180.0)),
                    distance=float(rng.uniform(0.0, 12.0)),
                )
            )
        return calls

    def test_decide_batch_matches_sequential_decide(self, facs, station):
        calls = self._candidates()
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=30))
        batch = facs.decide_batch(calls, station, now=0.0)
        assert len(batch) == len(calls)
        for i, call in enumerate(calls):
            decision = facs.decide(call, station, 0.0)
            assert batch.scores[i] == decision.score
            assert bool(batch.accepted[i]) == decision.accepted
            assert (
                batch.correction_values[i]
                == decision.diagnostics["correction_value"]
            )
        assert batch.counter_state_bu == float(station.used_bu)

    def test_decide_batch_does_not_mutate_state(self, facs, station):
        calls = self._candidates(20)
        used_before = station.used_bu
        counters_before = (facs.counters.real_time_bu, facs.counters.non_real_time_bu)
        facs.decide_batch(calls, station, now=0.0)
        assert station.used_bu == used_before
        assert (
            facs.counters.real_time_bu,
            facs.counters.non_real_time_bu,
        ) == counters_before

    def test_missing_observations_get_neutral_correction(self, facs):
        values = facs.correction_values([None, None])
        assert list(values) == [0.5, 0.5]

    def test_correction_values_match_scalar_path(self, facs):
        users = [
            UserState(speed_kmh=30.0, angle_deg=10.0, distance_km=2.0),
            None,
            UserState(speed_kmh=90.0, angle_deg=80.0, distance_km=9.0),
        ]
        values = facs.correction_values(users)
        for user, value in zip(users, values):
            assert value == facs.correction_value(user)

    def test_batch_respects_bandwidth_fit(self, facs, station):
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=39))
        video = make_call(ServiceClass.VIDEO, speed=60.0, angle=0.0, distance=1.0)
        batch = facs.decide_batch([video], station, now=0.0)
        assert not bool(batch.accepted[0])
