"""Behavioural tests of FLC1 (mobility prediction) and FLC2 (admission decision).

These encode the qualitative claims of Section 4 of the paper as assertions
on the controllers themselves: straight-heading users get high correction
values, the correction value degrades with the angle, full cells push the
decision towards rejection, and so on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cac.base import DecisionOutcome
from repro.cac.facs.config import FLC1Config, FLC2Config
from repro.cac.facs.flc2 import FLC2
from repro.cellular.mobility import UserState


class TestFLC1Structure:
    def test_rule_count(self, flc1):
        assert flc1.rule_count == 42

    def test_variable_universes(self, flc1):
        variables = flc1.controller.rule_base.input_variables
        assert variables["S"].universe == (0.0, 120.0)
        assert variables["A"].universe == (-180.0, 180.0)
        assert variables["D"].universe == (0.0, 10.0)
        assert flc1.controller.rule_base.output_variables["Cv"].universe == (0.0, 1.0)

    def test_term_sets_match_paper(self, flc1):
        variables = flc1.controller.rule_base.input_variables
        assert variables["S"].term_names == ["Sl", "M", "Fa"]
        assert variables["A"].term_names == ["B1", "L1", "L2", "St", "R1", "R2", "B2"]
        assert variables["D"].term_names == ["N", "F"]
        output = flc1.controller.rule_base.output_variables["Cv"]
        assert output.term_names == [f"Cv{i}" for i in range(1, 10)]

    def test_all_input_variables_cover_their_universe(self, flc1):
        for variable in flc1.controller.rule_base.input_variables.values():
            assert variable.is_complete(), f"{variable.name} has coverage holes"

    def test_correction_variable_covers_unit_interval(self, flc1):
        assert flc1.controller.rule_base.output_variables["Cv"].is_complete()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FLC1Config(correction_terms=2).correction_variable()


class TestFLC1Behaviour:
    def test_straight_fast_near_is_excellent(self, flc1):
        assert flc1.correction_value(60.0, 0.0, 1.0) > 0.85

    def test_moving_away_is_poor(self, flc1):
        assert flc1.correction_value(60.0, 180.0, 5.0) < 0.2
        assert flc1.correction_value(60.0, -180.0, 5.0) < 0.2

    def test_correction_decreases_with_angle(self, flc1):
        """Fig. 8's driver: larger angles mean worse predicted trajectories."""
        angles = (0.0, 30.0, 50.0, 60.0, 90.0)
        values = [flc1.correction_value(30.0, angle, 3.0) for angle in angles]
        assert all(earlier >= later for earlier, later in zip(values, values[1:]))

    def test_angle_symmetry(self, flc1):
        """Left and right trajectories are symmetric in FRB1."""
        for angle in (30.0, 60.0, 90.0, 135.0):
            left = flc1.correction_value(50.0, -angle, 4.0)
            right = flc1.correction_value(50.0, angle, 4.0)
            assert left == pytest.approx(right, abs=1e-6)

    def test_near_beats_far_for_straight_users(self, flc1):
        near = flc1.correction_value(20.0, 0.0, 1.0)
        far = flc1.correction_value(20.0, 0.0, 9.5)
        assert near > far

    def test_walking_users_have_middling_correction(self, flc1):
        """Slow users never reach the extreme correction values for side angles."""
        assert 0.1 < flc1.correction_value(4.0, 90.0, 5.0) < 0.6

    def test_fast_user_side_angle_is_extreme(self, flc1):
        """Fast users moving sideways-away are predicted to leave: very low Cv."""
        assert flc1.correction_value(100.0, 90.0, 5.0) < 0.2

    def test_evaluate_returns_diagnostics(self, flc1):
        result = flc1.evaluate(UserState(60.0, 0.0, 1.0))
        assert 0.0 <= result.correction_value <= 1.0
        assert result.dominant_rule in {str(i) for i in range(42)}
        assert result.inputs.speed_kmh == 60.0

    def test_out_of_range_inputs_are_clamped(self, flc1):
        assert 0.0 <= flc1.correction_value(500.0, 0.0, 50.0) <= 1.0

    @given(
        speed=st.floats(0.0, 120.0),
        angle=st.floats(-180.0, 180.0),
        distance=st.floats(0.0, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_always_in_unit_interval(self, flc1, speed, angle, distance):
        assert 0.0 <= flc1.correction_value(speed, angle, distance) <= 1.0


class TestFLC2Structure:
    def test_rule_count(self, flc2):
        assert flc2.rule_count == 27

    def test_variable_universes(self, flc2):
        variables = flc2.controller.rule_base.input_variables
        assert variables["Cv"].universe == (0.0, 1.0)
        assert variables["R"].universe == (0.0, 10.0)
        assert variables["Cs"].universe == (0.0, 40.0)
        assert flc2.controller.rule_base.output_variables["AR"].universe == (-1.0, 1.0)

    def test_term_sets_match_paper(self, flc2):
        variables = flc2.controller.rule_base.input_variables
        assert variables["Cv"].term_names == ["B", "N", "G"]
        assert variables["R"].term_names == ["T", "Vo", "Vi"]
        assert variables["Cs"].term_names == ["S", "M", "F"]
        assert flc2.controller.rule_base.output_variables["AR"].term_names == [
            "R",
            "WR",
            "NRNA",
            "WA",
            "A",
        ]

    def test_all_variables_cover_their_universe(self, flc2):
        for variable in flc2.controller.rule_base.input_variables.values():
            assert variable.is_complete()
        assert flc2.controller.rule_base.output_variables["AR"].is_complete()


class TestFLC2Behaviour:
    def test_empty_cell_accepts(self, flc2):
        assert flc2.decision_score(0.9, 1.0, 2.0) > 0.25

    def test_good_correction_full_cell_video_is_rejected(self, flc2):
        """Table 2 rule 26: G / Vi / F -> Reject."""
        assert flc2.decision_score(0.95, 10.0, 39.0) < -0.25

    def test_score_decreases_with_occupancy(self, flc2):
        scores = [flc2.decision_score(0.5, 5.0, cs) for cs in (2.0, 10.0, 20.0, 30.0, 38.0)]
        assert all(earlier >= later - 1e-9 for earlier, later in zip(scores, scores[1:]))

    def test_good_correction_beats_bad_correction_under_load(self, flc2):
        """The core of Fig. 7: under load, favourable trajectories are preferred."""
        good = flc2.decision_score(0.9, 1.0, 25.0)
        bad = flc2.decision_score(0.1, 1.0, 25.0)
        assert good > bad

    def test_classify_score_boundaries(self):
        assert FLC2.classify_score(-1.0) == DecisionOutcome.REJECT
        assert FLC2.classify_score(-0.5) == DecisionOutcome.WEAK_REJECT
        assert FLC2.classify_score(0.0) == DecisionOutcome.NEUTRAL
        assert FLC2.classify_score(0.5) == DecisionOutcome.WEAK_ACCEPT
        assert FLC2.classify_score(1.0) == DecisionOutcome.ACCEPT

    def test_evaluate_returns_diagnostics(self, flc2):
        result = flc2.evaluate(0.8, 5.0, 10.0)
        assert -1.0 <= result.score <= 1.0
        assert result.outcome in DecisionOutcome.ORDERED
        assert result.correction_value == 0.8

    @given(
        correction=st.floats(0.0, 1.0),
        request=st.floats(0.0, 10.0),
        counter=st.floats(0.0, 40.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_score_always_in_range(self, flc2, correction, request, counter):
        assert -1.0 <= flc2.decision_score(correction, request, counter) <= 1.0

    def test_custom_config_resolution(self):
        flc2 = FLC2(FLC2Config(resolution=201))
        assert -1.0 <= flc2.decision_score(0.5, 5.0, 20.0) <= 1.0
