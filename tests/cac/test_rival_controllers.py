"""Tests of the adaptive-threshold and MPC-lookahead rival controllers."""

from __future__ import annotations

import pickle

import pytest

from repro.api import CONTROLLERS, controller_factory
from repro.cac.adaptive_threshold import (
    AdaptiveThresholdConfig,
    AdaptiveThresholdController,
)
from repro.cac.mpc_lookahead import MPCLookaheadConfig, MPCLookaheadController
from repro.cellular.calls import CallType
from repro.cellular.traffic import ServiceClass
from tests.conftest import make_call


class TestAdaptiveThresholdConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"forgetting": 0.0},
            {"forgetting": 1.0},
            {"target_failure_ratio": 1.0},
            {"target_failure_ratio": -0.1},
            {"adapt_gain_bu": 0.0},
            {"initial_reserve_bu": -1.0},
            {"max_reserve_fraction": 0.0},
            {"max_reserve_fraction": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveThresholdConfig(**kwargs)


class TestAdaptiveThresholdController:
    def test_handoffs_admitted_whenever_they_fit(self, station):
        controller = AdaptiveThresholdController()
        handoff = make_call(ServiceClass.VOICE, call_type=CallType.HANDOFF)
        assert controller.decide(handoff, station, 0.0).accepted

    def test_new_calls_blocked_inside_the_reservation(self, station):
        controller = AdaptiveThresholdController(
            AdaptiveThresholdConfig(initial_reserve_bu=10.0)
        )
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=28))
        new_call = make_call(ServiceClass.VOICE)
        handoff = make_call(ServiceClass.VOICE, call_type=CallType.HANDOFF)
        assert not controller.decide(new_call, station, 0.0).accepted
        assert controller.decide(handoff, station, 0.0).accepted

    def test_failed_handoffs_widen_the_reservation(self, station):
        controller = AdaptiveThresholdController()
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=38))
        before = controller.reserve_bu
        dropped = make_call(ServiceClass.VOICE, call_type=CallType.HANDOFF)
        assert not controller.decide(dropped, station, 0.0).accepted
        assert controller.reserve_bu > before
        assert controller.failure_ewma > AdaptiveThresholdConfig().target_failure_ratio

    def test_clean_handoffs_decay_the_reservation_toward_zero(self, station):
        controller = AdaptiveThresholdController(
            AdaptiveThresholdConfig(initial_reserve_bu=8.0)
        )
        for _ in range(200):
            handoff = make_call(ServiceClass.VOICE, call_type=CallType.HANDOFF)
            assert controller.decide(handoff, station, 0.0).accepted
        assert controller.reserve_bu < 8.0
        assert controller.failure_ewma < AdaptiveThresholdConfig().target_failure_ratio

    def test_reservation_never_exceeds_the_ceiling(self, station):
        config = AdaptiveThresholdConfig(max_reserve_fraction=0.25, adapt_gain_bu=1000.0)
        controller = AdaptiveThresholdController(config)
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=38))
        for _ in range(50):
            controller.decide(
                make_call(ServiceClass.VOICE, call_type=CallType.HANDOFF), station, 0.0
            )
        assert controller.reserve_bu <= 0.25 * station.capacity_bu

    def test_reset_restores_the_initial_state(self, station):
        controller = AdaptiveThresholdController()
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=38))
        controller.decide(
            make_call(ServiceClass.VOICE, call_type=CallType.HANDOFF), station, 0.0
        )
        controller.reset()
        assert controller.reserve_bu == AdaptiveThresholdConfig().initial_reserve_bu

    def test_diagnostics_expose_the_threshold(self, station):
        decision = AdaptiveThresholdController().decide(make_call(), station, 0.0)
        assert "adaptive_threshold_bu" in decision.diagnostics
        assert "failure_ewma" in decision.diagnostics


class TestMPCLookaheadConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon_s": 0.0},
            {"safety_margin": 0.0},
            {"safety_margin": 1.1},
            {"free_admission_fraction": -0.1},
            {"free_admission_fraction": 1.1},
            {"forgetting": 1.0},
            {"prior_holding_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MPCLookaheadConfig(**kwargs)


class TestMPCLookaheadController:
    def test_idle_cell_always_admits(self, station):
        controller = MPCLookaheadController()
        assert controller.decide(make_call(ServiceClass.VOICE), station, 0.0).accepted

    def test_handoffs_bypass_the_forecast(self, station):
        controller = MPCLookaheadController(
            MPCLookaheadConfig(safety_margin=0.01, free_admission_fraction=0.0)
        )
        handoff = make_call(ServiceClass.VOICE, call_type=CallType.HANDOFF)
        assert controller.decide(handoff, station, 0.0).accepted

    def test_sustained_pressure_rejects_new_calls_before_capacity(self, station):
        controller = MPCLookaheadController(
            MPCLookaheadConfig(free_admission_fraction=0.0)
        )
        # Hammer the estimator: long calls arriving every second fills the
        # forecast well past the margin while physical room remains.
        now = 0.0
        rejected_with_room = False
        for _ in range(40):
            call = make_call(ServiceClass.VOICE, holding=600.0)
            decision = controller.decide(call, station, now)
            if decision.accepted and station.can_fit(call.bandwidth_units):
                station.allocate(call)
            elif station.can_fit(call.bandwidth_units):
                rejected_with_room = True
                break
            now += 1.0
        assert rejected_with_room

    def test_forecast_decays_toward_steady_state(self, station):
        import math

        controller = MPCLookaheadController()
        controller._observe(make_call(ServiceClass.VOICE, holding=120.0), 0.0)
        controller._observe(make_call(ServiceClass.VOICE, holding=120.0), 10.0)
        # Estimates after two arrivals 10 s apart: rate 0.1/s, 5 BU, 120 s
        # holding -> steady state 60 BU; the rollout is the fluid relaxation
        # steady + (start - steady) * exp(-horizon/tau).
        steady = 0.1 * 5.0 * 120.0
        decay = math.exp(-MPCLookaheadConfig().horizon_s / 120.0)
        assert controller.forecast_occupancy(40.0) == pytest.approx(
            steady + (40.0 - steady) * decay
        )
        assert controller.forecast_occupancy(0.0) < controller.forecast_occupancy(40.0)

    def test_forecast_with_no_rate_evidence_drains_the_start_state(self):
        import math

        controller = MPCLookaheadController()
        decay = math.exp(
            -MPCLookaheadConfig().horizon_s / MPCLookaheadConfig().prior_holding_s
        )
        assert controller.forecast_occupancy(40.0) == pytest.approx(40.0 * decay)

    def test_reset_clears_the_estimates(self, station):
        controller = MPCLookaheadController()
        controller.decide(make_call(), station, 0.0)
        controller.decide(make_call(), station, 5.0)
        controller.reset()
        assert controller._interarrival_ewma_s is None

    def test_diagnostics_expose_both_rollouts(self, station):
        controller = MPCLookaheadController(
            MPCLookaheadConfig(free_admission_fraction=0.0)
        )
        decision = controller.decide(make_call(), station, 0.0)
        assert "admit_rollout_bu" in decision.diagnostics
        assert "reject_rollout_bu" in decision.diagnostics


class TestRegistryIntegration:
    def test_both_rivals_are_registered(self):
        assert "AdaptiveThreshold" in CONTROLLERS
        assert "MPCLookahead" in CONTROLLERS

    @pytest.mark.parametrize("name", ["AdaptiveThreshold", "MPCLookahead"])
    def test_factories_build_fresh_picklable_controllers(self, name):
        factory = controller_factory(name)
        assert pickle.loads(pickle.dumps(factory))
        first, second = factory(), factory()
        assert first is not second
        assert first.name == name
