"""The shipped FLC1/FLC2 definition exports are byte-stable and bit-identical.

``examples/controllers/flc{1,2}.json`` are the declarative twins of the
in-code paper controllers: their serialization must never drift, and the
controllers built from them must reproduce the full Fig. 5/Fig. 6 control
surfaces bit-for-bit on both inference engines.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.analysis.io import flc_definition_to_json, read_flc_definition_json
from repro.api.registry import controller_factory, is_definition_controller
from repro.cac.facs import FLC1, FLC2
from repro.cac.facs.definitions import flc1_definition, flc2_definition

REPO_ROOT = Path(__file__).resolve().parents[2]
CONTROLLER_DIR = REPO_ROOT / "examples" / "controllers"

EXPORTS = {
    "flc1.json": flc1_definition,
    "flc2.json": flc2_definition,
}


@pytest.mark.parametrize("filename", sorted(EXPORTS))
def test_shipped_export_matches_builtin_definition_byte_for_byte(filename):
    shipped = (CONTROLLER_DIR / filename).read_text()
    assert shipped == flc_definition_to_json(EXPORTS[filename]())


@pytest.mark.parametrize("filename", sorted(EXPORTS))
def test_serialization_is_deterministic(filename):
    definition = EXPORTS[filename]()
    assert flc_definition_to_json(definition) == flc_definition_to_json(
        EXPORTS[filename]()
    )


@pytest.mark.parametrize("engine", ["reference", "compiled"])
def test_flc1_surface_is_bit_identical_to_the_in_code_controller(engine):
    definition = read_flc_definition_json(CONTROLLER_DIR / "flc1.json")
    built = definition.build_controller(engine=engine)
    paper = FLC1(engine=engine).controller
    xs, ys, surface = built.engine.control_surface(
        "S", "A", "Cv", fixed={"D": 3.0}, resolution=61
    )
    xs2, ys2, expected = paper.engine.control_surface(
        "S", "A", "Cv", fixed={"D": 3.0}, resolution=61
    )
    assert np.array_equal(xs, xs2) and np.array_equal(ys, ys2)
    assert np.array_equal(surface, expected)


@pytest.mark.parametrize("engine", ["reference", "compiled"])
def test_flc2_surface_is_bit_identical_to_the_in_code_controller(engine):
    definition = read_flc_definition_json(CONTROLLER_DIR / "flc2.json")
    built = definition.build_controller(engine=engine)
    paper = FLC2(engine=engine).controller
    xs, ys, surface = built.engine.control_surface(
        "Cv", "Cs", "AR", fixed={"R": 5.0}, resolution=61
    )
    xs2, ys2, expected = paper.engine.control_surface(
        "Cv", "Cs", "AR", fixed={"R": 5.0}, resolution=61
    )
    assert np.array_equal(xs, xs2) and np.array_equal(ys, ys2)
    assert np.array_equal(surface, expected)


class TestDefinitionControllerIds:
    def test_json_paths_are_recognized_as_definition_controllers(self):
        assert is_definition_controller("examples/controllers/flc1.json")
        assert not is_definition_controller("FACS")

    def test_factory_builds_a_behaviorally_identical_facs(self):
        factory = controller_factory(str(CONTROLLER_DIR / "flc1.json"))
        from_definition = factory()
        builtin = controller_factory("FACS")()
        for speed, angle, distance in ((20.0, 10.0, 3.0), (90.0, 170.0, 9.0)):
            ours = from_definition.flc1.correction_value(
                speed_kmh=speed, angle_deg=angle, distance_km=distance
            )
            theirs = builtin.flc1.correction_value(
                speed_kmh=speed, angle_deg=angle, distance_km=distance
            )
            assert ours == theirs
