"""Tests of the SCC baseline and the classic non-fuzzy admission controllers."""

from __future__ import annotations

import math

import pytest

from repro.cac.complete_sharing import CompleteSharingController
from repro.cac.fractional_guard import FractionalGuardConfig, FractionalGuardController
from repro.cac.guard_channel import GuardChannelConfig, GuardChannelController
from repro.cac.scc.demand import DemandEstimator
from repro.cac.scc.projection import ProjectionConfig, expected_exit_time_s, project_residency
from repro.cac.scc.system import SCCConfig, ShadowClusterController
from repro.cac.threshold_policy import ThresholdPolicyConfig, ThresholdPolicyController
from repro.cellular.calls import Call, CallType
from repro.cellular.mobility import UserState
from repro.cellular.traffic import ServiceClass
from tests.conftest import make_call


class TestProjection:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProjectionConfig(horizon_intervals=0)
        with pytest.raises(ValueError):
            ProjectionConfig(interval_s=0.0)
        with pytest.raises(ValueError):
            ProjectionConfig(residual_probability=1.5)

    def test_interval_times(self):
        config = ProjectionConfig(horizon_intervals=3, interval_s=10.0)
        assert config.interval_times() == [10.0, 20.0, 30.0]
        assert config.horizon_s == 30.0

    def test_stationary_user_never_exits(self):
        config = ProjectionConfig()
        user = UserState(0.5, 0.0, 5.0)
        assert math.isinf(expected_exit_time_s(user, config))

    def test_user_moving_away_exits_sooner_than_user_moving_towards(self):
        config = ProjectionConfig()
        towards = expected_exit_time_s(UserState(60.0, 0.0, 5.0), config)
        away = expected_exit_time_s(UserState(60.0, 180.0, 5.0), config)
        assert away < towards

    def test_faster_user_exits_sooner(self):
        config = ProjectionConfig()
        slow = expected_exit_time_s(UserState(10.0, 180.0, 5.0), config)
        fast = expected_exit_time_s(UserState(100.0, 180.0, 5.0), config)
        assert fast < slow

    def test_projection_probabilities_valid_and_decaying(self):
        config = ProjectionConfig()
        projection = project_residency(UserState(30.0, 45.0, 5.0), config)
        assert len(projection.in_cell_active) == config.horizon_intervals
        for p in projection.in_cell_active + projection.departed_active:
            assert 0.0 <= p <= 1.0
        # Activity decays monotonically over the horizon.
        totals = [
            in_cell + departed
            for in_cell, departed in zip(projection.in_cell_active, projection.departed_active)
        ]
        assert all(a >= b for a, b in zip(totals, totals[1:]))

    def test_projection_for_fixed_terminal(self):
        config = ProjectionConfig()
        projection = project_residency(None, config)
        assert all(p == 0.0 for p in projection.departed_active)
        assert math.isinf(projection.expected_exit_s)


class TestDemandEstimator:
    def test_track_and_untrack(self):
        estimator = DemandEstimator(ProjectionConfig())
        call = make_call(ServiceClass.VIDEO)
        estimator.track(call)
        assert estimator.tracked_calls == 1
        assert estimator.peak_projected_demand() > 0.0
        estimator.untrack(call)
        assert estimator.tracked_calls == 0
        assert estimator.peak_projected_demand() == 0.0

    def test_double_track_rejected(self):
        estimator = DemandEstimator(ProjectionConfig())
        call = make_call(ServiceClass.TEXT)
        estimator.track(call)
        with pytest.raises(ValueError):
            estimator.track(call)

    def test_untrack_unknown_is_noop(self):
        estimator = DemandEstimator(ProjectionConfig())
        estimator.untrack(make_call(ServiceClass.TEXT))

    def test_projected_demand_sums_over_calls(self):
        estimator = DemandEstimator(ProjectionConfig())
        estimator.track(make_call(ServiceClass.VOICE, speed=0.0))
        estimator.track(make_call(ServiceClass.VOICE, speed=0.0))
        demand = estimator.projected_in_cell_demand()
        # Two stationary 5 BU calls: demand starts near 10 BU and decays with activity.
        assert demand[0] == pytest.approx(
            10.0 * math.exp(-10.0 / ProjectionConfig().mean_holding_time_s), rel=1e-6
        )

    def test_reset(self):
        estimator = DemandEstimator(ProjectionConfig())
        estimator.track(make_call(ServiceClass.TEXT))
        estimator.reset()
        assert estimator.tracked_calls == 0


class TestSCCController:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SCCConfig(handoff_reservation_bu=-1.0)
        with pytest.raises(ValueError):
            SCCConfig(admission_threshold=0.0)
        with pytest.raises(ValueError):
            SCCConfig(reservation_failure_probability=1.0)
        with pytest.raises(ValueError):
            SCCConfig(reservations_per_mobile_user=-1)

    def test_accepts_on_empty_station(self, station):
        scc = ShadowClusterController(SCCConfig(reservation_failure_probability=0.0))
        assert scc.decide(make_call(), station, 0.0).accepted

    def test_rejects_when_bandwidth_unavailable(self, station):
        scc = ShadowClusterController(SCCConfig(reservation_failure_probability=0.0))
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=38))
        decision = scc.decide(make_call(ServiceClass.VOICE), station, 0.0)
        assert not decision.accepted
        assert "insufficient bandwidth" in decision.reason

    def test_rejects_when_projected_envelope_exceeded(self, station):
        scc = ShadowClusterController(
            SCCConfig(handoff_reservation_bu=20.0, reservation_failure_probability=0.0)
        )
        # Track enough stationary calls that projected demand + reservation is high.
        for _ in range(3):
            call = make_call(ServiceClass.VOICE, speed=0.0)
            station.allocate(call)
            scc.on_admitted(call, station, 0.0)
        decision = scc.decide(make_call(ServiceClass.VIDEO, speed=0.0), station, 0.0)
        assert not decision.accepted
        assert "exceeds admission capacity" in decision.reason

    def test_tracking_follows_lifecycle(self, station):
        scc = ShadowClusterController(SCCConfig(reservation_failure_probability=0.0))
        call = make_call(ServiceClass.VOICE)
        station.allocate(call)
        scc.on_admitted(call, station, 0.0)
        assert scc.estimator.tracked_calls == 1
        scc.on_released(call, station, 60.0)
        assert scc.estimator.tracked_calls == 0

    def test_reset(self, station):
        scc = ShadowClusterController(SCCConfig(reservation_failure_probability=0.0))
        call = make_call(ServiceClass.VOICE)
        station.allocate(call)
        scc.on_admitted(call, station, 0.0)
        scc.reset()
        assert scc.estimator.tracked_calls == 0

    def test_required_reservations(self):
        scc = ShadowClusterController()
        mobile = make_call(speed=60.0)
        stationary = make_call(speed=0.2)
        no_gps = Call(service=ServiceClass.TEXT, bandwidth_units=1)
        assert scc.required_reservations(mobile) == 2
        assert scc.required_reservations(stationary) == 0
        assert scc.required_reservations(no_gps) == 0

    def test_reservation_failures_reject_some_mobile_calls(self, station):
        scc = ShadowClusterController(SCCConfig(reservation_failure_probability=0.5))
        decisions = [
            scc.decide(make_call(ServiceClass.TEXT, speed=80.0, angle=float(a)), station, 0.0)
            for a in range(-170, 171, 10)
        ]
        rejected = [d for d in decisions if not d.accepted]
        accepted = [d for d in decisions if d.accepted]
        assert rejected, "with 50% failure probability some reservations must fail"
        assert accepted, "not every call should fail its reservations"
        assert any("shadow cluster" in d.reason for d in rejected)

    def test_reservation_outcome_is_deterministic_per_call(self, station):
        scc_a = ShadowClusterController(SCCConfig(reservation_failure_probability=0.3))
        scc_b = ShadowClusterController(SCCConfig(reservation_failure_probability=0.3))
        call = make_call(ServiceClass.TEXT, speed=80.0, angle=42.0)
        assert (
            scc_a.decide(call, station, 0.0).accepted
            == scc_b.decide(call, station, 0.0).accepted
        )

    def test_stationary_calls_never_fail_reservations(self, station):
        scc = ShadowClusterController(SCCConfig(reservation_failure_probability=0.9))
        decision = scc.decide(make_call(ServiceClass.TEXT, speed=0.0), station, 0.0)
        assert decision.accepted

    def test_name_and_diagnostics(self, station):
        scc = ShadowClusterController()
        assert scc.name == "SCC"
        decision = scc.decide(make_call(), station, 0.0)
        assert "projected_peak_bu" in decision.diagnostics
        assert "required_reservations" in decision.diagnostics


class TestCompleteSharing:
    def test_accepts_anything_that_fits(self, station):
        controller = CompleteSharingController()
        assert controller.decide(make_call(ServiceClass.VIDEO), station, 0.0).accepted

    def test_rejects_when_full(self, station):
        controller = CompleteSharingController()
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=35))
        assert not controller.decide(make_call(ServiceClass.VIDEO), station, 0.0).accepted

    def test_score_reflects_remaining_headroom(self, station):
        controller = CompleteSharingController()
        empty_score = controller.decide(make_call(ServiceClass.TEXT), station, 0.0).score
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=30))
        loaded_score = controller.decide(make_call(ServiceClass.TEXT), station, 0.0).score
        assert empty_score > loaded_score


class TestGuardChannel:
    def test_new_calls_blocked_inside_guard_band(self, station):
        controller = GuardChannelController(GuardChannelConfig(guard_bu=10))
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=28))
        new_call = make_call(ServiceClass.VOICE, call_type=CallType.NEW)
        handoff_call = make_call(ServiceClass.VOICE, call_type=CallType.HANDOFF)
        assert not controller.decide(new_call, station, 0.0).accepted
        assert controller.decide(handoff_call, station, 0.0).accepted

    def test_both_accepted_below_threshold(self, station):
        controller = GuardChannelController(GuardChannelConfig(guard_bu=10))
        assert controller.decide(make_call(ServiceClass.VOICE), station, 0.0).accepted

    def test_handoff_rejected_only_when_no_room(self, station):
        controller = GuardChannelController()
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=38))
        handoff_call = make_call(ServiceClass.VOICE, call_type=CallType.HANDOFF)
        assert not controller.decide(handoff_call, station, 0.0).accepted

    def test_negative_guard_rejected(self):
        with pytest.raises(ValueError):
            GuardChannelConfig(guard_bu=-1)


class TestFractionalGuard:
    def test_admission_probability_profile(self):
        controller = FractionalGuardController(FractionalGuardConfig(25, 38))
        assert controller.admission_probability(10.0) == 1.0
        assert controller.admission_probability(38.0) == 0.0
        assert 0.0 < controller.admission_probability(30.0) < 1.0

    def test_handoffs_bypass_thinning(self, station):
        controller = FractionalGuardController(FractionalGuardConfig(1, 2))
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=30))
        handoff_call = make_call(ServiceClass.VOICE, call_type=CallType.HANDOFF)
        assert controller.decide(handoff_call, station, 0.0).accepted

    def test_new_calls_always_blocked_above_hard_threshold(self, station):
        controller = FractionalGuardController(FractionalGuardConfig(5, 10))
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=20))
        for _ in range(10):
            assert not controller.decide(make_call(ServiceClass.TEXT), station, 0.0).accepted

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FractionalGuardConfig(soft_threshold_bu=30, hard_threshold_bu=20)
        with pytest.raises(ValueError):
            FractionalGuardConfig(soft_threshold_bu=-1, hard_threshold_bu=20)


class TestThresholdPolicy:
    def test_wide_calls_cut_off_before_narrow_ones(self, station):
        controller = ThresholdPolicyController()
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=25))
        video = make_call(ServiceClass.VIDEO)
        text = make_call(ServiceClass.TEXT)
        assert not controller.decide(video, station, 0.0).accepted
        assert controller.decide(text, station, 0.0).accepted

    def test_handoffs_exempt_from_class_thresholds(self, station):
        controller = ThresholdPolicyController()
        station.allocate(make_call(ServiceClass.VIDEO, bandwidth=25))
        handoff_video = make_call(ServiceClass.VIDEO, call_type=CallType.HANDOFF)
        assert controller.decide(handoff_video, station, 0.0).accepted

    def test_custom_thresholds(self, station):
        config = ThresholdPolicyConfig({ServiceClass.TEXT: 2})
        controller = ThresholdPolicyController(config)
        station.allocate(make_call(ServiceClass.VOICE))
        assert not controller.decide(make_call(ServiceClass.TEXT), station, 0.0).accepted

    def test_unknown_class_threshold_raises(self, station):
        controller = ThresholdPolicyController(ThresholdPolicyConfig({ServiceClass.TEXT: 10}))
        with pytest.raises(KeyError):
            controller.decide(make_call(ServiceClass.VOICE), station, 0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ThresholdPolicyConfig({})
        with pytest.raises(ValueError):
            ThresholdPolicyConfig({ServiceClass.TEXT: -5})
