"""MetricsFrame property suite: bit-identity to the legacy aggregation
loops on random result sets, lossless codecs, concat/vocab semantics and
the shared-memory transport."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.frame import (
    FrameReducer,
    MetricsFrame,
    network_output_row,
    pack_frame,
    run_result_row,
    unpack_frame,
)
from repro.analysis.io import metrics_frame_from_dict, metrics_frame_to_dict
from repro.cellular.metrics import CallMetrics
from repro.simulation.engine import NetworkRunOutput
from repro.simulation.results import (
    RunResult,
    aggregate_network_runs,
    aggregate_runs,
)

# ----------------------------------------------------------------------
# Random result-set strategies
# ----------------------------------------------------------------------
_counts = st.integers(min_value=0, max_value=10_000)


@st.composite
def call_metrics(draw) -> CallMetrics:
    requested = draw(_counts)
    accepted = draw(st.integers(min_value=0, max_value=requested))
    dropped = draw(st.integers(min_value=0, max_value=accepted))
    handoffs = draw(st.integers(min_value=0, max_value=requested))
    return CallMetrics(
        requested=requested,
        accepted=accepted,
        blocked=requested - accepted,
        completed=accepted - dropped,
        dropped=dropped,
        handoff_requests=handoffs,
        handoff_accepted=draw(st.integers(min_value=0, max_value=handoffs)),
        accepted_bu=accepted * 2,
        requested_bu=requested * 2,
    )


_params = st.dictionaries(
    st.sampled_from(["request_count", "speed_kmh", "angle_deg", "distance_km"]),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    max_size=3,
)


@st.composite
def run_results(draw, controller: str = "FACS") -> RunResult:
    return RunResult(
        controller=controller,
        metrics=draw(call_metrics()),
        parameters=draw(_params),
        seed=draw(st.integers(min_value=0, max_value=2**40)),
    )


@st.composite
def network_outputs(draw, controller: str = "FACS") -> NetworkRunOutput:
    attempts = draw(st.integers(min_value=0, max_value=500))
    return NetworkRunOutput(
        result=draw(run_results(controller)),
        handoff_attempts=attempts,
        handoff_failures=draw(st.integers(min_value=0, max_value=attempts)),
        completed_calls=draw(_counts),
        dropped_calls=draw(_counts),
        time_average_occupancy_bu=draw(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
        ),
    )


class TestGroupReduceBitIdentity:
    """group_reduce must equal the legacy loops bit for bit — the
    acceptance gate of the columnar refactor."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(run_results(), min_size=1, max_size=12))
    def test_matches_aggregate_runs(self, runs):
        # One group: every run shares the controller, like one sweep point.
        frame = MetricsFrame.from_run_results(runs)
        (group,) = frame.group_reduce(("controller",))
        legacy = aggregate_runs(runs)
        view = group.to_aggregated_result()
        assert view.controller == legacy.controller
        assert view.replications == legacy.replications
        assert view.mean_acceptance_percentage == legacy.mean_acceptance_percentage
        assert view.std_acceptance_percentage == legacy.std_acceptance_percentage
        assert view.mean_blocking_probability == legacy.mean_blocking_probability
        assert view.mean_dropping_probability == legacy.mean_dropping_probability
        assert view.confidence_interval() == legacy.confidence_interval()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(network_outputs(), min_size=1, max_size=12))
    def test_matches_aggregate_network_runs(self, outputs):
        frame = MetricsFrame.from_network_outputs(outputs)
        (group,) = frame.group_reduce(("controller",))
        legacy = aggregate_network_runs(outputs)
        view = group.to_network_aggregated_result()
        assert view.mean_acceptance_percentage == legacy.mean_acceptance_percentage
        assert view.std_acceptance_percentage == legacy.std_acceptance_percentage
        assert view.mean_blocking_probability == legacy.mean_blocking_probability
        assert view.mean_dropping_probability == legacy.mean_dropping_probability
        assert view.mean_handoff_failure_ratio == legacy.mean_handoff_failure_ratio
        assert view.mean_handoff_attempts == legacy.mean_handoff_attempts
        assert view.mean_occupancy_bu == legacy.mean_occupancy_bu

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(run_results("FACS"), min_size=1, max_size=6),
        st.lists(run_results("SCC"), min_size=1, max_size=6),
    )
    def test_multi_group_reduction_matches_per_group_loops(self, facs, scc):
        frame = MetricsFrame.from_run_results(list(facs) + list(scc))
        groups = frame.group_reduce(("controller",))
        assert [group.controller for group in groups] == ["FACS", "SCC"]
        for group, runs in zip(groups, (facs, scc)):
            legacy = aggregate_runs(runs)
            view = group.to_aggregated_result()
            assert view.mean_acceptance_percentage == legacy.mean_acceptance_percentage
            assert view.std_acceptance_percentage == legacy.std_acceptance_percentage

    def test_mixed_controllers_in_one_group_rejected(self):
        runs = [
            RunResult("FACS", CallMetrics(1, 1, 0, 1, 0, 0, 0, 2, 2)),
            RunResult("SCC", CallMetrics(1, 0, 1, 0, 0, 0, 0, 0, 2)),
        ]
        frame = MetricsFrame.from_run_results(runs, labels=["same", "same"])
        with pytest.raises(ValueError, match="mix controllers"):
            frame.group_reduce(("label",))

    def test_groups_come_in_first_appearance_order(self):
        runs = [
            RunResult("B", CallMetrics(2, 1, 1, 1, 0, 0, 0, 2, 4)),
            RunResult("A", CallMetrics(2, 2, 0, 2, 0, 0, 0, 4, 4)),
            RunResult("B", CallMetrics(2, 0, 2, 0, 0, 0, 0, 0, 4)),
        ]
        frame = MetricsFrame.from_run_results(runs)
        groups = frame.group_reduce(("controller",))
        assert [group.controller for group in groups] == ["B", "A"]
        assert groups[0].row_indices == (0, 2)

    def test_network_view_requires_network_frame(self):
        frame = MetricsFrame.from_run_results(
            [RunResult("FACS", CallMetrics(1, 1, 0, 1, 0, 0, 0, 2, 2))]
        )
        (group,) = frame.group_reduce(("controller",))
        with pytest.raises(ValueError, match="network"):
            group.to_network_aggregated_result()


class TestRowViews:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(run_results(), min_size=1, max_size=8))
    def test_run_results_reconstruct_exactly(self, runs):
        frame = MetricsFrame.from_run_results(runs)
        assert frame.run_results() == [
            RunResult(r.controller, r.metrics, dict(r.parameters), r.seed)
            for r in runs
        ]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(network_outputs(), min_size=1, max_size=8))
    def test_network_outputs_reconstruct_exactly(self, outputs):
        frame = MetricsFrame.from_network_outputs(outputs)
        rebuilt = frame.network_outputs()
        for original, view in zip(outputs, rebuilt):
            assert view.result.metrics == original.result.metrics
            assert view.handoff_attempts == original.handoff_attempts
            assert view.handoff_failures == original.handoff_failures
            assert view.time_average_occupancy_bu == original.time_average_occupancy_bu


class TestCodecs:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(network_outputs(), min_size=1, max_size=8))
    def test_dict_codec_round_trips_losslessly(self, outputs):
        frame = MetricsFrame.from_network_outputs(outputs)
        payload = metrics_frame_to_dict(frame)
        assert payload["schema_version"] >= 2
        assert payload["type"] == "metrics-frame"
        restored = metrics_frame_from_dict(json.loads(json.dumps(payload)))
        assert restored == frame

    def test_nan_parameter_slots_round_trip(self):
        runs = [
            RunResult("FACS", CallMetrics(1, 1, 0, 1, 0, 0, 0, 2, 2), {"a": 1.5}),
            RunResult("FACS", CallMetrics(1, 0, 1, 0, 0, 0, 0, 0, 2), {"b": 2.5}),
        ]
        frame = MetricsFrame.from_run_results(runs)
        payload = metrics_frame_to_dict(frame)
        assert payload["columns"]["param.a"][1] is None  # NaN encodes as null
        restored = metrics_frame_from_dict(payload)
        assert restored == frame
        assert restored.row_parameters(0) == {"a": 1.5}
        assert restored.row_parameters(1) == {"b": 2.5}

    def test_wrong_type_tag_rejected(self):
        with pytest.raises(ValueError, match="metrics-frame"):
            metrics_frame_from_dict({"schema_version": 2, "type": "campaign"})

    @settings(max_examples=20, deadline=None)
    @given(st.lists(network_outputs(), min_size=1, max_size=6))
    def test_bytes_codec_round_trips(self, outputs):
        frame = MetricsFrame.from_network_outputs(outputs)
        meta, payload = frame.to_bytes()
        assert MetricsFrame.from_bytes(meta, payload) == frame

    def test_shared_memory_transport_round_trips(self):
        outputs = [
            NetworkRunOutput(
                result=RunResult("FACS", CallMetrics(5, 4, 1, 4, 0, 1, 1, 8, 10)),
                handoff_attempts=3,
                handoff_failures=1,
                completed_calls=4,
                dropped_calls=0,
                time_average_occupancy_bu=12.5,
            )
        ]
        frame = MetricsFrame.from_network_outputs(outputs)
        packed = pack_frame(frame)
        # The descriptor is small, picklable and free of dataclass trees.
        wire = pickle.dumps(packed)
        assert b"NetworkRunOutput" not in wire
        assert b"RunResult" not in wire
        restored = unpack_frame(packed)
        assert restored == frame
        if packed["transport"] == "shm":
            # The parent unlinked the segment; a second attach must fail.
            with pytest.raises((ValueError, FileNotFoundError)):
                unpack_frame(packed)

    def test_bytes_transport_fallback_round_trips(self):
        frame = MetricsFrame.from_run_results(
            [RunResult("FACS", CallMetrics(1, 1, 0, 1, 0, 0, 0, 2, 2))]
        )
        meta, payload = frame.to_bytes()
        packed = {"transport": "bytes", "meta": meta, "payload": payload}
        assert unpack_frame(packed) == frame


class TestConcatAndReducer:
    def test_concat_equals_single_fold(self):
        outputs = [
            NetworkRunOutput(
                result=RunResult(
                    "FACS" if i % 2 else "SCC",
                    CallMetrics(10 + i, 5 + i, 5, 5 + i, 0, 2, 1, 10, 20),
                    {"rate": float(i)},
                    seed=i,
                ),
                handoff_attempts=i,
                handoff_failures=0,
                completed_calls=5 + i,
                dropped_calls=0,
                time_average_occupancy_bu=float(i),
            )
            for i in range(10)
        ]
        rows = [network_output_row(output) for output in outputs]
        whole = MetricsFrame.from_rows("network", rows)
        reducer = FrameReducer("network")
        for split in (1, 3, 5):
            parts = [
                reducer.fold(rows[i : i + split]) for i in range(0, len(rows), split)
            ]
            assert reducer.merge(parts) == whole

    def test_concat_merges_disjoint_vocabularies_in_order(self):
        first = MetricsFrame.from_run_results(
            [RunResult("SCC", CallMetrics(1, 1, 0, 1, 0, 0, 0, 2, 2))]
        )
        second = MetricsFrame.from_run_results(
            [RunResult("FACS", CallMetrics(1, 0, 1, 0, 0, 0, 0, 0, 2))]
        )
        merged = MetricsFrame.concat([first, second])
        assert merged.controller_vocab == ("SCC", "FACS")
        assert merged.controllers() == ["SCC", "FACS"]

    def test_concat_unions_parameter_columns_with_nan(self):
        first = MetricsFrame.from_run_results(
            [RunResult("FACS", CallMetrics(1, 1, 0, 1, 0, 0, 0, 2, 2), {"a": 1.0})]
        )
        second = MetricsFrame.from_run_results(
            [RunResult("FACS", CallMetrics(1, 1, 0, 1, 0, 0, 0, 2, 2), {"b": 2.0})]
        )
        merged = MetricsFrame.concat([first, second])
        assert merged.param_names == ("a", "b")
        assert np.isnan(merged.column("a")[1])
        assert merged.row_parameters(1) == {"b": 2.0}

    def test_concat_rejects_mixed_kinds(self):
        batch = MetricsFrame.from_run_results(
            [RunResult("FACS", CallMetrics(1, 1, 0, 1, 0, 0, 0, 2, 2))]
        )
        network = MetricsFrame.from_network_outputs(
            [
                NetworkRunOutput(
                    result=RunResult("FACS", CallMetrics(1, 1, 0, 1, 0, 0, 0, 2, 2)),
                    handoff_attempts=0,
                    handoff_failures=0,
                    completed_calls=1,
                    dropped_calls=0,
                    time_average_occupancy_bu=0.0,
                )
            ]
        )
        with pytest.raises(ValueError, match="mix kinds"):
            MetricsFrame.concat([batch, network])

    def test_empty_fold_produces_an_empty_frame(self):
        frame = FrameReducer("batch").fold([])
        assert len(frame) == 0
        assert frame.group_reduce(("controller",)) == []

    def test_row_builders_reject_kind_mismatch(self):
        run = RunResult("FACS", CallMetrics(1, 1, 0, 1, 0, 0, 0, 2, 2))
        with pytest.raises(ValueError, match="network-kind"):
            MetricsFrame.from_rows("network", [run_result_row(run)])

    def test_unknown_group_key_rejected(self):
        frame = MetricsFrame.from_run_results(
            [RunResult("FACS", CallMetrics(1, 1, 0, 1, 0, 0, 0, 2, 2))]
        )
        with pytest.raises(KeyError, match="unknown group key"):
            frame.group_reduce(("warp",))

    def test_ordinals_enable_positional_grouping(self):
        runs = [
            RunResult("FACS", CallMetrics(10, i, 10 - i, i, 0, 0, 0, 2 * i, 20))
            for i in (2, 4, 6, 8)
        ]
        frame = MetricsFrame.from_run_results(runs).with_ordinals(
            curve=[0, 0, 1, 1], point=[0, 0, 0, 0]
        )
        groups = frame.group_reduce(("curve", "point"))
        assert [group.replications for group in groups] == [2, 2]
        assert groups[0].key == (0, 0)
