"""Error paths of the serialization layer: versions, truncation, non-finite."""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.io import (
    SCHEMA_VERSION,
    PayloadVersionError,
    migrate_payload,
    versioned_payload,
)
from repro.api import RunReport, Scenario, ScenarioError, scenario_for


class TestMigratePayload:
    def test_missing_version_is_treated_as_v0(self):
        assert migrate_payload({"kind": "artifact"}, "scenario") == {"kind": "artifact"}

    def test_current_version_passes_through(self):
        payload = versioned_payload({"kind": "artifact"})
        assert payload["schema_version"] == SCHEMA_VERSION
        assert migrate_payload(payload, "scenario") == {"kind": "artifact"}

    def test_future_version_rejected(self):
        with pytest.raises(PayloadVersionError, match="schema_version 99"):
            migrate_payload({"schema_version": 99}, "scenario")

    def test_negative_version_rejected(self):
        with pytest.raises(PayloadVersionError, match="schema_version -1"):
            migrate_payload({"schema_version": -1}, "scenario")

    def test_non_integer_version_rejected(self):
        with pytest.raises(PayloadVersionError, match="must be an integer"):
            migrate_payload({"schema_version": "1"}, "scenario")
        with pytest.raises(PayloadVersionError, match="must be an integer"):
            migrate_payload({"schema_version": True}, "scenario")

    def test_error_names_the_payload(self):
        with pytest.raises(PayloadVersionError, match="campaign report"):
            migrate_payload({"schema_version": 42}, "campaign report")


class TestScenarioVersioning:
    def test_scenario_payloads_are_stamped(self):
        assert scenario_for("table1-frb1").to_dict()["schema_version"] == SCHEMA_VERSION

    def test_v0_scenario_payload_still_decodes(self):
        payload = scenario_for("net-sweep").to_dict()
        payload.pop("schema_version")
        assert Scenario.from_dict(payload) == scenario_for("net-sweep")

    def test_unknown_scenario_version_rejected(self):
        with pytest.raises(ScenarioError, match="schema_version 99"):
            Scenario.from_dict({"schema_version": 99, "kind": "artifact"})

    def test_schema_version_is_not_an_unknown_field(self):
        # The version key must be consumed by migration, never reported as
        # an unknown scenario field.
        payload = {"schema_version": 1, "kind": "artifact", "artifact": "table1-frb1"}
        assert Scenario.from_dict(payload) == scenario_for("table1-frb1")


class TestRunReportErrorPaths:
    def test_truncated_json_rejected_with_path(self, tmp_path):
        path = tmp_path / "truncated.json"
        path.write_text('{"scenario": {"kind": "artifact"')
        with pytest.raises(ScenarioError, match="not valid JSON"):
            RunReport.load(path)

    def test_unknown_report_version_rejected(self, tmp_path):
        report = RunReport(scenario=scenario_for("table1-frb1"), text="x")
        payload = report.to_dict()
        payload["schema_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ScenarioError, match="schema_version 99"):
            RunReport.load(path)

    def test_v0_report_payload_still_loads(self, tmp_path):
        report = RunReport(scenario=scenario_for("table1-frb1"), text="artifact")
        payload = report.to_dict()
        payload.pop("schema_version")
        payload["scenario"].pop("schema_version")
        path = tmp_path / "v0.json"
        path.write_text(json.dumps(payload))
        restored = RunReport.load(path)
        assert restored.scenario == report.scenario
        assert restored.text == report.text

    def test_non_finite_metrics_round_trip(self, tmp_path):
        report = RunReport(
            scenario=scenario_for("table1-frb1"),
            text="artifact",
            metrics={
                "nan_value": float("nan"),
                "pos_inf": float("inf"),
                "neg_inf": float("-inf"),
                "finite": 1.5,
            },
        )
        restored = RunReport.load(report.save(tmp_path))
        assert math.isnan(restored.metrics["nan_value"])
        assert restored.metrics["pos_inf"] == math.inf
        assert restored.metrics["neg_inf"] == -math.inf
        assert restored.metrics["finite"] == 1.5


class TestRunReportSaveCollisions:
    def test_default_scenario_keeps_the_plain_slug(self, tmp_path):
        report = RunReport(scenario=scenario_for("fig7-speed"), text="x")
        assert report.save(tmp_path) == tmp_path / "fig7-speed.json"

    def test_parameterized_scenarios_get_distinct_deterministic_names(self, tmp_path):
        quick = Scenario.from_dict(
            {"kind": "figure-sweep", "figure": "fig7-speed", "replications": 1}
        )
        thorough = Scenario.from_dict(
            {"kind": "figure-sweep", "figure": "fig7-speed", "replications": 2}
        )
        path_a = RunReport(scenario=quick, text="a").save(tmp_path)
        path_b = RunReport(scenario=thorough, text="b").save(tmp_path)
        assert path_a != path_b
        assert path_a.name.startswith("fig7-speed-")
        assert path_b.name.startswith("fig7-speed-")
        # Deterministic: the same scenario always maps to the same file.
        assert RunReport(scenario=quick, text="a2").save(tmp_path) == path_a

    def test_execution_backend_is_not_part_of_the_file_identity(self, tmp_path):
        # Results are backend-independent, so runs of one experiment map to
        # one file however they executed.
        serial = Scenario.from_dict(
            {"kind": "figure-sweep", "figure": "fig7-speed", "replications": 2}
        )
        pooled = Scenario.from_dict(
            {
                "kind": "figure-sweep",
                "figure": "fig7-speed",
                "replications": 2,
                "executor": "thread",
                "workers": 4,
            }
        )
        path = RunReport(scenario=serial, text="x").save(tmp_path)
        assert RunReport(scenario=pooled, text="x").save(tmp_path) == path
        # The default scenario keeps the plain slug even when run pooled.
        pooled_default = Scenario.from_dict(
            {"kind": "figure-sweep", "figure": "fig7-speed", "executor": "thread"}
        )
        report = RunReport(scenario=pooled_default, text="y")
        assert report.save(tmp_path) == tmp_path / "fig7-speed.json"

    def test_resave_of_same_scenario_overwrites(self, tmp_path):
        report = RunReport(scenario=scenario_for("table1-frb1"), text="first")
        path = report.save(tmp_path)
        updated = RunReport(scenario=scenario_for("table1-frb1"), text="second")
        assert updated.save(tmp_path) == path
        assert RunReport.load(path).text == "second"

    def test_save_refuses_to_clobber_foreign_files(self, tmp_path):
        target = tmp_path / "table1-frb1.json"
        target.write_text(json.dumps({"something": "else"}))
        report = RunReport(scenario=scenario_for("table1-frb1"), text="x")
        with pytest.raises(ScenarioError, match="refusing to overwrite"):
            report.save(tmp_path)
        assert json.loads(target.read_text()) == {"something": "else"}
