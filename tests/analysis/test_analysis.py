"""Tests for statistics helpers, ASCII tables/plots and CSV export."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.io import (
    network_sweep_result_from_dict,
    network_sweep_result_to_dict,
    read_result_json,
    read_sweep_csv,
    sweep_result_from_dict,
    sweep_result_to_dict,
    sweep_to_rows,
    write_result_json,
    write_sweep_csv,
)
from repro.analysis.plotting import ascii_line_plot, ascii_membership_plot
from repro.analysis.stats import paired_difference, summarize, t_confidence_interval
from repro.analysis.tables import format_curve_table, format_table
from repro.simulation.sweep import (
    NetworkSweepCurve,
    NetworkSweepPoint,
    NetworkSweepResult,
    SweepCurve,
    SweepPoint,
    SweepResult,
)


class TestStats:
    def test_summarize_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.count == 4
        assert summary.standard_error > 0.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_t_interval_contains_mean(self):
        values = [10.0, 12.0, 11.0, 13.0, 9.0]
        low, high = t_confidence_interval(values)
        mean = sum(values) / len(values)
        assert low < mean < high

    def test_t_interval_wider_for_higher_confidence(self):
        values = [10.0, 12.0, 11.0, 13.0, 9.0]
        narrow = t_confidence_interval(values, confidence=0.8)
        wide = t_confidence_interval(values, confidence=0.99)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_t_interval_degenerate_cases(self):
        assert t_confidence_interval([5.0]) == (5.0, 5.0)
        assert t_confidence_interval([5.0, 5.0, 5.0]) == (5.0, 5.0)
        with pytest.raises(ValueError):
            t_confidence_interval([1.0, 2.0], confidence=1.5)

    def test_paired_difference(self):
        facs = [95.0, 90.0, 85.0]
        scc = [90.0, 88.0, 80.0]
        mean_diff, (low, high) = paired_difference(facs, scc)
        assert mean_diff == pytest.approx(4.0)
        assert low <= mean_diff <= high

    def test_paired_difference_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_difference([1.0], [1.0, 2.0])

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=30))
    @settings(max_examples=50)
    def test_interval_is_symmetric_around_mean(self, values):
        low, high = t_confidence_interval(values)
        mean = sum(values) / len(values)
        assert (mean - low) == pytest.approx(high - mean, abs=1e-6)


class TestTables:
    def test_format_table_alignment_and_title(self):
        text = format_table(["Name", "Value"], [["alpha", 1.5], ["beta", 20]], title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "Name" in lines[1] and "Value" in lines[1]
        assert "alpha" in text and "1.50" in text

    def test_format_table_validation(self):
        with pytest.raises(ValueError):
            format_table([], [])
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_format_curve_table(self):
        text = format_curve_table("N", [10, 20], {"FACS": [99.0, 95.0], "SCC": [97.0, 96.0]})
        assert "FACS" in text and "SCC" in text
        assert "99.00" in text

    def test_format_curve_table_validation(self):
        with pytest.raises(ValueError):
            format_curve_table("N", [10], {})
        with pytest.raises(ValueError):
            format_curve_table("N", [10, 20], {"FACS": [1.0]})


class TestPlots:
    def test_line_plot_contains_legend_and_markers(self):
        text = ascii_line_plot(
            [0.0, 50.0, 100.0],
            {"FACS": [100.0, 90.0, 80.0], "SCC": [95.0, 92.0, 88.0]},
            title="Fig. 10",
        )
        assert "Fig. 10" in text
        assert "legend:" in text
        assert "o = FACS" in text and "x = SCC" in text

    def test_line_plot_validation(self):
        with pytest.raises(ValueError):
            ascii_line_plot([0.0, 1.0], {})
        with pytest.raises(ValueError):
            ascii_line_plot([0.0], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_line_plot([0.0, 1.0], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_line_plot([1.0, 1.0], {"a": [1.0, 2.0]})

    def test_flat_series_handled(self):
        text = ascii_line_plot([0.0, 1.0, 2.0], {"flat": [5.0, 5.0, 5.0]})
        assert "flat" in text

    def test_membership_plot(self):
        samples = {
            "low": [(0.0, 1.0), (5.0, 0.0), (10.0, 0.0)],
            "high": [(0.0, 0.0), (5.0, 0.0), (10.0, 1.0)],
        }
        text = ascii_membership_plot(samples, title="terms")
        assert "terms" in text and "membership" in text

    def test_membership_plot_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_membership_plot({})


def _sweep() -> SweepResult:
    points = tuple(
        SweepPoint(
            request_count=n,
            acceptance_percentage=100.0 - n / 2,
            std_percentage=1.0,
            replications=3,
        )
        for n in (10, 50, 100)
    )
    return SweepResult(
        name="demo-sweep",
        curves=(
            SweepCurve(label="FACS", controller="FACS", points=points),
            SweepCurve(label="SCC", controller="SCC", points=points),
        ),
    )


class TestCsvRoundtrip:
    def test_rows_structure(self):
        rows = sweep_to_rows(_sweep())
        assert len(rows) == 6
        assert rows[0]["curve"] == "FACS"
        assert rows[0]["request_count"] == 10

    def test_write_and_read_roundtrip(self, tmp_path):
        sweep = _sweep()
        path = write_sweep_csv(sweep, tmp_path / "out" / "sweep.csv")
        assert path.exists()
        loaded = read_sweep_csv(path)
        assert loaded.name == sweep.name
        assert loaded.labels() == sweep.labels()
        original = sweep.curve("FACS").acceptance_series()
        restored = loaded.curve("FACS").acceptance_series()
        assert restored == pytest.approx(original)

    def test_read_missing_columns_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            read_sweep_csv(bad)

    def test_read_empty_csv_rejected(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text(
            "sweep,curve,controller,request_count,acceptance_percentage,"
            "std_percentage,replications\n"
        )
        with pytest.raises(ValueError):
            read_sweep_csv(empty)


def _network_sweep() -> NetworkSweepResult:
    points = tuple(
        NetworkSweepPoint(
            arrival_rate_per_cell_per_s=rate,
            acceptance_percentage=90.0 - 100 * rate,
            std_percentage=0.5,
            blocking_probability=rate,
            dropping_probability=rate / 2,
            handoff_failure_ratio=rate / 4,
            mean_occupancy_bu=20.0 + rate,
            replications=2,
        )
        for rate in (0.02, 0.04)
    )
    return NetworkSweepResult(
        name="demo-network-sweep",
        curves=(
            NetworkSweepCurve(label="FACS", controller="FACS", points=points),
            NetworkSweepCurve(label="CS", controller="CS", points=points),
        ),
    )


class TestJsonCodecs:
    def test_sweep_dict_round_trip_is_lossless(self):
        sweep = _sweep()
        restored = sweep_result_from_dict(sweep_result_to_dict(sweep))
        assert restored == sweep

    def test_network_sweep_dict_round_trip_is_lossless(self):
        result = _network_sweep()
        restored = network_sweep_result_from_dict(network_sweep_result_to_dict(result))
        assert restored == result

    def test_type_discriminators_are_checked(self):
        with pytest.raises(ValueError, match="expected"):
            sweep_result_from_dict(network_sweep_result_to_dict(_network_sweep()))
        with pytest.raises(ValueError, match="expected"):
            network_sweep_result_from_dict(sweep_result_to_dict(_sweep()))

    def test_write_read_json_round_trip_both_families(self, tmp_path):
        sweep_path = write_result_json(_sweep(), tmp_path / "sweep.json")
        network_path = write_result_json(_network_sweep(), tmp_path / "net.json")
        assert read_result_json(sweep_path) == _sweep()
        assert read_result_json(network_path) == _network_sweep()

    def test_write_rejects_foreign_objects(self, tmp_path):
        with pytest.raises(TypeError):
            write_result_json({"not": "a result"}, tmp_path / "x.json")

    def test_read_rejects_unknown_payload_type(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text('{"type": "weird"}')
        with pytest.raises(ValueError, match="unknown result payload"):
            read_result_json(path)
