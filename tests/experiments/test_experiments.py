"""Tests of the experiments layer: registry, table/membership rendering and
small-scale versions of the figure reproductions.

The full-size figure sweeps live in ``benchmarks/``; here they are run with
few replications and few request counts so the *shape* assertions stay fast
enough for the unit-test suite.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    EXPERIMENTS,
    baseline_ablation,
    crossover_request_count,
    curve_spread,
    defuzzifier_ablation,
    experiment,
    experiment_ids,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
    render_flc1_memberships,
    render_flc2_memberships,
    render_frb1,
    render_frb2,
    reproduce_figure7,
    reproduce_figure8,
    reproduce_figure9,
    reproduce_figure10,
    threshold_ablation,
)

# Small but statistically meaningful settings for unit-level shape checks.
QUICK_POINTS = (20, 100)
QUICK_REPS = 4


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        for required in (
            "table1-frb1",
            "table2-frb2",
            "fig5-flc1-mf",
            "fig6-flc2-mf",
            "fig7-speed",
            "fig8-angle",
            "fig9-distance",
            "fig10-facs-vs-scc",
        ):
            assert required in ids

    def test_every_spec_names_a_bench(self):
        for spec in EXPERIMENTS:
            assert spec.bench_target.startswith("benchmarks/")
            assert spec.runner.startswith("repro.experiments.")

    def test_lookup(self):
        assert experiment("fig7-speed").paper_artifact == "Figure 7"
        with pytest.raises(KeyError):
            experiment("fig99")


class TestTableRendering:
    def test_frb1_rendering_contains_all_rules(self):
        text = render_frb1()
        assert "Table 1" in text
        # 42 rule rows + header + separator + title
        assert len(text.splitlines()) == 45
        assert "Cv9" in text

    def test_frb2_rendering_contains_all_rules(self):
        text = render_frb2()
        assert "Table 2" in text
        assert len(text.splitlines()) == 30
        assert "NRNA" in text

    def test_flc1_membership_rendering(self):
        text = render_flc1_memberships(points=15)
        for label in ("Fig. 5(a)", "Fig. 5(b)", "Fig. 5(c)", "Fig. 5(d)"):
            assert label in text

    def test_flc2_membership_rendering(self):
        text = render_flc2_memberships(points=15)
        for label in ("Fig. 6(a)", "Fig. 6(b)", "Fig. 6(c)", "Fig. 6(d)"):
            assert label in text


@pytest.fixture(scope="module")
def fig7_sweep():
    return reproduce_figure7(
        speeds_kmh=(4.0, 60.0), request_counts=QUICK_POINTS, replications=QUICK_REPS
    )


@pytest.fixture(scope="module")
def fig10_sweep():
    return reproduce_figure10(request_counts=QUICK_POINTS, replications=QUICK_REPS)


class TestFigure7Shape:
    def test_acceptance_decreases_with_load(self, fig7_sweep):
        for curve in fig7_sweep.curves:
            series = curve.acceptance_series()
            assert series[0] >= series[-1]

    def test_fast_users_accepted_at_least_as_much_as_slow(self, fig7_sweep):
        slow = fig7_sweep.curve("4km/h").mean_acceptance()
        fast = fig7_sweep.curve("60km/h").mean_acceptance()
        assert fast >= slow

    def test_percentages_in_range(self, fig7_sweep):
        for curve in fig7_sweep.curves:
            for value in curve.acceptance_series():
                assert 0.0 <= value <= 100.0

    def test_render_produces_table_and_plot(self, fig7_sweep):
        text = render_figure7(fig7_sweep)
        assert "Figure 7" in text
        assert "legend:" in text


class TestFigure8Shape:
    def test_straight_heading_beats_perpendicular(self):
        sweep = reproduce_figure8(
            angles_deg=(0.0, 90.0), request_counts=QUICK_POINTS, replications=QUICK_REPS
        )
        straight = sweep.curve("Angle=0").mean_acceptance()
        perpendicular = sweep.curve("Angle=90").mean_acceptance()
        assert straight > perpendicular
        assert sweep.curve("Angle=0").acceptance_series()[0] > 95.0
        assert "Figure 8" in render_figure8(sweep)


class TestFigure9Shape:
    def test_distance_effect_is_small_but_ordered(self):
        sweep = reproduce_figure9(
            distances_km=(1.0, 10.0), request_counts=QUICK_POINTS, replications=QUICK_REPS
        )
        near = sweep.curve("1km").mean_acceptance()
        far = sweep.curve("10km").mean_acceptance()
        assert near >= far - 1.0  # ordering holds up to small noise
        assert curve_spread(sweep) < 20.0
        assert "Figure 9" in render_figure9(sweep)


class TestFigure10Shape:
    def test_facs_above_scc_at_light_load(self, fig10_sweep):
        facs = fig10_sweep.curve("FACS").point_at(QUICK_POINTS[0]).acceptance_percentage
        scc = fig10_sweep.curve("SCC").point_at(QUICK_POINTS[0]).acceptance_percentage
        assert facs >= scc

    def test_scc_above_facs_at_heavy_load(self, fig10_sweep):
        facs = fig10_sweep.curve("FACS").point_at(QUICK_POINTS[-1]).acceptance_percentage
        scc = fig10_sweep.curve("SCC").point_at(QUICK_POINTS[-1]).acceptance_percentage
        assert scc > facs

    def test_render_reports_crossover(self, fig10_sweep):
        text = render_figure10(fig10_sweep)
        assert "Figure 10" in text and "crossover" in text

    def test_crossover_helper(self, fig10_sweep):
        crossover = crossover_request_count(fig10_sweep)
        assert crossover is None or crossover in QUICK_POINTS


class TestAblations:
    def test_defuzzifier_ablation_produces_all_methods(self):
        sweep = defuzzifier_ablation(
            methods=("centroid", "mom"), request_counts=(30,), replications=2
        )
        assert set(sweep.labels()) == {"centroid", "mom"}

    def test_threshold_ablation_monotone(self):
        sweep = threshold_ablation(thresholds=(-0.25, 0.5), request_counts=(60,), replications=3)
        lenient = sweep.curve("threshold=-0.25").mean_acceptance()
        strict = sweep.curve("threshold=+0.50").mean_acceptance()
        assert lenient >= strict

    def test_baseline_ablation_complete_sharing_accepts_most(self):
        sweep = baseline_ablation(request_counts=(80,), replications=3)
        cs = sweep.curve("CS").mean_acceptance()
        facs = sweep.curve("FACS").mean_acceptance()
        assert cs >= facs
