#!/usr/bin/env python3
"""Reproduce the Figure 7 experiment at example scale: speed sensitivity.

Runs the single-cell batch experiment for walking (4, 10 km/h) and vehicular
(30, 60 km/h) users and prints the acceptance-percentage curves plus an ASCII
plot — the same workload the full benchmark uses, with fewer replications so
it finishes in a few seconds.

Run with:  python examples/speed_sensitivity.py
"""

from __future__ import annotations

from repro.analysis import write_sweep_csv
from repro.experiments import render_figure7, reproduce_figure7


def main() -> None:
    sweep = reproduce_figure7(
        speeds_kmh=(4.0, 10.0, 30.0, 60.0),
        request_counts=(10, 30, 50, 70, 100),
        replications=5,
    )
    print(render_figure7(sweep))

    slow = sweep.curve("4km/h").mean_acceptance()
    fast = sweep.curve("60km/h").mean_acceptance()
    print(
        f"\nMean acceptance over the sweep: 4 km/h = {slow:.1f}%, 60 km/h = {fast:.1f}% "
        f"(fast users gain {fast - slow:+.1f} percentage points)"
    )

    path = write_sweep_csv(sweep, "results/fig7_speed.csv")
    print(f"Raw curve data written to {path}")


if __name__ == "__main__":
    main()
