#!/usr/bin/env python3
"""Build a custom fuzzy controller and plug it into the scenario API.

Part 1 uses the `repro.fuzzy` toolkit — a general Mamdani toolkit, the same
one the paper's FLCs are built from — to define a small handoff-decision
controller (signal strength + cell load -> handoff urgency) from scratch:
its own linguistic variables, a rule base written in the text DSL, and a
centroid defuzzifier.

Part 2 wraps it as an admission policy, registers it in the
``repro.api.CONTROLLERS`` registry, and runs a multi-cell sweep scenario
that references it *by name from plain JSON* — the extension point the
unified Scenario/Runner API exists for.

Run with:  python examples/custom_fuzzy_controller.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import format_curve_table
from repro.api import Runner, Scenario, register_controller
from repro.cac import AdmissionController, AdmissionDecision
from repro.cellular import Call
from repro.fuzzy import FuzzyController, LinguisticVariable, Term, Trapezoidal, Triangular

RULES = """
# Strong signal: stay unless the cell is overloaded.
IF signal is strong AND load is light THEN urgency is none
IF signal is strong AND load is moderate THEN urgency is low
IF signal is strong AND load is heavy THEN urgency is medium
# Fading signal: prepare to hand off.
IF signal is fading AND load is light THEN urgency is low
IF signal is fading AND load is moderate THEN urgency is medium
IF signal is fading AND load is heavy THEN urgency is high
# Weak signal: hand off almost regardless of load.
IF signal is weak AND load is light THEN urgency is high
IF signal is weak AND load is moderate THEN urgency is high
IF signal is weak AND load is heavy THEN urgency is critical
"""


def build_controller() -> FuzzyController:
    signal = LinguisticVariable(
        "signal",
        (-110.0, -50.0),  # dBm
        [
            Term("weak", Trapezoidal(-110.0, -110.0, -100.0, -85.0)),
            Term("fading", Triangular(-100.0, -85.0, -70.0)),
            Term("strong", Trapezoidal(-85.0, -70.0, -50.0, -50.0)),
        ],
    )
    load = LinguisticVariable(
        "load",
        (0.0, 1.0),
        [
            Term("light", Triangular(0.0, 0.0, 0.5)),
            Term("moderate", Triangular(0.0, 0.5, 1.0)),
            Term("heavy", Triangular(0.5, 1.0, 1.0)),
        ],
    )
    urgency = LinguisticVariable(
        "urgency",
        (0.0, 1.0),
        [
            Term("none", Triangular(0.0, 0.0, 0.25)),
            Term("low", Triangular(0.0, 0.25, 0.5)),
            Term("medium", Triangular(0.25, 0.5, 0.75)),
            Term("high", Triangular(0.5, 0.75, 1.0)),
            Term("critical", Triangular(0.75, 1.0, 1.0)),
        ],
    )
    return FuzzyController("handoff-urgency", [signal, load], [urgency], RULES)


class UrgencyAdmissionController(AdmissionController):
    """Toy admission policy built on the custom fuzzy controller.

    Approximates the requesting user's signal from their distance to the BS
    (path loss), reads the cell load off the counter state, and rejects new
    calls whose predicted handoff urgency is already high — a crude cousin
    of what FLC1+FLC2 do with trajectory information.
    """

    name = "Urgency"

    def __init__(self, threshold: float = 0.45):
        self._fuzzy = build_controller()
        self._threshold = threshold

    def decide(self, call: Call, station, now: float) -> AdmissionDecision:
        # Toy urban path loss: ~30 dB/km, so users near the cell edge look
        # weak and get held back before they turn into dropped handoffs.
        distance_km = call.user_state.distance_km if call.user_state else 1.0
        signal_dbm = max(-110.0, -50.0 - 30.0 * distance_km)
        urgency = self._fuzzy.compute(signal=signal_dbm, load=station.occupancy)
        fits = station.can_fit(call.bandwidth_units)
        accepted = fits and urgency <= self._threshold
        return AdmissionDecision(
            accepted=accepted,
            score=self._threshold - urgency,
            reason=f"predicted handoff urgency {urgency:.2f}",
            diagnostics={"urgency": urgency, "signal_dbm": signal_dbm},
        )


# A module-level dataclass factory keeps sweep tasks picklable, so the
# custom controller also works on the process-pool executor.
@dataclass(frozen=True)
class UrgencyControllerFactory:
    threshold: float = 0.45

    def __call__(self) -> AdmissionController:
        return UrgencyAdmissionController(self.threshold)


@register_controller("Urgency")
def _urgency_controller(engine: str = "compiled") -> UrgencyControllerFactory:
    return UrgencyControllerFactory()


def main() -> None:
    controller = build_controller()
    print(controller)
    print(
        f"Rule base: {len(controller.rule_base)} rules, "
        f"complete={controller.rule_base.is_complete()}\n"
    )

    signal_levels = [-105.0, -95.0, -85.0, -75.0, -60.0]
    series = {}
    for load in (0.2, 0.5, 0.9):
        series[f"load={load:.1f}"] = [
            controller.compute(signal=signal, load=load) for signal in signal_levels
        ]
    print(
        format_curve_table(
            "Signal (dBm)",
            signal_levels,
            series,
            title="Handoff urgency (0 = stay, 1 = hand off now)",
        )
    )

    result = controller.evaluate(signal=-92.0, load=0.85)
    dominant = result.dominant_rule()
    print(
        f"\nAt -92 dBm and 85% load the urgency is {result['urgency']:.2f}; "
        f"the dominant rule is: {dominant.rule}"
    )

    # Part 2: the registered name is now addressable from scenario JSON —
    # this dict could equally live in a file passed to
    # `python -m repro network-sweep --config <file>`.
    print("\nRunning a small multi-cell sweep with the custom controller...\n")
    scenario = Scenario.from_dict(
        {
            "kind": "network-sweep",
            "controllers": ["CS", "Urgency"],
            "arrival_rates": [0.05],
            "replications": 1,
            "duration_s": 200.0,
            "seed": 20070615,
        }
    )
    report = Runner().run(scenario)
    print(report.text)


if __name__ == "__main__":
    main()
