#!/usr/bin/env python3
"""Build a custom fuzzy controller with the toolkit the paper's FLCs use.

The `repro.fuzzy` package is a general Mamdani toolkit: this example defines a
small handoff-decision controller (signal strength + cell load -> handoff
urgency) from scratch — its own linguistic variables, a rule base written in
the text DSL, and a centroid defuzzifier — then sweeps its decision surface.

Run with:  python examples/custom_fuzzy_controller.py
"""

from __future__ import annotations

from repro.analysis import format_curve_table
from repro.fuzzy import FuzzyController, LinguisticVariable, Term, Trapezoidal, Triangular

RULES = """
# Strong signal: stay unless the cell is overloaded.
IF signal is strong AND load is light THEN urgency is none
IF signal is strong AND load is moderate THEN urgency is low
IF signal is strong AND load is heavy THEN urgency is medium
# Fading signal: prepare to hand off.
IF signal is fading AND load is light THEN urgency is low
IF signal is fading AND load is moderate THEN urgency is medium
IF signal is fading AND load is heavy THEN urgency is high
# Weak signal: hand off almost regardless of load.
IF signal is weak AND load is light THEN urgency is high
IF signal is weak AND load is moderate THEN urgency is high
IF signal is weak AND load is heavy THEN urgency is critical
"""


def build_controller() -> FuzzyController:
    signal = LinguisticVariable(
        "signal",
        (-110.0, -50.0),  # dBm
        [
            Term("weak", Trapezoidal(-110.0, -110.0, -100.0, -85.0)),
            Term("fading", Triangular(-100.0, -85.0, -70.0)),
            Term("strong", Trapezoidal(-85.0, -70.0, -50.0, -50.0)),
        ],
    )
    load = LinguisticVariable(
        "load",
        (0.0, 1.0),
        [
            Term("light", Triangular(0.0, 0.0, 0.5)),
            Term("moderate", Triangular(0.0, 0.5, 1.0)),
            Term("heavy", Triangular(0.5, 1.0, 1.0)),
        ],
    )
    urgency = LinguisticVariable(
        "urgency",
        (0.0, 1.0),
        [
            Term("none", Triangular(0.0, 0.0, 0.25)),
            Term("low", Triangular(0.0, 0.25, 0.5)),
            Term("medium", Triangular(0.25, 0.5, 0.75)),
            Term("high", Triangular(0.5, 0.75, 1.0)),
            Term("critical", Triangular(0.75, 1.0, 1.0)),
        ],
    )
    return FuzzyController("handoff-urgency", [signal, load], [urgency], RULES)


def main() -> None:
    controller = build_controller()
    print(controller)
    print(
        f"Rule base: {len(controller.rule_base)} rules, "
        f"complete={controller.rule_base.is_complete()}\n"
    )

    signal_levels = [-105.0, -95.0, -85.0, -75.0, -60.0]
    series = {}
    for load in (0.2, 0.5, 0.9):
        series[f"load={load:.1f}"] = [
            controller.compute(signal=signal, load=load) for signal in signal_levels
        ]
    print(
        format_curve_table(
            "Signal (dBm)",
            signal_levels,
            series,
            title="Handoff urgency (0 = stay, 1 = hand off now)",
        )
    )

    result = controller.evaluate(signal=-92.0, load=0.85)
    dominant = result.dominant_rule()
    print(
        f"\nAt -92 dBm and 85% load the urgency is {result['urgency']:.2f}; "
        f"the dominant rule is: {dominant.rule}"
    )


if __name__ == "__main__":
    main()
