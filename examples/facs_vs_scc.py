#!/usr/bin/env python3
"""Reproduce the Figure 10 comparison at example scale: FACS vs SCC.

Runs the same random workload through the paper's FACS controller and the
Shadow Cluster Concept baseline and reports where each wins — FACS accepts
more while bandwidth is plentiful, SCC accepts more once the cell saturates
because it does not grade the requesting user's trajectory.

Run with:  python examples/facs_vs_scc.py
"""

from __future__ import annotations

from repro.analysis import paired_difference
from repro.experiments import (
    crossover_request_count,
    render_figure10,
    reproduce_figure10,
)


def main() -> None:
    request_counts = (10, 30, 50, 70, 100)
    sweep = reproduce_figure10(request_counts=request_counts, replications=5)
    print(render_figure10(sweep))

    facs = sweep.curve("FACS").acceptance_series()
    scc = sweep.curve("SCC").acceptance_series()
    mean_diff, (low, high) = paired_difference(facs, scc)
    print(
        f"\nMean FACS-minus-SCC acceptance difference over the sweep: "
        f"{mean_diff:+.1f} points (95% CI [{low:+.1f}, {high:+.1f}])"
    )
    crossover = crossover_request_count(sweep)
    if crossover is None:
        print("The curves did not cross within this sweep.")
    else:
        print(
            f"SCC overtakes FACS at {crossover} requesting connections — beyond that "
            "point FACS deliberately holds back calls to protect ongoing-call QoS."
        )


if __name__ == "__main__":
    main()
