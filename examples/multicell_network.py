#!/usr/bin/env python3
"""Multi-cell integration run: mobility, handoffs and dropping.

Drives the full cellular substrate — a 7-cell hexagonal network, Poisson call
arrivals per cell, Gauss-Markov mobility and handoffs — under three admission
controllers (FACS, SCC, Complete Sharing) and compares blocking, dropping and
handoff failure.  This is the experiment behind the paper's claim that FACS
protects the QoS of ongoing calls.

The whole experiment is one declarative ``NetworkIntegrationScenario`` run
through the ``Runner`` facade: the returned ``RunReport`` carries the
rendered table, the per-controller numbers, and persists to ``results/`` as
a single self-describing JSON document.  (The imperative path —
``repro.simulation.run_network_experiment`` per controller — still works;
see the git history of this file.)

Run with:  python examples/multicell_network.py
"""

from __future__ import annotations

from repro.api import NetworkIntegrationScenario, Runner


def main() -> None:
    scenario = NetworkIntegrationScenario(
        controllers=("FACS", "SCC", "CS"),
        rings=1,
        cell_radius_km=1.5,
        arrival_rate_per_cell_per_s=0.03,
        duration_s=1200.0,
        mean_speed_kmh=60.0,
        seed=20070614,
    )
    report = Runner().run(scenario)
    print(report.text)

    # The machine-readable half of the report: one metrics dict per
    # controller, ready for plotting or regression checks.
    facs = report.metrics["controllers"]["FACS"]
    cs = report.metrics["controllers"]["CS"]
    print(
        f"\nFACS drops {facs['dropping_probability']:.3f} of admitted calls "
        f"vs {cs['dropping_probability']:.3f} under Complete Sharing."
    )
    print(
        "Complete Sharing admits the most calls but pays for it with dropped handoffs;\n"
        "FACS and SCC hold back some new calls to keep ongoing calls alive."
    )

    saved = report.save("results")
    print(f"\nReport (scenario + metrics + table) saved to {saved}")


if __name__ == "__main__":
    main()
