#!/usr/bin/env python3
"""Multi-cell integration run: mobility, handoffs and dropping.

Drives the full cellular substrate — a 7-cell hexagonal network, Poisson call
arrivals per cell, Gauss-Markov mobility and handoffs — under three admission
controllers (FACS, SCC, Complete Sharing) and compares blocking, dropping and
handoff failure.  This is the experiment behind the paper's claim that FACS
protects the QoS of ongoing calls.

Run with:  python examples/multicell_network.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.cac import CompleteSharingController
from repro.simulation import NetworkExperimentConfig, run_network_experiment
from repro.simulation.scenario import facs_factory, scc_factory


def main() -> None:
    config = NetworkExperimentConfig(
        rings=1,
        cell_radius_km=1.5,
        arrival_rate_per_cell_per_s=0.03,
        duration_s=1200.0,
        mean_speed_kmh=60.0,
        seed=20070614,
    )
    controllers = {
        "FACS": facs_factory(),
        "SCC": scc_factory(),
        "CS": CompleteSharingController,
    }

    rows = []
    for label, factory in controllers.items():
        output = run_network_experiment(config, factory)
        metrics = output.result.metrics
        rows.append(
            [
                label,
                metrics.requested,
                f"{metrics.acceptance_percentage:.1f}%",
                f"{metrics.blocking_probability:.3f}",
                f"{metrics.dropping_probability:.3f}",
                output.handoff_attempts,
                f"{output.handoff_failure_ratio:.3f}",
                f"{output.time_average_occupancy_bu:.1f}",
            ]
        )

    print(
        format_table(
            [
                "Controller",
                "Requests",
                "Accepted",
                "P(block)",
                "P(drop)",
                "Handoffs",
                "Handoff fail",
                "Avg BU in use",
            ],
            rows,
            title=(
                f"7-cell network, {config.duration_s:.0f}s of Poisson arrivals, "
                f"Gauss-Markov mobility"
            ),
        )
    )
    print(
        "\nComplete Sharing admits the most calls but pays for it with dropped handoffs;\n"
        "FACS and SCC hold back some new calls to keep ongoing calls alive."
    )


if __name__ == "__main__":
    main()
