#!/usr/bin/env python3
"""Quickstart: make admission decisions with the paper's FACS controller.

Builds the paper's FACS controller through the ``repro.api`` registry (the
same string key a scenario JSON would use), feeds it a few hand-picked
connection requests against a 40-BU base station, and prints the correction
value, the soft accept/reject score and the binding decision for each — the
smallest possible end-to-end use of the library.  The closing lines show
the declarative side of the same API: every paper experiment is a
serializable ``Scenario`` run through the ``Runner`` facade.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.api import controller_factory, scenario_for
from repro.cellular import BaseStation, Call, ServiceClass, UserState


def main() -> None:
    # controller_factory resolves the registered name into a factory of
    # fresh controller instances; FuzzyAdmissionControlSystem() directly
    # still works, but the registry key is what scenario JSON files use.
    facs = controller_factory("FACS")()
    station = BaseStation()  # 40 bandwidth units, as in the paper

    # Pre-load the cell with a few ongoing calls so the counter state matters.
    for _ in range(3):
        ongoing = Call(service=ServiceClass.VOICE, bandwidth_units=5)
        station.allocate(ongoing)
        facs.on_admitted(ongoing, station, now=0.0)
    print(
        f"Base station occupancy before new requests: "
        f"{station.used_bu}/{station.capacity_bu} BU\n"
    )

    requests = [
        ("pedestrian heading to BS", ServiceClass.VOICE, UserState(4.0, 0.0, 1.0)),
        ("pedestrian wandering", ServiceClass.VOICE, UserState(4.0, 90.0, 5.0)),
        ("car heading to BS", ServiceClass.VIDEO, UserState(60.0, 0.0, 2.0)),
        ("car driving away", ServiceClass.VIDEO, UserState(60.0, 170.0, 8.0)),
        ("text from a parked user", ServiceClass.TEXT, UserState(0.0, 0.0, 3.0)),
    ]

    rows = []
    for label, service, user in requests:
        call = Call(
            service=service,
            bandwidth_units={
                ServiceClass.TEXT: 1,
                ServiceClass.VOICE: 5,
                ServiceClass.VIDEO: 10,
            }[service],
            user_state=user,
        )
        decision = facs.decide(call, station, now=0.0)
        rows.append(
            [
                label,
                service.value,
                f"{user.speed_kmh:.0f} km/h",
                f"{user.angle_deg:+.0f} deg",
                f"{user.distance_km:.0f} km",
                f"{decision.diagnostics['correction_value']:.2f}",
                f"{decision.score:+.2f}",
                "ACCEPT" if decision.accepted else "reject",
            ]
        )

    print(
        format_table(
            ["Request", "Class", "Speed", "Angle", "Distance", "Cv", "A/R score", "Decision"],
            rows,
            title="FACS admission decisions (Cv from FLC1, A/R from FLC2)",
        )
    )
    print("\nRTC/NRTC counters:", facs.counters)

    # Every paper experiment is also a declarative scenario; this JSON is
    # all `Runner().run(Scenario.from_json(...))` needs to reproduce Fig. 10
    # (equivalently: `python -m repro run --config fig10.json`).
    print("\nFig. 10 as a serializable scenario:")
    print(scenario_for("fig10-facs-vs-scc").to_json())


if __name__ == "__main__":
    main()
