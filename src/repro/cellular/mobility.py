"""Mobile terminals and mobility models.

The FACS controller's FLC1 stage is fed GPS-style measurements of a mobile
terminal: its **speed** (km/h), its **heading angle relative to the bearing
towards the base station** (degrees, 0° = heading straight at the BS) and its
**distance** from the base station (km).  This module provides the mobile
terminal state, several mobility models (constant velocity, random waypoint,
Gauss–Markov) and the sampling helpers the batch experiments use to draw the
user populations of Figs. 7–9.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .geometry import Point, Vector, heading_between, normalize_angle, relative_angle

if TYPE_CHECKING:  # pragma: no cover
    from ..des.rng import RandomStream

__all__ = [
    "UserState",
    "MobileTerminal",
    "MobilityModel",
    "ConstantVelocityModel",
    "RandomWaypointModel",
    "GaussMarkovModel",
    "UserProfile",
    "UserPopulation",
    "PAPER_SPEED_RANGE_KMH",
    "PAPER_ANGLE_RANGE_DEG",
    "PAPER_DISTANCE_RANGE_KM",
]

#: Parameter ranges from Section 4 of the paper.
PAPER_SPEED_RANGE_KMH = (0.0, 120.0)
PAPER_ANGLE_RANGE_DEG = (-180.0, 180.0)
PAPER_DISTANCE_RANGE_KM = (0.0, 10.0)

_terminal_ids = itertools.count(1)


@dataclass(frozen=True)
class UserState:
    """The GPS-derived observation FLC1 consumes for one admission decision."""

    speed_kmh: float
    angle_deg: float
    distance_km: float

    def __post_init__(self) -> None:
        if self.speed_kmh < 0:
            raise ValueError(f"speed must be non-negative, got {self.speed_kmh}")
        if self.distance_km < 0:
            raise ValueError(f"distance must be non-negative, got {self.distance_km}")
        if not -180.0 <= self.angle_deg <= 180.0:
            raise ValueError(
                f"angle must lie in [-180, 180] degrees, got {self.angle_deg}"
            )

    def clamped(
        self,
        speed_range: tuple[float, float] = PAPER_SPEED_RANGE_KMH,
        distance_range: tuple[float, float] = PAPER_DISTANCE_RANGE_KM,
    ) -> "UserState":
        """Clamp speed and distance into the controller's universes."""
        return UserState(
            speed_kmh=min(max(self.speed_kmh, speed_range[0]), speed_range[1]),
            angle_deg=self.angle_deg,
            distance_km=min(max(self.distance_km, distance_range[0]), distance_range[1]),
        )


@dataclass
class UserProfile:
    """Sampling specification for one user attribute sweep.

    ``None`` fields are drawn uniformly from the paper's ranges; fixed fields
    reproduce the figure sweeps (e.g. Fig. 7 fixes speed and randomises angle
    and distance).
    """

    speed_kmh: float | None = None
    angle_deg: float | None = None
    distance_km: float | None = None
    speed_range: tuple[float, float] = PAPER_SPEED_RANGE_KMH
    angle_range: tuple[float, float] = PAPER_ANGLE_RANGE_DEG
    distance_range: tuple[float, float] = PAPER_DISTANCE_RANGE_KM

    def sample(self, rng: "RandomStream") -> UserState:
        """Draw a :class:`UserState` according to the profile."""
        speed = (
            self.speed_kmh
            if self.speed_kmh is not None
            else rng.uniform(*self.speed_range)
        )
        angle = (
            self.angle_deg
            if self.angle_deg is not None
            else rng.uniform(*self.angle_range)
        )
        distance = (
            self.distance_km
            if self.distance_km is not None
            else rng.uniform(*self.distance_range)
        )
        return UserState(speed_kmh=speed, angle_deg=angle, distance_km=distance)

    def sample_columns(
        self, rng: "RandomStream", count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``count`` user states as (speed, angle, distance) columns.

        Consumes the stream exactly like ``count`` calls of :meth:`sample`:
        only ``None`` fields draw — interleaved per user in speed → angle →
        distance order, one standard uniform each, mapped through the same
        ``low + (high - low) * u`` affine numpy's ``uniform`` applies — so
        the columnar trace builder stays bit-identical to the object path.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        specs = (
            (self.speed_kmh, self.speed_range),
            (self.angle_deg, self.angle_range),
            (self.distance_km, self.distance_range),
        )
        drawn = [index for index, (value, _) in enumerate(specs) if value is None]
        columns: list[np.ndarray | None] = [None, None, None]
        if drawn:
            uniforms = rng.random_batch(len(drawn) * count).reshape(count, len(drawn))
            for slot, index in enumerate(drawn):
                low, high = specs[index][1]
                columns[index] = low + (high - low) * uniforms[:, slot]
        for index, (value, _) in enumerate(specs):
            if value is not None:
                columns[index] = np.full(count, float(value))
        speed, angle, distance = columns
        return speed, angle, distance


class UserPopulation:
    """A reproducible generator of user states for batch experiments."""

    def __init__(self, profile: UserProfile, rng: "RandomStream"):
        self._profile = profile
        self._rng = rng

    def draw(self, count: int) -> list[UserState]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self._profile.sample(self._rng) for _ in range(count)]


class MobileTerminal:
    """A mobile terminal with planar position and velocity.

    The terminal does not know about cells; the network layer maps positions
    to serving cells and the handoff manager reacts to cell changes.
    """

    def __init__(
        self,
        position: Point,
        speed_kmh: float,
        heading_deg: float,
        terminal_id: int | None = None,
    ):
        if speed_kmh < 0:
            raise ValueError(f"speed must be non-negative, got {speed_kmh}")
        self.terminal_id = terminal_id if terminal_id is not None else next(_terminal_ids)
        self.position = position
        self.speed_kmh = speed_kmh
        self.heading_deg = normalize_angle(heading_deg)

    # ------------------------------------------------------------------
    @property
    def velocity(self) -> Vector:
        """Velocity vector in km/h."""
        return Vector.from_polar(self.speed_kmh, self.heading_deg)

    def advance(self, duration_s: float) -> Point:
        """Move the terminal along its heading for ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        displacement = self.velocity.scale(duration_s / 3600.0)
        self.position = self.position.translate(displacement)
        return self.position

    def observe(self, base_station_position: Point) -> UserState:
        """Produce the (speed, angle, distance) observation for FLC1.

        The angle is the user's heading *relative to the bearing towards the
        base station*: 0° means moving straight at the BS, ±180° means moving
        straight away — matching the paper's "Straight"/"Back" terms.
        """
        distance = self.position.distance_to(base_station_position)
        bearing = heading_between(self.position, base_station_position)
        angle = relative_angle(self.heading_deg, bearing)
        return UserState(speed_kmh=self.speed_kmh, angle_deg=angle, distance_km=distance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MobileTerminal(id={self.terminal_id}, pos=({self.position.x:.2f}, "
            f"{self.position.y:.2f}), v={self.speed_kmh:.1f}km/h @ {self.heading_deg:.0f}°)"
        )


class MobilityModel(ABC):
    """Strategy updating a terminal's speed and heading over time."""

    @abstractmethod
    def update(self, terminal: MobileTerminal, duration_s: float, rng: "RandomStream") -> None:
        """Advance the terminal by ``duration_s`` seconds, mutating its state."""


class ConstantVelocityModel(MobilityModel):
    """Straight-line motion at constant speed (the paper's implicit model).

    Faster users keep their heading — exactly the effect the paper leans on
    when explaining Fig. 7 ("with the increase of the user speed, the user
    direction can not be changed easy").
    """

    def update(self, terminal: MobileTerminal, duration_s: float, rng: "RandomStream") -> None:
        terminal.advance(duration_s)


class RandomWaypointModel(MobilityModel):
    """Random-waypoint mobility within a rectangular region.

    The terminal walks towards a random waypoint at a random speed, pauses,
    then picks the next waypoint.  Used by the multi-cell integration runs.
    """

    def __init__(
        self,
        region_km: tuple[float, float, float, float],
        speed_range_kmh: tuple[float, float] = (1.0, 120.0),
        pause_s: float = 0.0,
    ):
        x_min, y_min, x_max, y_max = region_km
        if x_min >= x_max or y_min >= y_max:
            raise ValueError(f"degenerate region: {region_km}")
        if speed_range_kmh[0] <= 0 or speed_range_kmh[0] > speed_range_kmh[1]:
            raise ValueError(f"invalid speed range: {speed_range_kmh}")
        if pause_s < 0:
            raise ValueError(f"pause must be non-negative, got {pause_s}")
        self.region = region_km
        self.speed_range_kmh = speed_range_kmh
        self.pause_s = pause_s
        self._waypoints: dict[int, Point] = {}
        self._pause_left: dict[int, float] = {}

    def _pick_waypoint(self, terminal: MobileTerminal, rng: "RandomStream") -> Point:
        x_min, y_min, x_max, y_max = self.region
        waypoint = Point(rng.uniform(x_min, x_max), rng.uniform(y_min, y_max))
        self._waypoints[terminal.terminal_id] = waypoint
        terminal.speed_kmh = rng.uniform(*self.speed_range_kmh)
        terminal.heading_deg = heading_between(terminal.position, waypoint)
        return waypoint

    def update(self, terminal: MobileTerminal, duration_s: float, rng: "RandomStream") -> None:
        remaining = duration_s
        while remaining > 1e-9:
            pause_left = self._pause_left.get(terminal.terminal_id, 0.0)
            if pause_left > 0:
                wait = min(pause_left, remaining)
                self._pause_left[terminal.terminal_id] = pause_left - wait
                remaining -= wait
                continue
            waypoint = self._waypoints.get(terminal.terminal_id)
            if waypoint is None:
                waypoint = self._pick_waypoint(terminal, rng)
            distance_left = terminal.position.distance_to(waypoint)
            speed_km_per_s = terminal.speed_kmh / 3600.0
            if speed_km_per_s <= 0:
                self._pick_waypoint(terminal, rng)
                continue
            time_to_waypoint = distance_left / speed_km_per_s
            if time_to_waypoint <= remaining:
                terminal.position = waypoint
                remaining -= time_to_waypoint
                self._waypoints.pop(terminal.terminal_id, None)
                self._pause_left[terminal.terminal_id] = self.pause_s
            else:
                terminal.advance(remaining)
                remaining = 0.0


class GaussMarkovModel(MobilityModel):
    """Gauss–Markov mobility: speed and heading drift with tunable memory.

    ``alpha`` close to 1 produces smooth, highly-correlated motion (vehicular
    users); ``alpha`` close to 0 produces erratic motion (pedestrians) — the
    distinction the paper draws between walking users (4/10 km/h) whose
    direction "can be changed easy" and fast users whose direction cannot.
    """

    def __init__(
        self,
        alpha: float = 0.85,
        mean_speed_kmh: float = 30.0,
        speed_std_kmh: float = 10.0,
        heading_std_deg: float = 30.0,
        update_interval_s: float = 10.0,
    ):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must lie in [0, 1], got {alpha}")
        if mean_speed_kmh < 0 or speed_std_kmh < 0 or heading_std_deg < 0:
            raise ValueError("speed/heading parameters must be non-negative")
        if update_interval_s <= 0:
            raise ValueError(f"update interval must be positive, got {update_interval_s}")
        self.alpha = alpha
        self.mean_speed_kmh = mean_speed_kmh
        self.speed_std_kmh = speed_std_kmh
        self.heading_std_deg = heading_std_deg
        self.update_interval_s = update_interval_s
        self._mean_heading: dict[int, float] = {}

    def update(self, terminal: MobileTerminal, duration_s: float, rng: "RandomStream") -> None:
        remaining = duration_s
        mean_heading = self._mean_heading.setdefault(terminal.terminal_id, terminal.heading_deg)
        sqrt_term = math.sqrt(max(1.0 - self.alpha**2, 0.0))
        while remaining > 1e-9:
            step = min(self.update_interval_s, remaining)
            terminal.advance(step)
            new_speed = (
                self.alpha * terminal.speed_kmh
                + (1.0 - self.alpha) * self.mean_speed_kmh
                + sqrt_term * rng.normal(0.0, self.speed_std_kmh)
            )
            new_heading = (
                self.alpha * terminal.heading_deg
                + (1.0 - self.alpha) * mean_heading
                + sqrt_term * rng.normal(0.0, self.heading_std_deg)
            )
            terminal.speed_kmh = max(new_speed, 0.0)
            terminal.heading_deg = normalize_angle(new_heading)
            remaining -= step
