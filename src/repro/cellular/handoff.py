"""Handoff detection and execution.

When a mobile terminal crosses a cell boundary, its active call must obtain
bandwidth in the new cell; failure drops the call.  The handoff manager is
deliberately controller-agnostic: it builds a handoff :class:`Call` request
and delegates the decision to whatever admission controller the simulation is
configured with, so FACS, SCC and the classic baselines are all exercised on
the same handoff stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .calls import Call, CallType
from .cell import Cell
from .mobility import MobileTerminal
from .network import CellularNetwork

if TYPE_CHECKING:  # pragma: no cover
    from ..cac.base import AdmissionController

__all__ = ["HandoffOutcome", "HandoffManager"]


@dataclass(frozen=True)
class HandoffOutcome:
    """Result of one handoff attempt."""

    call: Call
    source_cell: Cell
    target_cell: Cell
    accepted: bool
    time: float


class HandoffManager:
    """Detects cell-boundary crossings and executes handoffs."""

    def __init__(self, network: CellularNetwork, controller: "AdmissionController"):
        self._network = network
        self._controller = controller
        self._outcomes: list[HandoffOutcome] = []

    @property
    def outcomes(self) -> list[HandoffOutcome]:
        """Chronological list of handoff attempts and their results."""
        return list(self._outcomes)

    # ------------------------------------------------------------------
    def needs_handoff(self, call: Call, terminal: MobileTerminal) -> Cell | None:
        """Return the new serving cell if the terminal left its current cell.

        Returns ``None`` when no handoff is needed or the terminal moved out
        of coverage entirely (the caller decides whether that drops the call).
        """
        if call.serving_cell_id is None:
            raise ValueError(f"call {call.call_id} has no serving cell")
        new_cell = self._network.serving_cell(terminal.position)
        if new_cell is None:
            return None
        if new_cell.cell_id == call.serving_cell_id:
            return None
        return new_cell

    def attempt_handoff(
        self,
        call: Call,
        terminal: MobileTerminal,
        target_cell: Cell,
        now: float,
    ) -> HandoffOutcome:
        """Try to move an active call into ``target_cell``.

        On success the bandwidth is released in the old cell and allocated in
        the new one; on failure the call is dropped and its bandwidth in the
        old cell released.
        """
        source_cell = self._network.cell(call.serving_cell_id)  # type: ignore[arg-type]
        handoff_request = Call(
            service=call.service,
            bandwidth_units=call.bandwidth_units,
            call_type=CallType.HANDOFF,
            user_state=terminal.observe(target_cell.base_station.position),
            requested_at=now,
            holding_time_s=call.holding_time_s,
        )
        decision = self._controller.decide(handoff_request, target_cell.base_station, now)

        if decision.accepted:
            source_cell.base_station.release(call)
            target_cell.base_station.allocate(call)
            call.handoff(now, target_cell.cell_id)
            self._controller.on_admitted(handoff_request, target_cell.base_station, now)
            self._controller.on_released(call, source_cell.base_station, now)
            outcome = HandoffOutcome(call, source_cell, target_cell, True, now)
        else:
            source_cell.base_station.release(call)
            call.drop(now, reason=f"handoff to cell {target_cell.cell_id} denied")
            self._controller.on_released(call, source_cell.base_station, now)
            outcome = HandoffOutcome(call, source_cell, target_cell, False, now)

        self._outcomes.append(outcome)
        return outcome

    def handoff_acceptance_ratio(self) -> float:
        """Fraction of attempted handoffs that succeeded."""
        if not self._outcomes:
            return 1.0
        accepted = sum(1 for outcome in self._outcomes if outcome.accepted)
        return accepted / len(self._outcomes)
