"""Cells and base stations with bandwidth-unit accounting.

A :class:`BaseStation` owns a pool of Bandwidth Units (40 BU in the paper's
evaluation) and a ledger of per-call allocations split by real-time /
non-real-time service — the physical realisation of the paper's Counter
state (Cs), Real Time Counter (RTC) and Non Real Time Counter (NRTC).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .calls import Call
from .geometry import HexCoordinate, Point
from .traffic import PAPER_BANDWIDTH_UNITS

__all__ = ["BandwidthLedger", "BaseStation", "Cell"]

_cell_ids = itertools.count(1)


class InsufficientBandwidthError(RuntimeError):
    """Raised when an allocation is attempted beyond the base station capacity."""


@dataclass
class BandwidthLedger:
    """Tracks per-call bandwidth allocations against a fixed capacity."""

    capacity_bu: int
    _allocations: dict[int, int] = field(default_factory=dict)
    _real_time: dict[int, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_bu <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bu}")

    # ------------------------------------------------------------------
    @property
    def used_bu(self) -> int:
        """Total allocated bandwidth units."""
        return sum(self._allocations.values())

    @property
    def free_bu(self) -> int:
        return self.capacity_bu - self.used_bu

    @property
    def real_time_bu(self) -> int:
        """Bandwidth units allocated to real-time calls (the paper's RTC)."""
        return sum(
            amount
            for call_id, amount in self._allocations.items()
            if self._real_time[call_id]
        )

    @property
    def non_real_time_bu(self) -> int:
        """Bandwidth units allocated to non-real-time calls (the paper's NRTC)."""
        return self.used_bu - self.real_time_bu

    @property
    def occupancy(self) -> float:
        """Fraction of capacity in use, in [0, 1]."""
        return self.used_bu / self.capacity_bu

    @property
    def active_calls(self) -> int:
        return len(self._allocations)

    def allocation_for(self, call_id: int) -> int:
        """Bandwidth currently allocated to a call (0 if none)."""
        return self._allocations.get(call_id, 0)

    # ------------------------------------------------------------------
    def can_fit(self, bandwidth_units: int) -> bool:
        """True when the requested amount fits in the free capacity."""
        if bandwidth_units <= 0:
            raise ValueError(f"bandwidth_units must be positive, got {bandwidth_units}")
        return bandwidth_units <= self.free_bu

    def allocate(self, call: Call) -> None:
        """Reserve the call's bandwidth; raises if it does not fit or is duplicate."""
        if call.call_id in self._allocations:
            raise ValueError(f"call {call.call_id} already holds an allocation")
        if not self.can_fit(call.bandwidth_units):
            raise InsufficientBandwidthError(
                f"cannot allocate {call.bandwidth_units} BU: only {self.free_bu} of "
                f"{self.capacity_bu} BU free"
            )
        self._allocations[call.call_id] = call.bandwidth_units
        self._real_time[call.call_id] = call.is_real_time

    def release(self, call: Call) -> int:
        """Free the call's allocation, returning the amount released."""
        amount = self._allocations.pop(call.call_id, None)
        if amount is None:
            raise KeyError(f"call {call.call_id} holds no allocation")
        self._real_time.pop(call.call_id, None)
        return amount


class BaseStation:
    """A base station: a bandwidth ledger plus a position."""

    def __init__(
        self,
        position: Point = Point(0.0, 0.0),
        capacity_bu: int = PAPER_BANDWIDTH_UNITS,
        station_id: int | None = None,
    ):
        self.station_id = station_id if station_id is not None else next(_cell_ids)
        self.position = position
        self.ledger = BandwidthLedger(capacity_bu)

    # Convenience pass-throughs so admission controllers read naturally.
    @property
    def capacity_bu(self) -> int:
        return self.ledger.capacity_bu

    @property
    def used_bu(self) -> int:
        return self.ledger.used_bu

    @property
    def free_bu(self) -> int:
        return self.ledger.free_bu

    @property
    def occupancy(self) -> float:
        return self.ledger.occupancy

    def can_fit(self, bandwidth_units: int) -> bool:
        return self.ledger.can_fit(bandwidth_units)

    def allocate(self, call: Call) -> None:
        self.ledger.allocate(call)

    def release(self, call: Call) -> int:
        return self.ledger.release(call)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BaseStation(id={self.station_id}, used={self.used_bu}/{self.capacity_bu} BU)"
        )


class Cell:
    """A hexagonal cell served by one base station."""

    def __init__(
        self,
        coordinate: HexCoordinate,
        radius_km: float,
        capacity_bu: int = PAPER_BANDWIDTH_UNITS,
        cell_id: int | None = None,
    ):
        if radius_km <= 0:
            raise ValueError(f"cell radius must be positive, got {radius_km}")
        self.cell_id = cell_id if cell_id is not None else next(_cell_ids)
        self.coordinate = coordinate
        self.radius_km = radius_km
        self.center = coordinate.to_point(radius_km)
        self.base_station = BaseStation(
            position=self.center, capacity_bu=capacity_bu, station_id=self.cell_id
        )

    def contains(self, point: Point) -> bool:
        """True when a planar point falls inside this cell's hexagon."""
        return HexCoordinate.from_point(point, self.radius_km) == self.coordinate

    def distance_to(self, point: Point) -> float:
        """Distance from the cell centre (= base station) to a point, in km."""
        return self.center.distance_to(point)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cell(id={self.cell_id}, q={self.coordinate.q}, r={self.coordinate.r}, "
            f"used={self.base_station.used_bu}/{self.base_station.capacity_bu} BU)"
        )
