"""The multi-cell cellular network.

Builds a hexagonal layout of :class:`~repro.cellular.cell.Cell` objects,
maintains the neighbour graph (via ``networkx``) and maps mobile-terminal
positions to serving cells.  The Shadow Cluster Concept baseline also queries
the network for the cells along a mobile's projected trajectory.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import networkx as nx

from .cell import Cell
from .geometry import HexCoordinate, Point, Vector, hex_spiral
from .traffic import PAPER_BANDWIDTH_UNITS

__all__ = ["CellularNetwork", "hex_cell_count"]


def hex_cell_count(rings: int) -> int:
    """Number of cells of a hexagonal topology with ``rings`` rings.

    The closed form of ``len(hex_spiral(center, rings))`` — 1, 7, 19, ...
    — shared by everything that sizes work from a topology without
    building it (titles, per-cell sharding).
    """
    if rings < 0:
        raise ValueError(f"rings must be non-negative, got {rings}")
    return 3 * rings * (rings + 1) + 1


class CellularNetwork:
    """A hexagonal cellular network with a neighbour graph.

    Parameters
    ----------
    rings:
        Number of hexagon rings around the central cell (0 = single cell,
        1 = 7 cells, 2 = 19 cells).
    cell_radius_km:
        Hexagon circumradius in kilometres.
    capacity_bu:
        Bandwidth units per base station (paper default: 40).
    cell_capacities:
        Optional per-cell capacity override, one entry per cell in spiral
        (cell-id) order; ``None`` gives every cell ``capacity_bu``.
    """

    def __init__(
        self,
        rings: int = 2,
        cell_radius_km: float = 2.0,
        capacity_bu: int = PAPER_BANDWIDTH_UNITS,
        cell_capacities: Sequence[int] | None = None,
    ):
        if rings < 0:
            raise ValueError(f"rings must be non-negative, got {rings}")
        if cell_radius_km <= 0:
            raise ValueError(f"cell radius must be positive, got {cell_radius_km}")
        self.rings = rings
        self.cell_radius_km = cell_radius_km
        self.capacity_bu = capacity_bu

        center = HexCoordinate(0, 0)
        coordinates = hex_spiral(center, rings)
        if cell_capacities is not None and len(cell_capacities) != len(coordinates):
            raise ValueError(
                f"cell_capacities must list one capacity per cell "
                f"({len(coordinates)} for rings={rings}), got {len(cell_capacities)}"
            )
        self._cells: dict[HexCoordinate, Cell] = {}
        self._cells_by_id: dict[int, Cell] = {}
        for index, coordinate in enumerate(coordinates, start=1):
            cell = Cell(
                coordinate=coordinate,
                radius_km=cell_radius_km,
                capacity_bu=(
                    capacity_bu
                    if cell_capacities is None
                    else cell_capacities[index - 1]
                ),
                cell_id=index,
            )
            self._cells[coordinate] = cell
            self._cells_by_id[index] = cell

        self._graph = nx.Graph()
        self._graph.add_nodes_from(self._cells_by_id)
        for coordinate, cell in self._cells.items():
            for neighbor_coord in coordinate.neighbors():
                neighbor = self._cells.get(neighbor_coord)
                if neighbor is not None:
                    self._graph.add_edge(cell.cell_id, neighbor.cell_id)

    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        return len(self._cells)

    @property
    def cells(self) -> list[Cell]:
        return [self._cells_by_id[cid] for cid in sorted(self._cells_by_id)]

    @property
    def center_cell(self) -> Cell:
        return self._cells[HexCoordinate(0, 0)]

    @property
    def graph(self) -> nx.Graph:
        """The neighbour graph (node = cell id)."""
        return self._graph

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self._cells)

    def cell(self, cell_id: int) -> Cell:
        """Cell by identifier."""
        try:
            return self._cells_by_id[cell_id]
        except KeyError:
            raise KeyError(f"no cell with id {cell_id}") from None

    def cell_at(self, coordinate: HexCoordinate) -> Cell | None:
        """Cell at an axial coordinate, or ``None`` outside the layout."""
        return self._cells.get(coordinate)

    # ------------------------------------------------------------------
    def serving_cell(self, position: Point) -> Cell | None:
        """Cell containing a planar position, or ``None`` outside coverage."""
        coordinate = HexCoordinate.from_point(position, self.cell_radius_km)
        return self._cells.get(coordinate)

    def nearest_cell(self, position: Point) -> Cell:
        """Cell whose base station is closest to a position (never ``None``)."""
        return min(self.cells, key=lambda cell: cell.distance_to(position))

    def neighbors(self, cell_id: int) -> list[Cell]:
        """Adjacent cells of a cell."""
        if cell_id not in self._graph:
            raise KeyError(f"no cell with id {cell_id}")
        return [self._cells_by_id[nid] for nid in sorted(self._graph.neighbors(cell_id))]

    def are_neighbors(self, cell_a: int, cell_b: int) -> bool:
        return self._graph.has_edge(cell_a, cell_b)

    def hop_distance(self, cell_a: int, cell_b: int) -> int:
        """Number of cell-to-cell hops between two cells."""
        return int(nx.shortest_path_length(self._graph, source=cell_a, target=cell_b))

    # ------------------------------------------------------------------
    def cells_along_heading(
        self,
        start: Point,
        heading_deg: float,
        distance_km: float,
        step_km: float = 0.5,
    ) -> list[Cell]:
        """Cells crossed by a straight trajectory from ``start``.

        Samples the ray every ``step_km`` and collects the distinct serving
        cells in order of first crossing — the building block of the shadow
        cluster projection.
        """
        if distance_km < 0:
            raise ValueError(f"distance must be non-negative, got {distance_km}")
        if step_km <= 0:
            raise ValueError(f"step must be positive, got {step_km}")
        visited: list[Cell] = []
        seen: set[int] = set()
        steps = max(int(distance_km / step_km), 1)
        for i in range(steps + 1):
            offset = Vector.from_polar(min(i * step_km, distance_km), heading_deg)
            cell = self.serving_cell(start.translate(offset))
            if cell is not None and cell.cell_id not in seen:
                visited.append(cell)
                seen.add(cell.cell_id)
        return visited

    def total_used_bu(self) -> int:
        """Aggregate bandwidth in use across the whole network."""
        return sum(cell.base_station.used_bu for cell in self.cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CellularNetwork(cells={self.cell_count}, radius={self.cell_radius_km}km, "
            f"capacity={self.capacity_bu}BU)"
        )
