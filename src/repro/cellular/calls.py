"""Call records and lifecycle states.

A :class:`Call` represents one connection request and its subsequent life in
the network: it is requested, admitted or blocked, possibly handed off
between cells, and finally completes or is dropped.  The metrics layer
(:mod:`repro.cellular.metrics`) consumes these records to compute the
percentage-of-accepted-calls series of Figs. 7–10 and the blocking/dropping
probabilities of the integration experiments.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from .mobility import UserState
from .traffic import ServiceClass

__all__ = ["CallType", "CallState", "Call", "CallEvent"]

_call_ids = itertools.count(1)


class CallType(enum.Enum):
    """Origin of a connection request at a cell."""

    NEW = "new"
    HANDOFF = "handoff"


class CallState(enum.Enum):
    """Lifecycle of a call."""

    REQUESTED = "requested"
    ACTIVE = "active"
    BLOCKED = "blocked"
    COMPLETED = "completed"
    DROPPED = "dropped"


@dataclass(frozen=True)
class CallEvent:
    """One timestamped transition in a call's history."""

    time: float
    description: str
    cell_id: int | None = None


@dataclass
class Call:
    """A connection request and its lifecycle.

    Attributes
    ----------
    service:
        Service class (text / voice / video).
    bandwidth_units:
        Bandwidth demand in BU (1 / 5 / 10 for the paper's classes).
    call_type:
        Whether the request is a new call or an incoming handoff.
    user_state:
        GPS observation (speed, angle, distance) at request time.
    """

    service: ServiceClass
    bandwidth_units: int
    call_type: CallType = CallType.NEW
    user_state: UserState | None = None
    requested_at: float = 0.0
    holding_time_s: float = 0.0
    call_id: int = field(default_factory=lambda: next(_call_ids))
    state: CallState = CallState.REQUESTED
    serving_cell_id: int | None = None
    handoff_count: int = 0
    history: list[CallEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.bandwidth_units <= 0:
            raise ValueError(
                f"bandwidth_units must be positive, got {self.bandwidth_units}"
            )
        if self.holding_time_s < 0:
            raise ValueError(
                f"holding_time_s must be non-negative, got {self.holding_time_s}"
            )

    # ------------------------------------------------------------------
    @property
    def is_real_time(self) -> bool:
        return self.service.is_real_time

    @property
    def is_finished(self) -> bool:
        return self.state in (CallState.BLOCKED, CallState.COMPLETED, CallState.DROPPED)

    def record(self, time: float, description: str, cell_id: int | None = None) -> None:
        """Append an event to the call history."""
        self.history.append(CallEvent(time=time, description=description, cell_id=cell_id))

    # -- state transitions ----------------------------------------------
    def admit(self, time: float, cell_id: int) -> None:
        """Mark the call as admitted and active in a serving cell."""
        self._require_state(CallState.REQUESTED, "admit")
        self.state = CallState.ACTIVE
        self.serving_cell_id = cell_id
        self.record(time, "admitted", cell_id)

    def block(self, time: float, cell_id: int | None = None) -> None:
        """Mark the call as blocked (rejected at admission)."""
        self._require_state(CallState.REQUESTED, "block")
        self.state = CallState.BLOCKED
        self.record(time, "blocked", cell_id)

    def complete(self, time: float) -> None:
        """Mark the call as completed normally."""
        self._require_state(CallState.ACTIVE, "complete")
        self.state = CallState.COMPLETED
        self.record(time, "completed", self.serving_cell_id)

    def drop(self, time: float, reason: str = "handoff failure") -> None:
        """Mark the call as dropped mid-service."""
        self._require_state(CallState.ACTIVE, "drop")
        self.state = CallState.DROPPED
        self.record(time, f"dropped: {reason}", self.serving_cell_id)

    def handoff(self, time: float, new_cell_id: int) -> None:
        """Record a successful handoff to a new serving cell."""
        self._require_state(CallState.ACTIVE, "handoff")
        old = self.serving_cell_id
        self.serving_cell_id = new_cell_id
        self.handoff_count += 1
        self.record(time, f"handoff from cell {old}", new_cell_id)

    def _require_state(self, expected: CallState, action: str) -> None:
        if self.state is not expected:
            raise ValueError(
                f"cannot {action} call {self.call_id}: state is {self.state.value}, "
                f"expected {expected.value}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Call(id={self.call_id}, {self.service.value}, {self.bandwidth_units}BU, "
            f"{self.call_type.value}, state={self.state.value})"
        )
