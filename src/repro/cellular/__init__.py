"""Wireless cellular network substrate.

Hexagonal cell geometry, base stations with bandwidth-unit ledgers, mobile
terminals and mobility models, the paper's traffic classes, the call
lifecycle, handoff management and call-level metrics.
"""

from .geometry import (
    HexCoordinate,
    Point,
    Vector,
    heading_between,
    hex_ring,
    hex_spiral,
    normalize_angle,
    relative_angle,
)
from .cell import BandwidthLedger, BaseStation, Cell, InsufficientBandwidthError
from .network import CellularNetwork
from .mobility import (
    ConstantVelocityModel,
    GaussMarkovModel,
    MobileTerminal,
    MobilityModel,
    PAPER_ANGLE_RANGE_DEG,
    PAPER_DISTANCE_RANGE_KM,
    PAPER_SPEED_RANGE_KMH,
    RandomWaypointModel,
    UserPopulation,
    UserProfile,
    UserState,
)
from .traffic import (
    ArrivalProcess,
    HoldingTimeModel,
    PAPER_BANDWIDTH_UNITS,
    PAPER_TRAFFIC_MIX,
    ServiceClass,
    TrafficClassSpec,
    TrafficMix,
)
from .calls import Call, CallEvent, CallState, CallType
from .handoff import HandoffManager, HandoffOutcome
from .metrics import CallMetrics, MetricsCollector

__all__ = [
    "Point",
    "Vector",
    "HexCoordinate",
    "hex_ring",
    "hex_spiral",
    "heading_between",
    "normalize_angle",
    "relative_angle",
    "BandwidthLedger",
    "BaseStation",
    "Cell",
    "InsufficientBandwidthError",
    "CellularNetwork",
    "MobileTerminal",
    "MobilityModel",
    "ConstantVelocityModel",
    "RandomWaypointModel",
    "GaussMarkovModel",
    "UserState",
    "UserProfile",
    "UserPopulation",
    "PAPER_SPEED_RANGE_KMH",
    "PAPER_ANGLE_RANGE_DEG",
    "PAPER_DISTANCE_RANGE_KM",
    "ServiceClass",
    "TrafficClassSpec",
    "TrafficMix",
    "PAPER_TRAFFIC_MIX",
    "PAPER_BANDWIDTH_UNITS",
    "ArrivalProcess",
    "HoldingTimeModel",
    "Call",
    "CallEvent",
    "CallState",
    "CallType",
    "HandoffManager",
    "HandoffOutcome",
    "CallMetrics",
    "MetricsCollector",
]
