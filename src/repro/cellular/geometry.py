"""Planar geometry and hexagonal cell layout for the cellular substrate.

The paper's simulation uses users characterised by speed, heading angle and
distance from the base station; the multi-cell integration experiments
additionally need a cell layout.  We use the standard hexagonal tessellation
with axial coordinates, which gives every interior cell exactly six
neighbours — the geometry the Shadow Cluster Concept paper assumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Point", "Vector", "HexCoordinate", "hex_ring", "hex_spiral", "heading_between"]


@dataclass(frozen=True)
class Point:
    """A point in the plane (kilometres)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def translate(self, vector: "Vector") -> "Point":
        return Point(self.x + vector.dx, self.y + vector.dy)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True)
class Vector:
    """A displacement in the plane (kilometres)."""

    dx: float
    dy: float

    @classmethod
    def from_polar(cls, magnitude: float, angle_degrees: float) -> "Vector":
        """Build a vector from a magnitude and a compass-style heading.

        Headings follow the paper's convention: 0° points along the positive
        x axis (towards the base station for the single-cell experiments),
        positive angles rotate counter-clockwise, and the domain is
        ``[-180°, 180°]``.
        """
        radians = math.radians(angle_degrees)
        return cls(magnitude * math.cos(radians), magnitude * math.sin(radians))

    @property
    def magnitude(self) -> float:
        return math.hypot(self.dx, self.dy)

    @property
    def angle_degrees(self) -> float:
        """Heading of this vector in degrees, in ``(-180, 180]``."""
        return math.degrees(math.atan2(self.dy, self.dx))

    def scale(self, factor: float) -> "Vector":
        return Vector(self.dx * factor, self.dy * factor)

    def __add__(self, other: "Vector") -> "Vector":
        return Vector(self.dx + other.dx, self.dy + other.dy)


def heading_between(origin: Point, target: Point) -> float:
    """Heading (degrees, ``(-180, 180]``) from ``origin`` towards ``target``."""
    return Vector(target.x - origin.x, target.y - origin.y).angle_degrees


def normalize_angle(angle_degrees: float) -> float:
    """Wrap an angle into ``(-180, 180]`` degrees."""
    wrapped = math.fmod(angle_degrees + 180.0, 360.0)
    if wrapped < 0:
        wrapped += 360.0
    result = wrapped - 180.0
    # fmod maps +180 to -180; keep the paper's closed upper bound.
    if result == -180.0 and angle_degrees > 0:
        return 180.0
    return result


def relative_angle(heading: float, bearing_to_target: float) -> float:
    """Angle between a user's heading and the bearing towards a target.

    0° means the user is heading straight at the target (the paper's
    "Straight" term); ±180° means heading directly away ("Back").
    """
    return normalize_angle(heading - bearing_to_target)


@dataclass(frozen=True)
class HexCoordinate:
    """Axial (q, r) coordinates of a hexagonal cell."""

    q: int
    r: int

    @property
    def s(self) -> int:
        """Third cube coordinate (q + r + s == 0)."""
        return -self.q - self.r

    def neighbors(self) -> list["HexCoordinate"]:
        """The six adjacent hexagons."""
        return [
            HexCoordinate(self.q + dq, self.r + dr)
            for dq, dr in ((1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1))
        ]

    def distance_to(self, other: "HexCoordinate") -> int:
        """Hex-grid (cube) distance in cells."""
        return (
            abs(self.q - other.q)
            + abs(self.q + self.r - other.q - other.r)
            + abs(self.r - other.r)
        ) // 2

    def to_point(self, cell_radius_km: float) -> Point:
        """Centre of this hexagon for pointy-top hexes of the given radius."""
        x = cell_radius_km * math.sqrt(3.0) * (self.q + self.r / 2.0)
        y = cell_radius_km * 1.5 * self.r
        return Point(x, y)

    @staticmethod
    def from_point(point: Point, cell_radius_km: float) -> "HexCoordinate":
        """Hexagon containing a planar point (inverse of :meth:`to_point`)."""
        q = (math.sqrt(3.0) / 3.0 * point.x - point.y / 3.0) / cell_radius_km
        r = (2.0 / 3.0 * point.y) / cell_radius_km
        return _hex_round(q, r)


def _hex_round(q: float, r: float) -> HexCoordinate:
    s = -q - r
    rq, rr, rs = round(q), round(r), round(s)
    q_diff, r_diff, s_diff = abs(rq - q), abs(rr - r), abs(rs - s)
    if q_diff > r_diff and q_diff > s_diff:
        rq = -rr - rs
    elif r_diff > s_diff:
        rr = -rq - rs
    return HexCoordinate(int(rq), int(rr))


def hex_ring(center: HexCoordinate, radius: int) -> list[HexCoordinate]:
    """All hexagons at exactly ``radius`` cells from ``center``."""
    if radius < 0:
        raise ValueError(f"ring radius must be non-negative, got {radius}")
    if radius == 0:
        return [center]
    results: list[HexCoordinate] = []
    # Start radius steps in direction 4 (-1, 1) and walk around the ring.
    current = HexCoordinate(center.q - radius, center.r + radius)
    directions = ((1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1))
    for direction in range(6):
        for _ in range(radius):
            results.append(current)
            dq, dr = directions[direction]
            current = HexCoordinate(current.q + dq, current.r + dr)
    return results


def hex_spiral(center: HexCoordinate, max_radius: int) -> list[HexCoordinate]:
    """All hexagons within ``max_radius`` cells of ``center`` (spiral order).

    ``max_radius=1`` yields the classic 7-cell cluster, ``max_radius=2`` the
    19-cell layout used by the integration experiments.
    """
    if max_radius < 0:
        raise ValueError(f"spiral radius must be non-negative, got {max_radius}")
    cells = [center]
    for radius in range(1, max_radius + 1):
        cells.extend(hex_ring(center, radius))
    return cells
