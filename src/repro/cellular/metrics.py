"""Call-level performance metrics.

The paper's figures report the **percentage of accepted calls** as a function
of the number of requesting connections; the integration experiments
additionally need new-call blocking probability, handoff dropping
probability, bandwidth utilisation and the grade-of-service combination the
CAC literature uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Sequence

from ..analysis.stats import acceptance_percentage as _acceptance_percentage
from .calls import Call, CallState, CallType
from .traffic import ServiceClass

__all__ = ["CallMetrics", "MetricsCollector"]


@dataclass(frozen=True)
class CallMetrics:
    """Aggregated counters over a set of finished calls."""

    requested: int
    accepted: int
    blocked: int
    completed: int
    dropped: int
    handoff_requests: int
    handoff_accepted: int
    accepted_bu: int
    requested_bu: int

    #: Counter field names in declaration order — the fixed column schema the
    #: columnar result store (:mod:`repro.analysis.frame`) carries per run.
    COUNTER_FIELDS: ClassVar[tuple[str, ...]] = (
        "requested",
        "accepted",
        "blocked",
        "completed",
        "dropped",
        "handoff_requests",
        "handoff_accepted",
        "accepted_bu",
        "requested_bu",
    )

    def as_counters(self) -> tuple[int, ...]:
        """The counters as a plain tuple in :data:`COUNTER_FIELDS` order.

        Spelled out (not a getattr loop): this sits on the per-row hot
        path of the columnar result store.
        """
        return (
            self.requested,
            self.accepted,
            self.blocked,
            self.completed,
            self.dropped,
            self.handoff_requests,
            self.handoff_accepted,
            self.accepted_bu,
            self.requested_bu,
        )

    @classmethod
    def from_counters(cls, counters: Sequence[int]) -> "CallMetrics":
        """Rebuild a metrics record from an :meth:`as_counters` tuple."""
        if len(counters) != len(cls.COUNTER_FIELDS):
            raise ValueError(
                f"expected {len(cls.COUNTER_FIELDS)} counters "
                f"({', '.join(cls.COUNTER_FIELDS)}), got {len(counters)}"
            )
        return cls(*(int(value) for value in counters))

    # ------------------------------------------------------------------
    @property
    def acceptance_ratio(self) -> float:
        """Fraction of requests admitted (the paper's headline metric)."""
        if self.requested == 0:
            return 0.0
        return self.accepted / self.requested

    @property
    def acceptance_percentage(self) -> float:
        """Percentage of accepted calls, 0–100 (the y axis of Figs. 7–10).

        Delegates to the shared arithmetic spec in
        :func:`repro.analysis.stats.acceptance_percentage`.
        """
        return _acceptance_percentage(self.accepted, self.requested)

    @property
    def blocking_probability(self) -> float:
        """New-call blocking probability."""
        if self.requested == 0:
            return 0.0
        return self.blocked / self.requested

    @property
    def dropping_probability(self) -> float:
        """Probability that an admitted call is dropped before completion."""
        if self.accepted == 0:
            return 0.0
        return self.dropped / self.accepted

    @property
    def handoff_dropping_probability(self) -> float:
        """Probability a handoff request is denied."""
        if self.handoff_requests == 0:
            return 0.0
        return 1.0 - self.handoff_accepted / self.handoff_requests

    @property
    def bandwidth_acceptance_ratio(self) -> float:
        """Fraction of requested bandwidth units that were admitted."""
        if self.requested_bu == 0:
            return 0.0
        return self.accepted_bu / self.requested_bu

    def grade_of_service(self, dropping_penalty: float = 10.0) -> float:
        """Weighted QoS cost: blocking + penalty x dropping (lower is better).

        Users are "much more sensitive to call dropping than to call
        blocking" (Section 1), so dropping is weighted more heavily.
        """
        if dropping_penalty < 0:
            raise ValueError(f"dropping penalty must be non-negative, got {dropping_penalty}")
        return self.blocking_probability + dropping_penalty * self.dropping_probability


class MetricsCollector:
    """Accumulates per-call outcomes and produces :class:`CallMetrics`."""

    def __init__(self) -> None:
        self._requested = 0
        self._accepted = 0
        self._blocked = 0
        self._completed = 0
        self._dropped = 0
        self._handoff_requests = 0
        self._handoff_accepted = 0
        self._accepted_bu = 0
        self._requested_bu = 0
        self._by_service: dict[ServiceClass, dict[str, int]] = {}

    # ------------------------------------------------------------------
    def record_request(self, call: Call) -> None:
        """Record that a connection request arrived."""
        self._requested += 1
        self._requested_bu += call.bandwidth_units
        if call.call_type is CallType.HANDOFF:
            self._handoff_requests += 1
        bucket = self._service_bucket(call.service)
        bucket["requested"] += 1

    def record_decision(self, call: Call, accepted: bool) -> None:
        """Record the admission decision for a previously recorded request."""
        bucket = self._service_bucket(call.service)
        if accepted:
            self._accepted += 1
            self._accepted_bu += call.bandwidth_units
            bucket["accepted"] += 1
            if call.call_type is CallType.HANDOFF:
                self._handoff_accepted += 1
        else:
            self._blocked += 1
            bucket["blocked"] += 1

    def record_completion(self, call: Call) -> None:
        """Record the final fate of an admitted call."""
        bucket = self._service_bucket(call.service)
        if call.state is CallState.COMPLETED:
            self._completed += 1
            bucket["completed"] += 1
        elif call.state is CallState.DROPPED:
            self._dropped += 1
            bucket["dropped"] += 1
        else:
            raise ValueError(
                f"call {call.call_id} is not finished (state={call.state.value})"
            )

    def _service_bucket(self, service: ServiceClass) -> dict[str, int]:
        if service not in self._by_service:
            self._by_service[service] = {
                "requested": 0,
                "accepted": 0,
                "blocked": 0,
                "dropped": 0,
                "completed": 0,
            }
        return self._by_service[service]

    # ------------------------------------------------------------------
    def snapshot(self) -> CallMetrics:
        """Produce an immutable metrics record for the data collected so far."""
        return CallMetrics(
            requested=self._requested,
            accepted=self._accepted,
            blocked=self._blocked,
            completed=self._completed,
            dropped=self._dropped,
            handoff_requests=self._handoff_requests,
            handoff_accepted=self._handoff_accepted,
            accepted_bu=self._accepted_bu,
            requested_bu=self._requested_bu,
        )

    def per_service(self) -> dict[ServiceClass, dict[str, int]]:
        """Per-class request/accept/block/drop/complete counters."""
        return {service: dict(counts) for service, counts in self._by_service.items()}

    def class_counter_values(self, service_names: Sequence[str]) -> tuple[float, ...]:
        """Flattened per-class counters of the named services.

        Class-major order over (requested, accepted, blocked, dropped,
        completed) — the exact layout of
        :data:`repro.analysis.frame.CLASS_COUNTER_FIELDS`, so workload
        runs can hand the tuple straight to a frame row.  Services with
        no recorded calls report zeros.
        """
        values: list[float] = []
        empty = {"requested": 0, "accepted": 0, "blocked": 0, "dropped": 0, "completed": 0}
        for name in service_names:
            bucket = self._by_service.get(ServiceClass(name), empty)
            values.extend(
                float(bucket[counter])
                for counter in ("requested", "accepted", "blocked", "dropped", "completed")
            )
        return tuple(values)

    def acceptance_percentage_for(self, service: ServiceClass) -> float:
        """Acceptance percentage restricted to one service class."""
        bucket = self._by_service.get(service)
        if not bucket or bucket["requested"] == 0:
            return 0.0
        return 100.0 * bucket["accepted"] / bucket["requested"]
