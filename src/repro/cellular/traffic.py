"""Traffic classes, the paper's workload mix and arrival/holding processes.

The paper's simulation parameters (Section 4):

* three service classes — **text**, **voice**, **video**;
* class mix 60% text, 30% voice, 10% video;
* requested bandwidth 1, 5 and 10 Bandwidth Units (BU) respectively;
* base-station capacity 40 BU.

Text is non-real-time (queueable/delay-tolerant), voice and video are
real-time — this is the "Differentiated service" (Ds) distinction the FACS
system uses to route accepted calls to the RTC and NRTC counters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..des.rng import RandomStream

__all__ = [
    "ServiceClass",
    "TrafficClassSpec",
    "TrafficMix",
    "PAPER_TRAFFIC_MIX",
    "PAPER_BANDWIDTH_UNITS",
    "ArrivalProcess",
    "HoldingTimeModel",
]

#: Base-station capacity used throughout the paper's evaluation (Section 4).
PAPER_BANDWIDTH_UNITS = 40


class ServiceClass(enum.Enum):
    """The paper's three service classes, plus bulk data (workload studies).

    ``DATA`` is not part of the paper's mix — it exists for the
    :mod:`repro.workloads` multi-service presets (voice/data/video) and is
    non-real-time like ``TEXT``.
    """

    TEXT = "text"
    VOICE = "voice"
    VIDEO = "video"
    DATA = "data"

    @property
    def is_real_time(self) -> bool:
        """Voice and video are real-time; text is queueable (Section 1)."""
        return self in (ServiceClass.VOICE, ServiceClass.VIDEO)


@dataclass(frozen=True)
class TrafficClassSpec:
    """Static description of one service class."""

    service: ServiceClass
    bandwidth_units: int
    share: float
    mean_holding_time_s: float = 120.0

    def __post_init__(self) -> None:
        if self.bandwidth_units <= 0:
            raise ValueError(
                f"bandwidth_units must be positive, got {self.bandwidth_units}"
            )
        if not 0.0 <= self.share <= 1.0:
            raise ValueError(f"share must lie in [0, 1], got {self.share}")
        if self.mean_holding_time_s <= 0:
            raise ValueError(
                f"mean_holding_time_s must be positive, got {self.mean_holding_time_s}"
            )


class TrafficMix:
    """A probability mix over service classes with per-class bandwidth demands."""

    def __init__(self, classes: Mapping[ServiceClass, TrafficClassSpec]):
        if not classes:
            raise ValueError("traffic mix requires at least one class")
        total_share = sum(spec.share for spec in classes.values())
        if abs(total_share - 1.0) > 1e-9:
            raise ValueError(
                f"class shares must sum to 1, got {total_share:.6f} "
                f"({ {c.value: s.share for c, s in classes.items()} })"
            )
        for service, spec in classes.items():
            if spec.service is not service:
                raise ValueError(
                    f"mix key {service} does not match spec service {spec.service}"
                )
        self._classes = dict(classes)
        # Precomputed sampling tables: identical to what RandomStream.choice
        # derives per call (same order, same normalisation arithmetic), hoisted
        # out of the per-request hot loop.
        self._services: tuple[ServiceClass, ...] = tuple(self._classes)
        weights = np.asarray([self._classes[s].share for s in self._services], dtype=float)
        self._probabilities = weights / weights.sum()

    @property
    def classes(self) -> dict[ServiceClass, TrafficClassSpec]:
        return dict(self._classes)

    def spec(self, service: ServiceClass) -> TrafficClassSpec:
        try:
            return self._classes[service]
        except KeyError:
            raise KeyError(f"traffic mix has no class {service}") from None

    def bandwidth_for(self, service: ServiceClass) -> int:
        """Bandwidth demand in BU for a service class."""
        return self.spec(service).bandwidth_units

    def sample_class(self, rng: "RandomStream") -> ServiceClass:
        """Draw a service class according to the mix shares."""
        return self._services[rng.choice_index(self._probabilities)]

    # -- columnar sampling tables (trace pipeline) ---------------------
    @property
    def services(self) -> tuple[ServiceClass, ...]:
        """The class order behind :meth:`sample_class_codes` codes."""
        return self._services

    def sample_class_codes(self, rng: "RandomStream", count: int) -> np.ndarray:
        """``count`` class codes (indices into :attr:`services`); consumes the
        stream exactly like ``count`` calls of :meth:`sample_class`."""
        return rng.choice_indices(self._probabilities, count)

    def bandwidth_by_code(self) -> np.ndarray:
        """Per-code bandwidth demand (BU, int64), aligned with :attr:`services`."""
        return np.asarray(
            [self._classes[s].bandwidth_units for s in self._services], dtype=np.int64
        )

    def mean_holding_by_code(self) -> np.ndarray:
        """Per-code mean holding time (s, float64), aligned with :attr:`services`."""
        return np.asarray(
            [self._classes[s].mean_holding_time_s for s in self._services],
            dtype=np.float64,
        )

    def offered_load_bu(self) -> float:
        """Expected bandwidth demand of a single request in BU."""
        return sum(spec.share * spec.bandwidth_units for spec in self._classes.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{s.value}: {spec.share:.0%}/{spec.bandwidth_units}BU"
            for s, spec in self._classes.items()
        )
        return f"TrafficMix({parts})"


#: The workload of Section 4: 60% text (1 BU), 30% voice (5 BU), 10% video (10 BU).
PAPER_TRAFFIC_MIX = TrafficMix(
    {
        ServiceClass.TEXT: TrafficClassSpec(
            ServiceClass.TEXT, bandwidth_units=1, share=0.60, mean_holding_time_s=90.0
        ),
        ServiceClass.VOICE: TrafficClassSpec(
            ServiceClass.VOICE, bandwidth_units=5, share=0.30, mean_holding_time_s=120.0
        ),
        ServiceClass.VIDEO: TrafficClassSpec(
            ServiceClass.VIDEO, bandwidth_units=10, share=0.10, mean_holding_time_s=180.0
        ),
    }
)


class ArrivalProcess:
    """Poisson call-arrival process (exponential inter-arrival times)."""

    def __init__(self, rate_per_s: float, rng: "RandomStream"):
        if rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate_per_s}")
        self.rate_per_s = rate_per_s
        self._rng = rng

    def next_interarrival(self) -> float:
        """Time until the next call request (seconds)."""
        return self._rng.exponential(1.0 / self.rate_per_s)


class HoldingTimeModel:
    """Exponential call-holding-time model with per-class means."""

    def __init__(self, mix: TrafficMix, rng: "RandomStream"):
        self._mix = mix
        self._rng = rng

    def sample(self, service: ServiceClass) -> float:
        """Call duration in seconds for a service class."""
        return self._rng.exponential(self._mix.spec(service).mean_holding_time_s)
