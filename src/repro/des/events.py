"""Core event primitives for the discrete-event simulation kernel.

The kernel follows the familiar process-interaction style (as popularised by
SimPy): an :class:`Event` is something that will happen at a simulated time,
processes are generators that ``yield`` events, and callbacks run when an
event is *triggered* and later *processed* by the environment.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .environment import Environment

__all__ = ["EventState", "Event", "Timeout", "AllOf", "AnyOf", "Interruption", "StopProcess"]

_event_counter = itertools.count()


class EventState(enum.Enum):
    """Lifecycle of an event."""

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"


class Event:
    """A thing that may happen at some point in simulated time.

    Events carry a ``value`` (delivered to waiting processes), may ``succeed``
    or ``fail`` (failures propagate as exceptions into waiting processes) and
    accept callbacks executed when the event is processed.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: BaseException | None = None
        self._state = EventState.PENDING
        self._defused = False
        self.eid = next(_event_counter)

    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state is not EventState.PENDING

    @property
    def processed(self) -> bool:
        return self._state is EventState.PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise RuntimeError("event value is not available before the event triggers")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not escalate at teardown."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise RuntimeError(f"event {self!r} has already been triggered")
        self._value = value
        self._state = EventState.TRIGGERED
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if self.triggered:
            raise RuntimeError(f"event {self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception instance, got {exception!r}")
        self._exception = exception
        self._state = EventState.TRIGGERED
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(event._value)

    def _mark_processed(self) -> None:
        self._state = EventState.PROCESSED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} #{self.eid} {self._state.value}>"


class Timeout(Event):
    """An event that triggers automatically after a simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = EventState.TRIGGERED
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout #{self.eid} delay={self.delay}>"


class ConditionValue:
    """Mapping-like container of the values of the events a condition waited on."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> dict[Event, Any]:
        return {event: event._value for event in self.events}


class _Condition(Event):
    """Base class for AllOf / AnyOf composite events.

    A child event counts as *done* once it has been processed by the
    environment (its callbacks have run), not merely when it has been
    triggered — a freshly created :class:`Timeout` is triggered immediately
    but only happens at its scheduled time.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        if any(e.env is not env for e in self._events):
            raise ValueError("all events of a condition must belong to the same environment")
        if not self._events:
            self.succeed(ConditionValue())
            return
        for event in self._events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _children_done(self) -> bool:
        return all(e.processed for e in self._events)

    def _collect_value(self) -> ConditionValue:
        value = ConditionValue()
        value.events = [e for e in self._events if e.processed and e.ok]
        return value


class AllOf(_Condition):
    """Composite event that triggers when *all* child events have happened."""

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event._exception)  # type: ignore[arg-type]
            return
        if self._children_done():
            self.succeed(self._collect_value())


class AnyOf(_Condition):
    """Composite event that triggers when *any* child event has happened."""

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event._exception)  # type: ignore[arg-type]
            return
        self.succeed(self._collect_value())


class Interruption(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Internal signal used by ``Environment.exit`` style early returns."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value
