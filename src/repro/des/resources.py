"""Shared resources for simulation processes.

Two resource flavours are provided:

* :class:`Resource` — a counted resource with discrete slots and a FIFO (or
  priority) wait queue; requests are events that trigger once granted.
* :class:`Container` — a continuous/discrete *quantity* store (used to model
  a base station's pool of Bandwidth Units), supporting atomic ``get`` /
  ``put`` of arbitrary amounts with waiting semantics and a non-blocking
  ``try_get`` that admission controllers use for immediate decisions.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment

__all__ = [
    "Request",
    "Release",
    "Resource",
    "PriorityRequest",
    "PriorityResource",
    "Container",
    "ContainerGet",
    "ContainerPut",
]


class Request(Event):
    """A pending claim on a :class:`Resource`; usable as a context manager."""

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        self.resource._cancel(self)


class Release(Event):
    """Event produced by :meth:`Resource.release`; triggers immediately."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        self.succeed()


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = int(capacity)
        self._users: list[Request] = []
        self._waiting: Deque[Request] = deque()

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    # ------------------------------------------------------------------
    def request(self) -> Request:
        """Claim a slot; the returned event triggers when the claim is granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Return a previously granted slot and wake the next waiter."""
        if request in self._users:
            self._users.remove(request)
            self._grant_waiting()
        return Release(self, request)

    # -- internals ------------------------------------------------------
    def _request(self, request: Request) -> None:
        if len(self._users) < self._capacity:
            self._users.append(request)
            request.succeed()
        else:
            self._waiting.append(request)

    def _cancel(self, request: Request) -> None:
        if request in self._waiting:
            self._waiting.remove(request)

    def _grant_waiting(self) -> None:
        while self._waiting and len(self._users) < self._capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed()


class PriorityRequest(Request):
    """A resource request with a priority (lower value = more important)."""

    def __init__(self, resource: "PriorityResource", priority: int = 0):
        self.priority = priority
        self._order = resource._next_order()
        super().__init__(resource)


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by request priority.

    Used by the guard-channel-style baselines to prioritise handoff calls
    over new calls when both are waiting for bandwidth.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        super().__init__(env, capacity)
        self._counter = 0

    def _next_order(self) -> int:
        self._counter += 1
        return self._counter

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _request(self, request: Request) -> None:
        if len(self._users) < self._capacity:
            self._users.append(request)
            request.succeed()
        else:
            self._waiting.append(request)
            self._waiting = deque(
                sorted(
                    self._waiting,
                    key=lambda r: (getattr(r, "priority", 0), getattr(r, "_order", 0)),
                )
            )


class ContainerGet(Event):
    """Pending withdrawal of an amount from a :class:`Container`."""

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"get amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = float(amount)
        self.container = container
        container._do_get(self)


class ContainerPut(Event):
    """Pending deposit of an amount into a :class:`Container`."""

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"put amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = float(amount)
        self.container = container
        container._do_put(self)


class Container:
    """A homogeneous quantity store with bounded capacity.

    Models the base station's bandwidth pool: ``level`` is the amount
    currently available, ``capacity`` the maximum.  ``get``/``put`` return
    events that trigger once the amount can be withdrawn/deposited;
    ``try_get``/``try_put`` perform the operation immediately or not at all.
    """

    def __init__(self, env: "Environment", capacity: float, init: float | None = None):
        if capacity <= 0:
            raise ValueError(f"container capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = float(capacity)
        self._level = float(capacity if init is None else init)
        if not 0.0 <= self._level <= self._capacity:
            raise ValueError(
                f"initial level {self._level} outside [0, {self._capacity}]"
            )
        self._pending_gets: Deque[ContainerGet] = deque()
        self._pending_puts: Deque[ContainerPut] = deque()

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        """Amount currently available for withdrawal."""
        return self._level

    @property
    def used(self) -> float:
        """Amount currently withdrawn (capacity - level)."""
        return self._capacity - self._level

    # ------------------------------------------------------------------
    def get(self, amount: float) -> ContainerGet:
        """Withdraw ``amount`` once available (event triggers at that point)."""
        return ContainerGet(self, amount)

    def put(self, amount: float) -> ContainerPut:
        """Deposit ``amount`` once it fits (event triggers at that point)."""
        return ContainerPut(self, amount)

    def try_get(self, amount: float) -> bool:
        """Immediately withdraw ``amount`` if available; return success."""
        if amount <= 0:
            raise ValueError(f"get amount must be positive, got {amount}")
        if amount <= self._level + 1e-12:
            self._level -= amount
            self._level = max(self._level, 0.0)
            return True
        return False

    def try_put(self, amount: float) -> bool:
        """Immediately deposit ``amount`` if it fits; return success."""
        if amount <= 0:
            raise ValueError(f"put amount must be positive, got {amount}")
        if self._level + amount <= self._capacity + 1e-12:
            self._level = min(self._level + amount, self._capacity)
            self._trigger_gets()
            return True
        return False

    # -- internals ------------------------------------------------------
    def _do_get(self, event: ContainerGet) -> None:
        if event.amount > self._capacity:
            event.fail(
                ValueError(
                    f"requested amount {event.amount} exceeds container capacity {self._capacity}"
                )
            )
            return
        self._pending_gets.append(event)
        self._trigger_gets()

    def _do_put(self, event: ContainerPut) -> None:
        if event.amount > self._capacity:
            event.fail(
                ValueError(
                    f"deposit amount {event.amount} exceeds container capacity {self._capacity}"
                )
            )
            return
        self._pending_puts.append(event)
        self._trigger_puts()
        self._trigger_gets()

    def _trigger_gets(self) -> None:
        while self._pending_gets:
            head = self._pending_gets[0]
            if head.amount <= self._level + 1e-12:
                self._level = max(self._level - head.amount, 0.0)
                self._pending_gets.popleft()
                head.succeed()
                self._trigger_puts()
            else:
                break

    def _trigger_puts(self) -> None:
        while self._pending_puts:
            head = self._pending_puts[0]
            if self._level + head.amount <= self._capacity + 1e-12:
                self._level = min(self._level + head.amount, self._capacity)
                self._pending_puts.popleft()
                head.succeed()
            else:
                break
