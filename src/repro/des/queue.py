"""Future-event list for the simulation kernel.

A binary-heap calendar keyed by ``(time, priority, sequence)`` — the sequence
number guarantees FIFO ordering among events scheduled for the same time and
priority, which keeps simulations deterministic for a fixed RNG seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .events import Event

__all__ = ["EventQueue", "ScheduledItem", "EmptyQueueError", "Priority"]


class EmptyQueueError(RuntimeError):
    """Raised when popping from an empty future-event list."""


class Priority:
    """Scheduling priorities; lower values are processed first at equal times."""

    URGENT = 0
    NORMAL = 1
    LOW = 2


@dataclass(order=True)
class ScheduledItem:
    """A heap entry: event plus its scheduled time and tie-breaking keys."""

    time: float
    priority: int
    sequence: int
    event: "Event" = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """Min-heap of scheduled events ordered by (time, priority, insertion)."""

    def __init__(self) -> None:
        self._heap: list[ScheduledItem] = []
        self._sequence = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: "Event", time: float, priority: int = Priority.NORMAL) -> ScheduledItem:
        """Schedule ``event`` at absolute simulated ``time``."""
        item = ScheduledItem(
            time=time, priority=priority, sequence=next(self._sequence), event=event
        )
        heapq.heappush(self._heap, item)
        self._live += 1
        return item

    def pop(self) -> ScheduledItem:
        """Remove and return the earliest non-cancelled scheduled item."""
        while self._heap:
            item = heapq.heappop(self._heap)
            if item.cancelled:
                continue
            self._live -= 1
            return item
        raise EmptyQueueError("the future event list is empty")

    def peek_time(self) -> float:
        """Time of the next non-cancelled event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            raise EmptyQueueError("the future event list is empty")
        return self._heap[0].time

    def cancel(self, item: ScheduledItem) -> None:
        """Lazily cancel a scheduled item (skipped when popped)."""
        if not item.cancelled:
            item.cancelled = True
            self._live -= 1

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0
