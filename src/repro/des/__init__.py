"""A from-scratch discrete-event simulation kernel (replacement for SimPy).

Provides an environment with a future-event list, generator-based processes,
timeouts, composite events, counted resources, quantity containers, monitors
and reproducible named random streams — the substrate on which the cellular
network simulator (:mod:`repro.cellular`) and the experiment engine
(:mod:`repro.simulation`) are built.
"""

from .environment import Environment, SimulationError
from .events import AllOf, AnyOf, Event, EventState, Interruption, StopProcess, Timeout
from .monitor import Counter, MonitorRegistry, Tally, TimeWeightedValue
from .process import Process
from .queue import EmptyQueueError, EventQueue, Priority, ScheduledItem
from .resources import (
    Container,
    ContainerGet,
    ContainerPut,
    PriorityRequest,
    PriorityResource,
    Release,
    Request,
    Resource,
)
from .rng import RandomStream, StreamFactory

__all__ = [
    "Environment",
    "SimulationError",
    "Event",
    "EventState",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interruption",
    "StopProcess",
    "Process",
    "EventQueue",
    "ScheduledItem",
    "EmptyQueueError",
    "Priority",
    "Resource",
    "Request",
    "Release",
    "PriorityResource",
    "PriorityRequest",
    "Container",
    "ContainerGet",
    "ContainerPut",
    "Counter",
    "Tally",
    "TimeWeightedValue",
    "MonitorRegistry",
    "RandomStream",
    "StreamFactory",
]
