"""Generator-based simulation processes.

A process wraps a Python generator that yields :class:`~repro.des.events.Event`
objects; the environment resumes the generator with the event's value when it
triggers.  Processes are themselves events, so processes can wait for one
another, and they support interruption (used e.g. to cut short a call's
holding time when the call is dropped at handoff).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from .events import Event, Interruption, StopProcess

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment

__all__ = ["Process", "ProcessGenerator"]

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process.

    The process event triggers (with the generator's return value) when the
    generator finishes, or fails if the generator raises.
    """

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?"
            )
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # Bootstrap: resume the generator as soon as the environment starts.
        self._start_event = Event(env)
        self._start_event.callbacks.append(self._resume)
        self._start_event.succeed()

    # ------------------------------------------------------------------
    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting on (None when done)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interruption` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        interrupt_event = Event(self.env)
        interrupt_event._interrupt_cause = cause  # type: ignore[attr-defined]
        interrupt_event.callbacks.append(self._deliver_interrupt)
        interrupt_event.succeed(cause)

    def _deliver_interrupt(self, event: Event) -> None:
        if self.triggered:
            return  # the process finished before the interrupt was processed
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        self._step(Interruption(event._value), is_exception=True)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Callback invoked when the awaited event is processed."""
        self._target = None
        if event.ok:
            self._step(event._value, is_exception=False)
        else:
            event.defuse()
            self._step(event._exception, is_exception=True)

    def _step(self, value: Any, is_exception: bool) -> None:
        self.env._active_process = self
        try:
            if is_exception:
                next_event = self._generator.throw(value)
            else:
                next_event = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process failures become event failures
            self.fail(exc)
            return
        finally:
            self.env._active_process = None

        if not isinstance(next_event, Event):
            error = TypeError(
                f"process {self.name!r} yielded {next_event!r}, which is not an Event"
            )
            self.fail(error)
            return
        if next_event.env is not self.env:
            self.fail(
                ValueError(
                    f"process {self.name!r} yielded an event bound to a different environment"
                )
            )
            return
        self._target = next_event
        if next_event.processed:
            # The event already ran its callbacks; resume immediately via a
            # zero-delay event to preserve run-to-completion semantics.
            immediate = Event(self.env)
            immediate.callbacks.append(self._resume)
            immediate.succeed(next_event._value)
        else:
            next_event.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"
