"""Measurement utilities for simulations.

Provides counters, tallies (observation statistics) and time-weighted series
(state statistics such as "bandwidth units in use over time"), which the
metrics layer of the cellular simulator builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment

__all__ = ["Counter", "Tally", "TimeWeightedValue", "MonitorRegistry"]


@dataclass
class Counter:
    """A monotonically increasing named event counter."""

    name: str
    count: int = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self.count += amount

    def reset(self) -> None:
        self.count = 0


class Tally:
    """Running statistics over observed values (Welford's algorithm)."""

    def __init__(self, name: str):
        self.name = name
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError(f"tally {self.name!r} has no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError(f"tally {self.name!r} has no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError(f"tally {self.name!r} has no observations")
        return self._max

    def reset(self) -> None:
        self.__init__(self.name)  # type: ignore[misc]


class TimeWeightedValue:
    """Time-weighted statistics of a piecewise-constant state variable.

    Typical use: track the number of bandwidth units in use — the
    time-weighted mean is then the average occupancy of the base station.
    """

    def __init__(self, env: "Environment", name: str, initial: float = 0.0):
        self._env = env
        self.name = name
        self._value = float(initial)
        self._last_change = env.now
        self._weighted_sum = 0.0
        self._elapsed = 0.0
        self._min = float(initial)
        self._max = float(initial)
        self._history: list[tuple[float, float]] = [(env.now, float(initial))]

    @property
    def value(self) -> float:
        return self._value

    def update(self, new_value: float) -> None:
        """Record a state change at the current simulation time."""
        now = self._env.now
        duration = now - self._last_change
        if duration < 0:
            raise ValueError("simulation clock moved backwards")
        self._weighted_sum += self._value * duration
        self._elapsed += duration
        self._value = float(new_value)
        self._last_change = now
        self._min = min(self._min, self._value)
        self._max = max(self._max, self._value)
        self._history.append((now, self._value))

    def add(self, delta: float) -> None:
        """Convenience: update the value by a delta."""
        self.update(self._value + delta)

    @property
    def time_average(self) -> float:
        """Time-weighted mean up to the current simulation time."""
        now = self._env.now
        duration = now - self._last_change
        weighted = self._weighted_sum + self._value * duration
        elapsed = self._elapsed + duration
        if elapsed <= 0.0:
            return self._value
        return weighted / elapsed

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def maximum(self) -> float:
        return self._max

    @property
    def history(self) -> list[tuple[float, float]]:
        """List of ``(time, value)`` change points (including the initial value)."""
        return list(self._history)


class MonitorRegistry:
    """A named collection of counters, tallies and time-weighted values."""

    def __init__(self, env: "Environment"):
        self._env = env
        self._counters: dict[str, Counter] = {}
        self._tallies: dict[str, Tally] = {}
        self._time_weighted: dict[str, TimeWeightedValue] = {}

    def counter(self, name: str) -> Counter:
        """Return (creating on first use) the counter with the given name."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def tally(self, name: str) -> Tally:
        """Return (creating on first use) the tally with the given name."""
        if name not in self._tallies:
            self._tallies[name] = Tally(name)
        return self._tallies[name]

    def time_weighted(self, name: str, initial: float = 0.0) -> TimeWeightedValue:
        """Return (creating on first use) the time-weighted value with the given name."""
        if name not in self._time_weighted:
            self._time_weighted[name] = TimeWeightedValue(self._env, name, initial)
        return self._time_weighted[name]

    def snapshot(self) -> dict[str, float]:
        """Flat dictionary of all monitored quantities (for result records)."""
        data: dict[str, float] = {}
        for name, counter in self._counters.items():
            data[f"count.{name}"] = float(counter.count)
        for name, tally in self._tallies.items():
            if tally.count:
                data[f"mean.{name}"] = tally.mean
        for name, series in self._time_weighted.items():
            data[f"avg.{name}"] = series.time_average
        return data
