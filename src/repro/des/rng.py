"""Reproducible random-number streams for simulations.

Each logical source of randomness in a simulation (arrival times, holding
times, user speeds, ...) gets its own named substream derived from a master
seed, so changing the number of draws in one stream does not perturb the
others — the standard variance-reduction / reproducibility discipline for
simulation studies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["RandomStream", "StreamFactory"]


class RandomStream:
    """A named, seeded random stream with the distributions the simulator needs."""

    def __init__(self, name: str, seed: int):
        self.name = name
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    # -- uniform / choice ------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform draw on ``[low, high)``."""
        if high < low:
            raise ValueError(f"uniform bounds reversed: low={low}, high={high}")
        return float(self._rng.uniform(low, high))

    def integer(self, low: int, high: int) -> int:
        """Uniform integer on ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError(f"integer bounds reversed: low={low}, high={high}")
        return int(self._rng.integers(low, high + 1))

    def choice(self, options: Sequence, weights: Sequence[float] | None = None):
        """Draw one element, optionally with (unnormalised) weights."""
        if not len(options):
            raise ValueError("cannot choose from an empty sequence")
        if weights is None:
            index = int(self._rng.integers(0, len(options)))
            return options[index]
        weights_arr = np.asarray(weights, dtype=float)
        if len(weights_arr) != len(options):
            raise ValueError(
                f"weights length {len(weights_arr)} does not match options length {len(options)}"
            )
        if np.any(weights_arr < 0) or weights_arr.sum() <= 0:
            raise ValueError("weights must be non-negative and sum to a positive value")
        probabilities = weights_arr / weights_arr.sum()
        index = int(self._rng.choice(len(options), p=probabilities))
        return options[index]

    def choice_index(self, probabilities: np.ndarray) -> int:
        """Draw an index according to pre-normalised probabilities.

        The fast path of :meth:`choice` for hot loops: callers that already
        hold a normalised probability vector skip the per-call validation and
        normalisation.  Consumes the generator exactly like ``choice`` with
        weights, so the two are interchangeable draw for draw.
        """
        return int(self._rng.choice(len(probabilities), p=probabilities))

    # -- batch draws (bit-identical to the scalar loops) -------------------
    #
    # numpy's ``Generator`` fills sized draws element by element from the
    # same bit stream as the matching scalar calls, so each method below
    # consumes the generator exactly like ``count`` scalar calls — the
    # columnar trace builder leans on this to stay byte-identical to the
    # historical per-request draw loops.

    def uniform_batch(self, low: float, high: float, count: int) -> np.ndarray:
        """``count`` uniform draws on ``[low, high)``; same stream as
        ``count`` calls of :meth:`uniform`."""
        if high < low:
            raise ValueError(f"uniform bounds reversed: low={low}, high={high}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return self._rng.uniform(low, high, size=count)

    def random_batch(self, count: int) -> np.ndarray:
        """``count`` standard uniforms on ``[0, 1)``.

        ``uniform(low, high)`` is exactly ``low + (high - low) * u`` over one
        standard uniform ``u``, so callers that need per-draw bounds (e.g.
        interleaved speed/angle/distance columns) can draw the raw batch and
        apply the affine maps themselves, bit for bit.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return self._rng.random(size=count)

    def exponential_by_means(self, means: np.ndarray) -> np.ndarray:
        """One exponential draw per entry of ``means``; same stream as
        calling :meth:`exponential` with each mean in order."""
        means = np.asarray(means, dtype=np.float64)
        if means.size and not np.all(means > 0):
            raise ValueError("exponential means must all be positive")
        return means * self._rng.standard_exponential(means.size)

    def choice_indices(self, probabilities: np.ndarray, count: int) -> np.ndarray:
        """``count`` index draws from pre-normalised probabilities; same
        stream as ``count`` calls of :meth:`choice_index`."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return self._rng.choice(len(probabilities), size=count, p=probabilities)

    def shuffle(self, items: list) -> list:
        """Return a new list with the items in random order."""
        indices = self._rng.permutation(len(items))
        return [items[i] for i in indices]

    # -- common simulation distributions ----------------------------------
    def exponential(self, mean: float) -> float:
        """Exponential draw with the given mean (inter-arrival/holding times)."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return float(self._rng.exponential(mean))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        if std < 0:
            raise ValueError(f"normal std must be non-negative, got {std}")
        return float(self._rng.normal(mean, std))

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        if sigma < 0:
            raise ValueError(f"lognormal sigma must be non-negative, got {sigma}")
        return float(self._rng.lognormal(mean, sigma))

    def poisson(self, lam: float) -> int:
        if lam < 0:
            raise ValueError(f"poisson rate must be non-negative, got {lam}")
        return int(self._rng.poisson(lam))

    def bernoulli(self, probability: float) -> bool:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {probability}")
        return bool(self._rng.random() < probability)

    def pareto(self, shape: float, scale: float = 1.0) -> float:
        """Pareto draw (heavy-tailed session sizes for data traffic)."""
        if shape <= 0 or scale <= 0:
            raise ValueError("pareto shape and scale must be positive")
        return float(scale * (1.0 + self._rng.pareto(shape)))

    def angle_degrees(self) -> float:
        """Uniform direction on [-180, 180) degrees (user heading)."""
        return float(self._rng.uniform(-180.0, 180.0))

    def spawn(self, suffix: str) -> "RandomStream":
        """Derive a child stream whose seed depends on this stream's seed and a label."""
        child_seed = _mix_seed(self.seed, suffix)
        return RandomStream(f"{self.name}/{suffix}", child_seed)


class StreamFactory:
    """Creates independent named random streams from a single master seed."""

    def __init__(self, master_seed: int = 12345):
        self.master_seed = int(master_seed)
        self._streams: dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return (creating on first use) the stream with the given name."""
        if name not in self._streams:
            self._streams[name] = RandomStream(name, _mix_seed(self.master_seed, name))
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def stream_names(self) -> list[str]:
        return sorted(self._streams)


def _mix_seed(seed: int, label: str) -> int:
    """Derive a 63-bit child seed from a parent seed and a string label.

    Uses the SplitMix64 finaliser over the parent seed combined with a simple
    polynomial hash of the label, which is deterministic across platforms and
    Python processes (unlike the built-in ``hash``).
    """
    label_hash = 0
    for char in label:
        label_hash = (label_hash * 131 + ord(char)) & 0xFFFFFFFFFFFFFFFF
    z = (seed ^ label_hash) & 0xFFFFFFFFFFFFFFFF
    z = (z + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    z = z ^ (z >> 31)
    return int(z & 0x7FFFFFFFFFFFFFFF)
