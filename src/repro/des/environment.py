"""Simulation environment: clock, future-event list and run loop."""

from __future__ import annotations

import math
from typing import Any, Iterable

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGenerator
from .queue import EmptyQueueError, EventQueue, Priority

__all__ = ["Environment", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Environment:
    """Discrete-event simulation environment.

    Holds the simulated clock, schedules events and drives processes.  The
    public API mirrors the common process-interaction vocabulary:

    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    5
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue = EventQueue()
        self._active_process: Process | None = None
        self._processed_events = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed (None outside process steps)."""
        return self._active_process

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (diagnostic)."""
        return self._processed_events

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the future-event list."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a bare, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from a generator function call."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event triggering when all given events have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event triggering when any given event has triggered."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and the run loop
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = Priority.NORMAL) -> None:
        """Place a triggered event on the future-event list."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        self._queue.push(event, self._now + delay, priority)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when none remain."""
        try:
            return self._queue.peek_time()
        except EmptyQueueError:
            return math.inf

    def step(self) -> None:
        """Process exactly one event from the future-event list."""
        try:
            item = self._queue.pop()
        except EmptyQueueError:
            raise SimulationError("cannot step: no events scheduled") from None
        if item.time < self._now:
            raise SimulationError(
                f"event scheduled in the past: {item.time} < now={self._now}"
            )
        self._now = item.time
        event = item.event
        callbacks, event.callbacks = list(event.callbacks), []
        event._mark_processed()
        self._processed_events += 1
        for callback in callbacks:
            callback(event)
        if not event.ok and not event.defused:
            raise event.exception  # type: ignore[misc]

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until the clock reaches that time) or an :class:`Event` (run
        until that event is processed, returning its value).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            stop_event = until
            while not stop_event.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the 'until' event triggered"
                    )
                self.step()
            return stop_event.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(
                f"cannot run until {horizon}, which is before the current time {self._now}"
            )
        while self._queue and self.peek() <= horizon:
            self.step()
        self._now = horizon
        return None
