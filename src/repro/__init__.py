"""repro — reproduction of the FACS fuzzy call-admission-control system.

Reference: L. Barolli, F. Xhafa, A. Durresi, A. Koyama,
"A Fuzzy-based Call Admission Control System for Wireless Cellular Networks",
ICDCS Workshops 2007.

Package layout
--------------
``repro.fuzzy``
    From-scratch fuzzy-logic toolkit (membership functions, rules, Mamdani
    inference, defuzzification, controllers).
``repro.des``
    From-scratch discrete-event simulation kernel (environment, processes,
    resources, monitors, seeded random streams).
``repro.cellular``
    Cellular-network substrate (hex geometry, base stations, mobility,
    traffic classes, calls, handoffs, metrics).
``repro.cac``
    Admission controllers: the paper's FACS, the SCC baseline and classic
    non-fuzzy baselines.
``repro.simulation``
    Experiment engine: single-cell batch runs (Figs. 7-10), multi-cell
    network runs, sweeps and result aggregation.
``repro.experiments``
    One entry point per paper table/figure plus ablations.
``repro.analysis``
    Statistics, ASCII tables/plots, CSV/JSON export.
``repro.api``
    The canonical entry point: declarative, serializable ``Scenario``
    objects, string-keyed registries (controllers, engines, executors,
    scenarios) and the ``Runner`` facade returning ``RunReport`` objects.
"""

from .cac import (
    AdmissionController,
    AdmissionDecision,
    CompleteSharingController,
    FACSConfig,
    FuzzyAdmissionControlSystem,
    GuardChannelController,
    SCCConfig,
    ShadowClusterController,
    ThresholdPolicyController,
)
from .cellular import (
    Call,
    CallType,
    CellularNetwork,
    PAPER_BANDWIDTH_UNITS,
    PAPER_TRAFFIC_MIX,
    ServiceClass,
    UserProfile,
    UserState,
)
from .api import Runner, RunReport, Scenario
from .fuzzy import FuzzyController, LinguisticVariable, Term, Triangular, Trapezoidal
from .simulation import (
    BatchExperimentConfig,
    NetworkExperimentConfig,
    run_batch_experiment,
    run_network_experiment,
    run_acceptance_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # unified scenario API
    "Runner",
    "RunReport",
    "Scenario",
    # admission control
    "AdmissionController",
    "AdmissionDecision",
    "FuzzyAdmissionControlSystem",
    "FACSConfig",
    "ShadowClusterController",
    "SCCConfig",
    "CompleteSharingController",
    "GuardChannelController",
    "ThresholdPolicyController",
    # cellular substrate
    "Call",
    "CallType",
    "CellularNetwork",
    "ServiceClass",
    "UserState",
    "UserProfile",
    "PAPER_TRAFFIC_MIX",
    "PAPER_BANDWIDTH_UNITS",
    # fuzzy toolkit
    "FuzzyController",
    "LinguisticVariable",
    "Term",
    "Triangular",
    "Trapezoidal",
    # simulation
    "BatchExperimentConfig",
    "NetworkExperimentConfig",
    "run_batch_experiment",
    "run_network_experiment",
    "run_acceptance_sweep",
]
