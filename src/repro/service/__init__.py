"""Online admission-control service: micro-batching front-end over FACS.

Three layers, one code path:

* :mod:`repro.service.server` — the asyncio server core: bounded queue,
  size/deadline micro-batcher, ``decide_batch`` dispatcher with the trace
  pipeline's release-then-score-then-greedy-admit semantics.
* :mod:`repro.service.replay` — deterministic replay of a seeded arrival
  trace on a virtual clock; what tests and CI gate on.
* :mod:`repro.service.loadgen` — closed-loop wall-clock load generator
  behind ``repro serve`` and the latency benchmark.
"""

from .clock import (
    Clock,
    MonotonicClock,
    VirtualClock,
    VirtualClockDeadlock,
    run_with_virtual_clock,
)
from .loadgen import build_load_requests, run_closed_loop, run_load_session
from .replay import run_service_replay
from .server import (
    ADMITTED,
    REJECTED,
    SHED,
    AdmissionServer,
    LatencySummary,
    ServiceBatchRecord,
    ServiceClosedError,
    ServiceConfig,
    ServiceDecision,
    ServiceReport,
    render_service_report,
)

__all__ = [
    "ADMITTED",
    "REJECTED",
    "SHED",
    "AdmissionServer",
    "Clock",
    "LatencySummary",
    "MonotonicClock",
    "ServiceBatchRecord",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceDecision",
    "ServiceReport",
    "VirtualClock",
    "VirtualClockDeadlock",
    "build_load_requests",
    "render_service_report",
    "run_closed_loop",
    "run_load_session",
    "run_service_replay",
    "run_with_virtual_clock",
]
