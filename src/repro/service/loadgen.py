"""Closed-loop load generator for the live admission server.

Unlike replay — which honors the trace's arrival instants on a virtual
clock — the load generator measures what the server *sustains*: a fixed
pool of clients submit back-to-back (each issues its next request the
moment its previous decision resolves), so the offered load is always
exactly ``clients`` in-flight requests and the measured throughput is the
server's, not the schedule's.

Requests are drawn from the same seeded trace builder as every other
experiment; ``holding_scale`` compresses the exponential holding times
(minutes in the paper) so departures churn bandwidth within a
seconds-long benchmark session instead of pinning the cell at capacity.
"""

from __future__ import annotations

import asyncio

from ..cac.facs.system import FACSConfig
from ..des.rng import StreamFactory
from ..simulation.batch import build_requests
from ..simulation.config import BatchExperimentConfig
from .server import AdmissionServer, ServiceConfig, ServiceReport

__all__ = ["build_load_requests", "run_closed_loop", "run_load_session"]


def build_load_requests(
    count: int,
    seed: int,
    holding_scale: float = 1.0,
) -> list:
    """Seeded request list for a load session, holding times rescaled."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if holding_scale <= 0:
        raise ValueError(f"holding_scale must be > 0, got {holding_scale}")
    config = BatchExperimentConfig(request_count=count, seed=seed)
    requests = build_requests(config, StreamFactory(master_seed=config.stream_master_seed))
    if holding_scale != 1.0:
        for call in requests:
            call.holding_time_s *= holding_scale
    return requests


async def run_closed_loop(
    server: AdmissionServer,
    requests: list,
    clients: int,
) -> None:
    """Submit ``requests`` through ``clients`` concurrent closed-loop callers."""
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    queue = iter(requests)

    async def client() -> None:
        while True:
            try:
                call = next(queue)
            except StopIteration:
                return
            await server.submit(call)

    await asyncio.gather(*(client() for _ in range(clients)))


def run_load_session(
    request_count: int = 20_000,
    clients: int = 64,
    service: ServiceConfig | None = None,
    facs_config: FACSConfig | None = None,
    seed: int = 20070628,
    holding_scale: float = 1e-3,
) -> ServiceReport:
    """One wall-clock load session against a fresh server; returns its report."""
    requests = build_load_requests(request_count, seed, holding_scale)
    service = service or ServiceConfig(max_batch=64, max_wait_ms=5.0, queue_capacity=256)

    async def main() -> ServiceReport:
        server = AdmissionServer(
            service, facs_config=facs_config, collect_batches=False
        )
        await run_closed_loop(server, requests, clients)
        await server.aclose()
        return server.report(mode="live")

    return asyncio.run(main())
