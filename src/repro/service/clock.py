"""Clocks for the admission-control service: wall time and virtual time.

The service core (:mod:`repro.service.server`) never reads time directly —
every "when is it now / wake me at t" goes through a :class:`Clock`.  That
single seam is what gives the service its two operating modes from one
code path:

* :class:`MonotonicClock` — real time.  ``sleep_until`` maps onto
  :func:`asyncio.sleep`, so the micro-batcher's flush deadlines are real
  timers and measured latencies are wall-clock latencies.  This is the
  mode the load generator and the latency benchmark drive.
* :class:`VirtualClock` — deterministic simulated time for replay.  Tasks
  park on a heap of ``(wake time, key, seq)``-ordered sleepers and the
  clock only moves when :meth:`VirtualClock.advance` fires the earliest
  one.  Given the same arrival schedule, every wakeup — and therefore
  every batch boundary and every admission decision — happens at the same
  virtual instant in the same order, regardless of how the asyncio event
  loop interleaves task steps.  ``key`` breaks exact-time ties by caller
  identity (not registration order), so even tied wakeups are independent
  of task creation order.

:func:`run_with_virtual_clock` is the replay driver: it lets the event
loop run until no task makes further progress (quiescence, observed via
the clock's activity counter), then fires the next virtual timer, and
repeats until the main coroutine completes.  Deadlock — tasks pending but
no timer armed — raises instead of hanging.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from abc import ABC, abstractmethod
from itertools import count

__all__ = [
    "Clock",
    "MonotonicClock",
    "VirtualClock",
    "VirtualClockDeadlock",
    "run_with_virtual_clock",
]

#: Consecutive no-progress event-loop passes required before the virtual
#: driver declares quiescence and advances time.  A wakeup cascade
#: (sleeper fires → submitter enqueues → flush resolves futures → awaiting
#: tasks return) spans at most a handful of passes, none of which may be
#: interrupted by a time jump; a generous margin costs microseconds and
#: buys scheduling-order independence.
_QUIET_PASSES = 6


class Clock(ABC):
    """Time source of the admission service."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (origin is clock-defined)."""

    @abstractmethod
    async def sleep_until(self, when: float, *, key: int = 0) -> None:
        """Suspend the calling task until ``now() >= when``.

        ``key`` orders wakeups that share the exact same ``when`` (smaller
        fires first); real clocks ignore it.
        """


class MonotonicClock(Clock):
    """Wall time, zeroed at construction, driven by ``time.monotonic``."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    async def sleep_until(self, when: float, *, key: int = 0) -> None:
        delay = when - self.now()
        if delay > 0:
            await asyncio.sleep(delay)


class VirtualClockDeadlock(RuntimeError):
    """Raised when tasks are pending but no virtual timer can wake them."""


class VirtualClock(Clock):
    """Deterministic simulated time: moves only via :meth:`advance`."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        #: heap of (when, key, seq, future); seq only disambiguates the
        #: heap ordering of true (when, key) ties, which callers avoid by
        #: using distinct keys.
        self._sleepers: list[tuple[float, int, int, asyncio.Future]] = []
        self._seq = count()
        #: Activity counter: bumped on every registration and firing, so
        #: the replay driver can observe "something is still moving".
        self.ticks = 0

    def now(self) -> float:
        return self._now

    async def sleep_until(self, when: float, *, key: int = 0) -> None:
        if when <= self._now:
            return
        future = asyncio.get_running_loop().create_future()
        heapq.heappush(self._sleepers, (when, key, next(self._seq), future))
        self.ticks += 1
        await future

    @property
    def armed(self) -> bool:
        """True when at least one live (non-cancelled) sleeper is waiting."""
        return any(not future.cancelled() for *_, future in self._sleepers)

    def advance(self) -> bool:
        """Fire the earliest live sleeper; False when none remain.

        Time never moves backwards: a sleeper registered for the past
        (impossible via :meth:`sleep_until`, possible after cancellations
        reordered the heap) fires at the current time.
        """
        while self._sleepers:
            when, _key, _seq, future = heapq.heappop(self._sleepers)
            if future.cancelled() or future.done():
                continue
            self._now = max(self._now, when)
            future.set_result(None)
            self.ticks += 1
            return True
        return False


async def _settle(clock: VirtualClock) -> None:
    """Yield to the event loop until no task makes observable progress."""
    quiet = 0
    while quiet < _QUIET_PASSES:
        before = clock.ticks
        await asyncio.sleep(0)
        quiet = quiet + 1 if clock.ticks == before else 0


def run_with_virtual_clock(main, clock: VirtualClock):
    """Run coroutine ``main`` to completion under ``clock``.

    The driver alternates quiescence (let every ready task run) with
    firing the next virtual timer, so simulated time only jumps when the
    system is idle — exactly the property that makes replay results
    independent of asyncio scheduling order.
    """

    async def driver():
        task = asyncio.ensure_future(main)
        try:
            while not task.done():
                await _settle(clock)
                if task.done():
                    break
                if not clock.advance():
                    raise VirtualClockDeadlock(
                        "tasks are pending but no virtual timer is armed; "
                        "a service coroutine is awaiting something that "
                        "only real time would resolve"
                    )
        except BaseException:
            task.cancel()
            raise
        return task.result()

    return asyncio.run(driver())
