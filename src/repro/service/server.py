"""Asyncio admission-control server: bounded queue → micro-batcher → FACS.

This is the online counterpart of the offline trace pipeline
(:mod:`repro.simulation.trace`).  Concurrent callers ``await
server.submit(call)``; the server coalesces pending requests into
micro-batches and scores each batch through
:meth:`~repro.cac.facs.system.FuzzyAdmissionControlSystem.decide_batch`
against live :class:`~repro.cellular.cell.BaseStation` state, with the
exact release-then-score-then-greedy-admit semantics of the trace path.

Batching policy — flush on whichever comes first:

* **size**: the pending queue reaches ``max_batch``;
* **deadline**: the oldest pending request has waited ``max_wait_ms``.

Backpressure is a bounded queue: when ``queue_capacity`` requests are
already pending, a new submission is *shed* — answered immediately with a
:data:`SHED` decision — rather than buffered without limit.  Shedding is
an explicit signal the caller can act on (back off, retry), never silent
loss.

Every state transition (enqueue, size-flush, shed) happens synchronously
inside ``submit``; the only task the server spawns is the deadline timer
for the oldest pending request, and it is cancelled the moment its batch
flushes.  That discipline is what lets the same server run under a
:class:`~repro.service.clock.VirtualClock` and produce byte-identical
replay reports regardless of asyncio scheduling order.
"""

from __future__ import annotations

import asyncio
import contextlib
import heapq
import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..cac.facs.system import FACSConfig, FuzzyAdmissionControlSystem
from ..cellular.calls import Call
from ..cellular.cell import BaseStation
from ..cellular.metrics import CallMetrics
from ..cellular.traffic import PAPER_BANDWIDTH_UNITS
from .clock import Clock, MonotonicClock

__all__ = [
    "ADMITTED",
    "REJECTED",
    "SHED",
    "AdmissionServer",
    "LatencySummary",
    "ServiceBatchRecord",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceDecision",
    "ServiceReport",
]

#: Decision outcomes, as strings so reports serialize without an enum layer.
ADMITTED = "admitted"
REJECTED = "rejected"
SHED = "shed"

#: Flush triggers recorded per batch.
FLUSH_SIZE = "size"
FLUSH_DEADLINE = "deadline"
FLUSH_CLOSE = "close"


class ServiceClosedError(RuntimeError):
    """Raised when a request is submitted to a closed server."""


@dataclass(frozen=True)
class ServiceConfig:
    """Micro-batching and backpressure knobs of the admission server."""

    max_batch: int = 8
    max_wait_ms: float = 2000.0
    queue_capacity: int = 64

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if not math.isfinite(self.max_wait_ms) or self.max_wait_ms <= 0:
            raise ValueError(f"max_wait_ms must be finite and > 0, got {self.max_wait_ms}")
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1000.0


@dataclass(frozen=True)
class ServiceDecision:
    """Answer handed back to one ``submit`` caller."""

    call_id: int
    outcome: str
    score: float | None
    enqueued_at_s: float
    decided_at_s: float
    batch_index: int | None

    @property
    def latency_s(self) -> float:
        return self.decided_at_s - self.enqueued_at_s


@dataclass(frozen=True)
class ServiceBatchRecord:
    """Outcome of one micro-batch flush."""

    index: int
    flushed_at_s: float
    size: int
    admitted: int
    reason: str
    occupancy_before_bu: int
    occupancy_after_bu: int


@dataclass(frozen=True)
class LatencySummary:
    """Decision-latency distribution in milliseconds (nearest-rank)."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_latencies_s(cls, latencies_s: list[float]) -> "LatencySummary":
        if not latencies_s:
            return cls(count=0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0, p99_ms=0.0, max_ms=0.0)
        ordered = sorted(1000.0 * value for value in latencies_s)
        n = len(ordered)

        def rank(q: float) -> float:
            return ordered[max(0, math.ceil(q * n) - 1)]

        return cls(
            count=n,
            mean_ms=sum(ordered) / n,
            p50_ms=rank(0.50),
            p95_ms=rank(0.95),
            p99_ms=rank(0.99),
            max_ms=ordered[-1],
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }


@dataclass(frozen=True)
class ServiceReport:
    """Aggregate outcome of one service session (live or replay)."""

    mode: str
    controller: str
    config: ServiceConfig
    capacity_bu: int
    submitted: int
    admitted: int
    rejected: int
    shed: int
    completed: int
    accepted_bu: int
    requested_bu: int
    peak_occupancy_bu: int
    batch_count: int
    size_flushes: int
    deadline_flushes: int
    close_flushes: int
    duration_s: float
    latency: LatencySummary
    batches: tuple[ServiceBatchRecord, ...] = ()

    @property
    def decided(self) -> int:
        """Requests answered through a batch (everything but shed)."""
        return self.admitted + self.rejected

    @property
    def metrics(self) -> CallMetrics:
        """The session as the repo-wide counter bundle.

        Shed requests are blocked-at-admission as far as grade-of-service
        accounting goes: the caller asked and was turned away.
        """
        return CallMetrics(
            requested=self.submitted,
            accepted=self.admitted,
            blocked=self.rejected + self.shed,
            completed=self.completed,
            dropped=0,
            handoff_requests=0,
            handoff_accepted=0,
            accepted_bu=self.accepted_bu,
            requested_bu=self.requested_bu,
        )

    @property
    def acceptance_percentage(self) -> float:
        return self.metrics.acceptance_percentage

    @property
    def throughput_dps(self) -> float:
        """Sustained decisions per second over the active span."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.decided / self.duration_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "controller": self.controller,
            "max_batch": self.config.max_batch,
            "max_wait_ms": self.config.max_wait_ms,
            "queue_capacity": self.config.queue_capacity,
            "capacity_bu": self.capacity_bu,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "completed": self.completed,
            "accepted_bu": self.accepted_bu,
            "requested_bu": self.requested_bu,
            "peak_occupancy_bu": self.peak_occupancy_bu,
            "acceptance_percentage": self.acceptance_percentage,
            "batch_count": self.batch_count,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "close_flushes": self.close_flushes,
            "duration_s": self.duration_s,
            "throughput_dps": self.throughput_dps,
            "latency_ms": self.latency.as_dict(),
            "batches": [
                {
                    "index": record.index,
                    "flushed_at_s": record.flushed_at_s,
                    "size": record.size,
                    "admitted": record.admitted,
                    "reason": record.reason,
                    "occupancy_before_bu": record.occupancy_before_bu,
                    "occupancy_after_bu": record.occupancy_after_bu,
                }
                for record in self.batches
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON — the byte-identity surface replay tests gate on."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


@dataclass
class _Pending:
    call: Call
    enqueued_at: float
    future: asyncio.Future = field(repr=False)


class AdmissionServer:
    """Micro-batching admission front-end over one base station."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        capacity_bu: int = PAPER_BANDWIDTH_UNITS,
        facs_config: FACSConfig | None = None,
        clock: Clock | None = None,
        collect_batches: bool = True,
    ) -> None:
        self._config = config or ServiceConfig()
        self._clock = clock or MonotonicClock()
        self._collect_batches = collect_batches
        self._station = BaseStation(capacity_bu=capacity_bu)
        self._controller = FuzzyAdmissionControlSystem(facs_config or FACSConfig())
        self._controller.reset()

        self._pending: deque[_Pending] = deque()
        self._deadline_task: asyncio.Task | None = None
        self._generation = 0
        self._closed = False

        # Departure queue of admitted calls: (departure time, call id, call);
        # the per-run call id breaks time ties deterministically.
        self._departures: list[tuple[float, int, Call]] = []

        self._submitted = 0
        self._admitted = 0
        self._rejected = 0
        self._shed = 0
        self._completed = 0
        self._accepted_bu = 0
        self._requested_bu = 0
        self._peak_occupancy = 0
        self._size_flushes = 0
        self._deadline_flushes = 0
        self._close_flushes = 0
        self._latencies_s: list[float] = []
        self._batches: list[ServiceBatchRecord] = []
        self._batch_count = 0
        self._first_enqueued_at: float | None = None
        self._last_decided_at: float | None = None

    # ------------------------------------------------------------------
    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def station(self) -> BaseStation:
        return self._station

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    async def submit(self, call: Call) -> ServiceDecision:
        """Ask for admission; resolves when the call's batch is scored.

        Sheds immediately (bounded queue) when ``queue_capacity`` requests
        are already waiting.
        """
        if self._closed:
            raise ServiceClosedError("admission server is closed")
        now = self._clock.now()
        self._submitted += 1
        self._requested_bu += call.bandwidth_units
        if self._first_enqueued_at is None:
            self._first_enqueued_at = now

        if len(self._pending) >= self._config.queue_capacity:
            self._shed += 1
            call.block(now, self._station.station_id)
            return ServiceDecision(
                call_id=call.call_id,
                outcome=SHED,
                score=None,
                enqueued_at_s=now,
                decided_at_s=now,
                batch_index=None,
            )

        future = asyncio.get_running_loop().create_future()
        self._pending.append(_Pending(call=call, enqueued_at=now, future=future))
        if len(self._pending) >= self._config.max_batch:
            self._flush(FLUSH_SIZE)
        elif len(self._pending) == 1:
            self._arm_deadline(now + self._config.max_wait_s, self._generation)
        return await future

    async def aclose(self) -> None:
        """Flush whatever is pending, retire in-flight calls, stop timers."""
        if self._closed:
            return
        self._closed = True
        while self._pending:
            self._flush(FLUSH_CLOSE)
        if self._deadline_task is not None:
            task, self._deadline_task = self._deadline_task, None
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        # Retire every admitted call still holding bandwidth so the final
        # ledger is empty and ``completed`` equals ``admitted``.
        while self._departures:
            self._release_next_departure()

    def report(self, mode: str = "live") -> ServiceReport:
        """Snapshot the session counters as an immutable report."""
        duration = 0.0
        if self._first_enqueued_at is not None and self._last_decided_at is not None:
            duration = max(0.0, self._last_decided_at - self._first_enqueued_at)
        return ServiceReport(
            mode=mode,
            controller=self._controller.name,
            config=self._config,
            capacity_bu=self._station.capacity_bu,
            submitted=self._submitted,
            admitted=self._admitted,
            rejected=self._rejected,
            shed=self._shed,
            completed=self._completed,
            accepted_bu=self._accepted_bu,
            requested_bu=self._requested_bu,
            peak_occupancy_bu=self._peak_occupancy,
            batch_count=self._batch_count,
            size_flushes=self._size_flushes,
            deadline_flushes=self._deadline_flushes,
            close_flushes=self._close_flushes,
            duration_s=duration,
            latency=LatencySummary.from_latencies_s(self._latencies_s),
            batches=tuple(self._batches),
        )

    # ------------------------------------------------------------------
    def _arm_deadline(self, deadline: float, generation: int) -> None:
        self._deadline_task = asyncio.get_running_loop().create_task(
            self._deadline_flush(deadline, generation)
        )

    async def _deadline_flush(self, deadline: float, generation: int) -> None:
        # Deadline timers use key=0: submitter wakeups key on the (>= 1)
        # call id, so under a virtual clock an exact deadline/arrival time
        # tie deterministically flushes before the new arrival enqueues.
        await self._clock.sleep_until(deadline, key=0)
        if self._generation == generation and self._pending:
            self._deadline_task = None
            self._flush(FLUSH_DEADLINE)

    def _release_next_departure(self) -> None:
        departure_time, _, departed = heapq.heappop(self._departures)
        self._station.release(departed)
        departed.complete(departure_time)
        self._controller.on_released(departed, self._station, departure_time)
        self._completed += 1

    def _flush(self, reason: str) -> None:
        """Score and answer one batch of pending requests, synchronously."""
        if self._deadline_task is not None:
            self._deadline_task.cancel()
            self._deadline_task = None
        self._generation += 1
        now = self._clock.now()

        batch: list[_Pending] = []
        while self._pending and len(batch) < self._config.max_batch:
            batch.append(self._pending.popleft())

        # Release departures due by the batch instant before scoring, so
        # the controller sees the same counter state as the trace path.
        while self._departures and self._departures[0][0] <= now:
            self._release_next_departure()

        occupancy_before = self._station.used_bu
        decision = self._controller.decide_batch(
            [pending.call for pending in batch], self._station, now
        )
        admitted_in_batch = 0
        batch_index = self._batch_count
        for pending, scored_ok, score in zip(batch, decision.accepted, decision.scores):
            call = pending.call
            accepted = bool(scored_ok) and self._station.can_fit(call.bandwidth_units)
            if accepted:
                self._station.allocate(call)
                call.admit(now, self._station.station_id)
                self._controller.on_admitted(call, self._station, now)
                heapq.heappush(
                    self._departures,
                    (now + call.holding_time_s, call.call_id, call),
                )
                self._admitted += 1
                admitted_in_batch += 1
                self._accepted_bu += call.bandwidth_units
                self._peak_occupancy = max(self._peak_occupancy, self._station.used_bu)
            else:
                call.block(now, self._station.station_id)
                self._rejected += 1
            self._latencies_s.append(now - pending.enqueued_at)
            self._last_decided_at = now
            if not pending.future.done():
                pending.future.set_result(
                    ServiceDecision(
                        call_id=call.call_id,
                        outcome=ADMITTED if accepted else REJECTED,
                        score=float(score),
                        enqueued_at_s=pending.enqueued_at,
                        decided_at_s=now,
                        batch_index=batch_index,
                    )
                )

        self._batch_count += 1
        if reason == FLUSH_SIZE:
            self._size_flushes += 1
        elif reason == FLUSH_DEADLINE:
            self._deadline_flushes += 1
        else:
            self._close_flushes += 1
        if self._collect_batches:
            self._batches.append(
                ServiceBatchRecord(
                    index=batch_index,
                    flushed_at_s=now,
                    size=len(batch),
                    admitted=admitted_in_batch,
                    reason=reason,
                    occupancy_before_bu=occupancy_before,
                    occupancy_after_bu=self._station.used_bu,
                )
            )
        # A size-flush can leave newer arrivals queued (close drains in
        # chunks too); re-arm the deadline for the new oldest request.
        if self._pending and not self._closed:
            self._arm_deadline(
                self._pending[0].enqueued_at + self._config.max_wait_s,
                self._generation,
            )


def render_service_report(report: ServiceReport) -> str:
    """Human-readable summary used by the CLI and runner."""
    latency = report.latency
    lines = [
        f"admission service ({report.mode}) — {report.controller} on "
        f"{report.capacity_bu} BU",
        (
            f"batching: max_batch={report.config.max_batch} "
            f"max_wait_ms={report.config.max_wait_ms:g} "
            f"queue_capacity={report.config.queue_capacity}"
        ),
        (
            f"requests: submitted={report.submitted} admitted={report.admitted} "
            f"rejected={report.rejected} shed={report.shed} "
            f"completed={report.completed}"
        ),
        (
            f"acceptance: {report.acceptance_percentage:.2f}% "
            f"(peak occupancy {report.peak_occupancy_bu}/{report.capacity_bu} BU)"
        ),
        (
            f"batches: {report.batch_count} "
            f"(size={report.size_flushes} deadline={report.deadline_flushes} "
            f"close={report.close_flushes})"
        ),
        (
            f"latency ms: p50={latency.p50_ms:.3f} p95={latency.p95_ms:.3f} "
            f"p99={latency.p99_ms:.3f} max={latency.max_ms:.3f}"
        ),
        (
            f"throughput: {report.throughput_dps:.1f} decisions/s "
            f"over {report.duration_s:.3f}s"
        ),
    ]
    return "\n".join(lines)
