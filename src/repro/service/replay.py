"""Deterministic replay: a seeded trace through the live service path.

The replay mode exists so the online server can be *gated* the way the
offline pipelines are: same seed + same batching config ⇒ byte-identical
:class:`~repro.service.server.ServiceReport`, across repeated runs and
across asyncio scheduling orders.  It reuses the exact experiment
vocabulary of the rest of the repo — a
:class:`~repro.simulation.config.BatchExperimentConfig` seeds
:func:`~repro.simulation.batch.build_requests`, and one submitter task
per request sleeps on a :class:`~repro.service.clock.VirtualClock` until
its arrival instant before awaiting ``server.submit``.

``submit_order`` permutes the *creation order* of the submitter tasks —
i.e. the order the asyncio loop first steps them — without touching the
arrival schedule.  Replay reports must not depend on it; the determinism
tests drive several shuffled orders through this knob and compare bytes.
"""

from __future__ import annotations

import asyncio

from ..cac.facs.system import FACSConfig
from ..des.rng import StreamFactory
from ..simulation.batch import build_requests
from ..simulation.config import BatchExperimentConfig
from .clock import VirtualClock, run_with_virtual_clock
from .server import AdmissionServer, ServiceConfig, ServiceReport

__all__ = ["run_service_replay"]


def run_service_replay(
    config: BatchExperimentConfig,
    service: ServiceConfig | None = None,
    facs_config: FACSConfig | None = None,
    submit_order: list[int] | None = None,
    collect_batches: bool = True,
) -> ServiceReport:
    """Drive the seeded arrival trace through the admission server.

    ``submit_order`` is an optional permutation of ``range(request_count)``
    giving the order submitter tasks are created (a scheduling-order probe
    for the determinism tests); arrival *times* always come from the trace.
    """
    service = service or ServiceConfig()
    streams = StreamFactory(master_seed=config.stream_master_seed)
    requests = build_requests(config, streams)

    order = list(range(len(requests))) if submit_order is None else list(submit_order)
    if sorted(order) != list(range(len(requests))):
        raise ValueError(
            f"submit_order must be a permutation of range({len(requests)})"
        )

    clock = VirtualClock()
    server = AdmissionServer(
        service,
        capacity_bu=config.capacity_bu,
        facs_config=facs_config,
        clock=clock,
        collect_batches=collect_batches,
    )

    async def submitter(index: int) -> None:
        call = requests[index]
        # The per-run sequential call id keys the wakeup so tied arrival
        # instants resolve identically for every task creation order.
        await clock.sleep_until(call.requested_at, key=call.call_id)
        await server.submit(call)

    async def main() -> ServiceReport:
        tasks = [asyncio.ensure_future(submitter(index)) for index in order]
        await asyncio.gather(*tasks)
        await server.aclose()
        return server.report(mode="replay")

    return run_with_virtual_clock(main(), clock)
