"""The tuning engine: evaluate trials, drive a strategy, build the report.

One *trial* substitutes a candidate value vector into the base definition,
builds a FACS with the tuned stage (the other stage keeps the paper's
controller), runs a small acceptance sweep *serially inside the worker*
and extracts the objective through the registered
:data:`~repro.api.report.COMPARISON_METRICS` path — the same extractors
campaign comparisons use.  A generation of trials is fanned over a shared
:class:`~repro.simulation.executor.SweepExecutor`; ``map`` preserves task
order and the strategy only advances after the whole generation is back,
so a tuning run is byte-identical at any worker count.

An infeasible candidate (e.g. a mutated membership vector that is no
longer monotonic) is a *deterministic failed trial*: the definition layer
rejects it with the variable/term context, the trial records the message
and the strategy treats its score as worst-possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..analysis.frame import MetricsFrame
from ..analysis.io import (
    flc_definition_to_dict,
    metrics_frame_to_dict,
    sweep_result_to_dict,
    versioned_payload,
)
from ..analysis.tables import format_table
from ..api.report import COMPARISON_METRICS, build_comparison
from ..cac.facs.definitions import FLC1_VARIABLES, FLC2_VARIABLES
from ..cac.facs.system import FACSConfig
from ..cellular.metrics import CallMetrics
from ..fuzzy.definition import DefinitionError, FLCDefinition
from ..simulation.config import BatchExperimentConfig
from ..simulation.executor import SweepExecutor
from ..simulation.results import RunResult
from ..simulation.scenario import facs_factory
from ..simulation.sweep import run_acceptance_sweep
from .space import SearchSpace, TuningError
from .strategies import strategy_by_name

__all__ = ["TrialResult", "TuningReport", "run_tuning", "render_tuning_report"]

#: Curve labels inside trial payloads; also the comparison member ids.
_TUNED_LABEL = "tuned"
_PAPER_LABEL = "paper"

#: QoS columns of the tuned-vs-paper comparison (the objective is added
#: when it is not already one of them).
_REPORT_METRICS = ("mean_acceptance", "final_acceptance")


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one evaluated candidate."""

    index: int
    values: tuple[float, ...]
    score: float | None
    error: str | None = None
    counters: tuple[int, ...] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "values": list(self.values),
            "score": self.score,
            "error": self.error,
        }


@dataclass(frozen=True)
class _TrialTask:
    """Everything a worker needs to evaluate one candidate (picklable)."""

    index: int
    values: tuple[float, ...]
    base: FLCDefinition
    space: SearchSpace
    slot: str
    objective: str
    request_counts: tuple[int, ...]
    replications: int
    seed: int
    engine: str


def _facs_config(definition: FLCDefinition, slot: str, engine: str) -> FACSConfig:
    if slot == "flc1":
        return FACSConfig(engine=engine, flc1_definition=definition)
    return FACSConfig(engine=engine, flc2_definition=definition)


def _sweep_payload(
    definition: FLCDefinition,
    slot: str,
    label: str,
    request_counts: tuple[int, ...],
    replications: int,
    seed: int,
    engine: str,
) -> tuple[dict, tuple[int, ...]]:
    """(sweep metrics payload, summed counters) of one candidate run."""
    result = run_acceptance_sweep(
        name=f"tuning-{label}",
        variants={
            label: (
                BatchExperimentConfig(seed=seed),
                facs_factory(_facs_config(definition, slot, engine)),
            )
        },
        request_counts=request_counts,
        replications=replications,
        executor="serial",
    )
    totals = [0] * len(CallMetrics.COUNTER_FIELDS)
    for run in result.frame.run_results():
        for i, value in enumerate(run.metrics.as_counters()):
            totals[i] += value
    return sweep_result_to_dict(result), tuple(totals)


def _extract_objective(payload: Mapping[str, Any], objective: str, label: str) -> float:
    extracted = COMPARISON_METRICS.get(objective)(payload)
    if not extracted or label not in extracted:
        raise TuningError(
            f"objective {objective!r} does not apply to the trial sweep "
            f"payload (extracted: {extracted!r})"
        )
    return float(extracted[label])


def _evaluate_trial(task: _TrialTask) -> TrialResult:
    """Worker entry point: one candidate in, one :class:`TrialResult` out."""
    try:
        candidate = task.space.apply(task.base, task.values)
    except (DefinitionError, TuningError) as exc:
        return TrialResult(
            index=task.index, values=task.values, score=None, error=str(exc)
        )
    payload, counters = _sweep_payload(
        candidate,
        task.slot,
        _TUNED_LABEL,
        task.request_counts,
        task.replications,
        task.seed,
        task.engine,
    )
    score = _extract_objective(payload, task.objective, _TUNED_LABEL)
    return TrialResult(
        index=task.index, values=task.values, score=score, counters=counters
    )


@dataclass(frozen=True)
class TuningReport:
    """Everything a tuning run produced, in one self-describing object."""

    objective: str
    direction: str
    strategy: str
    slot: str
    targets: tuple[str, ...]
    baseline_values: tuple[float, ...]
    baseline_score: float
    trials: tuple[TrialResult, ...]
    best: TrialResult
    best_definition: FLCDefinition
    frame: MetricsFrame
    comparison_text: str
    comparison: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """Schema-versioned ``tuning`` metrics payload (JSON-safe)."""
        return versioned_payload(
            {
                "type": "tuning",
                "objective": self.objective,
                "direction": self.direction,
                "strategy": self.strategy,
                "slot": self.slot,
                "targets": list(self.targets),
                "baseline": {
                    "values": list(self.baseline_values),
                    "score": self.baseline_score,
                },
                "best": self.best.to_dict(),
                "trial_count": len(self.trials),
                "trials": [trial.to_dict() for trial in self.trials],
                "best_definition": flc_definition_to_dict(self.best_definition),
                "comparison": self.comparison,
                "frame": metrics_frame_to_dict(self.frame),
            }
        )


def _slot_for(definition: FLCDefinition) -> str:
    signature = (definition.input_names(), definition.output_names())
    if signature == FLC1_VARIABLES:
        return "flc1"
    if signature == FLC2_VARIABLES:
        return "flc2"
    raise TuningError(
        f"definition {definition.name!r} fits neither FACS slot: "
        f"got {signature[0]} -> {signature[1]}"
    )


def _better(score: float, incumbent: float, direction: str) -> bool:
    if direction == "maximize":
        return score > incumbent
    return score < incumbent


def _trial_frame(trials: Sequence[TrialResult], targets: tuple[str, ...]) -> MetricsFrame:
    """One batch-kind frame row per trial (parameters: targets + score)."""
    runs = []
    labels = []
    zero = (0,) * len(CallMetrics.COUNTER_FIELDS)
    for trial in trials:
        parameters = {"trial": float(trial.index)}
        for target, value in zip(targets, trial.values):
            parameters[target] = value
        parameters["score"] = (
            math.nan if trial.score is None else float(trial.score)
        )
        runs.append(
            RunResult(
                controller="FACS",
                metrics=CallMetrics.from_counters(trial.counters or zero),
                parameters=parameters,
                seed=trial.index,
            )
        )
        labels.append(f"trial-{trial.index}")
    return MetricsFrame.from_run_results(runs, labels=labels)


def run_tuning(
    base: FLCDefinition,
    space: SearchSpace,
    strategy: str = "grid",
    objective: str = "mean_acceptance",
    direction: str = "maximize",
    request_counts: Sequence[int] = (10, 30),
    replications: int = 2,
    seed: int = 20070801,
    engine: str = "compiled",
    executor: SweepExecutor | None = None,
    population: int = 8,
    generations: int = 6,
    max_trials: int | None = None,
) -> TuningReport:
    """Search ``space`` around ``base`` and report the best candidate.

    The trial workload (request counts x replications, seeded) is fixed
    across all candidates and the paper baseline, so scores are directly
    comparable; ``executor`` only changes wall-clock, never the result.
    """
    if direction not in ("maximize", "minimize"):
        raise TuningError(
            f"direction must be 'maximize' or 'minimize', got {direction!r}"
        )
    if objective not in COMPARISON_METRICS:
        raise TuningError(
            f"unknown objective {objective!r}; available: "
            f"{list(COMPARISON_METRICS)}"
        )
    space.validate_against(base)
    slot = _slot_for(base)
    request_counts = tuple(int(c) for c in request_counts)
    search = strategy_by_name(
        strategy, space, seed=seed, population=population, generations=generations
    )

    # The paper baseline runs the identical workload with untouched values.
    baseline_payload, _ = _sweep_payload(
        base, slot, _PAPER_LABEL, request_counts, replications, seed, engine
    )
    baseline_score = _extract_objective(baseline_payload, objective, _PAPER_LABEL)

    trials: list[TrialResult] = []
    while True:
        batch = search.ask()
        if not batch:
            break
        if max_trials is not None:
            batch = batch[: max(0, max_trials - len(trials))]
            if not batch:
                break
        tasks = [
            _TrialTask(
                index=len(trials) + offset,
                values=values,
                base=base,
                space=space,
                slot=slot,
                objective=objective,
                request_counts=request_counts,
                replications=replications,
                seed=seed,
                engine=engine,
            )
            for offset, values in enumerate(batch)
        ]
        if executor is None:
            results = [_evaluate_trial(task) for task in tasks]
        else:
            results = executor.map(_evaluate_trial, tasks)
        trials.extend(results)
        # Strategies maximize internally; flip the sign for minimization so
        # the same selection code serves both directions.
        search.tell(
            [
                None
                if r.score is None
                else (r.score if direction == "maximize" else -r.score)
                for r in results
            ]
        )

    if not trials:
        raise TuningError("the strategy produced no candidates")

    best: TrialResult | None = None
    for trial in trials:
        if trial.score is None:
            continue
        if best is None or _better(trial.score, best.score, direction):
            best = trial
    if best is None:
        raise TuningError(
            "every candidate was infeasible; first failure: "
            f"{trials[0].error}"
        )

    best_definition = space.apply(base, best.values)
    tuned_payload, _ = _sweep_payload(
        best_definition, slot, _TUNED_LABEL, request_counts, replications, seed, engine
    )
    metrics = [objective] + [m for m in _REPORT_METRICS if m != objective]
    comparison_text, comparison = build_comparison(
        [_PAPER_LABEL, _TUNED_LABEL],
        [_MetricsView(baseline_payload), _MetricsView(tuned_payload)],
        metrics,
        baseline=_PAPER_LABEL,
    )

    return TuningReport(
        objective=objective,
        direction=direction,
        strategy=strategy,
        slot=slot,
        targets=space.targets(),
        baseline_values=space.baseline_values(base),
        baseline_score=baseline_score,
        trials=tuple(trials),
        best=best,
        best_definition=best_definition,
        frame=_trial_frame(trials, space.targets()),
        comparison_text=comparison_text,
        comparison=comparison,
    )


@dataclass(frozen=True)
class _MetricsView:
    """Duck-typed stand-in for a RunReport inside :func:`build_comparison`."""

    metrics: Mapping[str, Any]


def render_tuning_report(report: TuningReport) -> str:
    """The human-readable artifact of a tuning run."""
    sign = "+" if report.direction == "maximize" else "-"
    lines = [
        f"Rule-base tuning — {report.slot.upper()} "
        f"({report.strategy} search, {len(report.trials)} trials, "
        f"{sign}{report.objective})",
        "",
        f"targets: {', '.join(report.targets)}",
        f"paper baseline: {report.baseline_score:.4f} "
        f"at {list(report.baseline_values)}",
        f"best candidate: trial {report.best.index} -> "
        f"{report.best.score:.4f} at {list(report.best.values)}",
        "",
    ]
    ranked = sorted(
        (t for t in report.trials if t.score is not None),
        key=lambda t: (-t.score if report.direction == "maximize" else t.score, t.index),
    )
    rows = [
        [trial.index, *trial.values, round(trial.score, 4)]
        for trial in ranked[:10]
    ]
    lines.append(
        format_table(
            ["trial", *report.targets, report.objective],
            rows,
            title="Top candidates",
        )
    )
    failed = sum(1 for t in report.trials if t.score is None)
    if failed:
        lines.append(f"\ninfeasible candidates rejected: {failed}")
    lines.append("")
    lines.append(report.comparison_text)
    return "\n".join(lines)
