"""repro.tuning — automated rule-base tuning over controller definitions.

Searches the design space of the paper's fuzzy controllers: a
:class:`SearchSpace` names tunable membership break points and rule
weights inside a declarative :class:`~repro.fuzzy.definition.FLCDefinition`,
a strategy (exhaustive :class:`GridStrategy` or seeded
:class:`EvolutionaryStrategy`) proposes candidate value vectors, and the
engine scores each candidate by running the paper's acceptance sweep with
the candidate controller and extracting a registered comparison metric.
Generations fan over the shared sweep executor pool; results are
byte-identical at any worker count.

Quickstart::

    from repro.cac.facs.definitions import flc1_definition
    from repro.tuning import ParameterSpec, SearchSpace, run_tuning

    space = SearchSpace((
        ParameterSpec("mf.S.M.1", low=20.0, high=40.0),
        ParameterSpec("weight.12", choices=(0.5, 1.0)),
    ))
    report = run_tuning(flc1_definition(), space, strategy="evolutionary")
    print(report.best.score, report.best.values)

or, declaratively, the ``tuning`` scenario kind / ``repro tune`` CLI.
"""

from .space import ParameterSpec, SearchSpace, TuningError
from .strategies import (
    STRATEGIES,
    EvolutionaryStrategy,
    GridStrategy,
    SearchStrategy,
    strategy_by_name,
)
from .engine import TrialResult, TuningReport, render_tuning_report, run_tuning

__all__ = [
    "TuningError",
    "ParameterSpec",
    "SearchSpace",
    "STRATEGIES",
    "SearchStrategy",
    "GridStrategy",
    "EvolutionaryStrategy",
    "strategy_by_name",
    "TrialResult",
    "TuningReport",
    "run_tuning",
    "render_tuning_report",
]
