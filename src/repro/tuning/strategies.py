"""Candidate-generation strategies for the tuning subsystem.

Both strategies speak the same ask/tell protocol the tuning engine drives:
``ask()`` returns the next batch of candidate value vectors (one batch =
one generation), the engine evaluates the whole batch — possibly fanned
over a worker pool — and feeds the scores back through ``tell()``.  All
randomness comes from one ``numpy`` generator seeded at construction and
advanced only inside ``ask``/``tell``, and ``tell`` always receives the
batch in submission order, so a search trajectory is a pure function of
(space, seed, batch results) — byte-identical no matter how many workers
evaluated each batch.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from ..registry import Registry
from .space import SearchSpace, TuningError

__all__ = [
    "STRATEGIES",
    "SearchStrategy",
    "GridStrategy",
    "EvolutionaryStrategy",
    "strategy_by_name",
]

#: Registered strategy constructors, keyed by the name scenarios use.
STRATEGIES: Registry[type] = Registry("tuning strategy")


class SearchStrategy:
    """Ask/tell interface both concrete strategies implement."""

    def ask(self) -> list[tuple[float, ...]]:
        """Next batch of candidate value vectors ([] when exhausted)."""
        raise NotImplementedError

    def tell(self, scores: Sequence[float | None]) -> None:
        """Feed back the scores of the last batch, in submission order.

        ``None`` marks an infeasible candidate (its definition failed
        validation); strategies treat those as worst-possible.
        """
        raise NotImplementedError


@STRATEGIES.register("grid")
class GridStrategy(SearchStrategy):
    """Exhaustive cartesian product of every spec's discrete values.

    Deterministic by construction: the product is enumerated in spec
    declaration order, batched into fixed-size generations.
    """

    def __init__(self, space: SearchSpace, batch_size: int = 16, **_: object):
        if batch_size < 1:
            raise TuningError(f"batch_size must be >= 1, got {batch_size}")
        self._product = itertools.product(
            *(spec.grid_values() for spec in space.specs)
        )
        self._batch_size = batch_size

    def ask(self) -> list[tuple[float, ...]]:
        return [
            tuple(values)
            for values in itertools.islice(self._product, self._batch_size)
        ]

    def tell(self, scores: Sequence[float | None]) -> None:
        pass  # exhaustive enumeration ignores feedback


@STRATEGIES.register("evolutionary")
class EvolutionaryStrategy(SearchStrategy):
    """Seeded (mu + lambda)-style evolutionary search.

    Generation 0 samples ``population`` uniform vectors inside each spec's
    bounds (choice specs sample from their choice list).  Every later
    generation keeps the ``elite`` best-so-far vectors as parents and fills
    the batch with mutated offspring: gaussian perturbation (sigma =
    ``mutation_scale`` x the bound width) clipped back into bounds for
    bounded specs, a re-draw with probability ``mutation_scale`` for choice
    specs.  Ties between equal scores break on submission order, so the
    whole trajectory is deterministic for a fixed seed.
    """

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        population: int = 10,
        generations: int = 5,
        elite: int = 2,
        mutation_scale: float = 0.15,
        **_: object,
    ):
        if population < 1:
            raise TuningError(f"population must be >= 1, got {population}")
        if generations < 1:
            raise TuningError(f"generations must be >= 1, got {generations}")
        if not 1 <= elite <= population:
            raise TuningError(
                f"elite must lie in [1, population={population}], got {elite}"
            )
        if not 0.0 < mutation_scale <= 1.0:
            raise TuningError(
                f"mutation_scale must lie in (0, 1], got {mutation_scale}"
            )
        self._space = space
        self._rng = np.random.default_rng(seed)
        self._population = population
        self._generations_left = generations
        self._elite = elite
        self._mutation_scale = mutation_scale
        #: (score, submission index, vector) of every candidate told so far.
        self._history: list[tuple[float, int, tuple[float, ...]]] = []
        self._submitted = 0
        self._pending: list[tuple[float, ...]] | None = None

    # -- protocol --------------------------------------------------------

    def ask(self) -> list[tuple[float, ...]]:
        if self._pending is not None:
            raise TuningError("ask() called twice without tell()")
        if self._generations_left == 0:
            return []
        self._generations_left -= 1
        if self._history:
            batch = [self._offspring() for _ in range(self._population)]
        else:
            batch = [self._random_vector() for _ in range(self._population)]
        self._pending = batch
        return list(batch)

    def tell(self, scores: Sequence[float | None]) -> None:
        if self._pending is None:
            raise TuningError("tell() called without a pending ask()")
        if len(scores) != len(self._pending):
            raise TuningError(
                f"got {len(scores)} scores for {len(self._pending)} candidates"
            )
        for vector, score in zip(self._pending, scores):
            effective = -np.inf if score is None else float(score)
            self._history.append((effective, self._submitted, vector))
            self._submitted += 1
        self._pending = None

    # -- internals -------------------------------------------------------

    def _parents(self) -> list[tuple[float, ...]]:
        ranked = sorted(self._history, key=lambda item: (-item[0], item[1]))
        return [vector for _, _, vector in ranked[: self._elite]]

    def _random_vector(self) -> tuple[float, ...]:
        values = []
        for spec in self._space.specs:
            if spec.choices is not None:
                values.append(
                    float(spec.choices[self._rng.integers(len(spec.choices))])
                )
            else:
                low, high = spec.bounds()
                values.append(float(self._rng.uniform(low, high)))
        return tuple(values)

    def _offspring(self) -> tuple[float, ...]:
        parents = self._parents()
        parent = parents[self._rng.integers(len(parents))]
        values = []
        for spec, value in zip(self._space.specs, parent):
            if spec.choices is not None:
                if self._rng.uniform() < self._mutation_scale:
                    value = float(spec.choices[self._rng.integers(len(spec.choices))])
                values.append(float(value))
            else:
                low, high = spec.bounds()
                sigma = self._mutation_scale * (high - low)
                mutated = value + self._rng.normal(0.0, sigma)
                values.append(float(min(max(mutated, low), high)))
        return tuple(values)


def strategy_by_name(name: str, space: SearchSpace, **options) -> SearchStrategy:
    """Construct a registered strategy (``"grid"``, ``"evolutionary"``)."""
    return STRATEGIES.get(name)(space, **options)
