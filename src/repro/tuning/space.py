"""Parameter search spaces over declarative controller definitions.

A :class:`SearchSpace` names a set of tunable scalars inside one
:class:`~repro.fuzzy.definition.FLCDefinition` — membership-function break
points and rule weights — each with either continuous bounds or a discrete
choice list.  ``apply`` substitutes a value vector into a base definition,
re-running the definition's own validation, so an infeasible candidate
(say, a mutated break-point vector that is no longer monotonic) fails
loudly with the variable/term context instead of producing a silently
broken controller.

Targets are dotted paths:

``mf.<variable>.<term>.<index>``
    the ``index``-th shape parameter of that term's membership function
    (e.g. ``mf.S.M.1`` is the peak of FLC1's *Middle* speed triangle);
``weight.<rule label>``
    the weight of the rule with that label (``weight.12``).

Everything here is frozen and built from primitives, so spaces are
hashable, picklable and embed losslessly in scenario JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping

import numpy as np

from ..fuzzy.definition import (
    DefinitionError,
    FLCDefinition,
    MembershipDef,
    RuleDef,
    TermDef,
    VariableDef,
)

__all__ = ["TuningError", "ParameterSpec", "SearchSpace"]


class TuningError(ValueError):
    """A search space, strategy or tuning run is misconfigured."""


@dataclass(frozen=True)
class ParameterSpec:
    """One tunable scalar: a target path plus bounds or a choice list."""

    target: str
    low: float | None = None
    high: float | None = None
    choices: tuple[float, ...] | None = None
    #: Number of evenly spaced grid points the grid strategy samples from a
    #: bounded (``low``/``high``) spec; ignored for ``choices`` specs.
    steps: int = 5

    def __post_init__(self) -> None:
        if not isinstance(self.target, str) or not self.target:
            raise TuningError(
                f"parameter target must be a non-empty string, got {self.target!r}"
            )
        _parse_target(self.target)  # validate the path grammar eagerly
        if self.choices is not None:
            if self.low is not None or self.high is not None:
                raise TuningError(
                    f"parameter {self.target!r} must use either choices or "
                    f"low/high bounds, not both"
                )
            values = tuple(float(v) for v in self.choices)
            if len(values) < 1:
                raise TuningError(
                    f"parameter {self.target!r} needs at least one choice"
                )
            object.__setattr__(self, "choices", values)
        else:
            if self.low is None or self.high is None:
                raise TuningError(
                    f"parameter {self.target!r} needs low and high bounds "
                    f"(or a choices list)"
                )
            object.__setattr__(self, "low", float(self.low))
            object.__setattr__(self, "high", float(self.high))
            if not self.low < self.high:
                raise TuningError(
                    f"parameter {self.target!r} bounds must satisfy "
                    f"low < high, got low={self.low}, high={self.high}"
                )
        if not isinstance(self.steps, int) or isinstance(self.steps, bool):
            raise TuningError(
                f"parameter {self.target!r} steps must be an int, got "
                f"{self.steps!r}"
            )
        if self.steps < 2:
            raise TuningError(
                f"parameter {self.target!r} steps must be >= 2, got {self.steps}"
            )

    def grid_values(self) -> tuple[float, ...]:
        """The discrete values the grid strategy enumerates for this spec."""
        if self.choices is not None:
            return self.choices
        return tuple(float(v) for v in np.linspace(self.low, self.high, self.steps))

    def bounds(self) -> tuple[float, float]:
        """(low, high) range the evolutionary strategy samples within."""
        if self.choices is not None:
            return (min(self.choices), max(self.choices))
        return (self.low, self.high)  # type: ignore[return-value]

    def to_dict(self) -> dict[str, Any]:
        if self.choices is not None:
            return {"target": self.target, "choices": list(self.choices)}
        return {
            "target": self.target,
            "low": self.low,
            "high": self.high,
            "steps": self.steps,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ParameterSpec":
        if not isinstance(payload, Mapping):
            raise TuningError(
                f"parameter spec must be a mapping, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"target", "low", "high", "choices", "steps"})
        if unknown:
            raise TuningError(f"unknown parameter spec fields: {unknown}")
        choices = payload.get("choices")
        return cls(
            target=payload.get("target", ""),
            low=payload.get("low"),
            high=payload.get("high"),
            choices=None if choices is None else tuple(choices),
            steps=payload.get("steps", 5),
        )


@dataclass(frozen=True)
class SearchSpace:
    """An ordered set of :class:`ParameterSpec` over one base definition."""

    specs: tuple[ParameterSpec, ...]

    def __post_init__(self) -> None:
        out = []
        for spec in self.specs:
            if isinstance(spec, ParameterSpec):
                out.append(spec)
            elif isinstance(spec, Mapping):
                out.append(ParameterSpec.from_dict(spec))
            else:
                raise TuningError(
                    f"each spec must be a ParameterSpec or mapping, got "
                    f"{type(spec).__name__}"
                )
        object.__setattr__(self, "specs", tuple(out))
        if not self.specs:
            raise TuningError("search space needs at least one parameter")
        targets = [spec.target for spec in self.specs]
        duplicates = sorted({t for t in targets if targets.count(t) > 1})
        if duplicates:
            raise TuningError(f"duplicate parameter targets: {duplicates}")

    def __len__(self) -> int:
        return len(self.specs)

    def targets(self) -> tuple[str, ...]:
        return tuple(spec.target for spec in self.specs)

    def validate_against(self, definition: FLCDefinition) -> None:
        """Check every target resolves inside ``definition`` (loudly)."""
        for spec in self.specs:
            _read_target(definition, spec.target)

    def apply(self, definition: FLCDefinition, values: Iterable[float]) -> FLCDefinition:
        """Substitute a value vector into ``definition`` (revalidating it)."""
        values = tuple(float(v) for v in values)
        if len(values) != len(self.specs):
            raise TuningError(
                f"value vector has {len(values)} entries for "
                f"{len(self.specs)} parameters"
            )
        for spec, value in zip(self.specs, values):
            definition = _write_target(definition, spec.target, value)
        return definition

    def baseline_values(self, definition: FLCDefinition) -> tuple[float, ...]:
        """The untouched (paper) value of every target, in spec order."""
        return tuple(_read_target(definition, spec.target) for spec in self.specs)

    def to_dict(self) -> list[dict[str, Any]]:
        return [spec.to_dict() for spec in self.specs]

    @classmethod
    def from_dict(cls, payload: Iterable[Mapping[str, Any]]) -> "SearchSpace":
        return cls(specs=tuple(payload))


# -- target path resolution ---------------------------------------------


def _parse_target(target: str) -> tuple[str, ...]:
    parts = tuple(target.split("."))
    if parts[0] == "mf":
        if len(parts) != 4:
            raise TuningError(
                f"membership target must be 'mf.<variable>.<term>.<index>', "
                f"got {target!r}"
            )
        if not parts[3].isdigit():
            raise TuningError(
                f"membership target index must be a non-negative integer, "
                f"got {target!r}"
            )
        return parts
    if parts[0] == "weight":
        if len(parts) != 2 or not parts[1]:
            raise TuningError(
                f"weight target must be 'weight.<rule label>', got {target!r}"
            )
        return parts
    raise TuningError(
        f"unknown target {target!r}; expected 'mf.<variable>.<term>.<index>' "
        f"or 'weight.<rule label>'"
    )


def _find_term(variable: VariableDef, name: str, target: str) -> TermDef:
    for term in variable.terms:
        if term.name == name:
            return term
    raise TuningError(
        f"target {target!r}: variable {variable.name!r} has no term {name!r}; "
        f"available: {list(variable.term_names())}"
    )


def _read_target(definition: FLCDefinition, target: str) -> float:
    parts = _parse_target(target)
    try:
        if parts[0] == "mf":
            variable = definition.variable(parts[1])
            term = _find_term(variable, parts[2], target)
            index = int(parts[3])
            params = term.membership.params
            if index >= len(params):
                raise TuningError(
                    f"target {target!r}: {term.membership.kind} membership "
                    f"has {len(params)} parameters"
                )
            return params[index]
        return definition.rule_by_label(parts[1]).weight
    except DefinitionError as exc:
        raise TuningError(f"target {target!r}: {exc}") from exc


def _write_target(
    definition: FLCDefinition, target: str, value: float
) -> FLCDefinition:
    parts = _parse_target(target)
    _read_target(definition, target)  # resolve (and bounds-check) first
    if parts[0] == "mf":
        variable = definition.variable(parts[1])
        term = _find_term(variable, parts[2], target)
        index = int(parts[3])
        params = list(term.membership.params)
        params[index] = value
        membership = MembershipDef(term.membership.kind, tuple(params))
        terms = tuple(
            TermDef(t.name, membership) if t.name == term.name else t
            for t in variable.terms
        )
        return definition.with_variable(replace(variable, terms=terms))
    rule = definition.rule_by_label(parts[1])
    return definition.with_rule(_reweighted(rule, value))


def _reweighted(rule: RuleDef, weight: float) -> RuleDef:
    try:
        return replace(rule, weight=weight)
    except DefinitionError as exc:
        raise TuningError(f"rule {rule.label!r}: {exc}") from exc
