"""Multi-Priority Threshold admission control.

The paper's related work (Bartolini & Chlamtac, PIMRC 2002) shows that, under
some assumptions, the optimal CAC policy for a heterogeneous multi-class
system has the shape of a multi-priority threshold policy: each service class
is admitted only while the occupancy is below a class-specific threshold, so
wide calls are cut off earlier than narrow ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cellular.calls import Call, CallType
from ..cellular.cell import BaseStation
from ..cellular.traffic import PAPER_BANDWIDTH_UNITS, ServiceClass
from .base import AdmissionController, AdmissionDecision, DecisionOutcome

__all__ = ["ThresholdPolicyConfig", "ThresholdPolicyController"]


def _default_thresholds() -> dict[ServiceClass, int]:
    # Text keeps nearly the whole pool, voice slightly less, video least —
    # reflecting that wide calls displace many narrow ones.
    return {
        ServiceClass.TEXT: PAPER_BANDWIDTH_UNITS - 2,
        ServiceClass.DATA: PAPER_BANDWIDTH_UNITS - 4,
        ServiceClass.VOICE: PAPER_BANDWIDTH_UNITS - 6,
        ServiceClass.VIDEO: PAPER_BANDWIDTH_UNITS - 12,
    }


@dataclass(frozen=True)
class ThresholdPolicyConfig:
    """Per-class occupancy thresholds (in BU) for new-call admission."""

    thresholds_bu: dict[ServiceClass, int] = field(default_factory=_default_thresholds)

    def __post_init__(self) -> None:
        if not self.thresholds_bu:
            raise ValueError("at least one class threshold is required")
        for service, threshold in self.thresholds_bu.items():
            if threshold < 0:
                raise ValueError(
                    f"threshold for {service.value} must be non-negative, got {threshold}"
                )

    def threshold_for(self, service: ServiceClass) -> int:
        try:
            return self.thresholds_bu[service]
        except KeyError:
            raise KeyError(f"no threshold configured for service class {service.value}") from None


class ThresholdPolicyController(AdmissionController):
    """Admit new calls of a class only below that class's occupancy threshold."""

    name = "Threshold"

    def __init__(self, config: ThresholdPolicyConfig | None = None):
        self._config = config or ThresholdPolicyConfig()

    @property
    def config(self) -> ThresholdPolicyConfig:
        return self._config

    def decide(self, call: Call, station: BaseStation, now: float) -> AdmissionDecision:
        fits = station.can_fit(call.bandwidth_units)
        if call.call_type is CallType.HANDOFF:
            accepted = fits
            threshold = station.capacity_bu
        else:
            threshold = self._config.threshold_for(call.service)
            accepted = fits and (station.used_bu + call.bandwidth_units) <= threshold

        if accepted:
            reason = (
                f"{call.service.value} call admitted below its threshold {threshold} BU"
            )
        elif not fits:
            reason = (
                f"insufficient bandwidth: need {call.bandwidth_units} BU, "
                f"{station.free_bu} BU free"
            )
        else:
            reason = (
                f"{call.service.value} call blocked: occupancy {station.used_bu} BU + "
                f"{call.bandwidth_units} BU exceeds class threshold {threshold} BU"
            )
        headroom = threshold - station.used_bu - call.bandwidth_units
        return AdmissionDecision(
            accepted=accepted,
            score=max(-1.0, min(1.0, headroom / station.capacity_bu)),
            outcome=DecisionOutcome.ACCEPT if accepted else DecisionOutcome.REJECT,
            reason=reason,
            diagnostics={
                "class_threshold_bu": float(threshold),
                "used_bu": float(station.used_bu),
            },
        )
