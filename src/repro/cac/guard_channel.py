"""Guard Channel (cutoff priority) admission control.

The classic handoff-prioritising scheme referenced throughout the CAC
literature the paper surveys: a number of bandwidth units are set aside as
*guard* capacity that only handoff calls may use; new calls are admitted only
while the occupancy stays below ``capacity - guard``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cellular.calls import Call, CallType
from ..cellular.cell import BaseStation
from .base import AdmissionController, AdmissionDecision, DecisionOutcome

__all__ = ["GuardChannelConfig", "GuardChannelController"]


@dataclass(frozen=True)
class GuardChannelConfig:
    """Configuration of the guard-channel policy."""

    guard_bu: int = 5

    def __post_init__(self) -> None:
        if self.guard_bu < 0:
            raise ValueError(f"guard_bu must be non-negative, got {self.guard_bu}")


class GuardChannelController(AdmissionController):
    """Reserve ``guard_bu`` bandwidth units exclusively for handoff calls."""

    name = "GuardChannel"

    def __init__(self, config: GuardChannelConfig | None = None):
        self._config = config or GuardChannelConfig()

    @property
    def config(self) -> GuardChannelConfig:
        return self._config

    def decide(self, call: Call, station: BaseStation, now: float) -> AdmissionDecision:
        fits = station.can_fit(call.bandwidth_units)
        if call.call_type is CallType.HANDOFF:
            accepted = fits
            limit = station.capacity_bu
        else:
            limit = station.capacity_bu - self._config.guard_bu
            accepted = fits and (station.used_bu + call.bandwidth_units) <= limit

        if accepted:
            reason = f"admitted within limit {limit} BU ({call.call_type.value} call)"
        elif not fits:
            reason = (
                f"insufficient bandwidth: need {call.bandwidth_units} BU, "
                f"{station.free_bu} BU free"
            )
        else:
            reason = (
                f"new call blocked by guard capacity: occupancy {station.used_bu} BU + "
                f"{call.bandwidth_units} BU exceeds limit {limit} BU"
            )
        headroom = limit - station.used_bu - call.bandwidth_units
        return AdmissionDecision(
            accepted=accepted,
            score=max(-1.0, min(1.0, headroom / station.capacity_bu)),
            outcome=DecisionOutcome.ACCEPT if accepted else DecisionOutcome.REJECT,
            reason=reason,
            diagnostics={
                "guard_bu": float(self._config.guard_bu),
                "used_bu": float(station.used_bu),
            },
        )
