"""Fractional Guard Channel admission control.

A randomised refinement of the guard-channel policy: above a soft threshold,
new calls are admitted only with a probability that decreases linearly with
occupancy, reaching zero at the hard limit.  Handoff calls are always
admitted when they fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cellular.calls import Call, CallType
from ..cellular.cell import BaseStation
from ..des.rng import RandomStream
from .base import AdmissionController, AdmissionDecision, DecisionOutcome

__all__ = ["FractionalGuardConfig", "FractionalGuardController"]


@dataclass(frozen=True)
class FractionalGuardConfig:
    """Configuration of the fractional guard-channel policy."""

    #: Occupancy (BU) below which every new call is admitted if it fits.
    soft_threshold_bu: int = 25
    #: Occupancy (BU) at and above which no new call is admitted.
    hard_threshold_bu: int = 38

    def __post_init__(self) -> None:
        if self.soft_threshold_bu < 0:
            raise ValueError(
                f"soft_threshold_bu must be non-negative, got {self.soft_threshold_bu}"
            )
        if self.hard_threshold_bu <= self.soft_threshold_bu:
            raise ValueError(
                f"hard_threshold_bu ({self.hard_threshold_bu}) must exceed "
                f"soft_threshold_bu ({self.soft_threshold_bu})"
            )


class FractionalGuardController(AdmissionController):
    """Probabilistically thin new calls as the occupancy approaches capacity."""

    name = "FractionalGuard"

    def __init__(
        self,
        config: FractionalGuardConfig | None = None,
        rng: RandomStream | None = None,
    ):
        self._config = config or FractionalGuardConfig()
        self._rng = rng or RandomStream("fractional-guard", seed=20070613)

    @property
    def config(self) -> FractionalGuardConfig:
        return self._config

    def admission_probability(self, occupancy_bu: float) -> float:
        """Probability of admitting a new call at the given occupancy."""
        soft = self._config.soft_threshold_bu
        hard = self._config.hard_threshold_bu
        if occupancy_bu <= soft:
            return 1.0
        if occupancy_bu >= hard:
            return 0.0
        return (hard - occupancy_bu) / (hard - soft)

    def decide(self, call: Call, station: BaseStation, now: float) -> AdmissionDecision:
        fits = station.can_fit(call.bandwidth_units)
        probability = 1.0
        if call.call_type is CallType.HANDOFF:
            accepted = fits
        else:
            probability = self.admission_probability(station.used_bu)
            accepted = fits and self._rng.bernoulli(probability)

        if not fits:
            reason = (
                f"insufficient bandwidth: need {call.bandwidth_units} BU, "
                f"{station.free_bu} BU free"
            )
        elif accepted:
            reason = (
                f"admitted with probability {probability:.2f} "
                f"at {station.used_bu} BU occupancy"
            )
        else:
            reason = (
                f"thinned with probability {1 - probability:.2f} "
                f"at {station.used_bu} BU occupancy"
            )
        return AdmissionDecision(
            accepted=accepted,
            score=2.0 * probability - 1.0,
            outcome=DecisionOutcome.ACCEPT if accepted else DecisionOutcome.REJECT,
            reason=reason,
            diagnostics={
                "admission_probability": probability,
                "used_bu": float(station.used_bu),
            },
        )
