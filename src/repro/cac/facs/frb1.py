"""FRB1 — the 42-rule fuzzy rule base of FLC1 (Table 1 of the paper).

The table is transcribed verbatim: rule index, speed term, angle term,
distance term and the correction-value consequent.  The helper functions
materialise it either as rule-DSL strings or as a list of
``(S, A, D, Cv)`` tuples for table rendering and cross-checking.
"""

from __future__ import annotations

from ...fuzzy.rules import FuzzyRule
from ...fuzzy.parser import parse_rule

__all__ = ["FRB1_TABLE", "frb1_rules", "frb1_rule_strings"]

#: Table 1 of the paper: (rule index, S, A, D, Cv).
FRB1_TABLE: tuple[tuple[int, str, str, str, str], ...] = (
    (0, "Sl", "B1", "N", "Cv3"),
    (1, "Sl", "B1", "F", "Cv1"),
    (2, "Sl", "L1", "N", "Cv4"),
    (3, "Sl", "L1", "F", "Cv2"),
    (4, "Sl", "L2", "N", "Cv5"),
    (5, "Sl", "L2", "F", "Cv3"),
    (6, "Sl", "St", "N", "Cv9"),
    (7, "Sl", "St", "F", "Cv3"),
    (8, "Sl", "R1", "N", "Cv5"),
    (9, "Sl", "R1", "F", "Cv2"),
    (10, "Sl", "R2", "N", "Cv4"),
    (11, "Sl", "R2", "F", "Cv2"),
    (12, "Sl", "B2", "N", "Cv3"),
    (13, "Sl", "B2", "F", "Cv1"),
    (14, "M", "B1", "N", "Cv2"),
    (15, "M", "B1", "F", "Cv1"),
    (16, "M", "L1", "N", "Cv4"),
    (17, "M", "L1", "F", "Cv1"),
    (18, "M", "L2", "N", "Cv8"),
    (19, "M", "L2", "F", "Cv5"),
    (20, "M", "St", "N", "Cv9"),
    (21, "M", "St", "F", "Cv7"),
    (22, "M", "R1", "N", "Cv8"),
    (23, "M", "R1", "F", "Cv5"),
    (24, "M", "R2", "N", "Cv4"),
    (25, "M", "R2", "F", "Cv1"),
    (26, "M", "B2", "N", "Cv2"),
    (27, "M", "B2", "F", "Cv1"),
    (28, "Fa", "B1", "N", "Cv1"),
    (29, "Fa", "B1", "F", "Cv1"),
    (30, "Fa", "L1", "N", "Cv1"),
    (31, "Fa", "L1", "F", "Cv2"),
    (32, "Fa", "L2", "N", "Cv6"),
    (33, "Fa", "L2", "F", "Cv8"),
    (34, "Fa", "St", "N", "Cv9"),
    (35, "Fa", "St", "F", "Cv9"),
    (36, "Fa", "R1", "N", "Cv6"),
    (37, "Fa", "R1", "F", "Cv8"),
    (38, "Fa", "R2", "N", "Cv1"),
    (39, "Fa", "R2", "F", "Cv2"),
    (40, "Fa", "B2", "N", "Cv1"),
    (41, "Fa", "B2", "F", "Cv1"),
)


def frb1_rule_strings() -> list[str]:
    """Render Table 1 in the rule DSL (one string per rule, in table order)."""
    return [
        f"IF S is {speed} AND A is {angle} AND D is {distance} THEN Cv is {correction}"
        for _, speed, angle, distance, correction in FRB1_TABLE
    ]


def frb1_rules() -> list[FuzzyRule]:
    """Table 1 as :class:`FuzzyRule` objects labelled with the paper's rule indices."""
    return [
        parse_rule(text, label=str(index))
        for (index, *_), text in zip(FRB1_TABLE, frb1_rule_strings())
    ]
