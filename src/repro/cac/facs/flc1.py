"""FLC1 — the fuzzy mobility-prediction controller (Section 3.1).

Inputs: user Speed ``S`` (km/h), user Angle ``A`` (degrees, relative to the
bearing towards the base station) and Distance ``D`` between user and BS
(km).  Output: Correction value ``Cv ∈ [0, 1]`` expressing how favourable
the user's predicted trajectory is — 1 for a fast user heading straight at a
nearby BS, 0 for a user heading away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cellular.mobility import UserState
from ...fuzzy.controller import FuzzyController
from ...fuzzy.defuzzification import Defuzzifier, DEFAULT_DEFUZZIFIER
from ...fuzzy.definition import DefinitionError, FLCDefinition
from .config import DEFAULT_FLC1_CONFIG, FLC1Config
from .frb1 import frb1_rules

__all__ = ["FLC1", "CorrectionResult"]


def _check_definition_shape(
    definition: FLCDefinition,
    inputs: tuple[str, ...],
    outputs: tuple[str, ...],
    slot: str,
) -> None:
    """Reject a definition whose variables don't fit the FACS pipeline slot."""
    if definition.input_names() != inputs or definition.output_names() != outputs:
        raise DefinitionError(
            f"definition {definition.name!r} does not fit the {slot} slot: "
            f"expected inputs {list(inputs)} and outputs {list(outputs)}, "
            f"got inputs {list(definition.input_names())} and outputs "
            f"{list(definition.output_names())}"
        )


@dataclass(frozen=True)
class CorrectionResult:
    """FLC1 output with diagnostics."""

    correction_value: float
    dominant_rule: str
    inputs: UserState

    def __post_init__(self) -> None:
        if not 0.0 <= self.correction_value <= 1.0:
            raise ValueError(
                f"correction value must lie in [0, 1], got {self.correction_value}"
            )


class FLC1:
    """The mobility-prediction fuzzy controller of the FACS system."""

    def __init__(
        self,
        config: FLC1Config = DEFAULT_FLC1_CONFIG,
        defuzzifier: Defuzzifier = DEFAULT_DEFUZZIFIER,
        engine: str = "compiled",
        definition: FLCDefinition | None = None,
    ):
        self._config = config
        self._definition = definition
        if definition is not None:
            _check_definition_shape(definition, ("S", "A", "D"), ("Cv",), "FLC1")
            self._controller = definition.build_controller(
                engine=engine,
                defuzzifier=(
                    None if defuzzifier is DEFAULT_DEFUZZIFIER else defuzzifier
                ),
            )
        else:
            self._controller = FuzzyController(
                name="FLC1",
                inputs=[
                    config.speed_variable(),
                    config.angle_variable(),
                    config.distance_variable(),
                ],
                outputs=[config.correction_variable()],
                rules=frb1_rules(),
                defuzzifier=defuzzifier,
                engine=engine,
            )

    # ------------------------------------------------------------------
    @property
    def config(self) -> FLC1Config:
        return self._config

    @property
    def definition(self) -> FLCDefinition | None:
        """The declarative definition this controller was built from, if any."""
        return self._definition

    @property
    def controller(self) -> FuzzyController:
        """The underlying generic fuzzy controller (for introspection/tests)."""
        return self._controller

    @property
    def rule_count(self) -> int:
        return len(self._controller.rule_base)

    # ------------------------------------------------------------------
    def correction_value(
        self, speed_kmh: float, angle_deg: float, distance_km: float
    ) -> float:
        """Compute Cv for raw crisp inputs (clamped to their universes)."""
        return self._controller.compute(S=speed_kmh, A=angle_deg, D=distance_km)

    def correction_values(
        self,
        speeds_kmh: np.ndarray,
        angles_deg: np.ndarray,
        distances_km: np.ndarray,
    ) -> np.ndarray:
        """Cv for whole vectors of observations in one tensorized pass.

        Bit-identical to calling :meth:`evaluate` per element (including its
        [0, 1] clip): the compiled engine evaluates the batch through its
        antecedent/consequent tensors, the reference engine falls back to a
        per-row loop.
        """
        return np.clip(
            self._controller.compute_batch(S=speeds_kmh, A=angles_deg, D=distances_km),
            0.0,
            1.0,
        )

    def evaluate(self, user: UserState) -> CorrectionResult:
        """Compute Cv for a :class:`UserState`, with rule diagnostics."""
        crisp = self._controller.crisp_decision(
            S=user.speed_kmh, A=user.angle_deg, D=user.distance_km
        )
        return CorrectionResult(
            correction_value=min(max(crisp["Cv"], 0.0), 1.0),
            dominant_rule=crisp.dominant_label,
            inputs=user,
        )
