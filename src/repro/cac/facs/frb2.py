"""FRB2 — the 27-rule fuzzy rule base of FLC2 (Table 2 of the paper).

Transcribed verbatim from Table 2: rule index, correction-value term (Bad /
Normal / Good), request term (Text / Voice / Video), counter-state term
(Small / Middle / Full) and the accept/reject consequent (R / WR / NRNA /
WA / A).
"""

from __future__ import annotations

from ...fuzzy.rules import FuzzyRule
from ...fuzzy.parser import parse_rule

__all__ = ["FRB2_TABLE", "frb2_rules", "frb2_rule_strings"]

#: Table 2 of the paper: (rule index, Cv, R, Cs, A/R).
FRB2_TABLE: tuple[tuple[int, str, str, str, str], ...] = (
    (0, "B", "T", "S", "A"),
    (1, "B", "T", "M", "NRNA"),
    (2, "B", "T", "F", "NRNA"),
    (3, "B", "Vo", "S", "A"),
    (4, "B", "Vo", "M", "NRNA"),
    (5, "B", "Vo", "F", "WR"),
    (6, "B", "Vi", "S", "WA"),
    (7, "B", "Vi", "M", "NRNA"),
    (8, "B", "Vi", "F", "WR"),
    (9, "N", "T", "S", "A"),
    (10, "N", "T", "M", "NRNA"),
    (11, "N", "T", "F", "NRNA"),
    (12, "N", "Vo", "S", "A"),
    (13, "N", "Vo", "M", "NRNA"),
    (14, "N", "Vo", "F", "NRNA"),
    (15, "N", "Vi", "S", "WA"),
    (16, "N", "Vi", "M", "NRNA"),
    (17, "N", "Vi", "F", "NRNA"),
    (18, "G", "T", "S", "A"),
    (19, "G", "T", "M", "A"),
    (20, "G", "T", "F", "NRNA"),
    (21, "G", "Vo", "S", "A"),
    (22, "G", "Vo", "M", "A"),
    (23, "G", "Vo", "F", "WR"),
    (24, "G", "Vi", "S", "A"),
    (25, "G", "Vi", "M", "A"),
    (26, "G", "Vi", "F", "R"),
)


def frb2_rule_strings() -> list[str]:
    """Render Table 2 in the rule DSL (one string per rule, in table order)."""
    return [
        f"IF Cv is {correction} AND R is {request} AND Cs is {counter} THEN AR is {decision}"
        for _, correction, request, counter, decision in FRB2_TABLE
    ]


def frb2_rules() -> list[FuzzyRule]:
    """Table 2 as :class:`FuzzyRule` objects labelled with the paper's rule indices."""
    return [
        parse_rule(text, label=str(index))
        for (index, *_), text in zip(FRB2_TABLE, frb2_rule_strings())
    ]
