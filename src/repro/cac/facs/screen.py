"""Certified decision screening for the FACS cascade.

The trace pipeline only needs the *boolean* admission verdict — "is the
defuzzified A/R score above the threshold?" — yet the score path pays for
full dense-grid aggregation and centroid integration in both FLC stages for
every request.  :class:`DecisionScreen` answers the boolean directly for the
overwhelming majority of rows using certified interval bounds
(:class:`repro.fuzzy.bounds.CentroidBoundTables`), and evaluates *exactly*
— through the very same batched engine paths the oracle uses — only the
rows whose bounds straddle the threshold.  Decisions are therefore
byte-identical to ``score_columns(...) > threshold`` by construction, never
by tolerance.

How a batch flows through the screen:

1. **Exact FLC1 front end.**  Fuzzification and rule firing strengths are
   cheap (a few vector ops over ~40 rules); the screen runs them exactly
   and reduces to per-consequent-term strengths — the only quantities the
   aggregation stage depends on.
2. **FLC1 correction interval.**  Bound tables turn the exact term
   strengths into a certified interval for the correction value ``Cv``
   (FLC1's defuzzified, [0, 1]-clipped output).
3. **FLC2 cell lookup.**  FLC2's other two inputs are effectively discrete
   in the trace pipeline (bandwidth ∈ {1, 5, 10} BU, occupancy an integer),
   so for each ``(R, Cs)`` pair the screen lazily builds a one-dimensional
   table over ``Cv`` cells: per cell, interval rule strengths (degree
   endpoints are certified because triangular/trapezoidal memberships are
   quasiconcave — including ``Triangular``'s ``np.isclose`` peak band,
   which gets its own guard cells forced to an upper bound of 1), then
   certified score bounds, collapsing to a per-cell verdict: accept,
   reject, or ambiguous.  Cells whose verdict is ambiguous are split and
   re-bounded adaptively, so the undecidable band shrinks to the region
   where the score genuinely pins the threshold (e.g. the exact-zero
   plateaus of symmetric surfaces).  Prefix sums answer "do all cells of
   an interval agree?" in O(1).
4. **Exact fallback.**  Rows whose correction interval spans disagreeing
   cells finish FLC1 exactly — reusing the firing strengths from step 1,
   and bit-identical because batched engine rows are independent; rows
   landing in an *ambiguous* cell additionally run exact FLC2.  Rows where
   FLC1's rule base did not fire make the screen defer the whole batch to
   the exact path so the diagnostic error is raised with its canonical
   wording.
"""

from __future__ import annotations

import numpy as np

from ...fuzzy.bounds import CentroidBoundTables
from ...fuzzy.compiled import CompiledMamdaniEngine
from ...fuzzy.defuzzification import DefuzzificationError
from ...fuzzy.membership import Trapezoidal, Triangular
from ...fuzzy.operators import MINIMUM
from .flc1 import FLC1
from .flc2 import FLC2

__all__ = ["DecisionScreen"]

#: Widening applied to per-cell membership-degree endpoints; generous cover
#: for the one rounding step between a degree and its quasiconcave envelope.
_DEGREE_SLACK = 1e-9
#: ``np.isclose`` defaults — ``Triangular.evaluate`` snaps a *band* of this
#: half-width around its peak to 1.0, so the screen treats the (doubled)
#: band as part of the plateau.
_ISCLOSE_RTOL = 1e-5
_ISCLOSE_ATOL = 1e-8
#: Number of uniform refinement points seeding the ``Cv`` cell edges.
_CV_SEED_CELLS = 257
#: Adaptive refinement of ambiguous cells: each round splits every still-
#: ambiguous cell into four and re-bounds only the new subcells.  The
#: budget caps total growth so regions where the score genuinely sits *on*
#: the threshold (e.g. exact-zero plateaus of symmetric surfaces, which no
#: split can ever decide) stay ambiguous at bounded resolution instead of
#: splitting forever — rows landing there just take the exact fallback.
_REFINE_ROUNDS = 10
_REFINE_BOUNDS = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
_REFINE_BUDGET = 20_000
_MIN_CELL_WIDTH = 1e-7
#: An ambiguous cell whose *exact* midpoint score sits within this margin
#: of the threshold is treated as hopeless and never split: certified
#: bounds bottom out at the widening slack (~1e-9 relative), so such cells
#: — e.g. the exact-zero plateaus of symmetric rule surfaces, where the
#: float score is a ±1e-17 summation residue — can never be decided by
#: refinement, only by the runtime exact fallback.  The midpoint score
#: merely *prioritises* refinement effort; correctness never depends on it.
_HOPELESS_MARGIN = 1e-7


def _peak_interval(membership: object) -> tuple[float, float, list[float]]:
    """(plateau lo, plateau hi, extra cell edges) of a supported membership."""
    if type(membership) is Triangular:
        band = 2.0 * (_ISCLOSE_ATOL + _ISCLOSE_RTOL * abs(membership.b))
        lo, hi = membership.b - band, membership.b + band
        return lo, hi, [membership.a, lo, membership.b, hi, membership.c]
    if type(membership) is Trapezoidal:
        return (
            membership.b,
            membership.c,
            [membership.a, membership.b, membership.c, membership.d],
        )
    raise ValueError(f"unsupported membership shape {type(membership).__name__}")


class DecisionScreen:
    """Threshold decisions for FACS admission batches, byte-identical and fast.

    Build via :meth:`build`, which returns ``None`` whenever the controller
    pair falls outside the certified regime; callers then simply use the
    exact score path.
    """

    def __init__(self, flc1: FLC1, flc2: FLC2, threshold: float):
        eng1 = flc1.controller.engine
        eng2 = flc2.controller.engine
        # 8192 strength cells keep the per-request correction interval
        # tight (width ~ knot pitch x curve slope), directly shrinking the
        # fraction of rows whose interval spans disagreeing Cv cells.
        tables1 = CentroidBoundTables.for_engine(eng1, "Cv", strength_cells=8192)
        tables2 = CentroidBoundTables.for_engine(eng2, "AR")
        if tables1 is None or tables2 is None:
            raise ValueError("controller pair outside the certified regime")
        assert isinstance(eng1, CompiledMamdaniEngine)
        assert isinstance(eng2, CompiledMamdaniEngine)
        self._eng1 = eng1
        self._eng2 = eng2
        self._tables1 = tables1
        self._tables2 = tables2
        self._threshold = float(threshold)
        self._term_columns1 = eng1._grouped_consequent_plans["Cv"][1]
        self._term_columns2 = eng2._grouped_consequent_plans["AR"][1]

        # FLC2 input layout: locate the Cv / R / Cs slots in the engine's
        # flat degree vector and keep the Cv memberships for cell tables.
        plan_by_name = {entry[0]: entry for entry in eng2._batch_fuzzify_plan}
        if set(plan_by_name) != {"Cv", "R", "Cs"}:
            raise ValueError("FLC2 does not have the Cv/R/Cs input signature")
        _, cv_low, cv_high, _, cv_memberships = plan_by_name["Cv"]
        self._cv_low = cv_low
        self._cv_high = cv_high
        self._cv_memberships = cv_memberships

        # Seed Cv cell edges: universe ends, every membership breakpoint
        # (and isclose guard band), plus a uniform refinement for tightness.
        edges: list[float] = [cv_low, cv_high]
        self._peaks: list[tuple[float, float]] = []
        for membership in cv_memberships:
            lo, hi, extra = _peak_interval(membership)
            self._peaks.append((lo, hi))
            edges.extend(extra)
        edges.extend(np.linspace(cv_low, cv_high, _CV_SEED_CELLS))
        self._seed_edges = np.unique(
            np.clip(np.asarray(edges, dtype=float), cv_low, cv_high)
        )

        #: (bandwidth, occupancy) -> (edges, cell decisions, prefix sums).
        self._cells: dict[
            tuple[float, float],
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        ] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, flc1: FLC1, flc2: FLC2, threshold: float) -> "DecisionScreen | None":
        """A screen for the controller pair, or ``None`` when unsupported."""
        try:
            return cls(flc1, flc2, threshold)
        except (ValueError, KeyError, AttributeError):
            return None

    # ------------------------------------------------------------------
    def _degree_intervals(
        self, cell_lo: np.ndarray, cell_hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Certified per-cell degree intervals for every Cv membership.

        The supported shapes are quasiconcave, so cell extrema sit at the
        cell endpoints — except on the peak plateau (incl. the isclose
        band), where the upper bound is forced to the exact plateau value 1.
        """
        at_lo_edge = np.clip(cell_lo, self._cv_low, self._cv_high)
        at_hi_edge = np.clip(cell_hi, self._cv_low, self._cv_high)
        deg_lo = np.empty((len(self._cv_memberships), cell_lo.size))
        deg_hi = np.empty((len(self._cv_memberships), cell_lo.size))
        for j, membership in enumerate(self._cv_memberships):
            left = np.clip(membership.evaluate(at_lo_edge), 0.0, 1.0)
            right = np.clip(membership.evaluate(at_hi_edge), 0.0, 1.0)
            lo = np.minimum(left, right) - _DEGREE_SLACK
            hi = np.maximum(left, right) + _DEGREE_SLACK
            peak_lo, peak_hi = self._peaks[j]
            on_peak = (cell_lo <= peak_hi) & (cell_hi >= peak_lo)
            hi[on_peak] = 1.0
            deg_lo[j] = np.clip(lo, 0.0, 1.0)
            deg_hi[j] = np.clip(hi, 0.0, 1.0)
        return deg_lo, deg_hi

    def _cell_table(
        self, bandwidth: float, occupancy: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        key = (float(bandwidth), float(occupancy))
        cached = self._cells.get(key)
        if cached is None:
            cached = self._build_cell_table(*key)
            self._cells[key] = cached
        return cached

    def _build_cell_table(
        self, bandwidth: float, occupancy: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Adaptively refined per-``Cv``-cell verdicts for one (R, Cs) pair.

        Returns ``(edges, decision, accept_prefix, reject_prefix)`` where
        decision is ``1`` accept / ``0`` reject / ``-1`` ambiguous per cell
        and the prefix sums count decided cells for O(1) range-agreement
        queries.
        """
        cell_lo = self._seed_edges[:-1]
        cell_hi = self._seed_edges[1:]
        decision = self._decide_cells(cell_lo, cell_hi, bandwidth, occupancy)
        hopeless = self._hopeless(cell_lo, cell_hi, decision, bandwidth, occupancy)
        budget = _REFINE_BUDGET
        for _ in range(_REFINE_ROUNDS):
            chosen = np.flatnonzero(
                (decision == -1)
                & ~hopeless
                & (cell_hi - cell_lo > _MIN_CELL_WIDTH)
            )
            if not chosen.size or budget < 4:
                break
            if 4 * chosen.size > budget:
                # Spend the remaining budget on the widest cells: they are
                # the ones the per-request correction intervals land in most.
                widest = np.argsort(cell_hi[chosen] - cell_lo[chosen])
                chosen = np.sort(chosen[widest[-(budget // 4) :]])
            budget -= 4 * chosen.size

            # Split each chosen cell into quarters and bound only the new
            # subcells; all other cells keep their verdicts untouched.
            bounds = (
                cell_lo[chosen, None]
                + (cell_hi - cell_lo)[chosen, None] * _REFINE_BOUNDS
            )
            bounds[:, 0] = cell_lo[chosen]
            bounds[:, -1] = cell_hi[chosen]
            sub_lo = bounds[:, :4].ravel()
            sub_hi = bounds[:, 1:].ravel()
            sub_decision = self._decide_cells(sub_lo, sub_hi, bandwidth, occupancy)
            sub_hopeless = self._hopeless(
                sub_lo, sub_hi, sub_decision, bandwidth, occupancy
            )

            split = np.zeros(cell_lo.size, dtype=bool)
            split[chosen] = True
            starts = np.concatenate(([0], np.cumsum(np.where(split, 4, 1))[:-1]))
            total = cell_lo.size + 3 * chosen.size
            new_lo = np.empty(total)
            new_hi = np.empty(total)
            new_decision = np.empty(total, dtype=np.int8)
            new_hopeless = np.empty(total, dtype=bool)
            kept = starts[~split]
            new_lo[kept] = cell_lo[~split]
            new_hi[kept] = cell_hi[~split]
            new_decision[kept] = decision[~split]
            new_hopeless[kept] = hopeless[~split]
            slots = (starts[chosen][:, None] + np.arange(4)).ravel()
            new_lo[slots] = sub_lo
            new_hi[slots] = sub_hi
            new_decision[slots] = sub_decision
            new_hopeless[slots] = sub_hopeless
            cell_lo, cell_hi = new_lo, new_hi
            decision, hopeless = new_decision, new_hopeless
        edges = np.append(cell_lo, cell_hi[-1])
        accept_prefix = np.concatenate(([0], np.cumsum(decision == 1)))
        reject_prefix = np.concatenate(([0], np.cumsum(decision == 0)))
        return edges, decision, accept_prefix, reject_prefix

    def _hopeless(
        self,
        cell_lo: np.ndarray,
        cell_hi: np.ndarray,
        decision: np.ndarray,
        bandwidth: float,
        occupancy: float,
    ) -> np.ndarray:
        """Ambiguous cells whose exact midpoint score pins the threshold.

        One exact engine row per ambiguous cell, batched — a build-time
        probe that steers the split budget away from undecidable plateaus
        and toward bands the bounds *can* still resolve.
        """
        hopeless = np.zeros(cell_lo.size, dtype=bool)
        ambiguous = np.flatnonzero(decision == -1)
        if ambiguous.size:
            mids = 0.5 * (cell_lo[ambiguous] + cell_hi[ambiguous])
            scores = self._exact_scores(
                mids,
                np.full(ambiguous.size, bandwidth),
                np.full(ambiguous.size, occupancy),
            )
            hopeless[ambiguous] = (
                np.abs(scores - self._threshold) <= _HOPELESS_MARGIN
            )
        return hopeless

    def _decide_cells(
        self,
        cell_lo: np.ndarray,
        cell_hi: np.ndarray,
        bandwidth: float,
        occupancy: float,
    ) -> np.ndarray:
        """Per-cell verdicts for ``[cell_lo, cell_hi]`` Cv intervals."""
        eng = self._eng2
        n_cells = cell_lo.size
        deg_lo = np.empty((n_cells, eng._n_degree_slots))
        deg_hi = np.empty((n_cells, eng._n_degree_slots))
        deg_lo[:, eng._identity_slot] = 1.0
        deg_hi[:, eng._identity_slot] = 1.0
        scalars = {"R": bandwidth, "Cs": occupancy}
        for name, low, high, offset, memberships in eng._batch_fuzzify_plan:
            if name == "Cv":
                cv_lo, cv_hi = self._degree_intervals(cell_lo, cell_hi)
                stop = offset + len(memberships)
                deg_lo[:, offset:stop] = cv_lo.T
                deg_hi[:, offset:stop] = cv_hi.T
                continue
            # Exactly the engine's batched fuzzification of this scalar.
            value = np.clip(np.array([scalars[name]]), low, high)
            for j, membership in enumerate(memberships):
                degree = float(np.clip(membership.evaluate(value), 0.0, 1.0)[0])
                deg_lo[:, offset + j] = degree
                deg_hi[:, offset + j] = degree

        # Interval rule strengths, folded column for column in the engine's
        # order (min is an exact selection; product of values in [0, 1] is
        # weakly monotone under IEEE rounding, so endpoint folds bound the
        # engine's fold in float).
        index = eng._antecedent_index
        s_lo = deg_lo[:, index[:, 0]]
        s_hi = deg_hi[:, index[:, 0]]
        minimum_tnorm = eng._tnorm is MINIMUM
        for column in range(1, eng._antecedent_width):
            if minimum_tnorm:
                s_lo = np.minimum(s_lo, deg_lo[:, index[:, column]])
                s_hi = np.minimum(s_hi, deg_hi[:, index[:, column]])
            else:
                s_lo = s_lo * deg_lo[:, index[:, column]]
                s_hi = s_hi * deg_hi[:, index[:, column]]

        t_lo = np.empty((n_cells, len(self._term_columns2)))
        t_hi = np.empty((n_cells, len(self._term_columns2)))
        for t, columns in enumerate(self._term_columns2):
            t_lo[:, t] = s_lo[:, columns].max(axis=1)
            t_hi[:, t] = s_hi[:, columns].max(axis=1)

        fired = (t_lo > 0.0).any(axis=1)
        # Direct endpoint evaluation: no knot-quantisation floor, so cells
        # narrow enough that the score bounds clear the threshold *do* get
        # decided — this is what lets adaptive refinement converge on the
        # small-but-nonzero score bands.
        score_lo, score_hi, valid = self._tables2.score_interval_direct(t_lo, t_hi)
        # The oracle clips the defuzzified score into the output range
        # before comparing; clipping is monotone, so the bounds follow.
        score_lo = np.clip(score_lo, -1.0, 1.0)
        score_hi = np.clip(score_hi, -1.0, 1.0)

        decision = np.full(n_cells, -1, dtype=np.int8)
        certain = fired & valid
        decision[certain & (score_lo > self._threshold)] = 1
        decision[certain & (score_hi <= self._threshold)] = 0
        return decision

    # ------------------------------------------------------------------
    def decide(
        self,
        speeds_kmh: np.ndarray,
        angles_deg: np.ndarray,
        distances_km: np.ndarray,
        request_bus: np.ndarray,
        occupancy_bu: float,
    ) -> np.ndarray:
        """Boolean threshold verdicts, byte-identical to the exact score path.

        Inputs are the already universe-clamped observation columns of
        :meth:`FuzzyAdmissionControlSystem.score_columns`.  Raises
        :class:`DefuzzificationError` when the batch must be deferred to the
        exact path for its canonical no-rule-fired diagnostics.
        """
        eng1 = self._eng1
        matrix = eng1._batch_matrix(
            {"S": speeds_kmh, "A": angles_deg, "D": distances_km}
        )
        degrees = eng1._fill_degrees_batch(matrix)
        strengths = eng1._firing_strengths_batch(degrees)
        term_strengths = eng1._term_strengths_batch(strengths, self._term_columns1)
        if not (term_strengths > 0.0).any(axis=1).all():
            # Let the exact path raise with its canonical row-indexed message.
            raise DefuzzificationError("screen deferral: FLC1 rule base did not fire")

        corr_lo, corr_hi, valid = self._tables1.score_interval(
            term_strengths, term_strengths
        )
        corr_lo = np.clip(corr_lo, 0.0, 1.0)
        corr_hi = np.clip(corr_hi, 0.0, 1.0)

        count = matrix.shape[0]
        occupancy = float(occupancy_bu)
        accepted = np.zeros(count, dtype=bool)
        undecided = ~valid
        for bandwidth in np.unique(request_bus):
            mask = request_bus == bandwidth
            edges, _, accept_prefix, reject_prefix = self._cell_table(
                float(bandwidth), occupancy
            )
            last = edges.size - 2
            first_cell = np.clip(
                np.searchsorted(edges, corr_lo[mask], side="right") - 1, 0, last
            )
            last_cell = np.clip(
                np.searchsorted(edges, corr_hi[mask], side="left") - 1, 0, last
            )
            lo_cell = np.minimum(first_cell, last_cell)
            hi_cell = np.maximum(first_cell, last_cell)
            span = hi_cell - lo_cell + 1
            all_accept = (accept_prefix[hi_cell + 1] - accept_prefix[lo_cell]) == span
            all_reject = (reject_prefix[hi_cell + 1] - reject_prefix[lo_cell]) == span
            accepted[mask] = valid[mask] & all_accept
            undecided[mask] |= ~(all_accept | all_reject)

        fallback = np.flatnonzero(undecided)
        if fallback.size:
            # Exact FLC1 on the undecided subset, completed from the firing
            # strengths already computed above: batched engine rows are
            # mutually independent, so the subset aggregation + centroid is
            # bit-identical to the corresponding rows of a full-batch run
            # (and to ``FLC1.correction_values``, whose [0, 1] clip this
            # replays).
            eng1_grouped = eng1._grouped_consequent_plans["Cv"]
            cv_variable = eng1._consequent_plans["Cv"][2]
            aggregated = eng1._aggregate_output_batch_grouped(
                strengths[fallback], eng1_grouped, "Cv", 0
            )
            corrections = np.clip(
                eng1._defuzzify_fast_batch("Cv", cv_variable, aggregated), 0.0, 1.0
            )
            verdict = np.empty(fallback.size, dtype=np.int8)
            for bandwidth in np.unique(request_bus[fallback]):
                sub = request_bus[fallback] == bandwidth
                edges, decision, _, _ = self._cell_table(float(bandwidth), occupancy)
                cell = np.clip(
                    np.searchsorted(edges, corrections[sub], side="right") - 1,
                    0,
                    edges.size - 2,
                )
                verdict[sub] = decision[cell]
            accepted[fallback] = verdict == 1
            ambiguous = fallback[verdict == -1]
            if ambiguous.size:
                scores = self._exact_scores(
                    corrections[verdict == -1],
                    request_bus[ambiguous],
                    np.full(ambiguous.size, occupancy),
                )
                accepted[ambiguous] = scores > self._threshold
        return accepted

    def _exact_scores(
        self, corrections: np.ndarray, request_bus: np.ndarray, counters: np.ndarray
    ) -> np.ndarray:
        """Exact FLC2 scores through the engine's batched hot path.

        The same operation sequence as
        :meth:`FLC2.decision_scores` → ``compute_batch`` → ``infer_batch``
        (including the final [-1, 1] clip), minus the wrapper overhead —
        results are bit-identical because every step is shared.
        """
        eng = self._eng2
        matrix = eng._batch_matrix(
            {"Cv": corrections, "R": request_bus, "Cs": counters}
        )
        degrees = eng._fill_degrees_batch(matrix)
        strengths = eng._firing_strengths_batch(degrees)
        grouped = eng._grouped_consequent_plans["AR"]
        variable = eng._consequent_plans["AR"][2]
        aggregated = eng._aggregate_output_batch_grouped(strengths, grouped, "AR", 0)
        scores = eng._defuzzify_fast_batch("AR", variable, aggregated)
        return np.clip(scores, -1.0, 1.0)
