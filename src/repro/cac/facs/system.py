"""FACS — the Fuzzy Admission Control System (the paper's contribution).

The system cascades the two controllers of Fig. 4:

1. **FLC1** turns the GPS observation of the requesting user (speed, angle,
   distance) into a correction value ``Cv``;
2. **FLC2** combines ``Cv`` with the requested bandwidth ``R`` and the
   counter state ``Cs`` (base-station occupancy) into the soft accept/reject
   score ``A/R``;
3. the **Differentiated service** block routes admitted calls into the
   Real-Time / Non-Real-Time counters (RTC / NRTC).

The crisp admission decision accepts a call when the defuzzified A/R score
exceeds ``acceptance_threshold`` *and* the base station physically has the
requested bandwidth available.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from ...cellular.calls import Call
from ...cellular.cell import BaseStation
from ...cellular.mobility import (
    PAPER_DISTANCE_RANGE_KM,
    PAPER_SPEED_RANGE_KMH,
    UserState,
)
from ...fuzzy.controller import ENGINES
from ...fuzzy.defuzzification import DefuzzificationError, Defuzzifier, DEFAULT_DEFUZZIFIER
from ...fuzzy.definition import FLCDefinition
from ..base import AdmissionController, AdmissionDecision
from ..counters import ServiceCounters
from .config import DEFAULT_FLC1_CONFIG, DEFAULT_FLC2_CONFIG, FLC1Config, FLC2Config
from .flc1 import FLC1
from .flc2 import FLC2
from .screen import DecisionScreen

__all__ = ["FACSConfig", "FuzzyAdmissionControlSystem", "BatchAdmissionDecision"]

#: Correction value assumed when a request carries no GPS observation.
_NEUTRAL_CORRECTION = 0.5

#: Sentinel cached when no decision screen can be built for a configuration,
#: so the (failing) build is attempted at most once per controller.
_SCREEN_UNAVAILABLE = object()


@dataclass(frozen=True)
class FACSConfig:
    """Tunable parameters of the FACS controller."""

    flc1: FLC1Config = DEFAULT_FLC1_CONFIG
    flc2: FLC2Config = DEFAULT_FLC2_CONFIG
    #: Minimum defuzzified A/R score for acceptance.  The default 0 accepts
    #: "weak accept" and above, mirroring the paper's soft decision scale.
    acceptance_threshold: float = 0.0
    #: Inference engine for FLC1/FLC2: ``"compiled"`` (vectorized fast path,
    #: the default — bit-identical to the reference for the paper operators),
    #: ``"reference"`` (interpreted per-rule loop) or ``"auto"``.
    engine: str = "compiled"
    #: Declarative overrides for the two pipeline stages.  When set, the
    #: stage is built from the definition (see :mod:`repro.fuzzy.definition`)
    #: instead of the corresponding ``FLC1Config``/``FLC2Config`` builders;
    #: definitions are frozen and hashable, so definition-backed configs
    #: still share memoised controllers and ship to worker processes.
    flc1_definition: FLCDefinition | None = None
    flc2_definition: FLCDefinition | None = None

    def __post_init__(self) -> None:
        if not -1.0 <= self.acceptance_threshold <= 1.0:
            raise ValueError(
                f"acceptance_threshold must lie in [-1, 1], got {self.acceptance_threshold}"
            )
        if self.engine not in ENGINES:
            choices = "', '".join(sorted(ENGINES))
            raise ValueError(f"engine must be '{choices}', got {self.engine!r}")

    @property
    def counter_capacity_bu(self) -> int:
        """Base-station capacity implied by FLC2's counter (``Cs``) universe."""
        if self.flc2_definition is not None:
            return int(self.flc2_definition.variable("Cs").universe[1])
        return int(self.flc2.counter_universe[1])


@lru_cache(maxsize=64)
def _shared_flc1(config: FLC1Config, defuzzifier: Defuzzifier, engine: str) -> FLC1:
    """Build (or reuse) the FLC1 for a configuration.

    Controller construction — rule parsing, membership sampling, rule-base
    compilation — costs a few milliseconds, which dominates short
    replications when every run builds a fresh FACS.  FLC1/FLC2 hold no
    per-call state, so instances are shared across FACS systems with the
    same configuration — including across threads: the compiled engine keeps
    its scratch buffer in thread-local storage, so the thread-pool sweep
    executor can share one memoised controller between workers.
    """
    return FLC1(config, defuzzifier=defuzzifier, engine=engine)


@lru_cache(maxsize=64)
def _shared_flc2(config: FLC2Config, defuzzifier: Defuzzifier, engine: str) -> FLC2:
    """Build (or reuse) the FLC2 for a configuration (see :func:`_shared_flc1`)."""
    return FLC2(config, defuzzifier=defuzzifier, engine=engine)


@lru_cache(maxsize=64)
def _shared_flc1_from_definition(
    definition: FLCDefinition, defuzzifier: Defuzzifier, engine: str
) -> FLC1:
    """Build (or reuse) a definition-backed FLC1 (see :func:`_shared_flc1`)."""
    return FLC1(definition=definition, defuzzifier=defuzzifier, engine=engine)


@lru_cache(maxsize=64)
def _shared_flc2_from_definition(
    definition: FLCDefinition, defuzzifier: Defuzzifier, engine: str
) -> FLC2:
    """Build (or reuse) a definition-backed FLC2 (see :func:`_shared_flc1`)."""
    return FLC2(definition=definition, defuzzifier=defuzzifier, engine=engine)


@lru_cache(maxsize=64)
def _shared_screen(flc1: FLC1, flc2: FLC2, threshold: float) -> DecisionScreen | None:
    """Build (or reuse) the decision screen for a controller pair.

    Screens hold only immutable tables derived from the controller pair and
    the threshold; FLC1/FLC2 instances are themselves memoised, so keying on
    their identity shares one table build across every FACS system — and
    every trace run — with the same configuration.  ``None`` (pair outside
    the certified regime) is cached too, so the failing build runs once.
    """
    return DecisionScreen.build(flc1, flc2, threshold)


@dataclass(frozen=True)
class BatchAdmissionDecision:
    """Vectorized what-if admission outcome for ``N`` candidate requests.

    All candidates are scored against the *same* base-station snapshot —
    nothing is admitted and no state changes — so element ``i`` equals what
    :meth:`FuzzyAdmissionControlSystem.decide` would return for candidate
    ``i`` against that snapshot.
    """

    scores: np.ndarray
    accepted: np.ndarray
    correction_values: np.ndarray
    counter_state_bu: float

    def __len__(self) -> int:
        return int(self.scores.shape[0])


class FuzzyAdmissionControlSystem(AdmissionController):
    """The paper's FACS admission controller."""

    name = "FACS"

    def __init__(
        self,
        config: FACSConfig | None = None,
        defuzzifier: Defuzzifier = DEFAULT_DEFUZZIFIER,
    ):
        self._config = config or FACSConfig()
        cfg = self._config
        try:
            if cfg.flc1_definition is not None:
                self._flc1 = _shared_flc1_from_definition(
                    cfg.flc1_definition, defuzzifier, cfg.engine
                )
            else:
                self._flc1 = _shared_flc1(cfg.flc1, defuzzifier, cfg.engine)
            if cfg.flc2_definition is not None:
                self._flc2 = _shared_flc2_from_definition(
                    cfg.flc2_definition, defuzzifier, cfg.engine
                )
            else:
                self._flc2 = _shared_flc2(cfg.flc2, defuzzifier, cfg.engine)
        except TypeError:
            # Unhashable custom config/defuzzifier: skip the memo and build
            # directly, preserving the pre-memoisation contract.
            self._flc1 = FLC1(
                cfg.flc1,
                defuzzifier=defuzzifier,
                engine=cfg.engine,
                definition=cfg.flc1_definition,
            )
            self._flc2 = FLC2(
                cfg.flc2,
                defuzzifier=defuzzifier,
                engine=cfg.engine,
                definition=cfg.flc2_definition,
            )
        self._counters = ServiceCounters(capacity_bu=cfg.counter_capacity_bu)
        # Built lazily on first decide_columns call (table construction is
        # worth amortising only for column-oriented trace workloads).
        self._screen: DecisionScreen | object | None = None

    # ------------------------------------------------------------------
    @property
    def config(self) -> FACSConfig:
        return self._config

    @property
    def flc1(self) -> FLC1:
        return self._flc1

    @property
    def flc2(self) -> FLC2:
        return self._flc2

    @property
    def counters(self) -> ServiceCounters:
        """The Ds/RTC/NRTC counters tracking calls admitted by this controller."""
        return self._counters

    # ------------------------------------------------------------------
    def correction_value(self, user: UserState | None) -> float:
        """FLC1 stage: correction value for a user observation.

        Requests with no GPS observation (e.g. fixed terminals) get a neutral
        correction value so FLC2 decides on bandwidth and occupancy alone.
        """
        if user is None:
            return _NEUTRAL_CORRECTION
        return self._flc1.evaluate(user.clamped()).correction_value

    def correction_values(
        self, users: Sequence[UserState | None]
    ) -> np.ndarray:
        """FLC1 stage for a whole vector of observations in one pass.

        Bit-identical to :meth:`correction_value` per element; observations
        of ``None`` get the neutral correction, exactly as in the scalar
        path.
        """
        count = len(users)
        speeds = np.zeros(count)
        angles = np.zeros(count)
        distances = np.zeros(count)
        observed = np.zeros(count, dtype=bool)
        for i, user in enumerate(users):
            if user is None:
                continue
            clamped = user.clamped()
            observed[i] = True
            speeds[i] = clamped.speed_kmh
            angles[i] = clamped.angle_deg
            distances[i] = clamped.distance_km
        values = np.full(count, _NEUTRAL_CORRECTION)
        if observed.all():
            return self._flc1.correction_values(speeds, angles, distances)
        if observed.any():
            values[observed] = self._flc1.correction_values(
                speeds[observed], angles[observed], distances[observed]
            )
        return values

    def score_columns(
        self,
        speeds_kmh: np.ndarray,
        angles_deg: np.ndarray,
        distances_km: np.ndarray,
        request_bus: np.ndarray,
        occupancy_bu: int,
    ) -> np.ndarray:
        """FLC1 → FLC2 scores for pre-drawn observation columns.

        The frame-native twin of :meth:`decide_batch`'s scoring stage:
        candidates arrive as columns (one entry per request, all observed)
        instead of ``Call`` objects, and every candidate sees the same
        ``occupancy_bu`` snapshot.  Speed and distance are clamped into the
        controller universes exactly like :meth:`UserState.clamped`, so the
        scores are bit-identical to :meth:`decide_batch` over the equivalent
        calls.
        """
        speeds = np.clip(speeds_kmh, *PAPER_SPEED_RANGE_KMH)
        distances = np.clip(distances_km, *PAPER_DISTANCE_RANGE_KM)
        corrections = self._flc1.correction_values(speeds, angles_deg, distances)
        return self._flc2.decision_scores(
            corrections,
            request_bus,
            np.full(len(request_bus), float(occupancy_bu)),
        )

    def decide_columns(
        self,
        speeds_kmh: np.ndarray,
        angles_deg: np.ndarray,
        distances_km: np.ndarray,
        request_bus: np.ndarray,
        occupancy_bu: int,
    ) -> np.ndarray:
        """Boolean threshold verdicts for pre-drawn observation columns.

        Byte-identical to ``score_columns(...) > acceptance_threshold``
        element for element, but routed through the certified
        :class:`~repro.cac.facs.screen.DecisionScreen` when the controller
        pair supports it: most rows are decided from interval bounds alone
        and only the undecidable remainder pays for exact dense-grid
        inference.  Configurations outside the certified regime (reference
        engine, custom operators or membership shapes, …) fall back to the
        exact score path wholesale.
        """
        screen = self._screen
        if screen is None:
            screen = _shared_screen(
                self._flc1, self._flc2, self._config.acceptance_threshold
            )
            self._screen = screen if screen is not None else _SCREEN_UNAVAILABLE
        if isinstance(screen, DecisionScreen):
            try:
                return screen.decide(
                    np.clip(speeds_kmh, *PAPER_SPEED_RANGE_KMH),
                    angles_deg,
                    np.clip(distances_km, *PAPER_DISTANCE_RANGE_KM),
                    request_bus,
                    float(occupancy_bu),
                )
            except DefuzzificationError:
                # Deferred: re-run exactly so diagnostics (e.g. the
                # no-rule-fired error) carry their canonical batch wording.
                pass
        scores = self.score_columns(
            speeds_kmh, angles_deg, distances_km, request_bus, occupancy_bu
        )
        return scores > self._config.acceptance_threshold

    def decide_batch(
        self, calls: Sequence[Call], station: BaseStation, now: float
    ) -> BatchAdmissionDecision:
        """Score ``N`` candidate requests against one station snapshot.

        The batched admission path: the cascaded FLC1 → FLC2 evaluation runs
        once over the whole candidate vector through the engines'
        tensorized ``infer_batch``.  No candidate is admitted and no counter
        moves, so this answers "which of these would be accepted *right
        now*" — element for element identical to calling :meth:`decide` on
        the unchanged station.
        """
        corrections = self.correction_values([call.user_state for call in calls])
        bandwidths = np.array([float(call.bandwidth_units) for call in calls])
        counter_state = float(station.used_bu)
        scores = self._flc2.decision_scores(
            corrections,
            bandwidths,
            np.full(len(calls), counter_state),
        )
        fits = np.array([station.can_fit(call.bandwidth_units) for call in calls], dtype=bool)
        accepted = (scores > self._config.acceptance_threshold) & fits
        return BatchAdmissionDecision(
            scores=scores,
            accepted=accepted,
            correction_values=corrections,
            counter_state_bu=counter_state,
        )

    def decide(self, call: Call, station: BaseStation, now: float) -> AdmissionDecision:
        """The cascaded FLC1 → FLC2 admission decision."""
        correction = self.correction_value(call.user_state)
        counter_state = float(station.used_bu)
        decision = self._flc2.evaluate(
            correction_value=correction,
            request_bu=float(call.bandwidth_units),
            counter_state_bu=counter_state,
        )
        fits = station.can_fit(call.bandwidth_units)
        accepted = decision.score > self._config.acceptance_threshold and fits
        if not fits:
            reason = (
                f"insufficient bandwidth: need {call.bandwidth_units} BU, "
                f"{station.free_bu} BU free"
            )
        elif accepted:
            reason = (
                f"A/R score {decision.score:+.3f} above threshold "
                f"{self._config.acceptance_threshold:+.3f}"
            )
        else:
            reason = (
                f"A/R score {decision.score:+.3f} at or below threshold "
                f"{self._config.acceptance_threshold:+.3f}"
            )
        return AdmissionDecision(
            accepted=accepted,
            score=decision.score,
            outcome=decision.outcome,
            reason=reason,
            diagnostics={
                "correction_value": correction,
                "counter_state_bu": counter_state,
                "request_bu": float(call.bandwidth_units),
                "free_bu": float(station.free_bu),
            },
        )

    # -- lifecycle -------------------------------------------------------
    def on_admitted(self, call: Call, station: BaseStation, now: float) -> None:
        if not self._counters.is_tracking(call):
            self._counters.admit(call)

    def on_released(self, call: Call, station: BaseStation, now: float) -> None:
        if self._counters.is_tracking(call):
            self._counters.release(call)

    def reset(self) -> None:
        self._counters.reset()
