"""Membership-function configuration of FLC1 and FLC2 (Figs. 5 and 6).

The paper specifies the *shapes* (triangular/trapezoidal, Section 3) and the
universe tick marks visible in Figs. 5 and 6 but not every numeric break
point; the values here are read off those figures and kept in one place so
the sensitivity ablations can perturb them.  See DESIGN.md Section 5 for the
full concretisation table.

Universe conventions (Section 4 of the paper):

* ``S``  — user speed, 0–120 km/h;
* ``A``  — user heading relative to the bearing towards the BS, −180°…180°;
* ``D``  — distance between user and BS, 0–10 km;
* ``Cv`` — correction value, 0–1;
* ``R``  — requested bandwidth, 0–10 BU (text 1, voice 5, video 10);
* ``Cs`` — counter state, 0–40 BU;
* ``A/R``— soft accept/reject decision, −1…1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...cellular.traffic import PAPER_BANDWIDTH_UNITS
from ...fuzzy.membership import Trapezoidal, Triangular
from ...fuzzy.variables import LinguisticVariable, Term

__all__ = [
    "FLC1Config",
    "FLC2Config",
    "DEFAULT_FLC1_CONFIG",
    "DEFAULT_FLC2_CONFIG",
    "SPEED_UNIVERSE",
    "ANGLE_UNIVERSE",
    "DISTANCE_UNIVERSE",
    "CORRECTION_UNIVERSE",
    "REQUEST_UNIVERSE",
    "DECISION_UNIVERSE",
]

SPEED_UNIVERSE = (0.0, 120.0)
ANGLE_UNIVERSE = (-180.0, 180.0)
DISTANCE_UNIVERSE = (0.0, 10.0)
CORRECTION_UNIVERSE = (0.0, 1.0)
REQUEST_UNIVERSE = (0.0, 10.0)
DECISION_UNIVERSE = (-1.0, 1.0)


@dataclass(frozen=True)
class FLC1Config:
    """Numeric break points of the FLC1 membership functions (Fig. 5).

    Speed terms are (Sl, M, Fa); the break points follow the km/h marks
    visible on Fig. 5(a): 0, 15, 30, 60, 120.  The Slow plateau is kept
    narrow (0–5 km/h) because Fig. 7 of the paper distinguishes 4 km/h from
    10 km/h walking users — with a wide plateau the two would be fuzzified
    identically and the curves would coincide.  Angle terms follow Fig. 5(b)
    with marks every 45°.  Distance terms are the two ramps of Fig. 5(c).
    The correction-value output uses nine evenly spaced terms on [0, 1]
    (Fig. 5(d)).
    """

    speed_universe: tuple[float, float] = SPEED_UNIVERSE
    angle_universe: tuple[float, float] = ANGLE_UNIVERSE
    distance_universe: tuple[float, float] = DISTANCE_UNIVERSE
    correction_universe: tuple[float, float] = CORRECTION_UNIVERSE

    # Speed break points (km/h)
    speed_slow_plateau: float = 5.0
    speed_slow_foot: float = 30.0
    speed_middle_peak: float = 30.0
    speed_middle_right_foot: float = 60.0
    speed_fast_rise: float = 30.0
    speed_fast_plateau: float = 60.0

    # Angle break points (degrees)
    angle_marks: tuple[float, ...] = (-180.0, -135.0, -90.0, -45.0, 0.0, 45.0, 90.0, 135.0, 180.0)

    # Output resolution of the correction-value term fan
    correction_terms: int = 9
    resolution: int = 501

    # ------------------------------------------------------------------
    def speed_variable(self) -> LinguisticVariable:
        """T(S) = {Slow, Middle, Fast} (Fig. 5a)."""
        lo, hi = self.speed_universe
        return LinguisticVariable(
            "S",
            self.speed_universe,
            [
                Term("Sl", Trapezoidal(lo, lo, self.speed_slow_plateau, self.speed_slow_foot)),
                Term(
                    "M",
                    Triangular(
                        self.speed_slow_plateau,
                        self.speed_middle_peak,
                        self.speed_middle_right_foot,
                    ),
                ),
                Term("Fa", Trapezoidal(self.speed_fast_rise, self.speed_fast_plateau, hi, hi)),
            ],
            resolution=self.resolution,
        )

    def angle_variable(self) -> LinguisticVariable:
        """T(A) = {B1, L1, L2, St, R1, R2, B2} (Fig. 5b).

        The seven terms sit on the marks −180/−135, −90, −45, 0, 45, 90 and
        135/180 degrees; B1 and B2 are the trapezoidal "moving away" shoulders.
        """
        m = self.angle_marks
        return LinguisticVariable(
            "A",
            self.angle_universe,
            [
                Term("B1", Trapezoidal(m[0], m[0], m[1], m[2])),
                Term("L1", Triangular(m[1], m[2], m[3])),
                Term("L2", Triangular(m[2], m[3], m[4])),
                Term("St", Triangular(m[3], m[4], m[5])),
                Term("R1", Triangular(m[4], m[5], m[6])),
                Term("R2", Triangular(m[5], m[6], m[7])),
                Term("B2", Trapezoidal(m[6], m[7], m[8], m[8])),
            ],
            resolution=self.resolution,
        )

    def distance_variable(self) -> LinguisticVariable:
        """T(D) = {Near, Far} (Fig. 5c)."""
        lo, hi = self.distance_universe
        return LinguisticVariable(
            "D",
            self.distance_universe,
            [
                Term("N", Triangular(lo, lo, hi)),
                Term("F", Triangular(lo, hi, hi)),
            ],
            resolution=self.resolution,
        )

    def correction_variable(self) -> LinguisticVariable:
        """T(Cv) = {Cv1 ... Cv9}, nine evenly spaced terms on [0, 1] (Fig. 5d)."""
        lo, hi = self.correction_universe
        count = self.correction_terms
        if count < 3:
            raise ValueError(f"correction_terms must be at least 3, got {count}")
        step = (hi - lo) / (count - 1)
        terms: list[Term] = []
        for index in range(count):
            center = lo + index * step
            name = f"Cv{index + 1}"
            if index == 0:
                terms.append(Term(name, Trapezoidal(lo, lo, lo, lo + step)))
            elif index == count - 1:
                terms.append(Term(name, Trapezoidal(hi - step, hi, hi, hi)))
            else:
                terms.append(Term(name, Triangular(center - step, center, center + step)))
        return LinguisticVariable("Cv", self.correction_universe, terms, resolution=self.resolution)


@dataclass(frozen=True)
class FLC2Config:
    """Numeric break points of the FLC2 membership functions (Fig. 6)."""

    correction_universe: tuple[float, float] = CORRECTION_UNIVERSE
    request_universe: tuple[float, float] = REQUEST_UNIVERSE
    counter_universe: tuple[float, float] = (0.0, float(PAPER_BANDWIDTH_UNITS))
    decision_universe: tuple[float, float] = DECISION_UNIVERSE

    # Request break points in BU (Fig. 6b: Text 1, Voice 5, Video 10)
    request_voice_peak: float = 5.0

    resolution: int = 501

    # ------------------------------------------------------------------
    def correction_variable(self) -> LinguisticVariable:
        """T(Cv) = {Bad, Normal, Good} (Fig. 6a)."""
        lo, hi = self.correction_universe
        mid = 0.5 * (lo + hi)
        return LinguisticVariable(
            "Cv",
            self.correction_universe,
            [
                Term("B", Triangular(lo, lo, mid)),
                Term("N", Triangular(lo, mid, hi)),
                Term("G", Triangular(mid, hi, hi)),
            ],
            resolution=self.resolution,
        )

    def request_variable(self) -> LinguisticVariable:
        """T(R) = {Text, Voice, Video} (Fig. 6b), in bandwidth units."""
        lo, hi = self.request_universe
        peak = self.request_voice_peak
        return LinguisticVariable(
            "R",
            self.request_universe,
            [
                Term("T", Triangular(lo, lo, peak)),
                Term("Vo", Triangular(lo, peak, hi)),
                Term("Vi", Triangular(peak, hi, hi)),
            ],
            resolution=self.resolution,
        )

    def counter_variable(self) -> LinguisticVariable:
        """T(Cs) = {Small, Middle, Full} (Fig. 6c), in bandwidth units."""
        lo, hi = self.counter_universe
        mid = 0.5 * (lo + hi)
        return LinguisticVariable(
            "Cs",
            self.counter_universe,
            [
                Term("S", Triangular(lo, lo, mid)),
                Term("M", Triangular(lo, mid, hi)),
                Term("F", Triangular(mid, hi, hi)),
            ],
            resolution=self.resolution,
        )

    def decision_variable(self) -> LinguisticVariable:
        """T(A/R) = {R, WR, NRNA, WA, A} (Fig. 6d).

        The variable is named ``AR`` (rules cannot contain a ``/``).  The end
        terms R and A are trapezoidal per Section 3.2; the middle terms are
        triangular.
        """
        lo, hi = self.decision_universe
        half = 0.5 * (hi - lo) / 2.0  # 0.5 for the default [-1, 1] universe
        return LinguisticVariable(
            "AR",
            self.decision_universe,
            [
                Term("R", Trapezoidal(lo, lo, lo, lo + half)),
                Term("WR", Triangular(lo, lo + half, 0.5 * (lo + hi))),
                Term("NRNA", Triangular(lo + half, 0.5 * (lo + hi), hi - half)),
                Term("WA", Triangular(0.5 * (lo + hi), hi - half, hi)),
                Term("A", Trapezoidal(hi - half, hi, hi, hi)),
            ],
            resolution=self.resolution,
        )


DEFAULT_FLC1_CONFIG = FLC1Config()
DEFAULT_FLC2_CONFIG = FLC2Config()
