"""FACS — the paper's Fuzzy Admission Control System (FLC1 + FLC2 + counters)."""

from .config import (
    DEFAULT_FLC1_CONFIG,
    DEFAULT_FLC2_CONFIG,
    FLC1Config,
    FLC2Config,
)
from .frb1 import FRB1_TABLE, frb1_rule_strings, frb1_rules
from .frb2 import FRB2_TABLE, frb2_rule_strings, frb2_rules
from .flc1 import FLC1, CorrectionResult
from .flc2 import FLC2, DecisionResult
from .system import FACSConfig, FuzzyAdmissionControlSystem

__all__ = [
    "FLC1Config",
    "FLC2Config",
    "DEFAULT_FLC1_CONFIG",
    "DEFAULT_FLC2_CONFIG",
    "FRB1_TABLE",
    "frb1_rules",
    "frb1_rule_strings",
    "FRB2_TABLE",
    "frb2_rules",
    "frb2_rule_strings",
    "FLC1",
    "CorrectionResult",
    "FLC2",
    "DecisionResult",
    "FACSConfig",
    "FuzzyAdmissionControlSystem",
]
