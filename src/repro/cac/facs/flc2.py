"""FLC2 — the fuzzy admission-decision controller (Section 3.2).

Inputs: the correction value ``Cv`` produced by FLC1, the requested bandwidth
``R`` (in BU — 1 for text, 5 for voice, 10 for video) and the counter state
``Cs`` (total BU in use at the base station).  Output: the soft
accept/reject value ``A/R ∈ [-1, 1]`` whose linguistic terms are
{Reject, Weak Reject, Not-Reject-Not-Accept, Weak Accept, Accept}.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...fuzzy.controller import FuzzyController
from ...fuzzy.defuzzification import Defuzzifier, DEFAULT_DEFUZZIFIER
from ...fuzzy.definition import FLCDefinition
from ..base import DecisionOutcome
from .config import DEFAULT_FLC2_CONFIG, FLC2Config
from .flc1 import _check_definition_shape
from .frb2 import frb2_rules

__all__ = ["FLC2", "DecisionResult"]


@dataclass(frozen=True)
class DecisionResult:
    """FLC2 output with diagnostics."""

    score: float
    outcome: str
    dominant_rule: str
    correction_value: float
    request_bu: float
    counter_state_bu: float

    def __post_init__(self) -> None:
        if not -1.0 <= self.score <= 1.0:
            raise ValueError(f"decision score must lie in [-1, 1], got {self.score}")
        if self.outcome not in DecisionOutcome.ORDERED:
            raise ValueError(f"unknown outcome {self.outcome!r}")


class FLC2:
    """The admission-decision fuzzy controller of the FACS system."""

    def __init__(
        self,
        config: FLC2Config = DEFAULT_FLC2_CONFIG,
        defuzzifier: Defuzzifier = DEFAULT_DEFUZZIFIER,
        engine: str = "compiled",
        definition: FLCDefinition | None = None,
    ):
        self._config = config
        self._definition = definition
        if definition is not None:
            _check_definition_shape(definition, ("Cv", "R", "Cs"), ("AR",), "FLC2")
            self._controller = definition.build_controller(
                engine=engine,
                defuzzifier=(
                    None if defuzzifier is DEFAULT_DEFUZZIFIER else defuzzifier
                ),
            )
        else:
            self._controller = FuzzyController(
                name="FLC2",
                inputs=[
                    config.correction_variable(),
                    config.request_variable(),
                    config.counter_variable(),
                ],
                outputs=[config.decision_variable()],
                rules=frb2_rules(),
                defuzzifier=defuzzifier,
                engine=engine,
            )

    # ------------------------------------------------------------------
    @property
    def config(self) -> FLC2Config:
        return self._config

    @property
    def definition(self) -> FLCDefinition | None:
        """The declarative definition this controller was built from, if any."""
        return self._definition

    @property
    def controller(self) -> FuzzyController:
        return self._controller

    @property
    def rule_count(self) -> int:
        return len(self._controller.rule_base)

    # ------------------------------------------------------------------
    def decision_score(
        self, correction_value: float, request_bu: float, counter_state_bu: float
    ) -> float:
        """Defuzzified A/R score in [-1, 1] for raw crisp inputs."""
        return self._controller.compute(Cv=correction_value, R=request_bu, Cs=counter_state_bu)

    def decision_scores(
        self,
        correction_values: np.ndarray,
        request_bus: np.ndarray,
        counter_states_bu: np.ndarray,
    ) -> np.ndarray:
        """A/R scores for whole input vectors in one tensorized pass.

        Bit-identical to calling :meth:`evaluate` per element (including its
        [-1, 1] clip); the batched counterpart of the simulator's scalar
        admission decision.
        """
        return np.clip(
            self._controller.compute_batch(
                Cv=correction_values, R=request_bus, Cs=counter_states_bu
            ),
            -1.0,
            1.0,
        )

    def evaluate(
        self, correction_value: float, request_bu: float, counter_state_bu: float
    ) -> DecisionResult:
        """Full soft decision for the given inputs, with diagnostics."""
        crisp = self._controller.crisp_decision(
            Cv=correction_value, R=request_bu, Cs=counter_state_bu
        )
        score = min(max(crisp["AR"], -1.0), 1.0)
        return DecisionResult(
            score=score,
            outcome=self.classify_score(score),
            dominant_rule=crisp.dominant_label,
            correction_value=correction_value,
            request_bu=request_bu,
            counter_state_bu=counter_state_bu,
        )

    @staticmethod
    def classify_score(score: float) -> str:
        """Map a crisp A/R score to the nearest linguistic outcome.

        The five terms are centred at −1, −0.5, 0, 0.5 and 1; the midpoints
        between adjacent centres are the classification boundaries.
        """
        if score <= -0.75:
            return DecisionOutcome.REJECT
        if score <= -0.25:
            return DecisionOutcome.WEAK_REJECT
        if score < 0.25:
            return DecisionOutcome.NEUTRAL
        if score < 0.75:
            return DecisionOutcome.WEAK_ACCEPT
        return DecisionOutcome.ACCEPT
