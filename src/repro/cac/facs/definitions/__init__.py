"""Declarative definitions of the paper's built-in FLC1/FLC2 controllers.

These are the bridge between the in-code controllers (``flc1.py`` /
``flc2.py``, parameterized by :class:`FLC1Config`/:class:`FLC2Config`) and
the definition-file world: :func:`flc1_definition` and
:func:`flc2_definition` extract a lossless :class:`FLCDefinition` from the
exact same variables and rule tables the in-code constructors use, so a
definition built here — or loaded back from its JSON export under
``examples/controllers/`` — compiles to a bit-identical control surface.

The extraction goes through a cheap :class:`RuleBase` (validation only, no
inference-engine compilation), so these functions are safe to call in
import-adjacent paths.
"""

from __future__ import annotations

from ....fuzzy.definition import FLCDefinition, definition_from_rule_base
from ....fuzzy.rules import RuleBase
from ..config import DEFAULT_FLC1_CONFIG, DEFAULT_FLC2_CONFIG, FLC1Config, FLC2Config
from ..frb1 import frb1_rules
from ..frb2 import frb2_rules

__all__ = [
    "flc1_definition",
    "flc2_definition",
    "builtin_definitions",
    "FLC1_VARIABLES",
    "FLC2_VARIABLES",
]

#: (input names, output names) signatures used to recognise which slot a
#: standalone definition file fills inside the two-stage FACS pipeline.
FLC1_VARIABLES: tuple[tuple[str, ...], tuple[str, ...]] = (("S", "A", "D"), ("Cv",))
FLC2_VARIABLES: tuple[tuple[str, ...], tuple[str, ...]] = (("Cv", "R", "Cs"), ("AR",))


def flc1_definition(
    config: FLC1Config = DEFAULT_FLC1_CONFIG, defuzzifier: str = "centroid"
) -> FLCDefinition:
    """The paper's FLC1 (FRB1, 42 rules) as a declarative definition."""
    rule_base = RuleBase(
        frb1_rules(),
        inputs=[
            config.speed_variable(),
            config.angle_variable(),
            config.distance_variable(),
        ],
        outputs=[config.correction_variable()],
        name="FLC1-rules",
    )
    return definition_from_rule_base(rule_base, "FLC1", defuzzifier=defuzzifier)


def flc2_definition(
    config: FLC2Config = DEFAULT_FLC2_CONFIG, defuzzifier: str = "centroid"
) -> FLCDefinition:
    """The paper's FLC2 (FRB2, 27 rules) as a declarative definition."""
    rule_base = RuleBase(
        frb2_rules(),
        inputs=[
            config.correction_variable(),
            config.request_variable(),
            config.counter_variable(),
        ],
        outputs=[config.decision_variable()],
        name="FLC2-rules",
    )
    return definition_from_rule_base(rule_base, "FLC2", defuzzifier=defuzzifier)


def builtin_definitions() -> dict[str, FLCDefinition]:
    """Both built-in definitions keyed by the controller name."""
    return {"FLC1": flc1_definition(), "FLC2": flc2_definition()}
