"""Model-predictive admission control with a short-horizon occupancy forecast.

The controller keeps cheap online estimates of the offered load — the
arrival rate (exponentially forgotten interarrival average), the mean
bandwidth demand and the mean requested holding time — and, for every new
call, rolls a deterministic fluid model of the cell occupancy forward over
a short horizon under the two candidate actions:

* **admit**: occupancy starts from ``used + demand``;
* **reject**: occupancy starts from ``used``.

The fluid model is the M/G/∞-style relaxation ``occ(t) = L + (occ(0) - L)
· exp(-t/τ)`` with steady state ``L = λ·b·τ`` (Little's law on the
estimated offered load).  The call is admitted only when the admit
rollout stays inside a safety margin of capacity at the horizon — i.e.
when the model predicts that accepting now will not squeeze the headroom
handoffs will need shortly.  Handoffs themselves are never scored: they
are admitted whenever they fit, which is what keeps the predicted
headroom meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cellular.calls import Call, CallType
from ..cellular.cell import BaseStation
from .base import AdmissionController, AdmissionDecision, DecisionOutcome

__all__ = ["MPCLookaheadConfig", "MPCLookaheadController"]


@dataclass(frozen=True)
class MPCLookaheadConfig:
    """Forecast parameters of the lookahead controller."""

    #: Forecast horizon (seconds) the admit/reject rollouts are scored at.
    horizon_s: float = 30.0
    #: Fraction of capacity the admit rollout must stay within.
    safety_margin: float = 0.92
    #: Occupancy fraction below which new calls are always admitted (the
    #: forecast cannot starve an idle cell on a pessimistic rate estimate).
    free_admission_fraction: float = 0.5
    #: Exponential forgetting factor of the online load estimates.
    forgetting: float = 0.9
    #: Holding-time prior (seconds) used before any calls are observed.
    prior_holding_s: float = 120.0

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {self.horizon_s}")
        if not 0.0 < self.safety_margin <= 1.0:
            raise ValueError(
                f"safety_margin must lie in (0, 1], got {self.safety_margin}"
            )
        if not 0.0 <= self.free_admission_fraction <= 1.0:
            raise ValueError(
                "free_admission_fraction must lie in [0, 1], "
                f"got {self.free_admission_fraction}"
            )
        if not 0.0 < self.forgetting < 1.0:
            raise ValueError(f"forgetting must lie in (0, 1), got {self.forgetting}")
        if self.prior_holding_s <= 0:
            raise ValueError(
                f"prior_holding_s must be positive, got {self.prior_holding_s}"
            )


class MPCLookaheadController(AdmissionController):
    """Admit new calls only when the admit rollout stays inside the margin."""

    name = "MPCLookahead"

    def __init__(self, config: MPCLookaheadConfig | None = None):
        self._config = config or MPCLookaheadConfig()
        self.reset()

    @property
    def config(self) -> MPCLookaheadConfig:
        return self._config

    def reset(self) -> None:
        self._last_arrival_s: float | None = None
        self._interarrival_ewma_s: float | None = None
        self._bandwidth_ewma_bu: float | None = None
        self._holding_ewma_s: float = self._config.prior_holding_s

    # -- online load estimates -------------------------------------------
    def _observe(self, call: Call, now: float) -> None:
        forgetting = self._config.forgetting
        if self._last_arrival_s is not None:
            interarrival = now - self._last_arrival_s
            if interarrival > 0.0:
                if self._interarrival_ewma_s is None:
                    self._interarrival_ewma_s = interarrival
                else:
                    self._interarrival_ewma_s = (
                        forgetting * self._interarrival_ewma_s
                        + (1.0 - forgetting) * interarrival
                    )
        self._last_arrival_s = now
        demand = float(call.bandwidth_units)
        if self._bandwidth_ewma_bu is None:
            self._bandwidth_ewma_bu = demand
        else:
            self._bandwidth_ewma_bu = (
                forgetting * self._bandwidth_ewma_bu + (1.0 - forgetting) * demand
            )
        self._holding_ewma_s = (
            forgetting * self._holding_ewma_s
            + (1.0 - forgetting) * call.holding_time_s
        )

    def forecast_occupancy(self, start_bu: float) -> float:
        """Fluid rollout: occupancy at the horizon starting from ``start_bu``."""
        tau = self._holding_ewma_s
        if self._interarrival_ewma_s is None or self._bandwidth_ewma_bu is None:
            # No rate evidence yet: pure exponential drain of the start state.
            steady = 0.0
        else:
            rate = 1.0 / self._interarrival_ewma_s
            steady = rate * self._bandwidth_ewma_bu * tau
        decay = math.exp(-self._config.horizon_s / tau)
        return steady + (start_bu - steady) * decay

    # -- decisions --------------------------------------------------------
    def decide(self, call: Call, station: BaseStation, now: float) -> AdmissionDecision:
        fits = station.can_fit(call.bandwidth_units)
        if call.call_type is CallType.HANDOFF:
            headroom = station.free_bu - call.bandwidth_units
            return AdmissionDecision(
                accepted=fits,
                score=max(-1.0, min(1.0, headroom / station.capacity_bu)),
                outcome=DecisionOutcome.ACCEPT if fits else DecisionOutcome.REJECT,
                reason=(
                    "handoff admitted (never scored against the forecast)"
                    if fits
                    else (
                        f"handoff dropped: need {call.bandwidth_units} BU, "
                        f"{station.free_bu} BU free"
                    )
                ),
            )
        self._observe(call, now)
        margin = self._config.safety_margin * station.capacity_bu
        admit_rollout = self.forecast_occupancy(
            float(station.used_bu + call.bandwidth_units)
        )
        reject_rollout = self.forecast_occupancy(float(station.used_bu))
        floor = self._config.free_admission_fraction * station.capacity_bu
        nearly_idle = (station.used_bu + call.bandwidth_units) <= floor
        accepted = fits and (nearly_idle or admit_rollout <= margin)
        if accepted:
            reason = (
                f"admit rollout {admit_rollout:.1f} BU stays inside the "
                f"{margin:.1f} BU margin at the {self._config.horizon_s:.0f} s horizon"
            )
        elif not fits:
            reason = (
                f"insufficient bandwidth: need {call.bandwidth_units} BU, "
                f"{station.free_bu} BU free"
            )
        else:
            reason = (
                f"new call rejected: admit rollout {admit_rollout:.1f} BU "
                f"exceeds the {margin:.1f} BU margin "
                f"(reject rollout {reject_rollout:.1f} BU)"
            )
        slack = (margin - admit_rollout) / station.capacity_bu
        return AdmissionDecision(
            accepted=accepted,
            score=max(-1.0, min(1.0, slack)),
            outcome=DecisionOutcome.ACCEPT if accepted else DecisionOutcome.REJECT,
            reason=reason,
            diagnostics={
                "admit_rollout_bu": admit_rollout,
                "reject_rollout_bu": reject_rollout,
                "margin_bu": margin,
                "holding_ewma_s": self._holding_ewma_s,
            },
        )
