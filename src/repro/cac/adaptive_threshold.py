"""Adaptive-threshold admission control with QoS feedback.

A dynamic variant of the guard-channel idea: instead of a fixed
reservation, the controller maintains a floating new-call occupancy
threshold driven by the handoff-failure rate it observes.  Failures are
tracked with an exponentially forgotten average (recent evidence counts
most); when the forgotten failure rate exceeds the target the reservation
widens, and when handoffs sail through it decays back toward zero — so
under calm load the controller behaves like complete sharing, and under
bursty load (MMPP, flash crowds) it reserves aggressively, trading
new-call blocking for the dropping probability users actually notice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cellular.calls import Call, CallType
from ..cellular.cell import BaseStation
from .base import AdmissionController, AdmissionDecision, DecisionOutcome

__all__ = ["AdaptiveThresholdConfig", "AdaptiveThresholdController"]


@dataclass(frozen=True)
class AdaptiveThresholdConfig:
    """Feedback parameters of the adaptive threshold."""

    #: Exponential forgetting factor of the handoff-failure average: each
    #: new observation contributes ``1 - forgetting``; older evidence
    #: decays geometrically.
    forgetting: float = 0.9
    #: Handoff-failure rate the feedback loop steers toward.
    target_failure_ratio: float = 0.02
    #: Reservation step (BU) per unit of failure-rate error.
    adapt_gain_bu: float = 25.0
    #: Initial reservation (BU) before any feedback arrives.
    initial_reserve_bu: float = 4.0
    #: Largest fraction of capacity the reservation may claim.
    max_reserve_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.forgetting < 1.0:
            raise ValueError(f"forgetting must lie in (0, 1), got {self.forgetting}")
        if not 0.0 <= self.target_failure_ratio < 1.0:
            raise ValueError(
                f"target_failure_ratio must lie in [0, 1), got {self.target_failure_ratio}"
            )
        if self.adapt_gain_bu <= 0:
            raise ValueError(f"adapt_gain_bu must be positive, got {self.adapt_gain_bu}")
        if self.initial_reserve_bu < 0:
            raise ValueError(
                f"initial_reserve_bu must be non-negative, got {self.initial_reserve_bu}"
            )
        if not 0.0 < self.max_reserve_fraction <= 1.0:
            raise ValueError(
                f"max_reserve_fraction must lie in (0, 1], got {self.max_reserve_fraction}"
            )


class AdaptiveThresholdController(AdmissionController):
    """Guard a floating reservation sized by exponentially forgotten feedback."""

    name = "AdaptiveThreshold"

    def __init__(self, config: AdaptiveThresholdConfig | None = None):
        self._config = config or AdaptiveThresholdConfig()
        self.reset()

    @property
    def config(self) -> AdaptiveThresholdConfig:
        return self._config

    @property
    def reserve_bu(self) -> float:
        """Current reservation (BU) withheld from new calls."""
        return self._reserve_bu

    @property
    def failure_ewma(self) -> float:
        """Exponentially forgotten handoff-failure rate."""
        return self._failure_ewma

    def reset(self) -> None:
        self._reserve_bu = self._config.initial_reserve_bu
        self._failure_ewma = self._config.target_failure_ratio

    def _observe_handoff(self, failed: bool, capacity_bu: int) -> None:
        cfg = self._config
        observation = 1.0 if failed else 0.0
        self._failure_ewma = (
            cfg.forgetting * self._failure_ewma + (1.0 - cfg.forgetting) * observation
        )
        error = self._failure_ewma - cfg.target_failure_ratio
        ceiling = cfg.max_reserve_fraction * capacity_bu
        self._reserve_bu = min(
            max(self._reserve_bu + cfg.adapt_gain_bu * error * (1.0 - cfg.forgetting), 0.0),
            ceiling,
        )

    def decide(self, call: Call, station: BaseStation, now: float) -> AdmissionDecision:
        fits = station.can_fit(call.bandwidth_units)
        if call.call_type is CallType.HANDOFF:
            self._observe_handoff(failed=not fits, capacity_bu=station.capacity_bu)
            reason = (
                "handoff admitted into the reserved pool"
                if fits
                else (
                    f"handoff dropped: need {call.bandwidth_units} BU, "
                    f"{station.free_bu} BU free"
                )
            )
            headroom = station.free_bu - call.bandwidth_units
            return AdmissionDecision(
                accepted=fits,
                score=max(-1.0, min(1.0, headroom / station.capacity_bu)),
                outcome=DecisionOutcome.ACCEPT if fits else DecisionOutcome.REJECT,
                reason=reason,
                diagnostics={
                    "reserve_bu": self._reserve_bu,
                    "failure_ewma": self._failure_ewma,
                },
            )
        threshold = station.capacity_bu - self._reserve_bu
        accepted = fits and (station.used_bu + call.bandwidth_units) <= threshold
        if accepted:
            reason = f"new call admitted below adaptive threshold {threshold:.1f} BU"
        elif not fits:
            reason = (
                f"insufficient bandwidth: need {call.bandwidth_units} BU, "
                f"{station.free_bu} BU free"
            )
        else:
            reason = (
                f"new call blocked: occupancy {station.used_bu} BU + "
                f"{call.bandwidth_units} BU exceeds adaptive threshold "
                f"{threshold:.1f} BU"
            )
        headroom = threshold - station.used_bu - call.bandwidth_units
        return AdmissionDecision(
            accepted=accepted,
            score=max(-1.0, min(1.0, headroom / station.capacity_bu)),
            outcome=DecisionOutcome.ACCEPT if accepted else DecisionOutcome.REJECT,
            reason=reason,
            diagnostics={
                "adaptive_threshold_bu": threshold,
                "reserve_bu": self._reserve_bu,
                "failure_ewma": self._failure_ewma,
            },
        )
