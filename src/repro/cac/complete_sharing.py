"""Complete Sharing (CS) admission control.

The simplest CAC technique discussed in the paper's introduction: an arriving
call is served whenever enough free channels exist for it; otherwise it is
lost.  "Easy to implement but not fair to customers with large bandwidth
requirements" — the baseline the ablation benches use as the acceptance upper
bound.
"""

from __future__ import annotations

from ..cellular.calls import Call
from ..cellular.cell import BaseStation
from .base import AdmissionController, AdmissionDecision, DecisionOutcome

__all__ = ["CompleteSharingController"]


class CompleteSharingController(AdmissionController):
    """Admit any call that fits in the free bandwidth."""

    name = "CS"

    def decide(self, call: Call, station: BaseStation, now: float) -> AdmissionDecision:
        fits = station.can_fit(call.bandwidth_units)
        if fits:
            reason = (
                f"{call.bandwidth_units} BU fits in {station.free_bu} BU of free bandwidth"
            )
        else:
            reason = (
                f"insufficient bandwidth: need {call.bandwidth_units} BU, "
                f"{station.free_bu} BU free"
            )
        free_after = station.free_bu - call.bandwidth_units
        return AdmissionDecision(
            accepted=fits,
            score=max(-1.0, min(1.0, free_after / station.capacity_bu)),
            outcome=DecisionOutcome.ACCEPT if fits else DecisionOutcome.REJECT,
            reason=reason,
            diagnostics={"free_bu": float(station.free_bu)},
        )
