"""Differentiated-service counters (Ds, RTC, NRTC, Cs) of the FACS system.

Fig. 4 of the paper shows accepted calls being routed by a Differentiated
service (Ds) block into a Real Time Counter (RTC) and a Non Real Time Counter
(NRTC); their combined occupancy is the Counter state (Cs) fed back into
FLC2.  This module implements that bookkeeping as a small stateful object the
FACS controller owns.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cellular.calls import Call
from ..cellular.traffic import PAPER_BANDWIDTH_UNITS

__all__ = ["ServiceCounters", "CounterSnapshot"]


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable view of the counters at one instant."""

    real_time_bu: int
    non_real_time_bu: int
    capacity_bu: int

    @property
    def total_bu(self) -> int:
        """The paper's Counter state Cs: total bandwidth units in use."""
        return self.real_time_bu + self.non_real_time_bu

    @property
    def occupancy(self) -> float:
        return self.total_bu / self.capacity_bu

    @property
    def free_bu(self) -> int:
        return self.capacity_bu - self.total_bu


class ServiceCounters:
    """RTC / NRTC bandwidth counters with the Ds routing rule.

    Voice and video (real-time) calls are counted in RTC, text
    (non-real-time) calls in NRTC.  The counters track *our own* admissions —
    which, in the single-controller experiments, mirrors the base-station
    ledger, and in multi-controller comparisons lets FACS reason about the
    load it has itself admitted.
    """

    def __init__(self, capacity_bu: int = PAPER_BANDWIDTH_UNITS):
        if capacity_bu <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bu}")
        self._capacity_bu = int(capacity_bu)
        self._real_time_bu = 0
        self._non_real_time_bu = 0
        self._tracked: dict[int, tuple[int, bool]] = {}

    # ------------------------------------------------------------------
    @property
    def capacity_bu(self) -> int:
        return self._capacity_bu

    @property
    def real_time_bu(self) -> int:
        return self._real_time_bu

    @property
    def non_real_time_bu(self) -> int:
        return self._non_real_time_bu

    @property
    def counter_state(self) -> int:
        """The paper's Cs input to FLC2 (total BU in use)."""
        return self._real_time_bu + self._non_real_time_bu

    @property
    def tracked_calls(self) -> int:
        return len(self._tracked)

    def snapshot(self) -> CounterSnapshot:
        return CounterSnapshot(
            real_time_bu=self._real_time_bu,
            non_real_time_bu=self._non_real_time_bu,
            capacity_bu=self._capacity_bu,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def classify(call: Call) -> bool:
        """The Ds block: ``True`` for real-time (RTC), ``False`` for NRTC."""
        return call.service.is_real_time

    def admit(self, call: Call) -> None:
        """Count an admitted call's bandwidth in the appropriate counter."""
        if call.call_id in self._tracked:
            raise ValueError(f"call {call.call_id} is already counted")
        if self.counter_state + call.bandwidth_units > self._capacity_bu:
            raise ValueError(
                f"admitting {call.bandwidth_units} BU would exceed capacity "
                f"{self._capacity_bu} (currently {self.counter_state} BU in use)"
            )
        is_real_time = self.classify(call)
        if is_real_time:
            self._real_time_bu += call.bandwidth_units
        else:
            self._non_real_time_bu += call.bandwidth_units
        self._tracked[call.call_id] = (call.bandwidth_units, is_real_time)

    def release(self, call: Call) -> None:
        """Remove a previously counted call (completion, drop, or handoff-out)."""
        entry = self._tracked.pop(call.call_id, None)
        if entry is None:
            raise KeyError(f"call {call.call_id} is not counted")
        amount, is_real_time = entry
        if is_real_time:
            self._real_time_bu -= amount
        else:
            self._non_real_time_bu -= amount

    def is_tracking(self, call: Call) -> bool:
        return call.call_id in self._tracked

    def reset(self) -> None:
        self._real_time_bu = 0
        self._non_real_time_bu = 0
        self._tracked.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceCounters(RTC={self._real_time_bu}BU, NRTC={self._non_real_time_bu}BU, "
            f"Cs={self.counter_state}/{self._capacity_bu}BU)"
        )
