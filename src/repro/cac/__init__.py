"""Call admission control algorithms: FACS, SCC and classic baselines."""

from .base import AdmissionController, AdmissionDecision, DecisionOutcome
from .counters import CounterSnapshot, ServiceCounters
from .complete_sharing import CompleteSharingController
from .guard_channel import GuardChannelConfig, GuardChannelController
from .fractional_guard import FractionalGuardConfig, FractionalGuardController
from .threshold_policy import ThresholdPolicyConfig, ThresholdPolicyController
from .facs import (
    FACSConfig,
    FLC1,
    FLC2,
    FLC1Config,
    FLC2Config,
    FuzzyAdmissionControlSystem,
)
from .scc import ProjectionConfig, SCCConfig, ShadowClusterController

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DecisionOutcome",
    "ServiceCounters",
    "CounterSnapshot",
    "CompleteSharingController",
    "GuardChannelController",
    "GuardChannelConfig",
    "FractionalGuardController",
    "FractionalGuardConfig",
    "ThresholdPolicyController",
    "ThresholdPolicyConfig",
    "FuzzyAdmissionControlSystem",
    "FACSConfig",
    "FLC1",
    "FLC2",
    "FLC1Config",
    "FLC2Config",
    "ShadowClusterController",
    "SCCConfig",
    "ProjectionConfig",
]
