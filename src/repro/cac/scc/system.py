"""The Shadow Cluster Concept (SCC) admission controller.

This is the comparator of Fig. 10 of the paper, following Levine, Akyildiz
and Naghshineh (IEEE/ACM ToN 1997): each base station projects the bandwidth
demand of the active calls in its shadow cluster over a horizon of future
intervals and admits a new call only if, with the new call included, the
projected demand stays within the admission target in every interval.

The projection uses the same GPS observation FACS receives, but — unlike
FACS — the admission test itself does not *grade* the requesting user's
trajectory: any call that fits under the projected-demand envelope is
admitted.  Two behaviours follow, and they are exactly the qualitative
differences the paper reports in Fig. 10:

* at light load SCC still reserves bandwidth for predicted handoffs from
  neighbouring cells (``handoff_reservation_bu`` plus a load-proportional
  term under the equal-probability-neighbour assumption the paper's
  introduction criticises), so it blocks a few requests FACS would accept;
* at heavy load SCC keeps admitting any call that fits under the envelope,
  whereas FACS holds back calls with unfavourable trajectories to protect
  the QoS of ongoing calls — so SCC's acceptance ends up higher.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...cellular.calls import Call
from ...cellular.cell import BaseStation
from ...des.rng import RandomStream, _mix_seed
from ..base import AdmissionController, AdmissionDecision, DecisionOutcome
from .demand import DemandEstimator
from .projection import ProjectionConfig

__all__ = ["SCCConfig", "ShadowClusterController"]


@dataclass(frozen=True)
class SCCConfig:
    """Tunable parameters of the SCC controller."""

    projection: ProjectionConfig = ProjectionConfig()
    #: Fixed bandwidth (BU) reserved for handoffs predicted to arrive from
    #: neighbouring cells of the shadow cluster.
    handoff_reservation_bu: float = 8.0
    #: Additional incoming-handoff demand as a fraction of the cell's own
    #: occupancy (equal-probability neighbour-movement assumption).
    incoming_projection_factor: float = 0.15
    #: Fraction of the capacity usable by the admission test (1.0 = all of it).
    admission_threshold: float = 1.0
    #: Number of bordering cells in the user's direction of travel for which
    #: the tentative shadow cluster must establish reservations before the
    #: call is admitted (0 for stationary users).
    reservations_per_mobile_user: int = 2
    #: Probability that establishing one of those reservations fails because
    #: the neighbouring base station's probabilistic information is stale or
    #: the equal-probability movement assumption mispredicts the target cell
    #: (the weakness of SCC the paper's introduction points out).  This is
    #: what keeps SCC's acceptance slightly below FACS's at light load.
    reservation_failure_probability: float = 0.03
    #: Seed mixed into the per-call reservation draw (kept for reproducibility).
    reservation_seed: int = 19970101

    def __post_init__(self) -> None:
        if self.handoff_reservation_bu < 0:
            raise ValueError(
                f"handoff_reservation_bu must be non-negative, got {self.handoff_reservation_bu}"
            )
        if self.incoming_projection_factor < 0:
            raise ValueError(
                f"incoming_projection_factor must be non-negative, "
                f"got {self.incoming_projection_factor}"
            )
        if not 0.0 < self.admission_threshold <= 1.0:
            raise ValueError(
                f"admission_threshold must lie in (0, 1], got {self.admission_threshold}"
            )
        if self.reservations_per_mobile_user < 0:
            raise ValueError(
                f"reservations_per_mobile_user must be non-negative, "
                f"got {self.reservations_per_mobile_user}"
            )
        if not 0.0 <= self.reservation_failure_probability < 1.0:
            raise ValueError(
                f"reservation_failure_probability must lie in [0, 1), "
                f"got {self.reservation_failure_probability}"
            )


class ShadowClusterController(AdmissionController):
    """SCC admission control based on projected shadow-cluster demand."""

    name = "SCC"

    def __init__(self, config: SCCConfig | None = None):
        self._config = config or SCCConfig()
        self._estimator = DemandEstimator(self._config.projection)

    # ------------------------------------------------------------------
    @property
    def config(self) -> SCCConfig:
        return self._config

    @property
    def estimator(self) -> DemandEstimator:
        return self._estimator

    # ------------------------------------------------------------------
    def projected_envelope(self, station: BaseStation) -> list[float]:
        """Projected demand (BU) per future interval, including reservations."""
        own = self._estimator.projected_in_cell_demand()
        incoming = (
            self._config.handoff_reservation_bu
            + self._config.incoming_projection_factor * station.used_bu
        )
        return [demand + incoming for demand in own]

    def required_reservations(self, call: Call) -> int:
        """Bordering-cell reservations the tentative shadow cluster needs."""
        user = call.user_state
        if user is None:
            return 0
        if user.speed_kmh < self._config.projection.stationary_speed_kmh:
            return 0
        return self._config.reservations_per_mobile_user

    def _establish_reservations(self, call: Call) -> bool:
        """Try to establish the bordering-cell reservations for a new call.

        The outcome is a deterministic pseudo-random function of the request
        itself (user state, arrival time and the configured seed), so the
        same workload always produces the same SCC decisions while different
        calls and different replications see independent draws.  The label
        deliberately excludes ``call_id``: ids are an artifact of object
        creation order, and seeding from them would make SCC's decisions
        depend on what else ran in the process before this call.
        """
        failure = self._config.reservation_failure_probability
        if failure <= 0.0:
            return True
        user = call.user_state
        label = (
            f"{call.requested_at:.6f}:{user.speed_kmh:.3f}:"
            f"{user.angle_deg:.3f}:{user.distance_km:.3f}"
            if user is not None
            else f"{call.requested_at:.6f}"
        )
        # Construct the derived stream directly (same seed derivation as
        # RandomStream(...).spawn(label)) — building the intermediate parent
        # stream would initialise a second generator that is never drawn from.
        rng = RandomStream(
            f"scc-reservation-{label}/{label}",
            seed=_mix_seed(self._config.reservation_seed, label),
        )
        for _ in range(self.required_reservations(call)):
            if rng.bernoulli(failure):
                return False
        return True

    def decide(self, call: Call, station: BaseStation, now: float) -> AdmissionDecision:
        admission_capacity = self._config.admission_threshold * station.capacity_bu
        fits = station.can_fit(call.bandwidth_units)

        candidate = self._estimator.profile_for(call)
        envelope = self.projected_envelope(station)
        candidate_demand = candidate.in_cell_demand()
        peak = max(base + extra for base, extra in zip(envelope, candidate_demand))
        within_envelope = peak <= admission_capacity
        reservations_ok = self._establish_reservations(call)
        accepted = fits and within_envelope and reservations_ok

        if not fits:
            reason = (
                f"insufficient bandwidth: need {call.bandwidth_units} BU, "
                f"{station.free_bu} BU free"
            )
        elif not within_envelope:
            reason = (
                f"projected peak demand {peak:.1f} BU exceeds admission capacity "
                f"{admission_capacity:.1f} BU"
            )
        elif not reservations_ok:
            reason = (
                "could not establish bandwidth reservations in the tentative "
                "shadow cluster's bordering cells"
            )
        else:
            reason = (
                f"projected peak demand {peak:.1f} BU within admission capacity "
                f"{admission_capacity:.1f} BU"
            )
        margin = admission_capacity - peak
        # Scale the margin into a [-1, 1] score for comparability with FACS.
        score = max(-1.0, min(1.0, margin / station.capacity_bu))
        outcome = DecisionOutcome.ACCEPT if accepted else DecisionOutcome.REJECT
        return AdmissionDecision(
            accepted=accepted,
            score=score,
            outcome=outcome,
            reason=reason,
            diagnostics={
                "projected_peak_bu": peak,
                "admission_capacity_bu": admission_capacity,
                "used_bu": float(station.used_bu),
                "reservation_bu": float(
                    self._config.handoff_reservation_bu
                    + self._config.incoming_projection_factor * station.used_bu
                ),
                "required_reservations": float(self.required_reservations(call)),
                "reservations_ok": 1.0 if reservations_ok else 0.0,
            },
        )

    # -- lifecycle -------------------------------------------------------
    def on_admitted(self, call: Call, station: BaseStation, now: float) -> None:
        if not self._estimator.is_tracking(call):
            self._estimator.track(call)

    def on_released(self, call: Call, station: BaseStation, now: float) -> None:
        self._estimator.untrack(call)

    def reset(self) -> None:
        self._estimator.reset()
