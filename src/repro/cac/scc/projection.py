"""Shadow-cluster probability projection.

Following Levine, Akyildiz and Naghshineh (IEEE/ACM ToN 1997), every active
mobile terminal projects, for a sequence of future time intervals, the
probability of being *active in* each cell of its shadow cluster.  The
projection here is derived from the same GPS observation FACS uses — speed,
heading relative to the serving base station and distance — plus an
exponential call-holding-time assumption:

* **Residency**: a user moving towards the base station (|angle| small) at
  distance ``d`` and speed ``v`` is expected to remain in the cell for at
  least the time needed to cross it; a user moving away exits after roughly
  ``(R - d) / v``.  The probability of still being in the cell decays once
  the expected exit time is passed.
* **Activity**: the probability that the call is still in progress after
  ``t`` seconds is ``exp(-t / mean_holding_time)``.
* **Neighbour influence**: probability mass that leaves the current cell is
  attributed to the neighbouring cells inside a direction cone around the
  user's heading (the "shadow" of the cluster), fading with hop distance.

The paper under reproduction does not restate these formulas; they are the
standard SCC behaviour and the Fig. 10 crossover is robust to the constants
(see the threshold ablation bench).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...cellular.mobility import UserState

__all__ = ["ProjectionConfig", "ResidencyProjection", "project_residency"]


@dataclass(frozen=True)
class ProjectionConfig:
    """Parameters of the shadow-cluster projection."""

    #: Number of future intervals the cluster projects over.
    horizon_intervals: int = 6
    #: Length of one projection interval in seconds.
    interval_s: float = 10.0
    #: Effective cell radius used to estimate time-to-exit, in km.
    cell_radius_km: float = 10.0
    #: Mean call holding time assumed for the activity decay, in seconds.
    mean_holding_time_s: float = 120.0
    #: Minimum speed (km/h) below which the user is treated as stationary.
    stationary_speed_kmh: float = 1.0
    #: Residual in-cell probability for a user that has nominally exited
    #: (accounts for direction changes bringing the user back).
    residual_probability: float = 0.1

    def __post_init__(self) -> None:
        if self.horizon_intervals < 1:
            raise ValueError(
                f"horizon_intervals must be >= 1, got {self.horizon_intervals}"
            )
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s}")
        if self.cell_radius_km <= 0:
            raise ValueError(f"cell_radius_km must be positive, got {self.cell_radius_km}")
        if self.mean_holding_time_s <= 0:
            raise ValueError(
                f"mean_holding_time_s must be positive, got {self.mean_holding_time_s}"
            )
        if not 0.0 <= self.residual_probability <= 1.0:
            raise ValueError(
                f"residual_probability must lie in [0, 1], got {self.residual_probability}"
            )

    @property
    def horizon_s(self) -> float:
        return self.horizon_intervals * self.interval_s

    def interval_times(self) -> list[float]:
        """End times (seconds from now) of each projection interval."""
        return [(k + 1) * self.interval_s for k in range(self.horizon_intervals)]


@dataclass(frozen=True)
class ResidencyProjection:
    """Per-interval probabilities that a call remains active in its cell."""

    in_cell_active: tuple[float, ...]
    departed_active: tuple[float, ...]
    expected_exit_s: float

    def __post_init__(self) -> None:
        for series in (self.in_cell_active, self.departed_active):
            for p in series:
                if not 0.0 <= p <= 1.0 + 1e-9:
                    raise ValueError(f"projection probabilities must lie in [0, 1], got {p}")


def expected_exit_time_s(user: UserState, config: ProjectionConfig) -> float:
    """Expected time (s) until the user leaves the serving cell.

    A user heading towards the base station must cross to the far edge of the
    cell (distance ``d + R`` along its heading component); a user heading away
    exits after covering ``R - d``.  Stationary users never exit.
    """
    speed_km_per_s = user.speed_kmh / 3600.0
    if user.speed_kmh < config.stationary_speed_kmh or speed_km_per_s <= 0.0:
        return math.inf
    radius = config.cell_radius_km
    distance = min(user.distance_km, radius)
    heading = math.radians(abs(user.angle_deg))
    # Component of motion towards (+) or away from (-) the base station.
    radial = math.cos(heading)
    if radial >= 0:
        # Moving towards the BS: travels inwards, then out the other side.
        travel_km = distance * radial + radius
    else:
        # Moving away: must cover the remaining distance to the boundary.
        travel_km = max(radius - distance, 0.05)
    return travel_km / speed_km_per_s


def project_residency(user: UserState | None, config: ProjectionConfig) -> ResidencyProjection:
    """Project the probability that a call is active in / out of its cell.

    Returns per-interval probabilities of (a) the call still being active and
    inside the serving cell and (b) the call being active but having moved to
    a neighbouring cell (the demand it projects onto the rest of its shadow
    cluster).
    """
    if user is None:
        # Fixed terminal: always in the cell while the call lasts.
        exit_s = math.inf
    else:
        exit_s = expected_exit_time_s(user, config)

    in_cell: list[float] = []
    departed: list[float] = []
    for t in config.interval_times():
        active = math.exp(-t / config.mean_holding_time_s)
        if math.isinf(exit_s):
            stay = 1.0
        elif t <= exit_s:
            stay = 1.0
        else:
            # After the nominal exit time the in-cell probability decays
            # geometrically per interval towards the residual floor.
            overshoot_intervals = (t - exit_s) / config.interval_s
            stay = max(config.residual_probability, 0.5**overshoot_intervals)
        in_cell.append(active * stay)
        departed.append(active * (1.0 - stay))
    return ResidencyProjection(
        in_cell_active=tuple(in_cell),
        departed_active=tuple(departed),
        expected_exit_s=exit_s,
    )
