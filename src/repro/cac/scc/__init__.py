"""Shadow Cluster Concept (SCC) baseline admission controller."""

from .projection import (
    ProjectionConfig,
    ResidencyProjection,
    expected_exit_time_s,
    project_residency,
)
from .demand import DemandEstimator, DemandProfile
from .system import SCCConfig, ShadowClusterController

__all__ = [
    "ProjectionConfig",
    "ResidencyProjection",
    "project_residency",
    "expected_exit_time_s",
    "DemandEstimator",
    "DemandProfile",
    "SCCConfig",
    "ShadowClusterController",
]
