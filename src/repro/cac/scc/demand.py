"""Shadow-cluster demand estimation.

A base station participating in a shadow cluster keeps, for every active call
it knows about (its own calls plus the calls of neighbouring cells whose
shadow reaches it), the projected bandwidth demand in each future interval.
The admission test of Levine et al. then checks that, with the new call
included, the projected demand never exceeds the admission-capacity target in
any interval of the horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...cellular.calls import Call
from .projection import ProjectionConfig, ResidencyProjection, project_residency

__all__ = ["DemandEstimator", "DemandProfile"]


@dataclass(frozen=True)
class DemandProfile:
    """Projected bandwidth demand (BU) of one call per future interval."""

    call_id: int
    bandwidth_units: int
    in_cell: tuple[float, ...]
    outgoing: tuple[float, ...]

    def in_cell_demand(self) -> tuple[float, ...]:
        """Expected BU this call needs in its current cell per interval."""
        return tuple(self.bandwidth_units * p for p in self.in_cell)

    def outgoing_demand(self) -> tuple[float, ...]:
        """Expected BU this call projects onto neighbouring cells per interval."""
        return tuple(self.bandwidth_units * p for p in self.outgoing)


class DemandEstimator:
    """Tracks active calls of one cell and aggregates projected demand."""

    def __init__(self, config: ProjectionConfig):
        self._config = config
        self._profiles: dict[int, DemandProfile] = {}

    # ------------------------------------------------------------------
    @property
    def config(self) -> ProjectionConfig:
        return self._config

    @property
    def tracked_calls(self) -> int:
        return len(self._profiles)

    def is_tracking(self, call: Call) -> bool:
        return call.call_id in self._profiles

    # ------------------------------------------------------------------
    def profile_for(self, call: Call) -> DemandProfile:
        """Build the demand profile of a (not necessarily tracked) call."""
        projection: ResidencyProjection = project_residency(call.user_state, self._config)
        return DemandProfile(
            call_id=call.call_id,
            bandwidth_units=call.bandwidth_units,
            in_cell=projection.in_cell_active,
            outgoing=projection.departed_active,
        )

    def track(self, call: Call) -> DemandProfile:
        """Start projecting an admitted call's demand."""
        if call.call_id in self._profiles:
            raise ValueError(f"call {call.call_id} is already tracked")
        profile = self.profile_for(call)
        self._profiles[call.call_id] = profile
        return profile

    def untrack(self, call: Call) -> None:
        """Stop projecting a call (completed, dropped or handed off away)."""
        self._profiles.pop(call.call_id, None)

    def reset(self) -> None:
        self._profiles.clear()

    # ------------------------------------------------------------------
    def projected_in_cell_demand(self) -> list[float]:
        """Expected BU needed in this cell per future interval (tracked calls)."""
        totals = [0.0] * self._config.horizon_intervals
        for profile in self._profiles.values():
            for index, demand in enumerate(profile.in_cell_demand()):
                totals[index] += demand
        return totals

    def projected_outgoing_demand(self) -> list[float]:
        """Expected BU tracked calls project onto neighbouring cells per interval."""
        totals = [0.0] * self._config.horizon_intervals
        for profile in self._profiles.values():
            for index, demand in enumerate(profile.outgoing_demand()):
                totals[index] += demand
        return totals

    def peak_projected_demand(self) -> float:
        """Maximum projected in-cell demand over the horizon (BU)."""
        demand = self.projected_in_cell_demand()
        return max(demand) if demand else 0.0
