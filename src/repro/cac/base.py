"""Admission-controller interface shared by FACS, SCC and the baselines.

Every controller answers the same question the paper poses during the call
setup phase: *given a connection request and the current state of the base
station, should the call be admitted?*  Controllers additionally receive
lifecycle notifications (admitted / released) so stateful schemes — the FACS
counters, SCC's shadow-cluster bookkeeping — can track ongoing calls.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping

from ..cellular.calls import Call
from ..cellular.cell import BaseStation

__all__ = ["AdmissionDecision", "AdmissionController", "DecisionOutcome"]


class DecisionOutcome:
    """Soft decision labels matching the paper's A/R term set."""

    REJECT = "reject"
    WEAK_REJECT = "weak_reject"
    NEUTRAL = "not_reject_not_accept"
    WEAK_ACCEPT = "weak_accept"
    ACCEPT = "accept"

    ORDERED = (REJECT, WEAK_REJECT, NEUTRAL, WEAK_ACCEPT, ACCEPT)


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission decision.

    ``accepted`` is the binding crisp decision.  ``score`` is the controller's
    soft output when it has one (FACS exposes the defuzzified A/R value in
    [-1, 1]); ``outcome`` is the corresponding linguistic label; ``reason``
    is a human-readable explanation; ``diagnostics`` carries
    controller-specific numbers (e.g. FLC1's correction value) that the
    experiment layer logs.
    """

    accepted: bool
    score: float = 0.0
    outcome: str = DecisionOutcome.NEUTRAL
    reason: str = ""
    diagnostics: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.outcome not in DecisionOutcome.ORDERED:
            raise ValueError(
                f"unknown outcome {self.outcome!r}; expected one of {DecisionOutcome.ORDERED}"
            )


class AdmissionController(ABC):
    """Abstract call admission controller."""

    #: Short display name used in benchmark tables ("FACS", "SCC", "CS", ...).
    name: str = "controller"

    @abstractmethod
    def decide(self, call: Call, station: BaseStation, now: float) -> AdmissionDecision:
        """Decide whether to admit ``call`` at ``station`` at time ``now``.

        Implementations must not mutate the station's ledger — the caller
        performs the allocation after a positive decision and then invokes
        :meth:`on_admitted`.
        """

    # -- lifecycle notifications (default: stateless no-ops) -------------
    def on_admitted(self, call: Call, station: BaseStation, now: float) -> None:
        """Called after the call's bandwidth has been allocated."""

    def on_released(self, call: Call, station: BaseStation, now: float) -> None:
        """Called after the call's bandwidth has been released (completion, drop or handoff-out)."""

    def reset(self) -> None:
        """Clear any internal state between simulation replications."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
