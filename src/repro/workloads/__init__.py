"""Pluggable workload models: arrival processes and service-class mixes.

The subsystem behind ROADMAP item 4: a string-keyed :data:`WORKLOADS`
registry of arrival-process models (``poisson`` — the byte-identical
legacy default — plus ``mmpp``, ``heavy-tail``, ``diurnal`` and
``flash-crowd``) paired with multi-service class presets (voice/data/
video), threaded through the batch, network, shard, trace and service
simulation paths via the ``workload=`` field on
:class:`~repro.simulation.config.BatchExperimentConfig` and
:class:`~repro.simulation.config.NetworkExperimentConfig`.
"""

from .arrivals import (
    ArrivalModel,
    DiurnalArrival,
    FlashCrowdArrival,
    HeavyTailArrival,
    InterarrivalSampler,
    MMPPArrival,
    PoissonArrival,
)
from .classes import (
    DATA_CLASS,
    DEFAULT_SERVICE_CLASSES,
    VIDEO_CLASS,
    VOICE_CLASS,
    ServiceClassDef,
    build_traffic_mix,
)
from .spec import (
    ARRIVAL_KINDS,
    WORKLOADS,
    WorkloadError,
    WorkloadSpec,
    register_workload,
    resolve_workload,
)

__all__ = [
    "ArrivalModel",
    "InterarrivalSampler",
    "PoissonArrival",
    "MMPPArrival",
    "HeavyTailArrival",
    "DiurnalArrival",
    "FlashCrowdArrival",
    "ServiceClassDef",
    "VOICE_CLASS",
    "DATA_CLASS",
    "VIDEO_CLASS",
    "DEFAULT_SERVICE_CLASSES",
    "build_traffic_mix",
    "WorkloadError",
    "WorkloadSpec",
    "WORKLOADS",
    "ARRIVAL_KINDS",
    "register_workload",
    "resolve_workload",
]
