"""Arrival-process models: the traffic shapes the paper never exercised.

The paper's evaluation drives every experiment with a homogeneous Poisson
stream.  This module opens that axis: each :class:`ArrivalModel` describes
one arrival process as a frozen, strictly-validated dataclass and exposes
the two seams the simulators draw through —

* :meth:`ArrivalModel.batch_arrival_times` — the single-cell batch path
  (Figs. 7–10, traces, service replay): ``count`` arrival instants spread
  over a window;
* :meth:`ArrivalModel.sampler` — the multi-cell DES path (coupled engine
  and per-cell shards): a stateful per-cell sampler yielding successive
  inter-arrival gaps.

Every draw comes from the caller's named :class:`~repro.des.rng.RandomStream`
and every sampler's evolution is a pure function of ``(model, stream,
rate)``, so all workloads inherit the byte-identical-across-backends
guarantee of the seeded-task architecture for free.  :class:`PoissonArrival`
reproduces the legacy draw sequences *exactly* (sorted uniforms over the
window on the batch path, ``exponential(1/rate)`` gaps on the DES path), so
a poisson workload is bit-identical to a config with no workload at all.

The time-varying models (:class:`DiurnalArrival`, :class:`FlashCrowdArrival`)
are nonhomogeneous Poisson processes simulated by Lewis–Shedler thinning;
their rate functions are normalised so the long-run mean rate equals the
configured target, keeping offered load comparable across workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Protocol

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..des.rng import RandomStream

__all__ = [
    "ArrivalModel",
    "InterarrivalSampler",
    "PoissonArrival",
    "MMPPArrival",
    "HeavyTailArrival",
    "DiurnalArrival",
    "FlashCrowdArrival",
]


class InterarrivalSampler(Protocol):
    """Stateful per-run sampler of successive inter-arrival gaps."""

    def next_interarrival(self, now: float) -> float:
        """Gap (seconds) from ``now`` to the next arrival; strictly positive."""
        ...


def _require_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class ArrivalModel:
    """Base class of arrival-process models.

    Subclasses set :attr:`kind` (the codec discriminator) and implement
    :meth:`sampler`; the default :meth:`batch_arrival_times` walks the
    sampler at the rate that puts ``count`` expected arrivals in the
    window, so only processes with a special closed form (Poisson's order
    statistics) need to override it.
    """

    kind: ClassVar[str] = ""

    def sampler(self, rng: "RandomStream", rate_per_s: float) -> InterarrivalSampler:
        """A fresh stateful sampler targeting ``rate_per_s`` mean arrivals/s."""
        raise NotImplementedError

    def batch_arrival_times(
        self, rng: "RandomStream", count: int, window_s: float
    ) -> list[float]:
        """``count`` increasing arrival instants with mean rate count/window."""
        if count == 0:
            return []
        _require_positive("window_s", window_s)
        sampler = self.sampler(rng, count / window_s)
        times: list[float] = []
        now = 0.0
        for _ in range(count):
            now += sampler.next_interarrival(now)
            times.append(now)
        return times

    def batch_arrival_times_array(
        self, rng: "RandomStream", count: int, window_s: float
    ) -> np.ndarray:
        """:meth:`batch_arrival_times` as a float64 column.

        The default delegates to the list path, so every model is
        bit-identical across the object and columnar trace builders by
        construction; models with a vectorizable closed form (Poisson's
        order statistics) override it.
        """
        return np.asarray(self.batch_arrival_times(rng, count, window_s), dtype=np.float64)

    def mean_rate_multiplier(self) -> float:
        """Long-run mean arrival rate as a multiple of the configured target.

        Every registered model normalises to 1.0; the property tests assert
        the empirical rate against ``rate * mean_rate_multiplier()``.
        """
        return 1.0


class _PoissonSampler:
    def __init__(self, rng: "RandomStream", rate_per_s: float):
        self._rng = rng
        self._mean = 1.0 / rate_per_s

    def next_interarrival(self, now: float) -> float:
        return self._rng.exponential(self._mean)


@dataclass(frozen=True)
class PoissonArrival(ArrivalModel):
    """The paper's homogeneous Poisson process — the byte-identical default.

    Both seams reproduce the legacy draw sequences exactly: the batch path
    draws ``count`` uniforms over the window and sorts them (the order
    statistics of a conditioned Poisson process — the historical
    ``build_requests`` arithmetic), the DES path draws
    ``exponential(1/rate)`` gaps.
    """

    kind: ClassVar[str] = "poisson"

    def sampler(self, rng: "RandomStream", rate_per_s: float) -> InterarrivalSampler:
        _require_positive("rate_per_s", rate_per_s)
        return _PoissonSampler(rng, rate_per_s)

    def batch_arrival_times(
        self, rng: "RandomStream", count: int, window_s: float
    ) -> list[float]:
        _require_positive("window_s", window_s)
        return sorted(rng.uniform(0.0, window_s) for _ in range(count))

    def batch_arrival_times_array(
        self, rng: "RandomStream", count: int, window_s: float
    ) -> np.ndarray:
        """Vectorized order statistics: one sized uniform draw consumes the
        stream exactly like ``count`` scalar draws, so this stays
        bit-identical to :meth:`batch_arrival_times` (and to the legacy
        no-workload sequence)."""
        _require_positive("window_s", window_s)
        return np.sort(rng.uniform_batch(0.0, window_s, count))


class _MMPPSampler:
    """2-state Markov-modulated Poisson sampler.

    While in state ``i`` arrivals come at ``rate * multiplier[i]``; the
    sojourn in each state is exponential.  Competing-exponential race:
    if the candidate gap outlives the remaining sojourn, the elapsed
    sojourn is banked, the state flips, and the gap is redrawn in the new
    state (valid by memorylessness).  One stream drives both the gaps and
    the sojourns, so the trajectory is a pure function of the stream.
    """

    def __init__(self, model: "MMPPArrival", rng: "RandomStream", rate_per_s: float):
        self._model = model
        self._rng = rng
        self._rate = rate_per_s
        self._state = 0
        self._sojourn = rng.exponential(model.mean_sojourn_s[0])

    def next_interarrival(self, now: float) -> float:
        elapsed = 0.0
        while True:
            rate = self._rate * self._model.rate_multipliers[self._state]
            gap = self._rng.exponential(1.0 / rate)
            if gap <= self._sojourn:
                self._sojourn -= gap
                return elapsed + gap
            elapsed += self._sojourn
            self._state = 1 - self._state
            self._sojourn = self._rng.exponential(
                self._model.mean_sojourn_s[self._state]
            )


@dataclass(frozen=True)
class MMPPArrival(ArrivalModel):
    """2-state Markov-modulated Poisson bursts (burst state / calm state).

    ``rate_multipliers`` scale the target rate in each state and
    ``mean_sojourn_s`` are the exponential state-holding means.  The
    stationary state probabilities are proportional to the sojourn means,
    so validation requires the time-weighted mean multiplier to be exactly
    1 — the long-run rate equals the configured target and offered load
    stays comparable to the Poisson baseline.
    """

    rate_multipliers: tuple[float, float] = (3.0, 0.5)
    mean_sojourn_s: tuple[float, float] = (60.0, 240.0)

    kind: ClassVar[str] = "mmpp"

    def __post_init__(self) -> None:
        object.__setattr__(self, "rate_multipliers", tuple(self.rate_multipliers))
        object.__setattr__(self, "mean_sojourn_s", tuple(self.mean_sojourn_s))
        if len(self.rate_multipliers) != 2 or len(self.mean_sojourn_s) != 2:
            raise ValueError(
                "MMPP is 2-state: rate_multipliers and mean_sojourn_s need "
                f"exactly two entries, got {self.rate_multipliers} / "
                f"{self.mean_sojourn_s}"
            )
        for value in (*self.rate_multipliers, *self.mean_sojourn_s):
            _require_positive("MMPP parameters", value)
        s1, s2 = self.mean_sojourn_s
        m1, m2 = self.rate_multipliers
        mean_multiplier = (s1 * m1 + s2 * m2) / (s1 + s2)
        if abs(mean_multiplier - 1.0) > 1e-9:
            raise ValueError(
                "MMPP time-weighted mean rate multiplier must be 1 "
                f"(got {mean_multiplier:.6f}); scale rate_multipliers or "
                "mean_sojourn_s so the long-run rate matches the target"
            )

    def sampler(self, rng: "RandomStream", rate_per_s: float) -> InterarrivalSampler:
        _require_positive("rate_per_s", rate_per_s)
        return _MMPPSampler(self, rng, rate_per_s)


class _HeavyTailSampler:
    def __init__(self, model: "HeavyTailArrival", rng: "RandomStream", rate_per_s: float):
        self._rng = rng
        if model.distribution == "pareto":
            # scale * shape / (shape - 1) == 1 / rate
            self._pareto_scale = (model.shape - 1.0) / (model.shape * rate_per_s)
            self._shape = model.shape
            self._mu = None
        else:  # lognormal: exp(mu + sigma^2/2) == 1 / rate
            self._mu = math.log(1.0 / rate_per_s) - model.sigma**2 / 2.0
            self._sigma = model.sigma

    def next_interarrival(self, now: float) -> float:
        if self._mu is None:
            return self._rng.pareto(self._shape, self._pareto_scale)
        return self._rng.lognormal(self._mu, self._sigma)


@dataclass(frozen=True)
class HeavyTailArrival(ArrivalModel):
    """Heavy-tailed renewal arrivals (Pareto or lognormal gaps).

    The gap distribution is scaled so its mean is exactly ``1/rate`` —
    same long-run rate as Poisson, but with tail episodes (one very long
    gap followed by clusters of short ones) Poisson never produces.
    Pareto requires ``shape > 1`` (finite mean); shapes in ``(1, 2]``
    have infinite variance, so the default 2.8 keeps empirical-rate
    convergence testable while staying genuinely heavy-tailed.
    """

    distribution: str = "pareto"
    shape: float = 2.8
    sigma: float = 1.0

    kind: ClassVar[str] = "heavy-tail"

    def __post_init__(self) -> None:
        if self.distribution not in ("pareto", "lognormal"):
            raise ValueError(
                f"distribution must be 'pareto' or 'lognormal', "
                f"got {self.distribution!r}"
            )
        if self.distribution == "pareto" and not self.shape > 1.0:
            raise ValueError(
                f"pareto shape must exceed 1 (finite mean), got {self.shape}"
            )
        _require_positive("sigma", self.sigma)

    def sampler(self, rng: "RandomStream", rate_per_s: float) -> InterarrivalSampler:
        _require_positive("rate_per_s", rate_per_s)
        return _HeavyTailSampler(self, rng, rate_per_s)


class _ThinningSampler:
    """Lewis–Shedler thinning for a nonhomogeneous Poisson process.

    Candidates arrive at the dominating constant ``max_rate``; each is
    accepted with probability ``rate(t)/max_rate``.  Two draws per
    candidate (gap, acceptance uniform) in a fixed order keep the
    trajectory a pure function of the stream.
    """

    def __init__(self, rng: "RandomStream", max_rate: float, rate_at) -> None:
        self._rng = rng
        self._mean_gap = 1.0 / max_rate
        self._max_rate = max_rate
        self._rate_at = rate_at

    def next_interarrival(self, now: float) -> float:
        t = now
        while True:
            t += self._rng.exponential(self._mean_gap)
            if self._rng.uniform(0.0, 1.0) * self._max_rate <= self._rate_at(t):
                return t - now


@dataclass(frozen=True)
class DiurnalArrival(ArrivalModel):
    """Sinusoidal rate ramp: ``rate(t) = rate * (1 + a sin(2πt/period))``.

    The sinusoid averages to the configured target over each full period,
    so long runs stay load-comparable while individual windows swing
    between ``(1-a)`` and ``(1+a)`` times the nominal rate.
    """

    amplitude: float = 0.6
    period_s: float = 600.0

    kind: ClassVar[str] = "diurnal"

    def __post_init__(self) -> None:
        if not 0.0 < self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must lie in (0, 1) so the rate stays positive, "
                f"got {self.amplitude}"
            )
        _require_positive("period_s", self.period_s)

    def sampler(self, rng: "RandomStream", rate_per_s: float) -> InterarrivalSampler:
        _require_positive("rate_per_s", rate_per_s)
        omega = 2.0 * math.pi / self.period_s

        def rate_at(t: float) -> float:
            return rate_per_s * (1.0 + self.amplitude * math.sin(omega * t))

        return _ThinningSampler(rng, rate_per_s * (1.0 + self.amplitude), rate_at)


@dataclass(frozen=True)
class FlashCrowdArrival(ArrivalModel):
    """Periodic flash-crowd spikes over a Poisson base load.

    Every ``period_s`` seconds the rate jumps to ``multiplier`` times the
    base for ``spike_duration_s`` seconds (starting at ``spike_start_s``
    into the period).  The base rate is normalised down so the long-run
    mean — base plus spikes — equals the configured target exactly.
    """

    multiplier: float = 5.0
    spike_duration_s: float = 60.0
    period_s: float = 600.0
    spike_start_s: float = 120.0

    kind: ClassVar[str] = "flash-crowd"

    def __post_init__(self) -> None:
        if not self.multiplier > 1.0:
            raise ValueError(f"multiplier must exceed 1, got {self.multiplier}")
        _require_positive("spike_duration_s", self.spike_duration_s)
        _require_positive("period_s", self.period_s)
        if self.spike_start_s < 0:
            raise ValueError(
                f"spike_start_s must be non-negative, got {self.spike_start_s}"
            )
        if self.spike_start_s + self.spike_duration_s > self.period_s:
            raise ValueError(
                "spike must fit inside one period: "
                f"start {self.spike_start_s} + duration {self.spike_duration_s} "
                f"exceeds period {self.period_s}"
            )

    def sampler(self, rng: "RandomStream", rate_per_s: float) -> InterarrivalSampler:
        _require_positive("rate_per_s", rate_per_s)
        duty = self.spike_duration_s / self.period_s
        base = rate_per_s / (1.0 + (self.multiplier - 1.0) * duty)
        spike_end = self.spike_start_s + self.spike_duration_s

        def rate_at(t: float) -> float:
            phase = t % self.period_s
            if self.spike_start_s <= phase < spike_end:
                return base * self.multiplier
            return base

        return _ThinningSampler(rng, base * self.multiplier, rate_at)
