"""Workload specifications: registry, validation and the JSON codec core.

A :class:`WorkloadSpec` bundles one arrival-process model with an optional
multi-service class mix under a registrable name.  The string-keyed
:data:`WORKLOADS` registry plays the same role `CONTROLLERS` does for
admission policies: scenario configs, the CLI and campaigns refer to
workloads by name, and :func:`resolve_workload` also accepts a ``*.json``
file exported by :func:`repro.analysis.io.write_workload_json` — a
definition file stands in for a registered name everywhere.

``workload=None`` on a config is the legacy behaviour; the registered
``"poisson"`` workload reproduces it draw for draw (and the scenario layer
normalises the *name* ``"poisson"`` to ``None``, so default payloads stay
byte-identical to the pre-workload schema).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from ..cellular.traffic import TrafficMix
from ..registry import Registry
from .arrivals import (
    ArrivalModel,
    DiurnalArrival,
    FlashCrowdArrival,
    HeavyTailArrival,
    MMPPArrival,
    PoissonArrival,
)
from .classes import DEFAULT_SERVICE_CLASSES, ServiceClassDef

__all__ = [
    "WorkloadError",
    "WorkloadSpec",
    "WORKLOADS",
    "ARRIVAL_KINDS",
    "register_workload",
    "resolve_workload",
]


class WorkloadError(ValueError):
    """Raised on invalid workload specifications or payloads."""


#: Arrival-model discriminators for the codec, kind -> dataclass.
ARRIVAL_KINDS: dict[str, type[ArrivalModel]] = {
    model.kind: model
    for model in (
        PoissonArrival,
        MMPPArrival,
        HeavyTailArrival,
        DiurnalArrival,
        FlashCrowdArrival,
    )
}


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload: an arrival process plus optional service classes.

    ``service_classes=None`` keeps the config's own traffic mix (the
    paper's text/voice/video split); a tuple of
    :class:`~repro.workloads.classes.ServiceClassDef` replaces it.
    """

    name: str
    arrival: ArrivalModel
    service_classes: tuple[ServiceClassDef, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise WorkloadError(f"workload name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.arrival, ArrivalModel) or type(self.arrival) is ArrivalModel:
            raise WorkloadError(
                f"arrival must be a concrete ArrivalModel, got {self.arrival!r}"
            )
        if self.service_classes is not None:
            object.__setattr__(self, "service_classes", tuple(self.service_classes))
            if not self.service_classes:
                raise WorkloadError(
                    "service_classes must be None or a non-empty tuple"
                )
            total = sum(d.share for d in self.service_classes)
            if abs(total - 1.0) > 1e-9:
                raise WorkloadError(
                    f"service class shares must sum to 1, got {total:.6f}"
                )
            # Validates class uniqueness and TrafficMix invariants eagerly.
            try:
                self.traffic_mix()
            except WorkloadError:
                raise
            except ValueError as exc:
                raise WorkloadError(str(exc)) from exc

    def traffic_mix(self) -> TrafficMix | None:
        """The mix this workload imposes, or ``None`` to keep the config's."""
        if self.service_classes is None:
            return None
        from .classes import build_traffic_mix

        return build_traffic_mix(self.service_classes)

    def class_names(self) -> tuple[str, ...]:
        """Service names the per-class counters report, in mix order."""
        if self.service_classes is None:
            return ()
        return tuple(definition.service for definition in self.service_classes)

    # -- codec core (envelope added by repro.analysis.io) ----------------
    def to_dict(self) -> dict[str, Any]:
        arrival: dict[str, Any] = {"kind": type(self.arrival).kind}
        for field_def in fields(self.arrival):
            value = getattr(self.arrival, field_def.name)
            arrival[field_def.name] = list(value) if isinstance(value, tuple) else value
        payload: dict[str, Any] = {"name": self.name, "arrival": arrival}
        if self.service_classes is None:
            payload["service_classes"] = None
        else:
            payload["service_classes"] = [
                {
                    "service": d.service,
                    "bandwidth_units": d.bandwidth_units,
                    "mean_holding_time_s": d.mean_holding_time_s,
                    "share": d.share,
                    "priority_weight": d.priority_weight,
                }
                for d in self.service_classes
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadSpec":
        known = {"name", "arrival", "service_classes"}
        unknown = set(payload) - known
        if unknown:
            raise WorkloadError(
                f"unknown workload fields {sorted(unknown)}; expected {sorted(known)}"
            )
        missing = {"name", "arrival"} - set(payload)
        if missing:
            raise WorkloadError(f"workload payload is missing {sorted(missing)}")
        arrival_payload = payload["arrival"]
        if not isinstance(arrival_payload, Mapping) or "kind" not in arrival_payload:
            raise WorkloadError(
                f"arrival must be an object with a 'kind', got {arrival_payload!r}"
            )
        kind = arrival_payload["kind"]
        try:
            model_cls = ARRIVAL_KINDS[kind]
        except KeyError:
            raise WorkloadError(
                f"unknown arrival kind {kind!r}; available: {sorted(ARRIVAL_KINDS)}"
            ) from None
        field_names = {f.name for f in fields(model_cls)}
        params = {k: v for k, v in arrival_payload.items() if k != "kind"}
        unknown_params = set(params) - field_names
        if unknown_params:
            raise WorkloadError(
                f"unknown {kind!r} arrival parameters {sorted(unknown_params)}; "
                f"expected {sorted(field_names)}"
            )
        params = {
            k: tuple(v) if isinstance(v, list) else v for k, v in params.items()
        }
        try:
            arrival = model_cls(**params)
        except ValueError as exc:
            raise WorkloadError(f"invalid {kind!r} arrival parameters: {exc}") from exc
        classes_payload = payload.get("service_classes")
        service_classes: tuple[ServiceClassDef, ...] | None = None
        if classes_payload is not None:
            if not isinstance(classes_payload, (list, tuple)):
                raise WorkloadError(
                    f"service_classes must be null or a list, got {classes_payload!r}"
                )
            entries = []
            for entry in classes_payload:
                if not isinstance(entry, Mapping):
                    raise WorkloadError(
                        f"each service class must be an object, got {entry!r}"
                    )
                class_fields = {f.name for f in fields(ServiceClassDef)}
                unknown_class = set(entry) - class_fields
                if unknown_class:
                    raise WorkloadError(
                        f"unknown service class fields {sorted(unknown_class)}; "
                        f"expected {sorted(class_fields)}"
                    )
                try:
                    entries.append(ServiceClassDef(**entry))
                except ValueError as exc:
                    raise WorkloadError(f"invalid service class: {exc}") from exc
            service_classes = tuple(entries)
        try:
            return cls(
                name=payload["name"],
                arrival=arrival,
                service_classes=service_classes,
            )
        except ValueError as exc:
            raise WorkloadError(str(exc)) from exc


WORKLOADS: Registry[WorkloadSpec] = Registry("workload")


def register_workload(spec: WorkloadSpec, *, replace: bool = False) -> WorkloadSpec:
    """Register ``spec`` under its own name."""
    return WORKLOADS.register(spec.name, spec, replace=replace)


#: The byte-identical default: legacy Poisson arrivals, config's own mix.
register_workload(WorkloadSpec(name="poisson", arrival=PoissonArrival()))
#: Bursty arrivals with the multi-service voice/data/video mix.
register_workload(
    WorkloadSpec(
        name="mmpp", arrival=MMPPArrival(), service_classes=DEFAULT_SERVICE_CLASSES
    )
)
register_workload(
    WorkloadSpec(
        name="heavy-tail",
        arrival=HeavyTailArrival(),
        service_classes=DEFAULT_SERVICE_CLASSES,
    )
)
register_workload(
    WorkloadSpec(
        name="diurnal",
        arrival=DiurnalArrival(),
        service_classes=DEFAULT_SERVICE_CLASSES,
    )
)
register_workload(
    WorkloadSpec(
        name="flash-crowd",
        arrival=FlashCrowdArrival(),
        service_classes=DEFAULT_SERVICE_CLASSES,
    )
)


def resolve_workload(value: "WorkloadSpec | str | None") -> WorkloadSpec | None:
    """Resolve a workload reference to a spec (or ``None`` for legacy).

    Accepts a :class:`WorkloadSpec`, a registered name, or a path to a
    workload JSON file (``*.json``, as written by
    :func:`repro.analysis.io.write_workload_json`).  ``None`` and the name
    ``"poisson"``'s *normalised* form pass through as ``None`` upstream;
    here ``"poisson"`` resolves to the registered spec so direct callers
    can still ask for it explicitly.
    """
    if value is None or isinstance(value, WorkloadSpec):
        return value
    if not isinstance(value, str):
        raise WorkloadError(
            f"workload must be a WorkloadSpec, a registered name, a .json "
            f"path or None, got {value!r}"
        )
    if value.endswith(".json"):
        from ..analysis.io import read_workload_json

        return read_workload_json(value)
    if value in WORKLOADS:
        return WORKLOADS.get(value)
    raise WorkloadError(
        f"unknown workload {value!r}; registered: {list(WORKLOADS.names())} "
        f"(or pass a workload definition .json path)"
    )
