"""Multi-service class definitions for workload studies.

The paper's mix (60% text / 30% voice / 10% video) is hard-wired into
:data:`repro.cellular.traffic.PAPER_TRAFFIC_MIX`.  A
:class:`ServiceClassDef` makes the class axis declarative: each definition
names a :class:`~repro.cellular.traffic.ServiceClass`, its bandwidth-unit
demand, its mean holding time, its share of arrivals, and a *priority
weight* in ``(0, 1]`` that QoS-aware controllers may use to bias admission
(1.0 = never sacrifice; lower = shed first under pressure).

The voice/data/video presets model the workload ROADMAP item 4 asks for:
interactive voice (narrow, strict), bulk data (narrow, elastic), streaming
video (wide, semi-elastic).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cellular.traffic import ServiceClass, TrafficClassSpec, TrafficMix

__all__ = [
    "ServiceClassDef",
    "VOICE_CLASS",
    "DATA_CLASS",
    "VIDEO_CLASS",
    "DEFAULT_SERVICE_CLASSES",
    "build_traffic_mix",
]


@dataclass(frozen=True)
class ServiceClassDef:
    """One service class of a workload: demand, holding time, priority."""

    service: str
    bandwidth_units: int
    mean_holding_time_s: float
    share: float
    priority_weight: float = 1.0

    def __post_init__(self) -> None:
        valid = tuple(member.value for member in ServiceClass)
        if self.service not in valid:
            raise ValueError(
                f"unknown service class {self.service!r}; expected one of {valid}"
            )
        if not isinstance(self.bandwidth_units, int) or isinstance(
            self.bandwidth_units, bool
        ) or self.bandwidth_units <= 0:
            raise ValueError(
                f"bandwidth_units must be a positive integer, "
                f"got {self.bandwidth_units!r}"
            )
        if not self.mean_holding_time_s > 0:
            raise ValueError(
                f"mean_holding_time_s must be positive, "
                f"got {self.mean_holding_time_s}"
            )
        if not 0.0 < self.share <= 1.0:
            raise ValueError(f"share must lie in (0, 1], got {self.share}")
        if not 0.0 < self.priority_weight <= 1.0:
            raise ValueError(
                f"priority_weight must lie in (0, 1], got {self.priority_weight}"
            )

    @property
    def service_class(self) -> ServiceClass:
        return ServiceClass(self.service)

    def to_traffic_spec(self) -> TrafficClassSpec:
        """The simulator-facing spec (drops the priority weight)."""
        return TrafficClassSpec(
            service=self.service_class,
            bandwidth_units=self.bandwidth_units,
            share=self.share,
            mean_holding_time_s=self.mean_holding_time_s,
        )


#: Interactive voice: narrow, short, never sacrificed.
VOICE_CLASS = ServiceClassDef(
    service="voice",
    bandwidth_units=5,
    mean_holding_time_s=120.0,
    share=0.35,
    priority_weight=1.0,
)

#: Bulk data: narrow, elastic — first to shed under pressure.
DATA_CLASS = ServiceClassDef(
    service="data",
    bandwidth_units=2,
    mean_holding_time_s=90.0,
    share=0.45,
    priority_weight=0.4,
)

#: Streaming video: wide, long, semi-elastic.
VIDEO_CLASS = ServiceClassDef(
    service="video",
    bandwidth_units=10,
    mean_holding_time_s=180.0,
    share=0.20,
    priority_weight=0.7,
)

#: The multi-service mix of the bursty registered workloads.
DEFAULT_SERVICE_CLASSES: tuple[ServiceClassDef, ...] = (
    VOICE_CLASS,
    DATA_CLASS,
    VIDEO_CLASS,
)


def build_traffic_mix(classes: tuple[ServiceClassDef, ...]) -> TrafficMix:
    """A :class:`TrafficMix` over the definitions, in definition order.

    Order matters: the mix's sampling table follows insertion order, so
    two workloads listing the same classes differently draw differently.
    """
    seen: set[str] = set()
    for definition in classes:
        if definition.service in seen:
            raise ValueError(
                f"duplicate service class {definition.service!r} in workload"
            )
        seen.add(definition.service)
    return TrafficMix(
        {definition.service_class: definition.to_traffic_spec() for definition in classes}
    )
