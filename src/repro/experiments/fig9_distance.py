"""Figure 9: acceptance percentage vs requesting connections for different distances.

The paper fixes the user-to-BS distance per curve (1, 3, 7 and 10 km) and
randomises the remaining attributes.  Closer users are accepted slightly
more, but the spread is visibly smaller than for speed or angle — the paper's
point that "the speed and angle have strong effect compared with the
distance".
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.plotting import ascii_line_plot
from ..analysis.tables import format_curve_table
from ..cac.facs.system import FACSConfig
from ..simulation.config import PAPER_REQUEST_COUNTS
from ..simulation.executor import SweepExecutor
from ..simulation.scenario import (
    PAPER_DISTANCE_VALUES_KM,
    distance_sweep_variants,
    with_workload,
)
from ..simulation.sweep import SweepResult, run_acceptance_sweep
from ..workloads import WorkloadSpec

__all__ = ["reproduce_figure9", "render_figure9", "curve_spread"]


def reproduce_figure9(
    distances_km: Sequence[float] = PAPER_DISTANCE_VALUES_KM,
    request_counts: Sequence[int] = PAPER_REQUEST_COUNTS,
    replications: int = 10,
    seed: int = 20070609,
    facs_config: FACSConfig | None = None,
    executor: SweepExecutor | str | None = None,
    workload: WorkloadSpec | None = None,
) -> SweepResult:
    """Run the Fig. 9 sweep and return one curve per distance value."""
    variants = with_workload(
        distance_sweep_variants(distances_km, seed=seed, facs_config=facs_config),
        workload,
    )
    return run_acceptance_sweep(
        name="fig9-distance",
        variants=variants,
        request_counts=request_counts,
        replications=replications,
        executor=executor,
    )


def curve_spread(sweep: SweepResult) -> float:
    """Spread (max - min of curve means) of a sweep, in percentage points.

    Used to check the paper's claim that the distance spread is smaller than
    the speed and angle spreads.
    """
    means = [curve.mean_acceptance() for curve in sweep.curves]
    return max(means) - min(means)


def render_figure9(sweep: SweepResult) -> str:
    """Render the Fig. 9 reproduction as an ASCII table plus plot."""
    x_values = sweep.curves[0].request_counts()
    series = {curve.label: curve.acceptance_series() for curve in sweep.curves}
    table = format_curve_table(
        "Requests",
        x_values,
        series,
        title="Figure 9 — acceptance percentage vs requesting connections (distance curves)",
    )
    plot = ascii_line_plot(
        [float(x) for x in x_values],
        series,
        y_label="percentage of accepted calls",
        x_label="number of requesting connections",
        title="Figure 9 (reproduction)",
    )
    return f"{table}\n\n{plot}"
