"""Experiments reproducing every table and figure of the paper's evaluation."""

from .figures import EXPERIMENTS, ExperimentSpec, experiment, experiment_ids
from .fig7_speed import render_figure7, reproduce_figure7
from .fig8_angle import render_figure8, reproduce_figure8
from .fig9_distance import curve_spread, render_figure9, reproduce_figure9
from .fig10_facs_vs_scc import (
    crossover_request_count,
    render_figure10,
    reproduce_figure10,
)
from .tables import (
    render_flc1_memberships,
    render_flc2_memberships,
    render_frb1,
    render_frb2,
)
from .ablations import (
    baseline_ablation,
    defuzzifier_ablation,
    network_integration,
    threshold_ablation,
)
from .network_sweep import (
    DEFAULT_NETWORK_BASE_CONFIG,
    network_sweep_controllers,
    network_sweep_spec,
    render_network_sweep,
    reproduce_network_sweep,
)
from .surfaces import (
    flc1_surface_grid,
    flc2_surface_grid,
    render_flc1_grid,
    render_flc1_surface,
    render_flc2_grid,
    render_flc2_surface,
)

__all__ = [
    "ExperimentSpec",
    "EXPERIMENTS",
    "experiment",
    "experiment_ids",
    "reproduce_figure7",
    "render_figure7",
    "reproduce_figure8",
    "render_figure8",
    "reproduce_figure9",
    "render_figure9",
    "curve_spread",
    "reproduce_figure10",
    "render_figure10",
    "crossover_request_count",
    "render_frb1",
    "render_frb2",
    "render_flc1_memberships",
    "render_flc2_memberships",
    "defuzzifier_ablation",
    "threshold_ablation",
    "baseline_ablation",
    "network_integration",
    "DEFAULT_NETWORK_BASE_CONFIG",
    "network_sweep_controllers",
    "network_sweep_spec",
    "reproduce_network_sweep",
    "render_network_sweep",
    "render_flc1_surface",
    "render_flc2_surface",
    "render_flc1_grid",
    "render_flc2_grid",
    "flc1_surface_grid",
    "flc2_surface_grid",
]
