"""Registry of the paper's figures and tables and how to regenerate them.

Each entry ties a paper artifact (Fig. 7, Table 1, ...) to the function in
this package that reproduces it and to the expected qualitative shape the
reproduction is checked against.  The benches and EXPERIMENTS.md are both
driven from this registry so the experiment inventory lives in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentSpec", "EXPERIMENTS", "experiment", "experiment_ids"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Description of one reproducible paper artifact."""

    experiment_id: str
    paper_artifact: str
    description: str
    expected_shape: str
    bench_target: str
    runner: str  # dotted name of the function reproducing it


EXPERIMENTS: tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        experiment_id="table1-frb1",
        paper_artifact="Table 1",
        description="FRB1: 42 rules mapping (speed, angle, distance) to the correction value",
        expected_shape="exactly 42 rules covering all 3x7x2 input combinations",
        bench_target="benchmarks/bench_tables.py",
        runner="repro.experiments.tables.render_frb1",
    ),
    ExperimentSpec(
        experiment_id="table2-frb2",
        paper_artifact="Table 2",
        description="FRB2: 27 rules mapping (Cv, request, counter state) to accept/reject",
        expected_shape="exactly 27 rules covering all 3x3x3 input combinations",
        bench_target="benchmarks/bench_tables.py",
        runner="repro.experiments.tables.render_frb2",
    ),
    ExperimentSpec(
        experiment_id="fig5-flc1-mf",
        paper_artifact="Figure 5",
        description="FLC1 membership functions for S, A, D and Cv",
        expected_shape="term sets cover their universes with triangular/trapezoidal shapes",
        bench_target="benchmarks/bench_membership.py",
        runner="repro.experiments.tables.render_flc1_memberships",
    ),
    ExperimentSpec(
        experiment_id="fig6-flc2-mf",
        paper_artifact="Figure 6",
        description="FLC2 membership functions for Cv, R, Cs and A/R",
        expected_shape="term sets cover their universes with triangular/trapezoidal shapes",
        bench_target="benchmarks/bench_membership.py",
        runner="repro.experiments.tables.render_flc2_memberships",
    ),
    ExperimentSpec(
        experiment_id="fig7-speed",
        paper_artifact="Figure 7",
        description="Acceptance percentage vs requesting connections for speeds 4/10/30/60 km/h",
        expected_shape=(
            "acceptance decreases with offered requests; faster users are accepted more "
            "(walking speeds 4 and 10 km/h lowest)"
        ),
        bench_target="benchmarks/bench_fig7_speed.py",
        runner="repro.experiments.fig7_speed.reproduce_figure7",
    ),
    ExperimentSpec(
        experiment_id="fig8-angle",
        paper_artifact="Figure 8",
        description="Acceptance percentage vs requesting connections for angles 0/30/50/60/90 deg",
        expected_shape=(
            "angle 0 stays near 100% at light load; acceptance decreases monotonically "
            "with the angle"
        ),
        bench_target="benchmarks/bench_fig8_angle.py",
        runner="repro.experiments.fig8_angle.reproduce_figure8",
    ),
    ExperimentSpec(
        experiment_id="fig9-distance",
        paper_artifact="Figure 9",
        description="Acceptance percentage vs requesting connections for distances 1/3/7/10 km",
        expected_shape=(
            "closer users are accepted more, but the spread is smaller than for "
            "speed or angle"
        ),
        bench_target="benchmarks/bench_fig9_distance.py",
        runner="repro.experiments.fig9_distance.reproduce_figure9",
    ),
    ExperimentSpec(
        experiment_id="fig10-facs-vs-scc",
        paper_artifact="Figure 10",
        description="FACS vs SCC acceptance percentage vs requesting connections",
        expected_shape=(
            "FACS accepts more than SCC at light load and fewer at heavy load "
            "(crossover near the middle of the sweep)"
        ),
        bench_target="benchmarks/bench_fig10_facs_vs_scc.py",
        runner="repro.experiments.fig10_facs_vs_scc.reproduce_figure10",
    ),
    ExperimentSpec(
        experiment_id="abl-defuzz",
        paper_artifact="ablation (not in paper)",
        description="Sensitivity of the Fig. 7 curves to the defuzzification method",
        expected_shape="centroid and bisector nearly coincide; MOM is coarser",
        bench_target="benchmarks/bench_ablations.py",
        runner="repro.experiments.ablations.defuzzifier_ablation",
    ),
    ExperimentSpec(
        experiment_id="abl-threshold",
        paper_artifact="ablation (not in paper)",
        description="Sensitivity of the FACS acceptance to the A/R acceptance threshold",
        expected_shape="acceptance decreases monotonically as the threshold rises",
        bench_target="benchmarks/bench_ablations.py",
        runner="repro.experiments.ablations.threshold_ablation",
    ),
    ExperimentSpec(
        experiment_id="abl-baselines",
        paper_artifact="ablation (not in paper)",
        description="FACS and SCC against Complete Sharing, Guard Channel and Threshold policies",
        expected_shape="Complete Sharing accepts the most; FACS trades acceptance for QoS headroom",
        bench_target="benchmarks/bench_ablations.py",
        runner="repro.experiments.ablations.baseline_ablation",
    ),
    ExperimentSpec(
        experiment_id="net-integration",
        paper_artifact="Section 4 QoS claim",
        description="Multi-cell run with mobility and handoffs: dropping/blocking per controller",
        expected_shape="FACS keeps handoff dropping at or below the Complete Sharing level",
        bench_target="benchmarks/bench_network.py",
        runner="repro.experiments.ablations.network_integration",
    ),
    ExperimentSpec(
        experiment_id="net-sweep",
        paper_artifact="Section 4 QoS claim (load sweep)",
        description=(
            "Multi-cell QoS sweep: blocking/dropping/handoff failure vs per-cell "
            "arrival rate for FACS, SCC and Complete Sharing"
        ),
        expected_shape=(
            "dropping and handoff failure grow with offered load; FACS holds "
            "dropping at or below the Complete Sharing level throughout"
        ),
        bench_target="benchmarks/bench_network_sweep.py",
        runner="repro.experiments.network_sweep.reproduce_network_sweep",
    ),
    ExperimentSpec(
        experiment_id="surface-flc1",
        paper_artifact="Section 3.1 (derived)",
        description="FLC1 control surface: Cv over the (speed, angle) plane",
        expected_shape=(
            "Cv is highest for fast users heading straight at the BS and "
            "falls off as the angle grows"
        ),
        bench_target="benchmarks/bench_compiled_engine.py",
        runner="repro.experiments.surfaces.render_flc1_surface",
    ),
    ExperimentSpec(
        experiment_id="surface-flc2",
        paper_artifact="Section 3.2 (derived)",
        description="FLC2 control surface: A/R over the (Cv, counter state) plane",
        expected_shape=(
            "A/R decreases with occupancy and increases with Cv; the accept "
            "region shrinks as the counters fill"
        ),
        bench_target="benchmarks/bench_compiled_engine.py",
        runner="repro.experiments.surfaces.render_flc2_surface",
    ),
)

_BY_ID = {spec.experiment_id: spec for spec in EXPERIMENTS}


def experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by its identifier."""
    try:
        return _BY_ID[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(_BY_ID)}"
        ) from None


def experiment_ids() -> list[str]:
    """All registered experiment identifiers, in registry order."""
    return [spec.experiment_id for spec in EXPERIMENTS]
