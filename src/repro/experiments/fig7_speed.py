"""Figure 7: acceptance percentage vs requesting connections for different speeds.

The paper fixes the user speed per curve (4, 10, 30 and 60 km/h), randomises
the remaining attributes and reports the percentage of accepted calls as the
number of requesting connections grows from 0 to 100.  The headline
observation is that faster users are accepted more because their direction
"can not be changed easy", so FLC1 predicts their trajectory with more
confidence.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.plotting import ascii_line_plot
from ..analysis.tables import format_curve_table
from ..cac.facs.system import FACSConfig
from ..simulation.config import PAPER_REQUEST_COUNTS
from ..simulation.executor import SweepExecutor
from ..simulation.scenario import (
    PAPER_SPEED_VALUES_KMH,
    speed_sweep_variants,
    with_workload,
)
from ..simulation.sweep import SweepResult, run_acceptance_sweep
from ..workloads import WorkloadSpec

__all__ = ["reproduce_figure7", "render_figure7"]


def reproduce_figure7(
    speeds_kmh: Sequence[float] = PAPER_SPEED_VALUES_KMH,
    request_counts: Sequence[int] = PAPER_REQUEST_COUNTS,
    replications: int = 10,
    seed: int = 20070607,
    facs_config: FACSConfig | None = None,
    executor: SweepExecutor | str | None = None,
    workload: WorkloadSpec | None = None,
) -> SweepResult:
    """Run the Fig. 7 sweep and return one curve per speed value."""
    variants = with_workload(
        speed_sweep_variants(speeds_kmh, seed=seed, facs_config=facs_config),
        workload,
    )
    return run_acceptance_sweep(
        name="fig7-speed",
        variants=variants,
        request_counts=request_counts,
        replications=replications,
        executor=executor,
    )


def render_figure7(sweep: SweepResult) -> str:
    """Render the Fig. 7 reproduction as an ASCII table plus plot."""
    x_values = sweep.curves[0].request_counts()
    series = {curve.label: curve.acceptance_series() for curve in sweep.curves}
    table = format_curve_table(
        "Requests",
        x_values,
        series,
        title="Figure 7 — acceptance percentage vs requesting connections (speed curves)",
    )
    plot = ascii_line_plot(
        [float(x) for x in x_values],
        series,
        y_label="percentage of accepted calls",
        x_label="number of requesting connections",
        title="Figure 7 (reproduction)",
    )
    return f"{table}\n\n{plot}"
