"""The multi-cell QoS sweep: the paper's Section 4 claim at network scale.

The single-cell figures only show acceptance; the QoS argument — FACS keeps
*ongoing* calls alive by holding back new ones — needs the full multi-cell
simulation with mobility and handoffs.  This experiment sweeps the per-cell
arrival rate for several controllers and reports blocking, dropping and
handoff failure per point, fanned over the pluggable sweep executors.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

from ..analysis.plotting import ascii_line_plot
from ..analysis.tables import format_table
from ..cac.complete_sharing import CompleteSharingController
from ..cac.facs.system import FACSConfig
from ..cac.scc.system import SCCConfig
from ..simulation.config import NetworkExperimentConfig
from ..simulation.engine import ControllerFactory
from ..simulation.executor import SweepExecutor
from ..simulation.scenario import facs_factory, scc_factory
from ..simulation.sweep import (
    PAPER_NETWORK_ARRIVAL_RATES,
    NetworkSweepResult,
    NetworkSweepSpec,
    run_network_sweep,
)

__all__ = [
    "DEFAULT_NETWORK_BASE_CONFIG",
    "network_sweep_controllers",
    "network_sweep_spec",
    "reproduce_network_sweep",
    "render_network_sweep",
]

#: Canonical multi-cell scenario of the QoS sweep; the CLI derives its
#: config from this too, so topology changes stay in one place.
DEFAULT_NETWORK_BASE_CONFIG = NetworkExperimentConfig(
    rings=1,
    cell_radius_km=1.5,
    duration_s=1200.0,
    mean_speed_kmh=60.0,
    seed=20070627,
)


def network_sweep_controllers(
    facs_config: FACSConfig | None = None,
    scc_config: SCCConfig | None = None,
) -> Mapping[str, ControllerFactory]:
    """The default curve set: FACS and SCC against Complete Sharing."""
    return {
        "FACS": facs_factory(facs_config),
        "SCC": scc_factory(scc_config),
        "CS": CompleteSharingController,
    }


def network_sweep_spec(
    arrival_rates: Sequence[float] = PAPER_NETWORK_ARRIVAL_RATES,
    replications: int = 5,
    base_config: NetworkExperimentConfig | None = None,
    controllers: Mapping[str, ControllerFactory] | None = None,
    facs_config: FACSConfig | None = None,
    seed: int | None = None,
) -> NetworkSweepSpec:
    """Build the canonical network sweep specification.

    ``seed`` reseeds the canonical base config; when a ``base_config`` is
    supplied its own seed is authoritative, and passing both is rejected so
    a caller's seed is never silently dropped.
    """
    if base_config is None:
        base_config = replace(
            DEFAULT_NETWORK_BASE_CONFIG,
            seed=DEFAULT_NETWORK_BASE_CONFIG.seed if seed is None else seed,
        )
    elif seed is not None:
        raise ValueError(
            "pass either base_config or seed, not both — set the seed on the "
            "base_config"
        )
    if controllers is None:
        controllers = network_sweep_controllers(facs_config=facs_config)
    return NetworkSweepSpec(
        name="network-qos-sweep",
        controllers=controllers,
        arrival_rates=tuple(arrival_rates),
        replications=replications,
        base_config=base_config,
    )


def reproduce_network_sweep(
    arrival_rates: Sequence[float] = PAPER_NETWORK_ARRIVAL_RATES,
    replications: int = 5,
    executor: SweepExecutor | str | None = None,
    facs_config: FACSConfig | None = None,
    base_config: NetworkExperimentConfig | None = None,
    controllers: Mapping[str, ControllerFactory] | None = None,
) -> NetworkSweepResult:
    """Run the multi-cell QoS sweep with the canonical controller set."""
    spec = network_sweep_spec(
        arrival_rates=arrival_rates,
        replications=replications,
        base_config=base_config,
        controllers=controllers,
        facs_config=facs_config,
    )
    return run_network_sweep(spec, executor=executor)


def render_network_sweep(result: NetworkSweepResult) -> str:
    """Render the sweep as per-controller QoS tables plus dropping curves."""
    sections: list[str] = []
    for curve in result.curves:
        rows = [
            [
                f"{point.arrival_rate_per_cell_per_s:g}",
                f"{point.acceptance_percentage:.1f}%",
                f"{point.blocking_probability:.3f}",
                f"{point.dropping_probability:.3f}",
                f"{point.handoff_failure_ratio:.3f}",
                f"{point.mean_occupancy_bu:.1f}",
                point.replications,
            ]
            for point in curve.points
        ]
        sections.append(
            format_table(
                [
                    "Rate (calls/s/cell)",
                    "Accepted",
                    "P(block)",
                    "P(drop)",
                    "Handoff fail",
                    "Avg BU",
                    "Reps",
                ],
                rows,
                title=f"{curve.label} — multi-cell QoS vs offered load",
            )
        )
    first = result.curves[0]
    if len(first.points) >= 2:
        sections.append(
            ascii_line_plot(
                first.arrival_rates(),
                {curve.label: curve.dropping_series() for curve in result.curves},
                height=14,
                y_label="dropping probability of admitted calls",
                x_label="arrival rate (calls/s/cell)",
                title="Dropping probability vs offered load",
            )
        )
    return "\n\n".join(sections)
