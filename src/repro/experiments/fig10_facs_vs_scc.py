"""Figure 10: FACS vs SCC acceptance percentage.

The paper's headline comparison: with fully randomised user attributes, the
proposed FACS accepts *more* connections than the Shadow Cluster Concept
while bandwidth is plentiful (below roughly 50 requesting connections) and
*fewer* once the system approaches saturation — because FACS holds back calls
with unfavourable trajectories to protect the QoS of ongoing calls.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.plotting import ascii_line_plot
from ..analysis.tables import format_curve_table
from ..cac.facs.system import FACSConfig
from ..cac.scc.system import SCCConfig
from ..simulation.config import PAPER_REQUEST_COUNTS
from ..simulation.executor import SweepExecutor
from ..simulation.scenario import controller_comparison_variants, with_workload
from ..simulation.sweep import SweepResult, run_acceptance_sweep
from ..workloads import WorkloadSpec

__all__ = ["reproduce_figure10", "render_figure10", "crossover_request_count"]


def reproduce_figure10(
    request_counts: Sequence[int] = PAPER_REQUEST_COUNTS,
    replications: int = 10,
    seed: int = 20070610,
    facs_config: FACSConfig | None = None,
    scc_config: SCCConfig | None = None,
    executor: SweepExecutor | str | None = None,
    workload: WorkloadSpec | None = None,
) -> SweepResult:
    """Run the Fig. 10 sweep: the FACS and SCC curves on the same workload."""
    variants = with_workload(
        controller_comparison_variants(
            seed=seed, facs_config=facs_config, scc_config=scc_config
        ),
        workload,
    )
    return run_acceptance_sweep(
        name="fig10-facs-vs-scc",
        variants=variants,
        request_counts=request_counts,
        replications=replications,
        executor=executor,
    )


def crossover_request_count(sweep: SweepResult) -> int | None:
    """First request count at which SCC's acceptance overtakes FACS's.

    Returns ``None`` when the curves never cross inside the sweep — the
    Fig. 10 bench asserts that a crossover exists and falls in the interior
    of the 0–100 range.
    """
    facs = sweep.curve("FACS")
    scc = sweep.curve("SCC")
    for facs_point, scc_point in zip(facs.points, scc.points):
        if scc_point.acceptance_percentage > facs_point.acceptance_percentage:
            return facs_point.request_count
    return None


def render_figure10(sweep: SweepResult) -> str:
    """Render the Fig. 10 reproduction as an ASCII table plus plot."""
    x_values = sweep.curves[0].request_counts()
    series = {curve.label: curve.acceptance_series() for curve in sweep.curves}
    table = format_curve_table(
        "Requests",
        x_values,
        series,
        title="Figure 10 — FACS vs SCC acceptance percentage",
    )
    plot = ascii_line_plot(
        [float(x) for x in x_values],
        series,
        y_label="percentage of accepted calls",
        x_label="number of requesting connections",
        title="Figure 10 (reproduction)",
    )
    crossover = crossover_request_count(sweep)
    note = (
        f"crossover: SCC overtakes FACS at {crossover} requesting connections"
        if crossover is not None
        else "crossover: not observed within the sweep"
    )
    return f"{table}\n\n{plot}\n{note}"
