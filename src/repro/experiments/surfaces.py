"""Control-surface renderings of FLC1 and FLC2 (tensorized grid inference).

The decision behaviour of the two controllers is easiest to see as a
surface: Cv over the (speed, angle) plane for FLC1, A/R over the
(correction value, counter state) plane for FLC2.  Whole grids are
evaluated in one pass through the compiled engines' ``infer_batch``
tensors — the per-point results are bit-identical to scalar ``infer``.
"""

from __future__ import annotations

from ..analysis.plotting import ascii_heatmap
from ..cac.facs.flc1 import FLC1
from ..cac.facs.flc2 import FLC2

__all__ = ["render_flc1_surface", "render_flc2_surface"]


def render_flc1_surface(
    distance_km: float = 3.0,
    resolution: int = 31,
    engine: str = "compiled",
) -> str:
    """Cv over the (speed, angle) plane at a fixed user-to-BS distance."""
    flc1 = FLC1(engine=engine)
    xs, ys, surface = flc1.controller.engine.control_surface(
        "S", "A", "Cv", fixed={"D": distance_km}, resolution=resolution
    )
    return ascii_heatmap(
        [float(x) for x in xs],
        [float(y) for y in ys],
        surface.tolist(),
        title=(
            f"FLC1 correction value Cv — speed (x, km/h) vs angle (y, deg) "
            f"at D={distance_km:g} km"
        ),
        x_label="speed (km/h)",
        y_label="angle (deg)",
    )


def render_flc2_surface(
    request_bu: float = 5.0,
    resolution: int = 31,
    engine: str = "compiled",
) -> str:
    """A/R over the (Cv, counter state) plane at a fixed bandwidth request."""
    flc2 = FLC2(engine=engine)
    xs, ys, surface = flc2.controller.engine.control_surface(
        "Cv", "Cs", "AR", fixed={"R": request_bu}, resolution=resolution
    )
    return ascii_heatmap(
        [float(x) for x in xs],
        [float(y) for y in ys],
        surface.tolist(),
        title=(
            f"FLC2 accept/reject score A/R — correction value (x) vs counter "
            f"state (y, BU) at R={request_bu:g} BU"
        ),
        x_label="Cv",
        y_label="Cs (BU)",
    )
