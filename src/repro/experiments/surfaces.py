"""Control-surface renderings of FLC1 and FLC2 (tensorized grid inference).

The decision behaviour of the two controllers is easiest to see as a
surface: Cv over the (speed, angle) plane for FLC1, A/R over the
(correction value, counter state) plane for FLC2.  Whole grids are
evaluated in one pass through the compiled engines' ``infer_batch``
tensors — the per-point results are bit-identical to scalar ``infer``.

The ``*_surface_grid`` functions return the raw grid (for the machine-
readable metrics of a :class:`repro.api.RunReport`); the ``render_*_grid``
functions draw a precomputed grid as an ASCII heatmap, and the
``render_*_surface`` functions do both in one call.
"""

from __future__ import annotations

from ..analysis.plotting import ascii_heatmap
from ..cac.facs.flc1 import FLC1
from ..cac.facs.flc2 import FLC2

__all__ = [
    "flc1_surface_grid",
    "flc2_surface_grid",
    "render_flc1_grid",
    "render_flc2_grid",
    "render_flc1_surface",
    "render_flc2_surface",
]


def flc1_surface_grid(
    distance_km: float = 3.0,
    resolution: int = 31,
    engine: str = "compiled",
) -> tuple[list[float], list[float], list[list[float]]]:
    """Cv over the (speed, angle) plane at a fixed user-to-BS distance."""
    flc1 = FLC1(engine=engine)
    xs, ys, surface = flc1.controller.engine.control_surface(
        "S", "A", "Cv", fixed={"D": distance_km}, resolution=resolution
    )
    return [float(x) for x in xs], [float(y) for y in ys], surface.tolist()


def flc2_surface_grid(
    request_bu: float = 5.0,
    resolution: int = 31,
    engine: str = "compiled",
) -> tuple[list[float], list[float], list[list[float]]]:
    """A/R over the (Cv, counter state) plane at a fixed bandwidth request."""
    flc2 = FLC2(engine=engine)
    xs, ys, surface = flc2.controller.engine.control_surface(
        "Cv", "Cs", "AR", fixed={"R": request_bu}, resolution=resolution
    )
    return [float(x) for x in xs], [float(y) for y in ys], surface.tolist()


def render_flc1_grid(
    xs: list[float],
    ys: list[float],
    surface: list[list[float]],
    distance_km: float = 3.0,
) -> str:
    """Render a precomputed FLC1 surface grid as an ASCII heatmap."""
    return ascii_heatmap(
        xs,
        ys,
        surface,
        title=(
            f"FLC1 correction value Cv — speed (x, km/h) vs angle (y, deg) "
            f"at D={distance_km:g} km"
        ),
        x_label="speed (km/h)",
        y_label="angle (deg)",
    )


def render_flc2_grid(
    xs: list[float],
    ys: list[float],
    surface: list[list[float]],
    request_bu: float = 5.0,
) -> str:
    """Render a precomputed FLC2 surface grid as an ASCII heatmap."""
    return ascii_heatmap(
        xs,
        ys,
        surface,
        title=(
            f"FLC2 accept/reject score A/R — correction value (x) vs counter "
            f"state (y, BU) at R={request_bu:g} BU"
        ),
        x_label="Cv",
        y_label="Cs (BU)",
    )


def render_flc1_surface(
    distance_km: float = 3.0,
    resolution: int = 31,
    engine: str = "compiled",
) -> str:
    """Compute and render the FLC1 control surface."""
    xs, ys, surface = flc1_surface_grid(
        distance_km=distance_km, resolution=resolution, engine=engine
    )
    return render_flc1_grid(xs, ys, surface, distance_km=distance_km)


def render_flc2_surface(
    request_bu: float = 5.0,
    resolution: int = 31,
    engine: str = "compiled",
) -> str:
    """Compute and render the FLC2 control surface."""
    xs, ys, surface = flc2_surface_grid(
        request_bu=request_bu, resolution=resolution, engine=engine
    )
    return render_flc2_grid(xs, ys, surface, request_bu=request_bu)
