"""Tables 1 & 2 and the membership-function figures (Figs. 5 and 6).

These artifacts are static (they describe the controller, not a workload), so
"reproducing" them means rendering our FRB1/FRB2 and membership
configurations in the paper's layout and cross-checking them against the
transcribed tables.
"""

from __future__ import annotations

from ..analysis.plotting import ascii_membership_plot
from ..analysis.tables import format_table
from ..cac.facs.config import DEFAULT_FLC1_CONFIG, DEFAULT_FLC2_CONFIG, FLC1Config, FLC2Config
from ..cac.facs.flc1 import FLC1
from ..cac.facs.flc2 import FLC2
from ..cac.facs.frb1 import FRB1_TABLE
from ..cac.facs.frb2 import FRB2_TABLE

__all__ = [
    "render_frb1",
    "render_frb2",
    "render_flc1_memberships",
    "render_flc2_memberships",
]


def render_frb1() -> str:
    """Render Table 1 (FRB1) in the paper's column layout."""
    rows = [[index, s, a, d, cv] for index, s, a, d, cv in FRB1_TABLE]
    return format_table(
        ["Rule", "S", "A", "D", "Cv"], rows, title="Table 1 — FRB1 (42 rules)"
    )


def render_frb2() -> str:
    """Render Table 2 (FRB2) in the paper's column layout."""
    rows = [[index, cv, r, cs, ar] for index, cv, r, cs, ar in FRB2_TABLE]
    return format_table(
        ["Rule", "Cv", "R", "Cs", "A/R"], rows, title="Table 2 — FRB2 (27 rules)"
    )


def render_flc1_memberships(config: FLC1Config = DEFAULT_FLC1_CONFIG, points: int = 25) -> str:
    """Render the four FLC1 membership-function panels of Fig. 5 as ASCII plots."""
    flc1 = FLC1(config)
    sections: list[str] = []
    for variable, title in (
        ("S", "Fig. 5(a) — speed terms (km/h)"),
        ("A", "Fig. 5(b) — angle terms (degrees)"),
        ("D", "Fig. 5(c) — distance terms (km)"),
        ("Cv", "Fig. 5(d) — correction value terms"),
    ):
        samples = flc1.controller.membership_table(variable, points=points)
        sections.append(ascii_membership_plot(samples, title=title))
    return "\n\n".join(sections)


def render_flc2_memberships(config: FLC2Config = DEFAULT_FLC2_CONFIG, points: int = 25) -> str:
    """Render the four FLC2 membership-function panels of Fig. 6 as ASCII plots."""
    flc2 = FLC2(config)
    sections: list[str] = []
    for variable, title in (
        ("Cv", "Fig. 6(a) — correction value terms"),
        ("R", "Fig. 6(b) — request terms (BU)"),
        ("Cs", "Fig. 6(c) — counter state terms (BU)"),
        ("AR", "Fig. 6(d) — accept/reject terms"),
    ):
        samples = flc2.controller.membership_table(variable, points=points)
        sections.append(ascii_membership_plot(samples, title=title))
    return "\n\n".join(sections)
