"""Figure 8: acceptance percentage vs requesting connections for different angles.

The paper fixes the user's heading relative to the base station per curve
(0, 30, 50, 60 and 90 degrees) and randomises the remaining attributes.  A
user heading straight at the BS (angle 0) is accepted nearly always at light
load; users heading away are increasingly rejected because there is "no need
to allocate the bandwidth for this user".
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.plotting import ascii_line_plot
from ..analysis.tables import format_curve_table
from ..cac.facs.system import FACSConfig
from ..simulation.config import PAPER_REQUEST_COUNTS
from ..simulation.executor import SweepExecutor
from ..simulation.scenario import (
    PAPER_ANGLE_VALUES_DEG,
    angle_sweep_variants,
    with_workload,
)
from ..simulation.sweep import SweepResult, run_acceptance_sweep
from ..workloads import WorkloadSpec

__all__ = ["reproduce_figure8", "render_figure8"]


def reproduce_figure8(
    angles_deg: Sequence[float] = PAPER_ANGLE_VALUES_DEG,
    request_counts: Sequence[int] = PAPER_REQUEST_COUNTS,
    replications: int = 10,
    seed: int = 20070608,
    facs_config: FACSConfig | None = None,
    executor: SweepExecutor | str | None = None,
    workload: WorkloadSpec | None = None,
) -> SweepResult:
    """Run the Fig. 8 sweep and return one curve per angle value."""
    variants = with_workload(
        angle_sweep_variants(angles_deg, seed=seed, facs_config=facs_config),
        workload,
    )
    return run_acceptance_sweep(
        name="fig8-angle",
        variants=variants,
        request_counts=request_counts,
        replications=replications,
        executor=executor,
    )


def render_figure8(sweep: SweepResult) -> str:
    """Render the Fig. 8 reproduction as an ASCII table plus plot."""
    x_values = sweep.curves[0].request_counts()
    series = {curve.label: curve.acceptance_series() for curve in sweep.curves}
    table = format_curve_table(
        "Requests",
        x_values,
        series,
        title="Figure 8 — acceptance percentage vs requesting connections (angle curves)",
    )
    plot = ascii_line_plot(
        [float(x) for x in x_values],
        series,
        y_label="percentage of accepted calls",
        x_label="number of requesting connections",
        title="Figure 8 (reproduction)",
    )
    return f"{table}\n\n{plot}"
