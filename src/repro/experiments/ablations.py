"""Ablation studies on the design choices called out in DESIGN.md.

The paper fixes several design parameters without exploring them; these
ablations quantify how much each one matters:

* the defuzzification method used by FLC1/FLC2 (centroid vs alternatives);
* the crisp acceptance threshold applied to the soft A/R output;
* FACS and SCC against the classic non-fuzzy baselines (Complete Sharing,
  Guard Channel, Threshold policy);
* the multi-cell integration run measuring dropping as well as blocking.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..cac.base import AdmissionController
from ..cac.facs.system import FACSConfig, FuzzyAdmissionControlSystem
from ..fuzzy.defuzzification import defuzzifier_by_name
from ..simulation.config import (
    BatchExperimentConfig,
    NetworkExperimentConfig,
    PAPER_REQUEST_COUNTS,
)
from ..simulation.engine import NetworkRunOutput, run_network_experiment
from ..simulation.scenario import baseline_comparison_variants, facs_factory, scc_factory
from ..simulation.sweep import SweepResult, run_acceptance_sweep

__all__ = [
    "defuzzifier_ablation",
    "threshold_ablation",
    "baseline_ablation",
    "network_integration",
]


def defuzzifier_ablation(
    methods: Sequence[str] = ("centroid", "bisector", "mom"),
    request_counts: Sequence[int] = (20, 60, 100),
    replications: int = 5,
    seed: int = 20070612,
) -> SweepResult:
    """Acceptance sensitivity to the defuzzification method of both FLCs."""
    variants = {}
    for method in methods:
        defuzzifier = defuzzifier_by_name(method)

        def factory(defuzz=defuzzifier) -> AdmissionController:
            return FuzzyAdmissionControlSystem(defuzzifier=defuzz)

        variants[method] = (BatchExperimentConfig(seed=seed), factory)
    return run_acceptance_sweep(
        name="ablation-defuzzifier",
        variants=variants,
        request_counts=request_counts,
        replications=replications,
    )


def threshold_ablation(
    thresholds: Sequence[float] = (-0.25, 0.0, 0.25, 0.5),
    request_counts: Sequence[int] = (20, 60, 100),
    replications: int = 5,
    seed: int = 20070613,
) -> SweepResult:
    """Acceptance sensitivity to the crisp A/R acceptance threshold."""
    variants = {}
    for threshold in thresholds:
        config = FACSConfig(acceptance_threshold=threshold)
        variants[f"threshold={threshold:+.2f}"] = (
            BatchExperimentConfig(seed=seed),
            facs_factory(config),
        )
    return run_acceptance_sweep(
        name="ablation-threshold",
        variants=variants,
        request_counts=request_counts,
        replications=replications,
    )


def baseline_ablation(
    request_counts: Sequence[int] = PAPER_REQUEST_COUNTS,
    replications: int = 5,
    seed: int = 20070614,
) -> SweepResult:
    """FACS and SCC against Complete Sharing, Guard Channel and Threshold policies."""
    return run_acceptance_sweep(
        name="ablation-baselines",
        variants=baseline_comparison_variants(seed=seed),
        request_counts=request_counts,
        replications=replications,
    )


def network_integration(
    controllers: Mapping[str, object] | None = None,
    config: NetworkExperimentConfig | None = None,
) -> dict[str, NetworkRunOutput]:
    """Multi-cell integration run (handoffs and dropping) per controller."""
    config = config or NetworkExperimentConfig()
    if controllers is None:
        controllers = {
            "FACS": facs_factory(),
            "SCC": scc_factory(),
        }
    results: dict[str, NetworkRunOutput] = {}
    for label, factory in controllers.items():
        results[label] = run_network_experiment(config, factory)  # type: ignore[arg-type]
    return results
