"""Command-line interface for the reproduction.

``python -m repro list`` shows every registered paper artifact;
``python -m repro run <experiment-id>`` regenerates one of them and prints
the same tables/plots the benchmarks produce.  The figure experiments accept
``--replications`` and ``--requests`` so quick looks and full-fidelity runs
use the same entry point.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.tables import format_table
from .cac.facs.system import FACSConfig
from .simulation.executor import EXECUTOR_CHOICES, SweepExecutor, executor_by_name
from .experiments import (
    EXPERIMENTS,
    experiment_ids,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
    render_flc1_memberships,
    render_flc2_memberships,
    render_frb1,
    render_frb2,
    reproduce_figure7,
    reproduce_figure8,
    reproduce_figure9,
    reproduce_figure10,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the FACS paper (Barolli et al., ICDCSW 2007).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list every registered paper artifact")

    run = subparsers.add_parser("run", help="regenerate one paper artifact")
    run.add_argument("experiment", choices=experiment_ids(), help="experiment identifier")
    run.add_argument(
        "--replications",
        type=int,
        default=5,
        help="independent replications per sweep point (figure experiments only)",
    )
    run.add_argument(
        "--requests",
        type=int,
        nargs="+",
        default=[10, 30, 50, 70, 100],
        help="numbers of requesting connections to sweep (figure experiments only)",
    )
    run.add_argument(
        "--executor",
        choices=list(EXECUTOR_CHOICES),
        default="serial",
        help="sweep backend: run replications in-process (serial) or fan them "
        "out over a worker pool (process); results are identical either way",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --executor process (default: all cores)",
    )
    run.add_argument(
        "--engine",
        choices=["compiled", "reference"],
        default="compiled",
        help="fuzzy inference engine for the FACS controllers: the vectorized "
        "compiled fast path (default) or the interpreted reference engine",
    )
    return parser


def _run_experiment(
    experiment: str,
    replications: int,
    requests: Sequence[int],
    executor: SweepExecutor | None = None,
    engine: str = "compiled",
) -> str:
    requests = tuple(requests)
    if experiment == "table1-frb1":
        return render_frb1()
    if experiment == "table2-frb2":
        return render_frb2()
    if experiment == "fig5-flc1-mf":
        return render_flc1_memberships()
    if experiment == "fig6-flc2-mf":
        return render_flc2_memberships()
    facs_config = FACSConfig(engine=engine)
    sweep_kwargs = dict(
        request_counts=requests,
        replications=replications,
        facs_config=facs_config,
        executor=executor,
    )
    if experiment == "fig7-speed":
        return render_figure7(reproduce_figure7(**sweep_kwargs))
    if experiment == "fig8-angle":
        return render_figure8(reproduce_figure8(**sweep_kwargs))
    if experiment == "fig9-distance":
        return render_figure9(reproduce_figure9(**sweep_kwargs))
    if experiment == "fig10-facs-vs-scc":
        return render_figure10(reproduce_figure10(**sweep_kwargs))
    raise SystemExit(
        f"experiment {experiment!r} is benchmark-only; run its bench target instead "
        f"(see `python -m repro list`)"
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        rows = [
            [spec.experiment_id, spec.paper_artifact, spec.bench_target]
            for spec in EXPERIMENTS
        ]
        print(format_table(["Experiment", "Paper artifact", "Benchmark"], rows))
        return 0

    if args.command == "run":
        if args.workers is not None and args.executor == "serial":
            parser.error("--workers requires --executor process")
        try:
            executor = executor_by_name(args.executor, workers=args.workers)
        except ValueError as exc:
            parser.error(str(exc))
        print(
            _run_experiment(
                args.experiment,
                args.replications,
                args.requests,
                executor=executor,
                engine=args.engine,
            )
        )
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
