"""Command-line interface for the reproduction.

``python -m repro list`` shows every registered paper artifact;
``python -m repro run <experiment-id>`` regenerates one of them and prints
the same tables/plots the benchmarks produce.  The figure experiments accept
``--replications`` and ``--requests`` so quick looks and full-fidelity runs
use the same entry point.  ``python -m repro network-sweep`` drives the
multi-cell QoS sweep with full control over load points, topology and the
executor/engine fast paths.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Sequence

from .analysis.tables import format_table
from .cac.facs.system import FACSConfig
from .simulation.executor import EXECUTOR_CHOICES, SweepExecutor, executor_by_name
from .simulation.sweep import PAPER_NETWORK_ARRIVAL_RATES, run_network_sweep
from .experiments import (
    DEFAULT_NETWORK_BASE_CONFIG,
    EXPERIMENTS,
    experiment_ids,
    network_sweep_controllers,
    network_sweep_spec,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
    render_flc1_memberships,
    render_flc1_surface,
    render_flc2_memberships,
    render_flc2_surface,
    render_frb1,
    render_frb2,
    render_network_sweep,
    reproduce_figure7,
    reproduce_figure8,
    reproduce_figure9,
    reproduce_figure10,
    reproduce_network_sweep,
)

__all__ = ["main", "build_parser"]

#: Controller labels selectable via ``network-sweep --controllers``.
NETWORK_CONTROLLER_CHOICES = ("FACS", "SCC", "CS")


def _add_performance_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared --executor/--workers/--engine flag group."""
    parser.add_argument(
        "--executor",
        choices=list(EXECUTOR_CHOICES),
        default="serial",
        help="sweep backend: run replications in-process (serial) or fan them "
        "out over a worker pool (process/thread); results are identical "
        "for every backend and worker count",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for --executor process/thread (default: all cores)",
    )
    parser.add_argument(
        "--engine",
        choices=["compiled", "reference"],
        default="compiled",
        help="fuzzy inference engine for the FACS controllers: the vectorized "
        "compiled fast path (default) or the interpreted reference engine",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of the FACS paper "
            "(Barolli et al., ICDCSW 2007)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list every registered paper artifact")

    run = subparsers.add_parser("run", help="regenerate one paper artifact")
    run.add_argument("experiment", choices=experiment_ids(), help="experiment identifier")
    run.add_argument(
        "--replications",
        type=int,
        default=5,
        help="independent replications per sweep point (sweep experiments only)",
    )
    run.add_argument(
        "--requests",
        type=int,
        nargs="+",
        default=[10, 30, 50, 70, 100],
        help="numbers of requesting connections to sweep (figure experiments only)",
    )
    _add_performance_flags(run)

    network = subparsers.add_parser(
        "network-sweep",
        help="run the multi-cell QoS sweep (blocking/dropping/handoff failure "
        "vs offered load)",
    )
    network.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=list(PAPER_NETWORK_ARRIVAL_RATES),
        help="per-cell arrival rates (calls/s) to sweep",
    )
    network.add_argument(
        "--replications",
        type=int,
        default=3,
        help="independent replications per (controller, rate) point",
    )
    network.add_argument(
        "--duration",
        type=float,
        default=600.0,
        help="simulated seconds of Poisson arrivals per replication",
    )
    network.add_argument(
        "--rings",
        type=int,
        default=1,
        help="hexagonal rings around the centre cell (1 ring = 7 cells)",
    )
    network.add_argument(
        "--controllers",
        nargs="+",
        choices=list(NETWORK_CONTROLLER_CHOICES),
        default=list(NETWORK_CONTROLLER_CHOICES),
        help="admission controllers to compare",
    )
    network.add_argument(
        "--seed",
        type=int,
        default=20070627,
        help="master seed; replications derive independent streams from it",
    )
    _add_performance_flags(network)
    return parser


def _run_experiment(
    experiment: str,
    replications: int,
    requests: Sequence[int],
    executor: SweepExecutor | None = None,
    engine: str = "compiled",
) -> str:
    requests = tuple(requests)
    if experiment == "table1-frb1":
        return render_frb1()
    if experiment == "table2-frb2":
        return render_frb2()
    if experiment == "fig5-flc1-mf":
        return render_flc1_memberships()
    if experiment == "fig6-flc2-mf":
        return render_flc2_memberships()
    if experiment == "surface-flc1":
        return render_flc1_surface(engine=engine)
    if experiment == "surface-flc2":
        return render_flc2_surface(engine=engine)
    facs_config = FACSConfig(engine=engine)
    if experiment == "net-sweep":
        return render_network_sweep(
            reproduce_network_sweep(
                replications=replications,
                executor=executor,
                facs_config=facs_config,
            )
        )
    sweep_kwargs = dict(
        request_counts=requests,
        replications=replications,
        facs_config=facs_config,
        executor=executor,
    )
    if experiment == "fig7-speed":
        return render_figure7(reproduce_figure7(**sweep_kwargs))
    if experiment == "fig8-angle":
        return render_figure8(reproduce_figure8(**sweep_kwargs))
    if experiment == "fig9-distance":
        return render_figure9(reproduce_figure9(**sweep_kwargs))
    if experiment == "fig10-facs-vs-scc":
        return render_figure10(reproduce_figure10(**sweep_kwargs))
    raise SystemExit(
        f"experiment {experiment!r} is benchmark-only; run its bench target instead "
        f"(see `python -m repro list`)"
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        rows = [
            [spec.experiment_id, spec.paper_artifact, spec.bench_target]
            for spec in EXPERIMENTS
        ]
        print(format_table(["Experiment", "Paper artifact", "Benchmark"], rows))
        return 0

    if args.command in ("run", "network-sweep"):
        if args.workers is not None and args.executor == "serial":
            parser.error("--workers requires --executor process or thread")
        try:
            executor = executor_by_name(args.executor, workers=args.workers)
        except ValueError as exc:
            parser.error(str(exc))

    if args.command == "run":
        print(
            _run_experiment(
                args.experiment,
                args.replications,
                args.requests,
                executor=executor,
                engine=args.engine,
            )
        )
        return 0

    if args.command == "network-sweep":
        all_controllers = network_sweep_controllers(
            facs_config=FACSConfig(engine=args.engine)
        )
        controllers = {
            label: all_controllers[label]
            for label in dict.fromkeys(args.controllers)
        }
        try:
            spec = network_sweep_spec(
                arrival_rates=tuple(args.rates),
                replications=args.replications,
                base_config=replace(
                    DEFAULT_NETWORK_BASE_CONFIG,
                    rings=args.rings,
                    duration_s=args.duration,
                    seed=args.seed,
                ),
                controllers=controllers,
            )
        except ValueError as exc:
            parser.error(str(exc))
        print(render_network_sweep(run_network_sweep(spec, executor=executor)))
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
