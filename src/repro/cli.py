"""Command-line interface for the reproduction — a thin shell over ``repro.api``.

``python -m repro list`` shows every registered paper artifact
(``--format json`` dumps every registry machine-readably);
``python -m repro run <experiment-id>`` regenerates one of them and prints
the same tables/plots the benchmarks produce.  The figure experiments accept
``--replications`` and ``--requests`` so quick looks and full-fidelity runs
use the same entry point.  ``python -m repro network-sweep`` drives the
multi-cell QoS sweep with full control over load points, topology and the
executor/engine fast paths.  ``python -m repro campaign`` runs a whole
multi-scenario study from one campaign JSON (or a directory of scenario
JSONs) and renders the cross-scenario comparison.

Every command builds a declarative :class:`repro.api.Scenario` (or
:class:`repro.api.Campaign`) and hands it to the facade; ``--config`` runs
straight from JSON, ``--format json`` emits the machine-readable report,
and ``--save`` persists it.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Sequence

from .analysis.io import SCHEMA_VERSION
from .analysis.tables import format_table
from .api import (
    BENCH_ONLY_EXPERIMENTS,
    COMPARISON_METRICS,
    CONTROLLERS,
    DEFAULT_NETWORK_CONTROLLERS,
    DEFAULT_SERVICE_CLASSES,
    ENGINES,
    EXECUTORS,
    SCENARIO_KINDS,
    WORKLOADS,
    Campaign,
    CampaignReport,
    CampaignRunner,
    Runner,
    RunReport,
    Scenario,
    ScenarioError,
    scenario_for,
    scenario_ids,
)
from .api.registry import DEFINITION_CONTROLLER_SUFFIX
from .api.scenario import (
    ArtifactScenario,
    CoupledShardedNetworkSweepScenario,
    FigureSweepScenario,
    NetworkSweepScenario,
    ServiceReplayScenario,
    ShardedNetworkSweepScenario,
    SurfaceScenario,
    TraceArrivalsScenario,
    TuningScenario,
)
from .tuning import STRATEGIES, TuningError
from .experiments import EXPERIMENTS
from .simulation.sweep import PAPER_NETWORK_ARRIVAL_RATES

__all__ = ["main", "build_parser", "NETWORK_CONTROLLER_CHOICES"]

#: Deprecated alias of :data:`repro.api.DEFAULT_NETWORK_CONTROLLERS`; the
#: full selectable set now lives in the ``repro.api.CONTROLLERS`` registry.
NETWORK_CONTROLLER_CHOICES = DEFAULT_NETWORK_CONTROLLERS

#: Scenario-shaping flags (argparse dest → default) of each command.  The
#: single source for both the argparse defaults and the ``--config``
#: conflict check: ``--config`` *replaces* these flags, so combining it
#: with a non-default value is rejected rather than silently ignored.
_SHARED_SHAPING_DEFAULTS: dict[str, object] = {
    "executor": "serial",
    "workers": None,
    "engine": "compiled",
}
_RUN_SHAPING_DEFAULTS: dict[str, object] = {
    "replications": 5,
    "requests": [10, 30, 50, 70, 100],
    "stream": False,
    **_SHARED_SHAPING_DEFAULTS,
}
_NETWORK_SHAPING_DEFAULTS: dict[str, object] = {
    "rates": list(PAPER_NETWORK_ARRIVAL_RATES),
    "replications": 3,
    "duration": 600.0,
    "rings": 1,
    "controllers": list(DEFAULT_NETWORK_CONTROLLERS),
    "seed": 20070627,
    "mode": "coupled",
    "window": None,
    "workload": None,
    **_SHARED_SHAPING_DEFAULTS,
}
_SERVICE_REPLAY_SHAPING_DEFAULTS: dict[str, object] = {
    "requests": 400,
    "window": 120.0,
    "max_batch": 8,
    "max_wait_ms": 2000.0,
    "queue_capacity": 64,
    "seed": 20070628,
    "engine": "compiled",
}
_TUNE_SHAPING_DEFAULTS: dict[str, object] = {
    "controller": "FLC1",
    "parameter": None,
    "strategy": "grid",
    "objective": "mean_acceptance",
    "direction": "maximize",
    "requests": [10, 30],
    "replications": 2,
    "population": 8,
    "generations": 6,
    "max_trials": None,
    "seed": 20070801,
    **_SHARED_SHAPING_DEFAULTS,
}


def _cli_engine_choices() -> list[str]:
    """Engine names exposed on ``--engine`` (the registry's cli entries)."""
    return [name for name in ENGINES.names() if ENGINES.get(name).cli]


def _add_performance_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared --executor/--workers/--engine flag group."""
    parser.add_argument(
        "--executor",
        choices=list(EXECUTORS.names()),
        default=_SHARED_SHAPING_DEFAULTS["executor"],
        help="sweep backend: run replications in-process (serial) or fan them "
        "out over a worker pool (process/thread); results are identical "
        "for every backend and worker count",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=_SHARED_SHAPING_DEFAULTS["workers"],
        help="pool size for --executor process/thread (default: all cores)",
    )
    parser.add_argument(
        "--engine",
        choices=_cli_engine_choices(),
        default=_SHARED_SHAPING_DEFAULTS["engine"],
        help="fuzzy inference engine for the FACS controllers: the vectorized "
        "compiled fast path (default) or the interpreted reference engine",
    )


def _add_report_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared --config/--format/--save flag group."""
    parser.add_argument(
        "--config",
        metavar="SCENARIO_JSON",
        default=None,
        help="run a declarative scenario from a JSON file instead of flags "
        "(see repro.api.Scenario)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="print the rendered artifact (text, default) or the full "
        "machine-readable RunReport (json)",
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="persist the RunReport as <DIR>/<scenario>.json",
    )


def _parse_parameter_spec(text: str) -> dict[str, object]:
    """Parse a ``--parameter`` value into a ParameterSpec payload.

    ``TARGET=LOW:HIGH[:STEPS]`` declares a bounded parameter,
    ``TARGET=V1,V2,...`` a discrete choice list — e.g. ``mf.S.M.1=20:40:5``
    or ``weight.12=0.5,1.0``.
    """
    target, sep, rest = text.partition("=")
    if not sep or not target or not rest:
        raise argparse.ArgumentTypeError(
            f"expected TARGET=LOW:HIGH[:STEPS] or TARGET=V1,V2,..., got {text!r}"
        )
    try:
        if ":" in rest:
            pieces = rest.split(":")
            if len(pieces) not in (2, 3):
                raise ValueError(f"expected LOW:HIGH or LOW:HIGH:STEPS, got {rest!r}")
            spec: dict[str, object] = {
                "target": target,
                "low": float(pieces[0]),
                "high": float(pieces[1]),
            }
            if len(pieces) == 3:
                spec["steps"] = int(pieces[2])
            return spec
        return {"target": target, "choices": [float(v) for v in rest.split(",")]}
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid parameter {text!r}: {exc}")


def _add_service_batching_flags(
    parser: argparse.ArgumentParser, defaults: dict[str, object]
) -> None:
    """Attach the request-count + micro-batching flag group of the service."""
    parser.add_argument(
        "--requests",
        type=int,
        default=defaults["requests"],
        help="number of admission requests to drive through the service",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=defaults["max_batch"],
        help="flush a micro-batch as soon as this many requests are pending",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=defaults["max_wait_ms"],
        help="flush a micro-batch once its oldest request has waited this long",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=defaults["queue_capacity"],
        help="bounded-queue backpressure limit: submissions beyond this many "
        "pending requests are shed immediately",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of the FACS paper "
            "(Barolli et al., ICDCSW 2007)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    lister = subparsers.add_parser(
        "list", help="list every registered paper artifact"
    )
    lister.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="the experiment table (text, default) or every registry — "
        "experiments, scenario kinds, controllers, engines, executors, "
        "comparison metrics — as machine-readable JSON",
    )

    run = subparsers.add_parser("run", help="regenerate one paper artifact")
    run.add_argument(
        "experiment",
        nargs="?",
        choices=list(scenario_ids()),
        help="experiment identifier (omit when using --config)",
    )
    run.add_argument(
        "--replications",
        type=int,
        default=_RUN_SHAPING_DEFAULTS["replications"],
        help="independent replications per sweep point (sweep experiments only)",
    )
    run.add_argument(
        "--requests",
        type=int,
        nargs="+",
        default=list(_RUN_SHAPING_DEFAULTS["requests"]),
        help="numbers of requesting connections to sweep (figure experiments only)",
    )
    run.add_argument(
        "--stream",
        action="store_true",
        help="trace-arrivals only: run the frame-native columnar fast path "
        "(byte-identical results, million-request wall clock)",
    )
    _add_performance_flags(run)
    _add_report_flags(run)

    network = subparsers.add_parser(
        "network-sweep",
        help="run the multi-cell QoS sweep (blocking/dropping/handoff failure "
        "vs offered load)",
    )
    network.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=list(_NETWORK_SHAPING_DEFAULTS["rates"]),
        help="per-cell arrival rates (calls/s) to sweep",
    )
    network.add_argument(
        "--replications",
        type=int,
        default=_NETWORK_SHAPING_DEFAULTS["replications"],
        help="independent replications per (controller, rate) point",
    )
    network.add_argument(
        "--duration",
        type=float,
        default=_NETWORK_SHAPING_DEFAULTS["duration"],
        help="simulated seconds of Poisson arrivals per replication",
    )
    network.add_argument(
        "--rings",
        type=int,
        default=_NETWORK_SHAPING_DEFAULTS["rings"],
        help="hexagonal rings around the centre cell (1 ring = 7 cells)",
    )
    network.add_argument(
        "--controllers",
        nargs="+",
        choices=list(CONTROLLERS.names()),
        default=list(_NETWORK_SHAPING_DEFAULTS["controllers"]),
        help="admission controllers to compare",
    )
    network.add_argument(
        "--seed",
        type=int,
        default=_NETWORK_SHAPING_DEFAULTS["seed"],
        help="master seed; replications derive independent streams from it",
    )
    network.add_argument(
        "--mode",
        choices=["coupled", "sharded", "coupled-sharded"],
        default=_NETWORK_SHAPING_DEFAULTS["mode"],
        help="topology execution: one coupled simulation per replication "
        "(default), independent per-cell runs with handoff coupling dropped "
        "(sharded), or per-cell shard workers exchanging handoff messages "
        "(coupled-sharded; --executor/--workers then place the shards)",
    )
    network.add_argument(
        "--window",
        type=float,
        default=_NETWORK_SHAPING_DEFAULTS["window"],
        help="barrier interval in simulated seconds of the coupled-sharded "
        "mode (default: the mobility update interval)",
    )
    network.add_argument(
        "--workload",
        default=_NETWORK_SHAPING_DEFAULTS["workload"],
        metavar="NAME_OR_JSON",
        help="arrival-process workload: a registered name (mmpp, heavy-tail, "
        "diurnal, flash-crowd; see `repro list --format json`) or a "
        "workload-definition JSON path; default: the paper's Poisson "
        "arrivals",
    )
    _add_performance_flags(network)
    _add_report_flags(network)

    service_replay = subparsers.add_parser(
        "service-replay",
        help="replay a seeded arrival trace through the asyncio micro-batching "
        "admission service on a virtual clock (deterministic)",
    )
    _add_service_batching_flags(service_replay, _SERVICE_REPLAY_SHAPING_DEFAULTS)
    service_replay.add_argument(
        "--window",
        type=float,
        default=_SERVICE_REPLAY_SHAPING_DEFAULTS["window"],
        help="arrival window in virtual seconds over which requests arrive",
    )
    service_replay.add_argument(
        "--seed",
        type=int,
        default=_SERVICE_REPLAY_SHAPING_DEFAULTS["seed"],
        help="master seed of the arrival trace",
    )
    service_replay.add_argument(
        "--engine",
        choices=_cli_engine_choices(),
        default=_SERVICE_REPLAY_SHAPING_DEFAULTS["engine"],
        help="fuzzy inference engine for the FACS controller",
    )
    _add_report_flags(service_replay)

    tune = subparsers.add_parser(
        "tune",
        help="search membership break points / rule weights of a controller "
        "definition for the best QoS objective (seeded, deterministic)",
    )
    tune.add_argument(
        "--controller",
        default=_TUNE_SHAPING_DEFAULTS["controller"],
        help="base definition to tune: FLC1, FLC2 or a path to an "
        "FLC-definition JSON file (see examples/controllers/)",
    )
    tune.add_argument(
        "--parameter",
        type=_parse_parameter_spec,
        action="append",
        default=_TUNE_SHAPING_DEFAULTS["parameter"],
        metavar="TARGET=LOW:HIGH[:STEPS]|TARGET=V1,V2,...",
        help="tunable scalar (repeatable): a membership break point "
        "(mf.<variable>.<term>.<index>) or rule weight (weight.<label>) "
        "with bounds or a choice list; default: a tiny 2-point demo space",
    )
    tune.add_argument(
        "--strategy",
        choices=list(STRATEGIES.names()),
        default=_TUNE_SHAPING_DEFAULTS["strategy"],
        help="candidate generator: exhaustive grid or seeded evolutionary",
    )
    tune.add_argument(
        "--objective",
        choices=list(COMPARISON_METRICS.names()),
        default=_TUNE_SHAPING_DEFAULTS["objective"],
        help="registered comparison metric scored per trial",
    )
    tune.add_argument(
        "--direction",
        choices=["maximize", "minimize"],
        default=_TUNE_SHAPING_DEFAULTS["direction"],
        help="whether a better trial has a higher or lower objective",
    )
    tune.add_argument(
        "--requests",
        type=int,
        nargs="+",
        default=list(_TUNE_SHAPING_DEFAULTS["requests"]),
        help="request counts of the per-trial acceptance sweep",
    )
    tune.add_argument(
        "--replications",
        type=int,
        default=_TUNE_SHAPING_DEFAULTS["replications"],
        help="seeded replications per sweep point in every trial",
    )
    tune.add_argument(
        "--population",
        type=int,
        default=_TUNE_SHAPING_DEFAULTS["population"],
        help="candidates per generation (evolutionary strategy)",
    )
    tune.add_argument(
        "--generations",
        type=int,
        default=_TUNE_SHAPING_DEFAULTS["generations"],
        help="generations to run (evolutionary strategy)",
    )
    tune.add_argument(
        "--max-trials",
        type=int,
        default=_TUNE_SHAPING_DEFAULTS["max_trials"],
        help="hard cap on evaluated trials (default: strategy decides)",
    )
    tune.add_argument(
        "--seed",
        type=int,
        default=_TUNE_SHAPING_DEFAULTS["seed"],
        help="master seed of the search and of every trial workload",
    )
    _add_performance_flags(tune)
    _add_report_flags(tune)

    serve = subparsers.add_parser(
        "serve",
        help="run a live (wall-clock) admission-service load session: a "
        "closed-loop client pool drives the micro-batching server and the "
        "latency/throughput report is printed",
    )
    _add_service_batching_flags(
        serve,
        {"requests": 20_000, "max_batch": 64, "max_wait_ms": 5.0, "queue_capacity": 256},
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=64,
        help="concurrent closed-loop clients (each submits back-to-back)",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=20070628,
        help="master seed of the request stream",
    )
    serve.add_argument(
        "--holding-scale",
        type=float,
        default=1e-3,
        help="factor compressing call holding times so departures churn "
        "within a seconds-long session",
    )
    serve.add_argument(
        "--engine",
        choices=_cli_engine_choices(),
        default="compiled",
        help="fuzzy inference engine for the FACS controller",
    )
    serve.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="print the rendered session report (text, default) or the "
        "machine-readable service report (json)",
    )

    campaign = subparsers.add_parser(
        "campaign",
        help="run a multi-scenario campaign and compare results across "
        "scenarios",
    )
    campaign.add_argument(
        "--config",
        metavar="CAMPAIGN_JSON_OR_DIR",
        required=True,
        help="a campaign JSON file (see repro.api.Campaign), or a directory "
        "of scenario JSONs to run as one ad-hoc campaign",
    )
    campaign.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="print every member artifact plus the comparison table (text, "
        "default) or the full machine-readable CampaignReport (json)",
    )
    campaign.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="persist the CampaignReport as <DIR>/<campaign name>.json",
    )
    campaign.add_argument(
        "--executor",
        choices=list(EXECUTORS.names()),
        default=None,
        help="override the campaign's scenario fan-out backend",
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the campaign's pool size (requires a pool executor)",
    )
    campaign.add_argument(
        "--reuse-saved",
        metavar="DIR",
        default=None,
        help="skip members whose saved RunReport in DIR already matches the "
        "resolved scenario (reports written by `run --save` or a previous "
        "campaign); only cache misses are re-run",
    )
    return parser


def _scenario_from_run_flags(
    args: argparse.Namespace,
) -> Scenario:
    """Build the scenario for ``run <experiment>`` from the CLI flags.

    Starts from the experiment's registered default scenario and overlays
    the flags each scenario kind understands — artifacts take none, the
    surfaces take the engine, the sweeps take the full performance group.
    """
    if args.experiment in BENCH_ONLY_EXPERIMENTS:
        raise SystemExit(
            f"experiment {args.experiment!r} is benchmark-only; run its bench "
            f"target instead (see `python -m repro list`)"
        )
    scenario = scenario_for(args.experiment)
    if args.stream and not isinstance(scenario, TraceArrivalsScenario):
        raise SystemExit(
            f"--stream applies only to the trace-arrivals experiment; "
            f"experiment {args.experiment!r} has no columnar fast path"
        )
    if isinstance(scenario, FigureSweepScenario):
        return replace(
            scenario,
            request_counts=tuple(args.requests),
            replications=args.replications,
            engine=args.engine,
            executor=args.executor,
            workers=args.workers,
        )
    if isinstance(scenario, NetworkSweepScenario):
        return replace(
            scenario,
            replications=args.replications,
            engine=args.engine,
            executor=args.executor,
            workers=args.workers,
        )
    if isinstance(scenario, SurfaceScenario):
        return replace(scenario, engine=args.engine)
    if isinstance(scenario, (TraceArrivalsScenario, ServiceReplayScenario)):
        # The trace/service kinds have no replication/request-list/executor
        # shape; reject those flags rather than silently running defaults.
        ignored = [
            f"--{name}"
            for name in ("replications", "requests", "executor", "workers")
            if getattr(args, name) != _RUN_SHAPING_DEFAULTS[name]
        ]
        if ignored:
            raise SystemExit(
                f"experiment {args.experiment!r} accepts only --engine of the "
                f"run flags (trace-arrivals also takes --stream); drop "
                f"{', '.join(ignored)} or shape the scenario via --config "
                f"(or its dedicated subcommand)"
            )
        if isinstance(scenario, TraceArrivalsScenario):
            return replace(scenario, engine=args.engine, stream=args.stream)
        return replace(scenario, engine=args.engine)
    if isinstance(scenario, ArtifactScenario):
        return scenario
    raise SystemExit(  # pragma: no cover - requires a foreign scenario kind
        f"experiment {args.experiment!r} maps to scenario kind "
        f"{scenario.kind!r}, which `run` has no flag mapping for; run it "
        f"via --config or repro.api.Runner"
    )


def _scenario_from_network_flags(args: argparse.Namespace) -> NetworkSweepScenario:
    """Build the multi-cell sweep scenario from the ``network-sweep`` flags."""
    shape: dict[str, object] = {
        "controllers": tuple(args.controllers),
        "arrival_rates": tuple(args.rates),
        "replications": args.replications,
        "duration_s": args.duration,
        "rings": args.rings,
        "seed": args.seed,
        "engine": args.engine,
        "executor": args.executor,
        "workers": args.workers,
        "workload": args.workload,
    }
    if args.mode == "coupled-sharded":
        return CoupledShardedNetworkSweepScenario(window_s=args.window, **shape)
    if args.window is not None:
        raise SystemExit("--window only applies to --mode coupled-sharded")
    if args.mode == "sharded":
        return ShardedNetworkSweepScenario(**shape)
    return NetworkSweepScenario(**shape)


def _reject_shaping_flags_with_config(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    defaults: dict[str, object],
) -> None:
    """Refuse scenario-shaping flags alongside ``--config``.

    The config file fully describes the scenario; silently ignoring flags
    like ``--replications`` next to it would let a user believe they ran
    something they did not.
    """
    overridden = [
        f"--{name.replace('_', '-')}"
        for name, default in defaults.items()
        if getattr(args, name) != default
    ]
    if overridden:
        parser.error(
            f"--config fully describes the scenario; drop "
            f"{', '.join(overridden)} or put those values in the scenario "
            f"JSON instead"
        )


def _emit_report(report: RunReport | CampaignReport, args: argparse.Namespace) -> int:
    """Print the report in the requested format and optionally persist it.

    Returns the process exit code: save refusals (a target file holding a
    different scenario/campaign) surface as a clean error, not a traceback.
    """
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.text)
    if args.save is not None:
        try:
            saved = report.save(args.save)
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"saved: {saved}", file=sys.stderr)
    return 0


def _registries_payload() -> dict[str, object]:
    """Machine-readable dump of every registry (``list --format json``)."""
    bench_by_id = {spec.experiment_id: spec for spec in EXPERIMENTS}
    experiments = []
    for experiment_id in scenario_ids():
        spec = bench_by_id.get(experiment_id)
        experiments.append(
            {
                "id": experiment_id,
                "kind": scenario_for(experiment_id).kind,
                "paper_artifact": spec.paper_artifact if spec else None,
                "benchmark": spec.bench_target if spec else None,
                "bench_only": experiment_id in BENCH_ONLY_EXPERIMENTS,
            }
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "experiments": experiments,
        "scenario_kinds": list(SCENARIO_KINDS.names()),
        "controllers": list(CONTROLLERS.names()),
        "engines": [
            {"name": name, "cli": ENGINES.get(name).cli}
            for name in ENGINES.names()
        ],
        "executors": list(EXECUTORS.names()),
        "comparison_metrics": list(COMPARISON_METRICS.names()),
        "tuning_strategies": list(STRATEGIES.names()),
        "workloads": [
            {
                "name": name,
                "arrival": type(WORKLOADS.get(name).arrival).kind,
                "service_classes": list(WORKLOADS.get(name).class_names()) or None,
            }
            for name in WORKLOADS.names()
        ],
        "service_classes": [
            {
                "service": definition.service,
                "bandwidth_units": definition.bandwidth_units,
                "mean_holding_time_s": definition.mean_holding_time_s,
                "share": definition.share,
                "priority_weight": definition.priority_weight,
            }
            for definition in DEFAULT_SERVICE_CLASSES
        ],
        "controller_definitions": {
            "suffix": DEFINITION_CONTROLLER_SUFFIX,
            "builtin_exports": [
                "examples/controllers/flc1.json",
                "examples/controllers/flc2.json",
            ],
        },
    }


def _load_campaign(args: argparse.Namespace) -> Campaign:
    """Build the campaign from ``--config`` (file or directory) + overrides."""
    path = Path(args.config)
    if path.is_dir():
        campaign = Campaign.from_scenario_dir(path)
    else:
        campaign = Campaign.from_file(path)
    overrides: dict[str, object] = {}
    if args.executor is not None:
        overrides["executor"] = args.executor
    if args.workers is not None:
        overrides["workers"] = args.workers
        if args.executor is None and campaign.executor == "serial":
            # A bare --workers means "give me a pool"; threads avoid the
            # process-pool start-up cost for scenario-sized tasks.
            overrides["executor"] = "thread"
    if overrides:
        campaign = replace(campaign, **overrides)
    return campaign


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        if args.format == "json":
            print(json.dumps(_registries_payload(), indent=2))
            return 0
        rows = [
            [spec.experiment_id, spec.paper_artifact, spec.bench_target]
            for spec in EXPERIMENTS
        ]
        print(format_table(["Experiment", "Paper artifact", "Benchmark"], rows))
        return 0

    if args.command == "campaign":
        try:
            campaign = _load_campaign(args)
        except OSError as exc:
            parser.error(f"cannot read campaign config: {exc}")
        except ScenarioError as exc:
            parser.error(str(exc))
        return _emit_report(
            CampaignRunner(reuse_saved=args.reuse_saved).run(campaign), args
        )

    if args.command in ("run", "network-sweep", "tune"):
        if args.workers is not None and args.executor == "serial":
            parser.error("--workers requires --executor process or thread")

    if args.command == "run":
        if args.config is not None and args.experiment is not None:
            parser.error("pass either an experiment id or --config, not both")
        if args.config is None and args.experiment is None:
            parser.error("an experiment id (or --config) is required")
        try:
            if args.config is not None:
                _reject_shaping_flags_with_config(parser, args, _RUN_SHAPING_DEFAULTS)
                scenario = Scenario.from_file(args.config)
            else:
                scenario = _scenario_from_run_flags(args)
        except OSError as exc:
            parser.error(f"cannot read scenario config: {exc}")
        except ScenarioError as exc:
            parser.error(str(exc))
        return _emit_report(Runner().run(scenario), args)

    if args.command == "service-replay":
        try:
            if args.config is not None:
                _reject_shaping_flags_with_config(
                    parser, args, _SERVICE_REPLAY_SHAPING_DEFAULTS
                )
                scenario = Scenario.from_file(args.config)
                if not isinstance(scenario, ServiceReplayScenario):
                    parser.error(
                        f"service-replay --config requires a 'service-replay' "
                        f"scenario, got kind {scenario.kind!r}"
                    )
            else:
                scenario = ServiceReplayScenario(
                    request_count=args.requests,
                    arrival_window_s=args.window,
                    max_batch=args.max_batch,
                    max_wait_ms=args.max_wait_ms,
                    queue_capacity=args.queue_capacity,
                    seed=args.seed,
                    engine=args.engine,
                )
        except OSError as exc:
            parser.error(f"cannot read scenario config: {exc}")
        except ScenarioError as exc:
            parser.error(str(exc))
        return _emit_report(Runner().run(scenario), args)

    if args.command == "tune":
        try:
            if args.config is not None:
                _reject_shaping_flags_with_config(parser, args, _TUNE_SHAPING_DEFAULTS)
                scenario = Scenario.from_file(args.config)
                if not isinstance(scenario, TuningScenario):
                    parser.error(
                        f"tune --config requires a 'tuning' scenario, got "
                        f"kind {scenario.kind!r}"
                    )
            else:
                kwargs: dict[str, object] = {
                    "controller": args.controller,
                    "strategy": args.strategy,
                    "objective": args.objective,
                    "direction": args.direction,
                    "request_counts": tuple(args.requests),
                    "replications": args.replications,
                    "population": args.population,
                    "generations": args.generations,
                    "max_trials": args.max_trials,
                    "seed": args.seed,
                    "engine": args.engine,
                    "executor": args.executor,
                    "workers": args.workers,
                }
                if args.parameter:
                    kwargs["parameters"] = tuple(args.parameter)
                scenario = TuningScenario(**kwargs)
        except OSError as exc:
            parser.error(f"cannot read scenario config: {exc}")
        except ScenarioError as exc:
            parser.error(str(exc))
        try:
            return _emit_report(Runner().run(scenario), args)
        except TuningError as exc:
            parser.error(str(exc))

    if args.command == "serve":
        from .cac.facs.system import FACSConfig
        from .service import ServiceConfig, render_service_report, run_load_session

        try:
            service = ServiceConfig(
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                queue_capacity=args.queue_capacity,
            )
            report = run_load_session(
                request_count=args.requests,
                clients=args.clients,
                service=service,
                facs_config=FACSConfig(engine=args.engine),
                seed=args.seed,
                holding_scale=args.holding_scale,
            )
        except ValueError as exc:
            parser.error(str(exc))
        if args.format == "json":
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(render_service_report(report))
        return 0

    if args.command == "network-sweep":
        try:
            if args.config is not None:
                _reject_shaping_flags_with_config(
                    parser, args, _NETWORK_SHAPING_DEFAULTS
                )
                scenario = Scenario.from_file(args.config)
                if not isinstance(scenario, NetworkSweepScenario):
                    parser.error(
                        f"network-sweep --config requires a 'network-sweep' "
                        f"scenario, got kind {scenario.kind!r}"
                    )
            else:
                scenario = _scenario_from_network_flags(args)
        except OSError as exc:
            parser.error(f"cannot read scenario config: {exc}")
        except ScenarioError as exc:
            parser.error(str(exc))
        return _emit_report(Runner().run(scenario), args)

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
