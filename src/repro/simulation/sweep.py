"""Parameter sweeps with replications for the figure experiments.

A sweep varies the number of requesting connections (the x axis of every
figure) for one or more scenario variants (the curves: speed values, angle
values, distance values, or controllers) and averages each point over several
independent replications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..cac.base import AdmissionController
from .batch import ControllerFactory, run_batch_experiment
from .config import BatchExperimentConfig, PAPER_REQUEST_COUNTS
from .results import AggregatedResult, RunResult, aggregate_runs

__all__ = ["SweepPoint", "SweepCurve", "SweepResult", "run_acceptance_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One (x, y) point of a figure curve with its replication spread."""

    request_count: int
    acceptance_percentage: float
    std_percentage: float
    replications: int


@dataclass(frozen=True)
class SweepCurve:
    """One labelled curve (e.g. "speed=60 km/h" or "FACS")."""

    label: str
    controller: str
    points: tuple[SweepPoint, ...]

    def acceptance_series(self) -> list[float]:
        return [point.acceptance_percentage for point in self.points]

    def request_counts(self) -> list[int]:
        return [point.request_count for point in self.points]

    def point_at(self, request_count: int) -> SweepPoint:
        for point in self.points:
            if point.request_count == request_count:
                return point
        raise KeyError(f"curve {self.label!r} has no point at {request_count} requests")

    def mean_acceptance(self) -> float:
        """Average acceptance percentage across the whole curve."""
        series = self.acceptance_series()
        return sum(series) / len(series)


@dataclass(frozen=True)
class SweepResult:
    """A family of curves sharing the same x axis (one per figure)."""

    name: str
    curves: tuple[SweepCurve, ...]

    def curve(self, label: str) -> SweepCurve:
        for curve in self.curves:
            if curve.label == label:
                return curve
        raise KeyError(
            f"sweep {self.name!r} has no curve {label!r}; "
            f"available: {[c.label for c in self.curves]}"
        )

    def labels(self) -> list[str]:
        return [curve.label for curve in self.curves]


def run_acceptance_sweep(
    name: str,
    variants: Mapping[str, tuple[BatchExperimentConfig, ControllerFactory]],
    request_counts: Sequence[int] = PAPER_REQUEST_COUNTS,
    replications: int = 10,
) -> SweepResult:
    """Run the acceptance-vs-requests sweep for several scenario variants.

    ``variants`` maps a curve label to a (base config, controller factory)
    pair; for each requested connection count, ``replications`` independent
    runs (different seeds) are executed and averaged.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    if not variants:
        raise ValueError("at least one variant is required")
    if not request_counts:
        raise ValueError("at least one request count is required")

    curves: list[SweepCurve] = []
    for label, (base_config, controller_factory) in variants.items():
        points: list[SweepPoint] = []
        controller_name = ""
        for request_count in request_counts:
            runs: list[RunResult] = []
            for replication in range(replications):
                config = base_config.with_requests(request_count).with_seed(
                    base_config.seed, replication=replication
                )
                output = run_batch_experiment(config, controller_factory)
                runs.append(output.result)
            aggregated: AggregatedResult = aggregate_runs(runs)
            controller_name = aggregated.controller
            points.append(
                SweepPoint(
                    request_count=request_count,
                    acceptance_percentage=aggregated.mean_acceptance_percentage,
                    std_percentage=aggregated.std_acceptance_percentage,
                    replications=aggregated.replications,
                )
            )
        curves.append(SweepCurve(label=label, controller=controller_name, points=tuple(points)))
    return SweepResult(name=name, curves=tuple(curves))
