"""Parameter sweeps with replications for the figure experiments.

A sweep varies the number of requesting connections (the x axis of every
figure) for one or more scenario variants (the curves: speed values, angle
values, distance values, or controllers) and averages each point over several
independent replications.

Replications are mutually independent — each derives its random streams from
``(seed, replication)`` alone — so the sweep flattens every
``(variant, request count, replication)`` combination into one task list and
hands it to a pluggable :class:`~repro.simulation.executor.SweepExecutor`.
The serial backend reproduces the historical strictly-sequential behaviour;
the process-pool backend fans the tasks across cores.  Either way the tasks
carry their full seeded configuration and the results are reassembled in
task order, so the returned :class:`SweepResult` is identical for every
backend and worker count.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Mapping, Sequence

from .batch import ControllerFactory, run_batch_experiment
from .config import BatchExperimentConfig, PAPER_REQUEST_COUNTS
from .executor import SerialExecutor, SweepExecutor, executor_by_name
from .results import AggregatedResult, RunResult, aggregate_runs

__all__ = [
    "SweepPoint",
    "SweepCurve",
    "SweepResult",
    "ReplicationTask",
    "run_acceptance_sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    """One (x, y) point of a figure curve with its replication spread."""

    request_count: int
    acceptance_percentage: float
    std_percentage: float
    replications: int


@dataclass(frozen=True)
class SweepCurve:
    """One labelled curve (e.g. "speed=60 km/h" or "FACS")."""

    label: str
    controller: str
    points: tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        # Intern the strings so equal-valued results serialise to identical
        # bytes whether the runs executed in-process or in a worker pool
        # (unpickled worker strings are otherwise distinct objects and break
        # pickle's memo sharing).
        object.__setattr__(self, "label", sys.intern(self.label))
        object.__setattr__(self, "controller", sys.intern(self.controller))
        # Indexed lookup for point_at(); setdefault keeps the first point per
        # request count, matching the historical linear-scan semantics.
        index: dict[int, SweepPoint] = {}
        for point in self.points:
            index.setdefault(point.request_count, point)
        object.__setattr__(self, "_point_index", index)

    def acceptance_series(self) -> list[float]:
        return [point.acceptance_percentage for point in self.points]

    def request_counts(self) -> list[int]:
        return [point.request_count for point in self.points]

    def point_at(self, request_count: int) -> SweepPoint:
        try:
            return self._point_index[request_count]
        except KeyError:
            raise KeyError(
                f"curve {self.label!r} has no point at {request_count} requests"
            ) from None

    def mean_acceptance(self) -> float:
        """Average acceptance percentage across the whole curve."""
        series = self.acceptance_series()
        return sum(series) / len(series)


@dataclass(frozen=True)
class SweepResult:
    """A family of curves sharing the same x axis (one per figure)."""

    name: str
    curves: tuple[SweepCurve, ...]

    def __post_init__(self) -> None:
        # Indexed lookup for curve(); first curve wins on duplicate labels,
        # matching the historical linear-scan semantics.
        index: dict[str, SweepCurve] = {}
        for curve in self.curves:
            index.setdefault(curve.label, curve)
        object.__setattr__(self, "_curve_index", index)

    def curve(self, label: str) -> SweepCurve:
        try:
            return self._curve_index[label]
        except KeyError:
            raise KeyError(
                f"sweep {self.name!r} has no curve {label!r}; "
                f"available: {[c.label for c in self.curves]}"
            ) from None

    def labels(self) -> list[str]:
        return [curve.label for curve in self.curves]


@dataclass(frozen=True)
class ReplicationTask:
    """One fully seeded replication of one sweep point.

    Self-contained and picklable (given a picklable controller factory), so
    it can be executed in any process in any order.
    """

    label: str
    request_count: int
    replication: int
    config: BatchExperimentConfig
    controller_factory: ControllerFactory


def _execute_replication(task: ReplicationTask) -> RunResult:
    """Run one replication; module-level so process pools can pickle it."""
    return run_batch_experiment(task.config, task.controller_factory).result


def _resolve_executor(executor: SweepExecutor | str | None) -> SweepExecutor:
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, str):
        return executor_by_name(executor)
    if isinstance(executor, SweepExecutor):
        return executor
    raise TypeError(
        f"executor must be a SweepExecutor, an executor name or None, "
        f"got {type(executor).__name__}"
    )


def run_acceptance_sweep(
    name: str,
    variants: Mapping[str, tuple[BatchExperimentConfig, ControllerFactory]],
    request_counts: Sequence[int] = PAPER_REQUEST_COUNTS,
    replications: int = 10,
    executor: SweepExecutor | str | None = None,
) -> SweepResult:
    """Run the acceptance-vs-requests sweep for several scenario variants.

    ``variants`` maps a curve label to a (base config, controller factory)
    pair; for each requested connection count, ``replications`` independent
    runs (different seeds) are executed and averaged.  ``executor`` selects
    the backend the replications run on (``None``/"serial" for in-process
    order, "process" or a :class:`ProcessPoolSweepExecutor` for a worker
    pool); the result is identical for every backend.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    if not variants:
        raise ValueError("at least one variant is required")
    if not request_counts:
        raise ValueError("at least one request count is required")
    backend = _resolve_executor(executor)

    tasks: list[ReplicationTask] = []
    for label, (base_config, controller_factory) in variants.items():
        for request_count in request_counts:
            for replication in range(replications):
                config = base_config.with_requests(request_count).with_seed(
                    base_config.seed, replication=replication
                )
                tasks.append(
                    ReplicationTask(
                        label=label,
                        request_count=request_count,
                        replication=replication,
                        config=config,
                        controller_factory=controller_factory,
                    )
                )

    results = backend.map(_execute_replication, tasks)
    if len(results) != len(tasks):  # pragma: no cover - defensive
        raise RuntimeError(
            f"executor {backend.name!r} returned {len(results)} results "
            f"for {len(tasks)} tasks"
        )

    # Reassemble in the same nested order the tasks were generated in.
    cursor = iter(results)
    curves: list[SweepCurve] = []
    for label in variants:
        points: list[SweepPoint] = []
        controller_name = ""
        for request_count in request_counts:
            runs = [next(cursor) for _ in range(replications)]
            aggregated: AggregatedResult = aggregate_runs(runs)
            controller_name = aggregated.controller
            points.append(
                SweepPoint(
                    request_count=request_count,
                    acceptance_percentage=aggregated.mean_acceptance_percentage,
                    std_percentage=aggregated.std_acceptance_percentage,
                    replications=aggregated.replications,
                )
            )
        curves.append(
            SweepCurve(label=label, controller=controller_name, points=tuple(points))
        )
    return SweepResult(name=name, curves=tuple(curves))
